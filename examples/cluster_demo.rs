//! Quickstart for the cluster extension: four Xeon nodes, one power budget,
//! three scheduling policies.
//!
//! Builds the ANN-backed workload model, replays the same seeded job stream
//! under FCFS, EASY backfill and the ACTOR-driven power-aware policy, and
//! prints the per-job schedule of the power-aware run plus a cluster-level
//! comparison.
//!
//! Run with: `cargo run --release --example cluster_demo`

use actor_suite::actor::ActorConfig;
use actor_suite::cluster::{
    budget_from_fraction, cluster_summary_table, job_table, policy_by_name, simulate, ClusterSpec,
    FaultSpec, MachineMix, WorkloadModel, WorkloadSpec,
};
use actor_suite::sim::Machine;
use actor_suite::workloads::BenchmarkId;

fn main() {
    let machine = Machine::xeon_qx6600();
    let idle_w = machine.params().power.system_idle_w;
    let config = ActorConfig::fast();
    let ids = [BenchmarkId::Cg, BenchmarkId::Is, BenchmarkId::Mg, BenchmarkId::Bt];

    eprintln!("training ANN ensembles for the workload model...");
    let model = WorkloadModel::build(&machine, &config, &ids).expect("model builds");

    let spec = ClusterSpec {
        nodes: 4,
        // A tight envelope: 45 % of the cluster's dynamic power range.
        power_budget_w: budget_from_fraction(4, idle_w, 160.0, 0.45),
        machines: MachineMix::uniform(),
        faults: FaultSpec::default(),
        workload: WorkloadSpec {
            num_jobs: 16,
            mean_interarrival_s: 5.0,
            benchmarks: ids.to_vec(),
            node_counts: vec![1, 1, 2],
            ..Default::default()
        },
        seed: 7,
    };
    println!(
        "cluster: {} nodes, budget {:.0} W (idle floor {:.0} W)\n",
        spec.nodes,
        spec.power_budget_w,
        idle_w * spec.nodes as f64
    );

    let mut reports = Vec::new();
    for name in ["fcfs", "backfill", "power-aware"] {
        let mut policy = policy_by_name(name, &model).expect("known policy");
        reports.push(simulate(&spec, &model, policy.as_mut()).expect("simulation runs"));
    }

    let aware = reports.last().expect("three runs");
    println!("== power-aware schedule (per job) ==");
    println!("{}", job_table(aware).to_text());

    println!("== policy comparison ==");
    println!("{}", cluster_summary_table(&reports).to_text());

    let fcfs_ed2 = reports[0].cluster_ed2();
    let aware_ed2 = aware.cluster_ed2();
    println!(
        "power-aware vs fcfs cluster ED2: {:+.1}% (throttled {:.0}% of phase decisions)",
        (aware_ed2 / fcfs_ed2 - 1.0) * 100.0,
        aware.throttle_fraction() * 100.0
    );
}
