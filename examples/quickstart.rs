//! Quickstart: train an ANN predictor on a few benchmarks, sample an unseen
//! application, and let ACTOR decide how many cores each of its phases should
//! use.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use actor_suite::actor::controller::{
    shape_of, AnnController, CandidatePerf, DecisionCtx, PhaseSample, PowerPerfController,
};
use actor_suite::actor::prelude::*;
use actor_suite::actor::sampling::{sample_phase, SamplingPlan};
use actor_suite::actor::TrainingCorpus;
use actor_suite::rt::PhaseId;
use actor_suite::sim::Machine;
use actor_suite::workloads::{benchmark, BenchmarkId};

fn main() {
    // 1. The machine substrate: a model of the paper's quad-core Xeon.
    let machine = Machine::xeon_qx6600();
    let config = ActorConfig::fast();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // 2. Offline training: build a corpus from a few applications and train
    //    one ANN ensemble per target configuration. IS is deliberately left
    //    out — it is the application we will adapt.
    let training_apps = [BenchmarkId::Bt, BenchmarkId::Cg, BenchmarkId::Mg, BenchmarkId::Sp]
        .map(benchmark)
        .to_vec();
    println!("training ANN ensembles on {} applications...", training_apps.len());
    let target = benchmark(BenchmarkId::Is);
    let plan = SamplingPlan::for_benchmark(&target, &config).expect("sampling plan");
    let corpus = TrainingCorpus::build(
        &machine,
        &training_apps,
        &plan.event_set,
        config.corpus_replicas,
        config.corpus_noise,
        &mut rng,
    )
    .expect("corpus");
    let predictor = AnnPredictor::train(&corpus, &config.predictor, &mut rng).expect("training");
    println!(
        "trained {} ensembles ({} samples, mean held-out error {:.1}%)\n",
        predictor.models().len(),
        corpus.len(),
        predictor.mean_holdout_error() * 100.0
    );

    // 3. Online adaptation of the unseen application (IS) through the
    //    unified controller loop: observe one sampling window per phase at
    //    maximal concurrency, then let the controller decide the binding.
    //    The same two calls drive an oracle, a static baseline, or the
    //    cluster scheduler — every decision-maker implements
    //    `PowerPerfController`.
    println!(
        "adapting {} (sampling {} of {} timesteps, {} events)",
        target.id,
        plan.sample_timesteps,
        plan.total_timesteps,
        plan.event_set.len()
    );
    let shape = shape_of(&machine);
    let candidates = CandidatePerf::all_unknown();
    let mut controller = AnnController::ann(predictor.clone());
    for (i, phase) in target.phases.iter().enumerate() {
        let pid = PhaseId::new(i as u32);
        let rates = sample_phase(&machine, phase, &plan, config.measurement_noise, &mut rng)
            .expect("sampling");
        let exec = machine.simulate_config(phase, actor_suite::sim::Configuration::SAMPLE);
        controller.observe(pid, &PhaseSample::sampling(rates.features(), rates.ipc(), exec.time_s));
        let decision = controller.decide(&DecisionCtx::unconstrained(pid, &shape, &candidates));
        println!(
            "  {:22} sampled IPC {:.2} -> bind {} threads on cores {:?} ({:?})",
            phase.name,
            rates.ipc(),
            decision.binding.num_threads(),
            decision.binding.cores(),
            decision.rationale,
        );
    }

    // 4. What did it buy us? Compare against always using all four cores.
    let four = target.simulate(&machine, actor_suite::sim::Configuration::Four);
    let decisions: Vec<_> = target
        .phases
        .iter()
        .map(|phase| {
            let rates = sample_phase(&machine, phase, &plan, 0.0, &mut rng).expect("sampling");
            let predictions = predictor.predict(&rates.features()).expect("prediction");
            select_configuration(rates.ipc(), &predictions).chosen
        })
        .collect();
    let adapted = target.simulate_per_phase(&machine, &decisions);
    println!(
        "\nwhole-run comparison: 4 cores = {:.1}s / {:.0} J, ACTOR = {:.1}s / {:.0} J ({:+.1}% time, {:+.1}% energy)",
        four.time_s,
        four.energy_j,
        adapted.time_s,
        adapted.energy_j,
        (adapted.time_s / four.time_s - 1.0) * 100.0,
        (adapted.energy_j / four.energy_j - 1.0) * 100.0
    );
}
