//! Live adaptation demo: a real conjugate-gradient solver running on the
//! `phase-rt` runtime, throttled by the ACTOR runtime — first in
//! empirical-search mode (the model-free strategy of the authors' earlier
//! work, ideal when no trained model is available for the host machine),
//! then through the live controller loop (`ThrottleMode::Controller`),
//! where the same search strategy runs as a [`PowerPerfController`] behind
//! the shared control plane — the exact abstraction the Figure-8 harness
//! and the cluster scheduler drive.
//!
//! The runtime explores every candidate binding once per phase, measures it,
//! locks the fastest, and all later iterations of that phase use the locked
//! binding — while the solver's numerical result stays bit-identical.
//!
//! ```bash
//! cargo run --release --example adaptive_cg_live
//! ```

use std::sync::Arc;
use std::time::Instant;

use actor_suite::actor::controller::{JointSearchController, PowerPerfController};
use actor_suite::actor::runtime::ActorRuntime;
use actor_suite::rt::{Binding, Team};
use actor_suite::workloads::kernels::ConjugateGradient;

fn main() {
    let team = Team::new(4).expect("team");
    let shape = *team.shape();
    let solver = ConjugateGradient::poisson(64, 60);
    println!("conjugate gradient on a {}-unknown Poisson system\n", solver.dim());

    // Reference runs with static bindings.
    for (label, binding) in [
        ("1 thread ", Binding::packed(1, &shape)),
        ("2 loose  ", Binding::spread(2, &shape)),
        ("4 threads", Binding::packed(4, &shape)),
    ] {
        let start = Instant::now();
        let result = solver.run(&team, &binding);
        println!(
            "static {label}: {:>7.1?}  (residual {:.2e}, {} iterations)",
            start.elapsed(),
            result.residual_norm,
            result.iterations
        );
    }

    // Adaptive run: ACTOR's live runtime explores, then locks per-phase
    // bindings.
    let runtime = Arc::new(ActorRuntime::search_over_standard_configs(&shape));
    team.set_listener(runtime.clone());
    let start = Instant::now();
    let result = solver.run(&team, &Binding::packed(4, &shape));
    println!(
        "\nadaptive (empirical search): {:>7.1?}  (residual {:.2e}, {} iterations)",
        start.elapsed(),
        result.residual_norm,
        result.iterations
    );

    println!("\nlocked per-phase decisions:");
    for (phase, binding) in runtime.decisions() {
        println!("  {phase}: {} thread(s) on cores {:?}", binding.num_threads(), binding.cores());
    }
    team.clear_listener();

    // The same closed loop through the control plane: any
    // PowerPerfController — here the model-free joint search — drives the
    // live kernel via ThrottleMode::Controller.
    let controller: Box<dyn PowerPerfController + Send> =
        Box::new(JointSearchController::default());
    let live = Arc::new(ActorRuntime::controller_driven(controller, &shape));
    team.set_listener(live.clone());
    let start = Instant::now();
    let result = solver.run(&team, &Binding::packed(4, &shape));
    println!(
        "\nadaptive (controller loop):  {:>7.1?}  (residual {:.2e}, {} iterations)",
        start.elapsed(),
        result.residual_norm,
        result.iterations
    );
    println!("live controller decisions:");
    for (phase, binding) in live.decisions() {
        println!("  {phase}: {} thread(s) on cores {:?}", binding.num_threads(), binding.cores());
    }
    team.clear_listener();

    println!("\nper-phase runtime statistics:");
    let mut stats: Vec<_> = team.stats().snapshot().into_iter().collect();
    stats.sort_by_key(|(phase, _)| *phase);
    for (phase, s) in stats {
        println!(
            "  {phase}: {} executions, mean {:?}, last thread count {}",
            s.executions,
            s.mean_time(),
            s.last_threads
        );
    }
}
