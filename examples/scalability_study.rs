//! Scalability and energy study (the paper's Section III, Figures 1–3) from
//! the public API: execution time, power, energy and ED² of every NPB
//! benchmark on every threading configuration.
//!
//! ```bash
//! cargo run --release --example scalability_study
//! ```

use actor_suite::actor::report::Table;
use actor_suite::actor::scalability::{phase_ipc_study, scalability_report};
use actor_suite::sim::{Configuration, Machine};
use actor_suite::workloads::BenchmarkId;

fn main() {
    let machine = Machine::xeon_qx6600();
    let report = scalability_report(&machine);

    let mut table = Table::new(vec![
        "benchmark",
        "time(1)",
        "time(2a)",
        "time(2b)",
        "time(3)",
        "time(4)",
        "speedup(4)",
        "power(4)/power(1)",
        "best ED2 config",
    ]);
    for row in &report.rows {
        let best_ed2 =
            row.per_config.iter().min_by(|a, b| a.ed2.partial_cmp(&b.ed2).unwrap()).unwrap().config;
        table.push_row(vec![
            row.id.name().to_string(),
            format!("{:.1}", row.get(Configuration::One).time_s),
            format!("{:.1}", row.get(Configuration::TwoTight).time_s),
            format!("{:.1}", row.get(Configuration::TwoLoose).time_s),
            format!("{:.1}", row.get(Configuration::Three).time_s),
            format!("{:.1}", row.get(Configuration::Four).time_s),
            format!("{:.2}x", row.speedup(Configuration::Four)),
            format!("{:.2}x", row.power_ratio(Configuration::Four)),
            best_ed2.label().to_string(),
        ]);
    }
    println!("{}", table.to_text());

    println!(
        "scaling class (BT, FT, LU-HP) mean speedup on 4 cores: {:.2}x  (paper: 2.37x)",
        report.scaling_class_speedup()
    );
    println!(
        "mean power growth 1 -> 4 cores: {:+.1}%  (paper: +14.2%)",
        report.mean_power_growth() * 100.0
    );

    // Figure 2: the phase diversity that motivates per-phase adaptation.
    println!("\nper-phase IPC of SP (Figure 2):");
    let mut sp = Table::new(vec!["phase", "best config", "best IPC", "IPC on 4"]);
    for row in phase_ipc_study(&machine, BenchmarkId::Sp) {
        let on_four = row
            .ipc_by_config
            .iter()
            .find(|(c, _)| *c == Configuration::Four)
            .map(|(_, v)| *v)
            .unwrap_or(0.0);
        sp.push_row(vec![
            row.phase.clone(),
            row.best_config().label().to_string(),
            format!("{:.2}", row.max_ipc()),
            format!("{:.2}", on_four),
        ]);
    }
    println!("{}", sp.to_text());
}
