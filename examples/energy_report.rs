//! Energy-efficiency report: runs the paper's Figure-8 comparison (4 cores vs
//! global optimal vs phase optimal vs ACTOR's prediction) on a subset of the
//! suite with the fast training configuration, and prints normalised time,
//! power, energy and ED² per benchmark — all through the `ExperimentBuilder`
//! façade.
//!
//! ```bash
//! cargo run --release --example energy_report
//! ```

use actor_suite::prelude::*;

fn main() {
    let config = ActorConfig::fast();
    let suite: Vec<BenchmarkProfile> =
        [BenchmarkId::Bt, BenchmarkId::Cg, BenchmarkId::Is, BenchmarkId::Mg, BenchmarkId::Sp]
            .map(benchmark)
            .to_vec();
    println!("training leave-one-out models for {} benchmarks (fast config)...\n", suite.len());

    let mut exp = ExperimentBuilder::new()
        .suite(suite)
        .config(config)
        .controller(ControllerSpec::Ann)
        .run()
        .expect("valid experiment");
    let study = exp.adaptation().expect("adaptation study");

    for metric in Metric::ALL {
        let mut table =
            Table::new(vec!["benchmark", "4 cores", "global opt", "phase opt", "prediction"]);
        for bench in &study.benchmarks {
            table.push_row(vec![
                bench.id.name().to_string(),
                fmt3(bench.normalised(Strategy::FourCores, metric)),
                fmt3(bench.normalised(Strategy::GlobalOptimal, metric)),
                fmt3(bench.normalised(Strategy::PhaseOptimal, metric)),
                fmt3(bench.normalised(Strategy::Prediction, metric)),
            ]);
        }
        table.push_row(vec![
            "AVG".to_string(),
            fmt3(study.average_normalised(Strategy::FourCores, metric)),
            fmt3(study.average_normalised(Strategy::GlobalOptimal, metric)),
            fmt3(study.average_normalised(Strategy::PhaseOptimal, metric)),
            fmt3(study.average_normalised(Strategy::Prediction, metric)),
        ]);
        let name = format!("energy_report_{}", metric.label().to_lowercase().replace(' ', "_"));
        exp.emit(&name, &format!("normalised {} (lower is better)", metric.label()), &table);
    }

    exp.note("ACTOR's per-phase decisions:");
    for bench in &study.benchmarks {
        let summary: Vec<String> = bench
            .decisions
            .iter()
            .map(|(phase, config)| {
                format!("{}={}", phase.rsplit('.').next().unwrap_or(phase), config.label())
            })
            .collect();
        exp.note(&format!(
            "  {:6} (sampled {:.0}% of timesteps): {}",
            bench.id.name(),
            bench.sampling_fraction * 100.0,
            summary.join(", ")
        ));
    }
}
