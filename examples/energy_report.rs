//! Energy-efficiency report: runs the paper's Figure-8 comparison (4 cores vs
//! global optimal vs phase optimal vs ACTOR's prediction) on a subset of the
//! suite with the fast training configuration, and prints normalised time,
//! power, energy and ED² per benchmark.
//!
//! ```bash
//! cargo run --release --example energy_report
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use actor_suite::actor::adaptation::{run_adaptation_study_on, Metric, Strategy};
use actor_suite::actor::report::{fmt3, Table};
use actor_suite::actor::ActorConfig;
use actor_suite::sim::Machine;
use actor_suite::workloads::{benchmark, BenchmarkId};

fn main() {
    let machine = Machine::xeon_qx6600();
    let config = ActorConfig::fast();
    let mut rng = StdRng::seed_from_u64(config.seed);

    let benchmarks =
        [BenchmarkId::Bt, BenchmarkId::Cg, BenchmarkId::Is, BenchmarkId::Mg, BenchmarkId::Sp]
            .map(benchmark)
            .to_vec();
    println!(
        "training leave-one-out models for {} benchmarks (fast config)...\n",
        benchmarks.len()
    );
    let study = run_adaptation_study_on(&machine, &config, &benchmarks, &mut rng)
        .expect("adaptation study");

    for metric in Metric::ALL {
        let mut table =
            Table::new(vec!["benchmark", "4 cores", "global opt", "phase opt", "prediction"]);
        for bench in &study.benchmarks {
            table.push_row(vec![
                bench.id.name().to_string(),
                fmt3(bench.normalised(Strategy::FourCores, metric)),
                fmt3(bench.normalised(Strategy::GlobalOptimal, metric)),
                fmt3(bench.normalised(Strategy::PhaseOptimal, metric)),
                fmt3(bench.normalised(Strategy::Prediction, metric)),
            ]);
        }
        table.push_row(vec![
            "AVG".to_string(),
            fmt3(study.average_normalised(Strategy::FourCores, metric)),
            fmt3(study.average_normalised(Strategy::GlobalOptimal, metric)),
            fmt3(study.average_normalised(Strategy::PhaseOptimal, metric)),
            fmt3(study.average_normalised(Strategy::Prediction, metric)),
        ]);
        println!("normalised {} (lower is better):", metric.label());
        println!("{}", table.to_text());
    }

    println!("ACTOR's per-phase decisions:");
    for bench in &study.benchmarks {
        let summary: Vec<String> = bench
            .decisions
            .iter()
            .map(|(phase, config)| {
                format!("{}={}", phase.rsplit('.').next().unwrap_or(phase), config.label())
            })
            .collect();
        println!(
            "  {:6} (sampled {:.0}% of timesteps): {}",
            bench.id.name(),
            bench.sampling_fraction * 100.0,
            summary.join(", ")
        );
    }
}
