//! The one front door for running experiments: [`ExperimentBuilder`].
//!
//! Every study in the workspace — scalability sweeps, the leave-one-out
//! prediction studies, the Figure-8 adaptation comparison, the cluster
//! power-cap simulation — needs the same ingredients wired together: a
//! machine model, a benchmark suite, an [`ActorConfig`] (with its seed), a
//! decision-making controller, an optional power budget and somewhere to
//! send the output. The builder assembles them once:
//!
//! ```no_run
//! use actor_suite::prelude::*;
//!
//! let mut exp = ExperimentBuilder::new()
//!     .machine(Machine::xeon_qx6600())
//!     .suite(nas_suite())
//!     .controller(ControllerSpec::Ann)
//!     .seed(0xAC7012)
//!     .reporter(Box::new(StdoutReporter))
//!     .run()
//!     .expect("valid experiment");
//! let study = exp.adaptation().expect("adaptation study");
//! exp.note(&format!(
//!     "ACTOR vs 4 cores, mean normalised ED2: {:.3}",
//!     study.average_normalised(Strategy::Prediction, Metric::Ed2)
//! ));
//! ```
//!
//! [`ExperimentBuilder::run`] validates the assembly and returns an
//! [`Experiment`]: a prepared context that runs each study on demand,
//! caching the expensive leave-one-out evaluation so the accuracy and
//! adaptation studies (and the paper-comparison summary) share one training
//! pass. All randomness derives from the configured seed — the same builder
//! inputs produce bit-identical studies, and the default path reproduces the
//! historical free-function results exactly
//! (`run_adaptation_study_seeded` et al.), which the deterministic-output
//! tests in `tests/experiment_builder.rs` assert.

use rand::rngs::StdRng;
use rand::SeedableRng;

use actor_core::adaptation::adaptation_with_controller;
use actor_core::controller::{
    JointSearchController, OracleController, PowerPerfController, StaticController,
};
use actor_core::evaluation::evaluate_benchmarks;
use actor_core::report::{NullReporter, Reporter, StdoutReporter, Table};
use actor_core::scalability::{
    phase_ipc_study, scalability_report, PhaseIpcRow, ScalabilityReport,
};
use actor_core::{
    AccuracyStudy, ActorConfig, ActorError, AdaptationStudy, BenchmarkEvaluation, Strategy,
};
use cluster_sched::{ClusterError, WorkloadModel};
use npb_workloads::{nas_suite, BenchmarkId, BenchmarkProfile};
use xeon_sim::{Configuration, Machine};

/// A factory building one [`PowerPerfController`] per evaluated benchmark
/// (the leave-one-out protocol trains one model per held-out application).
pub type ControllerFactory = Box<
    dyn FnMut(
        &Machine,
        &BenchmarkProfile,
        &BenchmarkEvaluation,
    ) -> Box<dyn PowerPerfController + Send>,
>;

/// Which decision-maker occupies the adaptive slot of the experiment.
///
/// Each variant builds a fresh [`PowerPerfController`] per evaluated
/// benchmark; [`ControllerSpec::Custom`] plugs in any controller at all.
#[non_exhaustive]
pub enum ControllerSpec {
    /// The paper's controller: the leave-one-out ANN ensembles' decisions.
    Ann,
    /// The phase-optimal oracle (ground-truth best per phase).
    PhaseOracle,
    /// A fixed configuration for every phase (e.g. the OS default,
    /// [`Configuration::Four`]).
    Static(Configuration),
    /// Model-free exploration of the joint (threads × frequency) space —
    /// pair with [`ExperimentBuilder::dvfs`] to actually offer the ladder.
    JointSearch,
    /// An arbitrary controller factory, called once per evaluated benchmark.
    Custom(ControllerFactory),
}

impl std::fmt::Debug for ControllerSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControllerSpec::Ann => write!(f, "ControllerSpec::Ann"),
            ControllerSpec::PhaseOracle => write!(f, "ControllerSpec::PhaseOracle"),
            ControllerSpec::Static(c) => write!(f, "ControllerSpec::Static({c:?})"),
            ControllerSpec::JointSearch => write!(f, "ControllerSpec::JointSearch"),
            ControllerSpec::Custom(_) => write!(f, "ControllerSpec::Custom(..)"),
        }
    }
}

impl ControllerSpec {
    /// Builds the controller for one evaluated benchmark.
    fn build(
        &mut self,
        machine: &Machine,
        bench: &BenchmarkProfile,
        eval: &BenchmarkEvaluation,
    ) -> Box<dyn PowerPerfController + Send> {
        match self {
            ControllerSpec::Ann => Strategy::Prediction.controller(machine, bench, eval),
            ControllerSpec::PhaseOracle => {
                Box::new(OracleController::for_benchmark(machine, bench))
            }
            ControllerSpec::Static(config) => Box::new(StaticController::new(*config, "static")),
            ControllerSpec::JointSearch => Box::new(JointSearchController::default()),
            ControllerSpec::Custom(factory) => factory(machine, bench, eval),
        }
    }
}

/// Builder for an [`Experiment`]; see the [module docs](self) for the
/// 10-line tour.
///
/// Defaults: the paper's quad-core Xeon, the full NAS suite,
/// [`ActorConfig::default`], the ANN controller, no power budget, and a
/// [`StdoutReporter`].
pub struct ExperimentBuilder {
    machine: Machine,
    suite: Vec<BenchmarkProfile>,
    config: ActorConfig,
    controller: ControllerSpec,
    power_budget_w: Option<f64>,
    dvfs: bool,
    reporter: Box<dyn Reporter>,
    telemetry: Option<actor_core::telemetry::SharedSink>,
}

impl Default for ExperimentBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ExperimentBuilder {
    /// Starts from the defaults above.
    pub fn new() -> Self {
        Self {
            machine: Machine::xeon_qx6600(),
            suite: nas_suite(),
            config: ActorConfig::default(),
            controller: ControllerSpec::Ann,
            power_budget_w: None,
            dvfs: false,
            reporter: Box::new(StdoutReporter),
            telemetry: None,
        }
    }

    /// The machine model experiments run on.
    pub fn machine(mut self, machine: Machine) -> Self {
        self.machine = machine;
        self
    }

    /// The benchmark suite (at least two benchmarks, for leave-one-out
    /// training).
    pub fn suite(mut self, suite: Vec<BenchmarkProfile>) -> Self {
        self.suite = suite;
        self
    }

    /// The full pipeline configuration (training hyper-parameters, sampling
    /// budget, noise, seed).
    pub fn config(mut self, config: ActorConfig) -> Self {
        self.config = config;
        self
    }

    /// Seed for every randomised step (overrides the config's seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// The controller occupying the adaptive slot.
    pub fn controller(mut self, controller: ControllerSpec) -> Self {
        self.controller = controller;
        self
    }

    /// A per-phase average-power cap (W) the adaptive controller must
    /// respect (the oracle/static reference bars stay uncapped).
    pub fn power_budget_w(mut self, budget_w: f64) -> Self {
        self.power_budget_w = Some(budget_w);
        self
    }

    /// Offers the machine's voltage/frequency ladder to the adaptive
    /// controller, widening its decision space to (threads × frequency).
    /// The reference bars stay at nominal frequency, and `false` (the
    /// default) reproduces the concurrency-only studies bit-for-bit.
    pub fn dvfs(mut self, enabled: bool) -> Self {
        self.dvfs = enabled;
        self
    }

    /// Where tables, notes and artefacts go.
    pub fn reporter(mut self, reporter: Box<dyn Reporter>) -> Self {
        self.reporter = reporter;
        self
    }

    /// Attaches a telemetry sink: live runtimes built by this experiment
    /// trace every validated controller decision through it, and cluster
    /// bins can share the same sink with their sweeps (see
    /// [`Experiment::telemetry_sink`]). Default: off — no trace records,
    /// no timestamps, byte-identical outputs.
    pub fn telemetry(mut self, sink: actor_core::telemetry::SharedSink) -> Self {
        self.telemetry = Some(sink);
        self
    }

    /// Validates the assembly and returns the ready-to-run experiment.
    pub fn run(self) -> Result<Experiment, ActorError> {
        self.config.validate()?;
        if self.suite.len() < 2 {
            return Err(ActorError::InvalidConfig {
                reason: format!(
                    "an experiment suite needs at least two benchmarks for leave-one-out \
                     training, got {}",
                    self.suite.len()
                ),
            });
        }
        if let Some(b) = self.power_budget_w {
            if !(b.is_finite() && b > 0.0) {
                return Err(ActorError::InvalidConfig {
                    reason: format!("power_budget_w must be positive and finite, got {b}"),
                });
            }
        }
        Ok(Experiment {
            machine: self.machine,
            suite: self.suite,
            config: self.config,
            controller: self.controller,
            power_budget_w: self.power_budget_w,
            dvfs: self.dvfs,
            reporter: self.reporter,
            telemetry: self.telemetry,
            evaluations: None,
            scalability: None,
        })
    }
}

/// A validated experiment context: runs studies on demand, caches the
/// expensive leave-one-out evaluation, and routes output through the
/// configured [`Reporter`].
pub struct Experiment {
    machine: Machine,
    suite: Vec<BenchmarkProfile>,
    config: ActorConfig,
    controller: ControllerSpec,
    power_budget_w: Option<f64>,
    dvfs: bool,
    reporter: Box<dyn Reporter>,
    telemetry: Option<actor_core::telemetry::SharedSink>,
    evaluations: Option<Vec<BenchmarkEvaluation>>,
    scalability: Option<ScalabilityReport>,
}

impl Experiment {
    /// The machine model.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The benchmark suite.
    pub fn suite(&self) -> &[BenchmarkProfile] {
        &self.suite
    }

    /// The pipeline configuration (including the effective seed).
    pub fn config(&self) -> &ActorConfig {
        &self.config
    }

    /// The scalability report (Figures 1–3); cheap, no training. Cached.
    pub fn scalability(&mut self) -> &ScalabilityReport {
        if self.scalability.is_none() {
            self.scalability = Some(scalability_report(&self.machine));
        }
        self.scalability.as_ref().expect("just computed")
    }

    /// Per-phase IPC of one benchmark on every configuration (Figure 2).
    pub fn phase_ipc(&self, id: BenchmarkId) -> Vec<PhaseIpcRow> {
        phase_ipc_study(&self.machine, id)
    }

    /// The leave-one-out evaluations behind the prediction and adaptation
    /// studies. Computed once with a seed-derived RNG and cached, so every
    /// dependent study shares one training pass.
    pub fn evaluations(&mut self) -> Result<&[BenchmarkEvaluation], ActorError> {
        if self.evaluations.is_none() {
            let mut rng = StdRng::seed_from_u64(self.config.seed);
            self.evaluations =
                Some(evaluate_benchmarks(&self.machine, &self.config, &self.suite, &mut rng)?);
        }
        Ok(self.evaluations.as_deref().expect("just computed"))
    }

    /// The prediction-accuracy study (Figures 6 and 7).
    pub fn accuracy(&mut self) -> Result<AccuracyStudy, ActorError> {
        Ok(AccuracyStudy::from_evaluations(self.evaluations()?))
    }

    /// The Figure-8 adaptation study with the configured controller in the
    /// adaptive slot, constrained by the configured power budget if any.
    pub fn adaptation(&mut self) -> Result<AdaptationStudy, ActorError> {
        self.evaluations()?;
        let evaluations = self.evaluations.as_deref().expect("just computed");
        let controller = &mut self.controller;
        adaptation_with_controller(
            &self.machine,
            &self.config,
            &self.suite,
            evaluations,
            &mut |m, b, e| controller.build(m, b, e),
            self.power_budget_w,
            self.dvfs,
        )
    }

    /// The cluster scheduler's workload model over this experiment's suite
    /// and configuration (for driving `cluster_sched::simulate`).
    ///
    /// The cluster simulation instantiates quad-core Xeon nodes, so this
    /// refuses a builder machine with any other topology rather than
    /// silently mixing machine models (generalising the node machine is a
    /// ROADMAP item).
    pub fn workload_model(&self) -> Result<WorkloadModel, ClusterError> {
        let quad = xeon_sim::Topology::quad_core_xeon();
        if *self.machine.topology() != quad {
            return Err(ClusterError::InvalidSpec {
                reason: format!(
                    "cluster nodes are quad-core Xeons; a workload model built on a \
                     {}-core machine would not match the nodes executing it",
                    self.machine.topology().num_cores
                ),
            });
        }
        let ids: Vec<BenchmarkId> = self.suite.iter().map(|b| b.id).collect();
        WorkloadModel::build(&self.machine, &self.config, &ids)
    }

    /// Builds a live [`actor_core::ActorRuntime`] in
    /// [`actor_core::ThrottleMode::Controller`] mode for one benchmark: the
    /// configured [`ControllerSpec`] builds the controller from that
    /// benchmark's cached leave-one-out evaluation, and the returned
    /// listener drives real `phase-rt` regions through the shared control
    /// plane — observing every execution, deciding every next one, under
    /// the experiment's power budget when one is configured. Attach
    /// it with `team.set_listener`, optionally after
    /// [`actor_core::ActorRuntime::with_counter_sampler`] for online
    /// counter-derived features.
    pub fn live_runtime_for(
        &mut self,
        id: BenchmarkId,
        shape: &phase_rt::MachineShape,
    ) -> Result<actor_core::ActorRuntime, ActorError> {
        self.evaluations()?;
        let evaluations = self.evaluations.as_deref().expect("just computed");
        let eval =
            evaluations.iter().find(|e| e.id == id).ok_or_else(|| ActorError::InvalidConfig {
                reason: format!("benchmark {id} is not part of this experiment's suite"),
            })?;
        let bench =
            self.suite.iter().find(|b| b.id == id).expect("evaluations cover the suite exactly");
        let controller = self.controller.build(&self.machine, bench, eval);
        let mut runtime = actor_core::ActorRuntime::controller_driven(controller, shape);
        // The facade's cap gates the live loop exactly like the adaptation
        // studies: the controller sees it in every DecisionCtx.
        if let Some(budget_w) = self.power_budget_w {
            runtime = runtime.with_power_cap(budget_w);
        }
        if let Some(sink) = &self.telemetry {
            runtime = runtime.with_telemetry(sink.clone());
        }
        Ok(runtime)
    }

    /// The attached telemetry sink, if any — cluster bins clone it into
    /// their sweeps (`run_sweep_traced`) so one `--trace` flag covers both
    /// the live runtimes and the cluster event loops.
    pub fn telemetry_sink(&self) -> Option<actor_core::telemetry::SharedSink> {
        self.telemetry.clone()
    }

    /// Swaps the controller occupying the adaptive slot. The cached
    /// leave-one-out evaluations survive, so comparing several controllers
    /// (or DVFS settings) trains the ANN ensembles once — see the
    /// `fig_dvfs_dct` binary.
    pub fn set_controller(&mut self, controller: ControllerSpec) {
        self.controller = controller;
    }

    /// Sets (or clears, with `None`) the per-phase power cap for subsequent
    /// adaptation studies; cached evaluations survive.
    pub fn set_power_budget_w(&mut self, budget_w: Option<f64>) -> Result<(), ActorError> {
        if let Some(b) = budget_w {
            if !(b.is_finite() && b > 0.0) {
                return Err(ActorError::InvalidConfig {
                    reason: format!("power_budget_w must be positive and finite, got {b}"),
                });
            }
        }
        self.power_budget_w = budget_w;
        Ok(())
    }

    /// Toggles the frequency axis for subsequent adaptation studies; cached
    /// evaluations survive.
    pub fn set_dvfs(&mut self, enabled: bool) {
        self.dvfs = enabled;
    }

    /// Reports one named table through the configured reporter.
    pub fn emit(&mut self, name: &str, heading: &str, table: &Table) {
        self.reporter.table(name, heading, table);
    }

    /// Reports one free-form line.
    pub fn note(&mut self, line: &str) {
        self.reporter.note(line);
    }

    /// Reports a named file artefact (`filename` includes the extension).
    pub fn artifact(&mut self, filename: &str, contents: &str) {
        self.reporter.artifact(filename, contents);
    }

    /// Swaps the reporter (e.g. to silence an experiment in tests).
    pub fn set_reporter(&mut self, reporter: Box<dyn Reporter>) {
        self.reporter = reporter;
    }

    /// Discards all further output.
    pub fn silence(&mut self) {
        self.reporter = Box::new(NullReporter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_builder() -> ExperimentBuilder {
        let benchmarks = [BenchmarkId::Bt, BenchmarkId::Cg, BenchmarkId::Is, BenchmarkId::Mg]
            .map(npb_workloads::benchmark);
        ExperimentBuilder::new()
            .config(ActorConfig { corpus_replicas: 2, ..ActorConfig::fast() })
            .suite(benchmarks.to_vec())
            .reporter(Box::new(NullReporter))
    }

    #[test]
    fn builder_validates_inputs() {
        let one_bench =
            ExperimentBuilder::new().suite(vec![npb_workloads::benchmark(BenchmarkId::Cg)]).run();
        assert!(one_bench.is_err(), "a one-benchmark suite cannot train leave-one-out");

        let bad_budget = fast_builder().power_budget_w(-5.0).run();
        assert!(bad_budget.is_err(), "negative power budgets are invalid");

        let bad_config = ExperimentBuilder::new()
            .config(ActorConfig { sampling_budget: 0.0, ..ActorConfig::default() })
            .run();
        assert!(bad_config.is_err(), "config validation runs at build time");
    }

    #[test]
    fn seed_overrides_config_seed() {
        let exp = fast_builder().seed(42).run().unwrap();
        assert_eq!(exp.config().seed, 42);
    }

    #[test]
    fn scalability_is_cached_and_suite_scoped_studies_run() {
        let mut exp = fast_builder().run().unwrap();
        let n = exp.scalability().rows.len();
        assert_eq!(n, 8, "scalability always covers the full NPB table");
        assert!(!exp.phase_ipc(BenchmarkId::Sp).is_empty());
    }
}
