//! # actor-suite — umbrella crate for the ACTOR reproduction
//!
//! This crate ties the workspace together for the runnable examples and the
//! cross-crate integration tests. The actual functionality lives in the
//! member crates, re-exported here under short names:
//!
//! * [`sim`] (`xeon-sim`) — the quad-core Xeon machine model (caches, FSB,
//!   DRAM, power) and phase profiles;
//! * [`counters`] (`hwcounters`) — hardware-event sets, register multiplexing
//!   and event-rate feature vectors;
//! * [`rt`] (`phase-rt`) — the fork-join phase runtime (teams, bindings,
//!   schedulers, barriers, listeners);
//! * [`ml`] (`annlib`) — feed-forward neural networks, backpropagation,
//!   cross-validation ensembles;
//! * [`workloads`] (`npb-workloads`) — NPB phase profiles and live kernels;
//! * [`actor`] (`actor-core`) — ACTOR itself: corpus building, ANN training,
//!   sampling, throttling, oracles, baselines and the evaluation studies;
//! * [`cluster`] (`cluster-sched`) — the multi-node extension: a simulated
//!   cluster of Xeon nodes scheduling NPB jobs under a shared power budget,
//!   with an ANN-driven power-aware policy.
//!
//! See `examples/quickstart.rs` for the fastest path from nothing to a
//! throttling decision, and the `actor-bench` crate for the binaries that
//! regenerate every figure of the paper.

pub use actor_core as actor;
pub use annlib as ml;
pub use cluster_sched as cluster;
pub use hwcounters as counters;
pub use npb_workloads as workloads;
pub use phase_rt as rt;
pub use xeon_sim as sim;

/// The workspace version (all member crates share it).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_exposed() {
        assert!(!super::VERSION.is_empty());
    }
}
