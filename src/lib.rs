//! # actor-suite — umbrella crate for the ACTOR reproduction
//!
//! This crate ties the workspace together for the runnable examples and the
//! cross-crate integration tests. The actual functionality lives in the
//! member crates, re-exported here under short names:
//!
//! * [`sim`] (`xeon-sim`) — the quad-core Xeon machine model (caches, FSB,
//!   DRAM, power) and phase profiles;
//! * [`counters`] (`hwcounters`) — hardware-event sets, register multiplexing
//!   and event-rate feature vectors;
//! * [`rt`] (`phase-rt`) — the fork-join phase runtime (teams, bindings,
//!   schedulers, barriers, listeners);
//! * [`ml`] (`annlib`) — feed-forward neural networks, backpropagation,
//!   cross-validation ensembles;
//! * [`workloads`] (`npb-workloads`) — NPB phase profiles and live kernels;
//! * [`actor`] (`actor-core`) — ACTOR itself: corpus building, ANN training,
//!   sampling, throttling, oracles, baselines and the evaluation studies;
//! * [`cluster`] (`cluster-sched`) — the multi-node extension: a simulated
//!   cluster of Xeon nodes scheduling NPB jobs under a shared power budget,
//!   with an ANN-driven power-aware policy;
//! * [`rpc`] (`cluster-rpc`) — the transport-agnostic wire protocol for
//!   distributed sweeps: length-prefixed, version-handshaked frames over
//!   Unix-domain sockets or in-memory duplexes;
//! * [`daemon`] (`cluster-daemon`) — the distributed sweep service: a
//!   daemon that owns the grid and dispatches cells to worker processes
//!   with heartbeat liveness and reassignment on death, plus the worker
//!   loop and local process-spawning orchestration (`--processes N`).
//!
//! Two unifying abstractions tie the pieces into one system:
//!
//! * [`actor::controller::PowerPerfController`] — the single decision loop
//!   (observe per-phase hardware samples → decide a typed binding +
//!   frequency actuation) that the ANN predictor, the oracles, the static
//!   baselines and the cluster's power-aware policy all implement or
//!   consume;
//! * [`experiment::ExperimentBuilder`] — the one front door for running
//!   studies: machine, suite, controller, seed, power budget and reporter in
//!   one builder, replacing per-binary ad-hoc wiring.
//!
//! See `examples/quickstart.rs` for the fastest path from nothing to a
//! throttling decision, and the `actor-bench` crate for the binaries that
//! regenerate every figure of the paper.

pub mod experiment;

pub use actor_core as actor;
pub use annlib as ml;
pub use cluster_daemon as daemon;
pub use cluster_rpc as rpc;
pub use cluster_sched as cluster;
pub use hwcounters as counters;
pub use npb_workloads as workloads;
pub use phase_rt as rt;
pub use xeon_sim as sim;

pub use experiment::{ControllerFactory, ControllerSpec, Experiment, ExperimentBuilder};

/// The blessed public surface, re-exported flat: everything a typical
/// experiment — single-node or cluster — needs in one import.
///
/// ```no_run
/// use actor_suite::prelude::*;
///
/// let mut exp = ExperimentBuilder::new().seed(7).run().expect("experiment");
/// let study = exp.adaptation().expect("study");
/// assert!(study.average_normalised(Strategy::Prediction, Metric::Ed2) < 1.0);
/// ```
pub mod prelude {
    pub use crate::experiment::{ControllerFactory, ControllerSpec, Experiment, ExperimentBuilder};

    pub use actor_core::controller::{
        binding_for, configuration_of, frequency_scaled_ipc, frequency_throughput_scale, shape_of,
        AnnController, CandidatePerf, Decision, DecisionCtx, DecisionTableController, DvfsSpace,
        EmpiricalSearchController, JointPerf, JointSearchController, OracleController, PhaseSample,
        PowerPerfController, PredictorController, Rationale, StaticController,
    };
    pub use actor_core::report::{fmt3, fmt_pct};
    pub use actor_core::telemetry::{
        FanoutSink, HistogramSnapshot, JsonlSink, MemorySink, MetricsRegistry, NullSink, RingSink,
        SharedSink, SpanContext, SpanSink, SpannedEvent, TelemetrySink, TraceEvent,
    };
    pub use actor_core::{
        assert_controller_conformance, ActorConfig, ActorError, AdaptationStudy,
        ConformanceOptions, Metric, NullReporter, Reporter, StdoutReporter, Strategy, Table,
    };
    pub use cluster_daemon::{
        run_distributed, run_worker, serve, DaemonConfig, DaemonError, DistRun,
        ProcessSweepOptions, WorkerError,
    };
    pub use cluster_rpc::{duplex, Connection, Message, RpcError, SweepContext};
    pub use cluster_sched::{
        budget_from_fraction, cluster_summary_table, job_table, policy_by_name, run_sweep,
        run_sweep_traced, simulate, simulate_traced, workload_shape_by_name, ClusterReport,
        ClusterSpec, PowerAwarePolicy, SchedulerPolicy, SweepCell, SweepCellOutcome, SweepError,
        SweepPoint, SweepRun, SweepSpec, WorkloadModel, WorkloadSpec, POLICY_NAMES,
        WORKLOAD_SHAPE_NAMES,
    };
    pub use npb_workloads::{benchmark, nas_suite, BenchmarkId, BenchmarkProfile};
    pub use phase_rt::{Binding, FreqStep, MachineShape, PhaseId};
    pub use xeon_sim::{Configuration, FreqLadder, FreqPoint, Machine};
}

/// The workspace version (all member crates share it).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_exposed() {
        assert!(!super::VERSION.is_empty());
    }
}
