//! Error types for the cluster scheduler.

use std::fmt;

use crate::policy::POLICY_NAMES;

/// Failures constructing a scheduling policy or redistributing the cluster
/// budget.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SchedError {
    /// No policy is registered under the requested name.
    UnknownPolicy {
        /// What was asked for.
        requested: String,
    },
    /// A coordinator redistribution assigned more extra draw than the
    /// cluster budget has headroom for.
    CapOverBudget {
        /// Total extra draw of the assigned caps (W).
        extra_w: f64,
        /// The headroom they had to fit (W).
        headroom_w: f64,
    },
    /// A coordinator redistribution starved a job below the node idle floor.
    CapBelowIdleFloor {
        /// The offending per-node cap (W).
        cap_w: f64,
        /// The node idle floor (W).
        idle_w: f64,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::UnknownPolicy { requested } => write!(
                f,
                "unknown scheduling policy {requested:?}; valid policies are: {}",
                POLICY_NAMES.join(", ")
            ),
            SchedError::CapOverBudget { extra_w, headroom_w } => write!(
                f,
                "coordinated caps draw {extra_w:.1} W extra and exceed the {headroom_w:.1} W \
                 cluster headroom"
            ),
            SchedError::CapBelowIdleFloor { cap_w, idle_w } => write!(
                f,
                "coordinated cap {cap_w:.1} W starves a job below the {idle_w:.1} W node idle \
                 floor"
            ),
        }
    }
}

impl std::error::Error for SchedError {}

impl From<SchedError> for ClusterError {
    fn from(e: SchedError) -> Self {
        ClusterError::InvalidSpec { reason: e.to_string() }
    }
}

/// Failures constructing or running a cluster simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// A specification field is out of range.
    InvalidSpec {
        /// What was wrong.
        reason: String,
    },
    /// The power budget cannot even cover the idle floor of the nodes.
    BudgetBelowIdleFloor {
        /// The requested budget (W).
        budget_w: f64,
        /// The idle floor of the whole cluster (W).
        idle_floor_w: f64,
    },
    /// An ACTOR pipeline step (corpus building, training, sampling) failed.
    Actor(actor_core::ActorError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidSpec { reason } => write!(f, "invalid cluster spec: {reason}"),
            ClusterError::BudgetBelowIdleFloor { budget_w, idle_floor_w } => write!(
                f,
                "power budget {budget_w:.0} W is below the cluster idle floor {idle_floor_w:.0} W"
            ),
            ClusterError::Actor(e) => write!(f, "ACTOR pipeline error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<actor_core::ActorError> for ClusterError {
    fn from(e: actor_core::ActorError) -> Self {
        ClusterError::Actor(e)
    }
}
