//! Error types for the cluster scheduler.

use std::fmt;

use crate::policy::POLICY_NAMES;

/// Failures constructing a scheduling policy.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchedError {
    /// No policy is registered under the requested name.
    UnknownPolicy {
        /// What was asked for.
        requested: String,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::UnknownPolicy { requested } => write!(
                f,
                "unknown scheduling policy {requested:?}; valid policies are: {}",
                POLICY_NAMES.join(", ")
            ),
        }
    }
}

impl std::error::Error for SchedError {}

impl From<SchedError> for ClusterError {
    fn from(e: SchedError) -> Self {
        ClusterError::InvalidSpec { reason: e.to_string() }
    }
}

/// Failures constructing or running a cluster simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// A specification field is out of range.
    InvalidSpec {
        /// What was wrong.
        reason: String,
    },
    /// The power budget cannot even cover the idle floor of the nodes.
    BudgetBelowIdleFloor {
        /// The requested budget (W).
        budget_w: f64,
        /// The idle floor of the whole cluster (W).
        idle_floor_w: f64,
    },
    /// An ACTOR pipeline step (corpus building, training, sampling) failed.
    Actor(actor_core::ActorError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidSpec { reason } => write!(f, "invalid cluster spec: {reason}"),
            ClusterError::BudgetBelowIdleFloor { budget_w, idle_floor_w } => write!(
                f,
                "power budget {budget_w:.0} W is below the cluster idle floor {idle_floor_w:.0} W"
            ),
            ClusterError::Actor(e) => write!(f, "ACTOR pipeline error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<actor_core::ActorError> for ClusterError {
    fn from(e: actor_core::ActorError) -> Self {
        ClusterError::Actor(e)
    }
}
