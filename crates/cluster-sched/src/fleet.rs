//! Heterogeneous fleets: machine mixes and per-generation workload models.
//!
//! The paper's evaluation platform is one quad-core Xeon; a real cluster
//! accretes *generations* — newer parts idle cooler and clock higher, older
//! parts run hot with shallow DVFS ladders. A [`MachineMix`] names which
//! generation each node is (a pattern cycled over node ids), and a
//! [`FleetModel`] holds one trained [`WorkloadModel`] per generation so
//! policies can price a job on the hardware it would actually run on.
//!
//! Two invariants keep heterogeneous runs comparable and deterministic:
//!
//! * **One reference generation.** The fleet always contains the paper's
//!   `qx6600` as generation 0; workload generation (deadlines, durations)
//!   is priced against it, so the *job stream* of a `(shape, seed)` pair is
//!   identical across machine mixes — the mix axis changes the hardware,
//!   never the traffic.
//! * **Disjoint phase-id namespaces.** Each generation's model mints phase
//!   ids offset by [`GEN_PHASE_ID_STRIDE`], so one shared controller table
//!   (and the control plane's interned menus) holds every generation's
//!   decisions without aliasing.

use actor_core::controller::DecisionTableController;
use actor_core::ActorConfig;
use npb_workloads::BenchmarkId;
use serde::{Deserialize, Serialize};
use xeon_sim::{Machine, MachineParams, MACHINE_GEN_NAMES};

use crate::error::ClusterError;
use crate::profile::WorkloadModel;

/// Phase-id offset between fleet generations. Generous headroom above the
/// per-benchmark stride × benchmark count of one model (≤ 64 × 16).
pub const GEN_PHASE_ID_STRIDE: u32 = 4096;

/// Names of the built-in machine mixes accepted by the sweep engine's
/// `machines=` axis (see [`mix_by_name`]).
pub const MACHINE_MIX_NAMES: [&str; 4] = ["uniform", "mixed", "legacy", "modern"];

/// Which machine generation each node of a cluster is: a pattern of
/// generation names (see [`xeon_sim::MACHINE_GEN_NAMES`]) cycled over node
/// ids — node `i` is `pattern[i % pattern.len()]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineMix {
    /// Mix name, used in reports and as the sweep-axis value.
    pub name: String,
    /// Generation names cycled over node ids.
    pub pattern: Vec<String>,
}

impl Default for MachineMix {
    fn default() -> Self {
        Self::uniform()
    }
}

impl MachineMix {
    /// The homogeneous mix: every node is the paper's `qx6600`.
    pub fn uniform() -> Self {
        Self { name: "uniform".into(), pattern: vec!["qx6600".into()] }
    }

    /// Resolves a built-in mix by name (see [`MACHINE_MIX_NAMES`]):
    /// `"uniform"` (all `qx6600`), `"mixed"` (half reference `qx6600`, the
    /// rest split between `e5450` and `x5355` — gangs stay within one
    /// generation, so the mixed fleet keeps a reference pool wide enough
    /// for 4-node gangs on 8-node clusters), `"legacy"` (`qx6600` + hot
    /// old `x5355`), `"modern"` (all efficient `e5450`).
    pub fn by_name(name: &str) -> Option<Self> {
        let pattern: Vec<&str> = match name {
            "uniform" => vec!["qx6600"],
            "mixed" => vec!["qx6600", "e5450", "qx6600", "x5355"],
            "legacy" => vec!["qx6600", "x5355"],
            "modern" => vec!["e5450"],
            _ => return None,
        };
        Some(Self { name: name.into(), pattern: pattern.into_iter().map(String::from).collect() })
    }

    /// The generation name of one node.
    pub fn gen_for_node(&self, node: usize) -> &str {
        &self.pattern[node % self.pattern.len()]
    }

    /// Whether every node is the same generation.
    pub fn is_uniform(&self) -> bool {
        self.pattern.windows(2).all(|w| w[0] == w[1])
    }

    /// The distinct generation names this mix uses, in first-appearance
    /// order.
    pub fn generations(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for g in &self.pattern {
            if !out.iter().any(|o| o == g) {
                out.push(g);
            }
        }
        out
    }

    /// Checks the pattern is non-empty and every generation name resolves.
    pub fn validate(&self) -> Result<(), ClusterError> {
        if self.pattern.is_empty() {
            return Err(ClusterError::InvalidSpec {
                reason: format!("machine mix {:?} has an empty pattern", self.name),
            });
        }
        for g in &self.pattern {
            if MachineParams::by_gen_name(g).is_none() {
                return Err(ClusterError::InvalidSpec {
                    reason: format!(
                        "machine mix {:?} names unknown generation {g:?}; valid generations \
                         are: {}",
                        self.name,
                        MACHINE_GEN_NAMES.join(", ")
                    ),
                });
            }
        }
        Ok(())
    }

    /// Summed idle power of an `nodes`-node cluster under this mix (W).
    pub fn idle_floor_w(&self, nodes: usize) -> f64 {
        (0..nodes)
            .map(|n| {
                MachineParams::by_gen_name(self.gen_for_node(n))
                    .expect("validated mix")
                    .power
                    .system_idle_w
            })
            .sum()
    }
}

/// Resolves a built-in machine mix by name (see [`MACHINE_MIX_NAMES`]) —
/// free-function spelling of [`MachineMix::by_name`] for symmetry with the
/// other sweep-axis registries.
pub fn mix_by_name(name: &str) -> Option<MachineMix> {
    MachineMix::by_name(name)
}

/// A power budget for a (possibly heterogeneous) cluster, expressed as the
/// mix's idle floor plus `fraction` of its summed dynamic range — the
/// heterogeneous generalisation of
/// [`budget_from_fraction`](crate::cluster::budget_from_fraction). The
/// per-node ceiling `max_node_w` is shared (the rack's power feed does not
/// care about silicon generations); each node's dynamic range is the
/// ceiling minus *its own* idle floor.
pub fn budget_for_mix(nodes: usize, mix: &MachineMix, max_node_w: f64, fraction: f64) -> f64 {
    (0..nodes)
        .map(|n| {
            let idle = MachineParams::by_gen_name(mix.gen_for_node(n))
                .expect("validated mix")
                .power
                .system_idle_w;
            idle + fraction * (max_node_w - idle)
        })
        .sum()
}

/// One generation of a fleet: the machine model plus the trained workload
/// model priced on it.
#[derive(Debug, Clone)]
pub struct FleetGen {
    /// Generation name (see [`xeon_sim::MACHINE_GEN_NAMES`]).
    pub name: String,
    /// The machine of every node of this generation.
    pub machine: Machine,
    /// That machine's idle floor (W), cached off the params.
    pub idle_w: f64,
    /// The workload model trained and priced on this machine, with its
    /// phase ids offset into the generation's own namespace.
    pub model: WorkloadModel,
}

/// The scheduler's knowledge about every machine generation in play: one
/// [`WorkloadModel`] per generation, generation 0 always the paper's
/// reference `qx6600`.
#[derive(Debug, Clone)]
pub struct FleetModel {
    gens: Vec<FleetGen>,
}

impl FleetModel {
    /// Builds one model per generation needed by `mixes` (plus the
    /// reference `qx6600`, always generation 0). Generations are ordered by
    /// the [`xeon_sim::MACHINE_GEN_NAMES`] registry, so the same mixes give
    /// the same fleet — and byte-identical results — no matter which
    /// process builds it (the distributed workers rebuild fleets from mix
    /// names on the wire).
    pub fn build(
        config: &ActorConfig,
        ids: &[BenchmarkId],
        mixes: &[MachineMix],
    ) -> Result<Self, ClusterError> {
        for mix in mixes {
            mix.validate()?;
        }
        let needed: Vec<&str> = MACHINE_GEN_NAMES
            .iter()
            .copied()
            .filter(|g| *g == "qx6600" || mixes.iter().any(|m| m.pattern.iter().any(|p| p == g)))
            .collect();
        let mut gens = Vec::with_capacity(needed.len());
        for (idx, name) in needed.iter().enumerate() {
            let machine = Machine::by_gen_name(name).expect("names come from the registry");
            let model = WorkloadModel::build(&machine, config, ids)?
                .with_phase_id_base(idx as u32 * GEN_PHASE_ID_STRIDE);
            gens.push(FleetGen {
                name: (*name).to_string(),
                idle_w: machine.params().power.system_idle_w,
                machine,
                model,
            });
        }
        Ok(Self { gens })
    }

    /// Wraps one already-built model as a single-generation fleet under the
    /// reference name `qx6600` — the compatibility path for homogeneous
    /// callers that built their [`WorkloadModel`] directly on the paper's
    /// machine.
    pub fn single(model: WorkloadModel) -> Self {
        let machine = Machine::xeon_qx6600();
        Self {
            gens: vec![FleetGen {
                name: "qx6600".into(),
                idle_w: machine.params().power.system_idle_w,
                machine,
                model,
            }],
        }
    }

    /// The generations, reference first.
    pub fn gens(&self) -> &[FleetGen] {
        &self.gens
    }

    /// One generation by index (panics out of range — indices come from
    /// [`Self::gen_index`]).
    pub fn gen(&self, idx: usize) -> &FleetGen {
        &self.gens[idx]
    }

    /// The reference generation's model (the paper's `qx6600`): what
    /// workload generation and homogeneous callers price against.
    pub fn reference(&self) -> &WorkloadModel {
        &self.gens[0].model
    }

    /// Index of a generation by name, failing loudly when the fleet was not
    /// built with it — the guard that turns a mix/fleet mismatch (the old
    /// silent hardcoded-Xeon assumption) into a typed error.
    pub fn gen_index(&self, name: &str) -> Result<usize, ClusterError> {
        self.gens.iter().position(|g| g.name == name).ok_or_else(|| ClusterError::InvalidSpec {
            reason: format!(
                "machine generation {name:?} is not part of this fleet (built with: {}); build \
                 the fleet with every mix the spec uses",
                self.gens.iter().map(|g| g.name.as_str()).collect::<Vec<_>>().join(", ")
            ),
        })
    }

    /// Per-node generation indices for `nodes` nodes under `mix`, failing
    /// loudly when the mix references a generation the fleet lacks.
    pub fn node_gens(&self, mix: &MachineMix, nodes: usize) -> Result<Vec<u16>, ClusterError> {
        mix.validate()?;
        let by_pattern: Vec<u16> = mix
            .pattern
            .iter()
            .map(|g| self.gen_index(g).map(|i| i as u16))
            .collect::<Result<_, _>>()?;
        Ok((0..nodes).map(|n| by_pattern[n % by_pattern.len()]).collect())
    }

    /// One controller table over *every* generation's decisions — sound
    /// because each generation's phase ids live in their own namespace.
    pub fn decision_table(&self) -> DecisionTableController {
        DecisionTableController::new(self.gens.iter().flat_map(|g| g.model.decision_entries()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_resolve_validate_and_cycle() {
        for name in MACHINE_MIX_NAMES {
            let mix = mix_by_name(name).unwrap_or_else(|| panic!("{name} should resolve"));
            assert_eq!(mix.name, name);
            assert!(mix.validate().is_ok());
            assert!(mix.idle_floor_w(8) > 0.0);
        }
        assert!(mix_by_name("beowulf").is_none());
        let mixed = mix_by_name("mixed").unwrap();
        assert!(!mixed.is_uniform());
        assert_eq!(mixed.gen_for_node(0), "qx6600");
        assert_eq!(mixed.gen_for_node(1), "e5450");
        assert_eq!(mixed.gen_for_node(2), "qx6600");
        assert_eq!(mixed.gen_for_node(3), "x5355");
        assert_eq!(mixed.gen_for_node(4), "qx6600");
        assert_eq!(mixed.generations(), vec!["qx6600", "e5450", "x5355"]);
        // Half the mixed fleet stays on the reference generation: gangs
        // never span generations, so an 8-node mixed cluster must keep a
        // pool wide enough for the workload's 4-node gangs.
        let reference = (0..8).filter(|&n| mixed.gen_for_node(n) == "qx6600").count();
        assert_eq!(reference, 4);
        assert!(mix_by_name("uniform").unwrap().is_uniform());
        assert!(mix_by_name("modern").unwrap().is_uniform());

        let bad = MachineMix { name: "bad".into(), pattern: vec!["486dx".into()] };
        let err = bad.validate().unwrap_err();
        assert!(err.to_string().contains("qx6600"), "error lists valid generations: {err}");
        assert!(MachineMix { name: "empty".into(), pattern: vec![] }.validate().is_err());
    }

    #[test]
    fn heterogeneous_budgets_price_each_node_s_own_floor() {
        let uniform = mix_by_name("uniform").unwrap();
        let legacy = mix_by_name("legacy").unwrap();
        let qx = MachineParams::xeon_qx6600().power.system_idle_w;
        let x5 = MachineParams::xeon_x5355().power.system_idle_w;
        assert!((uniform.idle_floor_w(4) - 4.0 * qx).abs() < 1e-9);
        assert!((legacy.idle_floor_w(4) - 2.0 * (qx + x5)).abs() < 1e-9);
        // At fraction 0 the budget is exactly the idle floor; at fraction 1
        // every node may reach the shared ceiling.
        let f0 = budget_for_mix(4, &legacy, 160.0, 0.0);
        assert!((f0 - legacy.idle_floor_w(4)).abs() < 1e-9);
        let f1 = budget_for_mix(4, &legacy, 160.0, 1.0);
        assert!((f1 - 4.0 * 160.0).abs() < 1e-9);
        // The hot legacy mix has a higher floor and a smaller dynamic range.
        assert!(legacy.idle_floor_w(4) > uniform.idle_floor_w(4));
        assert!(f1 - f0 < budget_for_mix(4, &uniform, 160.0, 1.0) - uniform.idle_floor_w(4) + 1e-9);
    }
}
