//! Scheduling policies.
//!
//! A [`SchedulerPolicy`] decides, at each scheduling point, which queued jobs
//! start on which idle nodes and under which per-phase execution plan; the
//! cluster enforces the power cap regardless, so a policy bug cannot breach
//! the budget (it shows up as a recorded violation instead). New policies are
//! one file-local struct implementing the trait:
//!
//! * [`FcfsPolicy`] — strict first-come-first-served at maximal concurrency;
//!   the head job blocks the queue until enough nodes *and* power are free.
//! * [`BackfillPolicy`] — EASY backfill: a reservation is computed for the
//!   blocked head job, and later jobs may jump ahead only if they finish
//!   before that reservation (they cannot delay the head).
//! * [`PowerAwarePolicy`] — controller-driven: generic over any
//!   [`PowerPerfController`]; per job phase it observes the phase's sampling
//!   window and asks the controller for the best configuration under the
//!   per-node share of the remaining power headroom. With the default
//!   [`DecisionTableController`] (the model's ANN decisions) this is ACTOR's
//!   prediction path; an oracle or static controller drops in unchanged.
//!
//! Jobs are gang-scheduled: a k-node job needs k idle nodes at once, draws
//! k × its per-node plan peak, and every node runs the same plan.

use actor_core::control_plane::ControlPlane;
use actor_core::controller::{DecisionTableController, DvfsSpace, PowerPerfController};
use phase_rt::MachineShape;
use xeon_sim::Configuration;

use crate::coordinator::CoordinatedPowerPolicy;
use crate::error::SchedError;
use crate::fleet::FleetModel;
use crate::job::Job;
use crate::profile::{ExecutionPlan, WorkloadModel};

/// A running job as policies see it (for reservations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningSummary {
    /// When the job completes (s).
    pub finish_s: f64,
    /// How many nodes it releases.
    pub nodes: usize,
    /// Per-node peak draw it releases (W).
    pub node_peak_w: f64,
}

/// Everything a policy may look at when scheduling.
#[derive(Debug)]
pub struct SchedContext<'a> {
    /// Current simulation time (s).
    pub now: f64,
    /// Pending jobs, already sorted by (priority desc, arrival, id).
    pub queue: &'a [Job],
    /// Ids of idle nodes, ascending.
    pub idle_nodes: &'a [usize],
    /// The workload model (costs + predictions).
    pub model: &'a WorkloadModel,
    /// Cluster power budget (W).
    pub budget_w: f64,
    /// Current cluster draw (W): running peaks + idle floors.
    pub draw_w: f64,
    /// Instantaneous draw per node (W), indexed by node id — what a
    /// cluster-level coordinator observes before redistributing the budget.
    /// Sums to `draw_w`; may be empty in hand-built test contexts, in which
    /// case `draw_w` is authoritative.
    pub node_draw_w: &'a [f64],
    /// Idle power of one node (W) — what an idle node already contributes to
    /// `draw_w`. On a heterogeneous fleet this is the *reference*
    /// generation's floor, used only for pooled approximations
    /// (reservations); exact per-node floors come from [`Self::gen_idle_w`].
    pub node_idle_w: f64,
    /// Currently running jobs, ascending by finish time.
    pub running: &'a [RunningSummary],
    /// The fleet, when the cluster may be heterogeneous. `None` means
    /// single-generation: `model` describes every node.
    pub fleet: Option<&'a FleetModel>,
    /// Machine-generation index of each node (into the fleet's generations),
    /// indexed by node id. Empty means every node is `model`'s machine.
    pub node_gen: &'a [u16],
}

impl<'a> SchedContext<'a> {
    /// Power headroom available for *additional* draw (W).
    pub fn headroom_w(&self) -> f64 {
        self.budget_w - self.draw_w
    }

    /// The per-node power cap a k-node plan must satisfy: each occupied node
    /// stops drawing its idle floor, so k idle floors come back into the
    /// headroom.
    pub fn node_power_cap_w(&self, k: usize) -> f64 {
        self.headroom_w() / k as f64 + self.node_idle_w
    }

    /// Machine-generation index of one node (0 when no fleet is attached).
    pub fn gen_of(&self, node: usize) -> usize {
        self.node_gen.get(node).map_or(0, |g| *g as usize)
    }

    /// Number of machine generations in play.
    pub fn gen_count(&self) -> usize {
        self.fleet.map_or(1, |f| f.gens().len())
    }

    /// The workload model of one generation — [`Self::model`] when no fleet
    /// is attached.
    pub fn gen_model(&self, gen: usize) -> &'a WorkloadModel {
        match self.fleet {
            Some(f) => &f.gen(gen).model,
            None => self.model,
        }
    }

    /// The idle floor of one generation's nodes (W).
    pub fn gen_idle_w(&self, gen: usize) -> f64 {
        match self.fleet {
            Some(f) => f.gen(gen).idle_w,
            None => self.node_idle_w,
        }
    }

    /// Whether the nodes span more than one machine generation. Policies use
    /// this to keep the homogeneous fast path allocation- and
    /// byte-identical to the pre-fleet behaviour.
    pub fn is_heterogeneous(&self) -> bool {
        self.node_gen.windows(2).any(|w| w[0] != w[1])
    }

    /// The generation shared by every node on a homogeneous cluster (0 when
    /// no per-node generations are attached).
    pub fn common_gen(&self) -> usize {
        debug_assert!(!self.is_heterogeneous());
        self.node_gen.first().map_or(0, |g| *g as usize)
    }
}

/// One scheduling action: start `queue[queue_idx]` on `nodes` under `plan`
/// (one instance of the plan per node).
#[derive(Debug, Clone)]
pub struct Assignment {
    /// Index into `SchedContext::queue`.
    pub queue_idx: usize,
    /// Nodes to run on (the job's full gang).
    pub nodes: Vec<usize>,
    /// The costed per-node plan.
    pub plan: ExecutionPlan,
}

/// A cluster scheduling policy.
pub trait SchedulerPolicy {
    /// Short identifier used in reports.
    fn name(&self) -> &'static str;

    /// Chooses assignments for the current state. Called whenever an arrival
    /// or completion changes the state; must be deterministic.
    fn assign(&mut self, ctx: &SchedContext<'_>) -> Vec<Assignment>;

    /// Attaches a telemetry sink. Policies that drive a
    /// [`actor_core::ControlPlane`] install it there so their per-phase
    /// planning decisions are traced; the default is a no-op (queue-order
    /// policies make no controller decisions). Only called when the cluster
    /// itself has a sink attached — telemetry-off runs never reach this.
    fn set_telemetry(&mut self, sink: actor_core::telemetry::SharedSink) {
        let _ = sink;
    }
}

/// Every name [`policy_by_name`] accepts.
pub const POLICY_NAMES: [&str; 5] =
    ["fcfs", "backfill", "power-aware", "power-aware-dvfs", "power-aware-coordinated"];

/// Builds the policy named `name` (see [`POLICY_NAMES`]). The workload model
/// supplies the decision table behind the power-aware policy's default
/// controller. Unknown names report the valid ones:
///
/// ```
/// # use cluster_sched::policy_by_name;
/// # use cluster_sched::WorkloadModel;
/// # use actor_core::ActorConfig;
/// # use npb_workloads::BenchmarkId;
/// # use xeon_sim::Machine;
/// # let machine = Machine::xeon_qx6600();
/// # let config = ActorConfig { corpus_replicas: 2, ..ActorConfig::fast() };
/// # let ids = [BenchmarkId::Cg, BenchmarkId::Is, BenchmarkId::Mg, BenchmarkId::Bt];
/// # let model = WorkloadModel::build(&machine, &config, &ids).unwrap();
/// let err = policy_by_name("lottery", &model).err().expect("unknown policy");
/// assert!(err.to_string().contains("fcfs, backfill, power-aware"));
/// ```
pub fn policy_by_name(
    name: &str,
    model: &WorkloadModel,
) -> Result<Box<dyn SchedulerPolicy>, SchedError> {
    match name {
        "fcfs" => Ok(Box::new(FcfsPolicy)),
        "backfill" => Ok(Box::new(BackfillPolicy)),
        "power-aware" => Ok(Box::new(PowerAwarePolicy::from_model(model))),
        "power-aware-dvfs" => Ok(Box::new(PowerAwarePolicy::from_model(model).with_dvfs())),
        "power-aware-coordinated" => Ok(Box::new(CoordinatedPowerPolicy::from_model(model))),
        _ => Err(SchedError::UnknownPolicy { requested: name.to_string() }),
    }
}

/// [`policy_by_name`] over a heterogeneous fleet: the controller behind the
/// power-aware policies is the *union* decision table across every
/// generation's model (sound because each generation's phase ids live in
/// their own namespace — see [`crate::fleet::GEN_PHASE_ID_STRIDE`]). On a
/// single-generation fleet this is exactly [`policy_by_name`].
pub fn policy_by_name_fleet(
    name: &str,
    fleet: &FleetModel,
) -> Result<Box<dyn SchedulerPolicy>, SchedError> {
    match name {
        "fcfs" => Ok(Box::new(FcfsPolicy)),
        "backfill" => Ok(Box::new(BackfillPolicy)),
        "power-aware" => Ok(Box::new(PowerAwarePolicy::new(fleet.decision_table()))),
        "power-aware-dvfs" => {
            Ok(Box::new(PowerAwarePolicy::new(fleet.decision_table()).with_dvfs()))
        }
        "power-aware-coordinated" => {
            Ok(Box::new(CoordinatedPowerPolicy::new(fleet.decision_table())))
        }
        _ => Err(SchedError::UnknownPolicy { requested: name.to_string() }),
    }
}

/// Greedy in-order assignment helper shared by FCFS and power-aware: walks
/// the queue, planning each job via `plan_job(job, node_cap, gen)`; stops at
/// the first job that cannot start (strict queue discipline).
///
/// On a homogeneous cluster this is the original single-model walk. On a
/// heterogeneous fleet gangs stay within one generation (an SPMD gang runs
/// one plan, priced for one machine), and each job is placed on the
/// generation with enough free nodes whose plan finishes soonest.
fn assign_in_order(
    ctx: &SchedContext<'_>,
    mut plan_job: impl FnMut(&Job, f64, usize) -> Option<ExecutionPlan>,
) -> Vec<Assignment> {
    let mut out = Vec::new();
    let mut headroom = ctx.headroom_w();
    if !ctx.is_heterogeneous() {
        let gen = ctx.common_gen();
        let mut free: Vec<usize> = ctx.idle_nodes.to_vec();
        for (queue_idx, job) in ctx.queue.iter().enumerate() {
            let k = job.nodes;
            if free.len() < k {
                break;
            }
            let node_cap = headroom / k as f64 + ctx.node_idle_w;
            let Some(plan) = plan_job(job, node_cap, gen) else { break };
            if (plan.peak_power_w - ctx.node_idle_w) * k as f64 > headroom + 1e-9 {
                break;
            }
            headroom -= (plan.peak_power_w - ctx.node_idle_w) * k as f64;
            let nodes: Vec<usize> = free.drain(..k).collect();
            out.push(Assignment { queue_idx, nodes, plan });
        }
        return out;
    }
    let mut free_by_gen: Vec<Vec<usize>> = vec![Vec::new(); ctx.gen_count()];
    for &n in ctx.idle_nodes {
        free_by_gen[ctx.gen_of(n)].push(n);
    }
    for (queue_idx, job) in ctx.queue.iter().enumerate() {
        let k = job.nodes;
        let mut best: Option<(usize, ExecutionPlan)> = None;
        for (gen, free) in free_by_gen.iter().enumerate() {
            if free.len() < k {
                continue;
            }
            let idle_w = ctx.gen_idle_w(gen);
            let node_cap = headroom / k as f64 + idle_w;
            let Some(plan) = plan_job(job, node_cap, gen) else { continue };
            if (plan.peak_power_w - idle_w) * k as f64 > headroom + 1e-9 {
                continue;
            }
            // Fastest wins; ties go to the lower generation index, so the
            // choice is deterministic.
            if best.as_ref().is_none_or(|(_, b)| plan.exec_time_s < b.exec_time_s) {
                best = Some((gen, plan));
            }
        }
        let Some((gen, plan)) = best else { break };
        headroom -= (plan.peak_power_w - ctx.gen_idle_w(gen)) * k as f64;
        let nodes: Vec<usize> = free_by_gen[gen].drain(..k).collect();
        out.push(Assignment { queue_idx, nodes, plan });
    }
    out
}

/// Strict FCFS at maximal concurrency.
#[derive(Debug, Default)]
pub struct FcfsPolicy;

impl SchedulerPolicy for FcfsPolicy {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn assign(&mut self, ctx: &SchedContext<'_>) -> Vec<Assignment> {
        assign_in_order(ctx, |job, node_cap, gen| {
            let plan = ctx.gen_model(gen).plan_fixed(job, Configuration::Four);
            (plan.peak_power_w <= node_cap).then_some(plan)
        })
    }
}

/// EASY backfill at maximal concurrency.
#[derive(Debug, Default)]
pub struct BackfillPolicy;

impl BackfillPolicy {
    /// Earliest time the head job (k nodes, per-node peak `node_peak_w`)
    /// could start, given current free resources and the known completion
    /// times of both already-running jobs and jobs started earlier in this
    /// same scheduling pass (`started`) — without the latter, the
    /// reservation overshoots and backfilled jobs could delay the head.
    fn reservation_time(
        ctx: &SchedContext<'_>,
        started: &[RunningSummary],
        free_nodes: usize,
        headroom_w: f64,
        k: usize,
        node_peak_w: f64,
    ) -> f64 {
        let mut nodes = free_nodes;
        let mut headroom = headroom_w;
        let need_w = |nodes_needed: usize| (node_peak_w - ctx.node_idle_w) * nodes_needed as f64;
        if nodes >= k && need_w(k) <= headroom + 1e-9 {
            return ctx.now;
        }
        let mut completions: Vec<&RunningSummary> = ctx.running.iter().chain(started).collect();
        completions.sort_by(|a, b| a.finish_s.total_cmp(&b.finish_s));
        for run in completions {
            nodes += run.nodes;
            headroom += (run.node_peak_w - ctx.node_idle_w) * run.nodes as f64;
            if nodes >= k && need_w(k) <= headroom + 1e-9 {
                return run.finish_s;
            }
        }
        f64::INFINITY
    }
}

impl BackfillPolicy {
    /// The original single-model pass: one free list, one planning model.
    fn assign_uniform(ctx: &SchedContext<'_>) -> Vec<Assignment> {
        let model = ctx.gen_model(ctx.common_gen());
        let mut out = Vec::new();
        let mut free: Vec<usize> = ctx.idle_nodes.to_vec();
        let mut headroom = ctx.headroom_w();
        // Jobs started in this pass, visible to the reservation computation.
        let mut started: Vec<RunningSummary> = Vec::new();
        // (start time, nodes, per-node watts) reserved for the blocked head.
        let mut reservation: Option<(f64, usize, f64)> = None;
        for (queue_idx, job) in ctx.queue.iter().enumerate() {
            let k = job.nodes;
            let plan = model.plan_fixed(job, Configuration::Four);
            let extra_w = (plan.peak_power_w - ctx.node_idle_w) * k as f64;
            let fits_now = free.len() >= k && extra_w <= headroom + 1e-9;
            match reservation {
                None => {
                    if fits_now {
                        headroom -= extra_w;
                        started.push(RunningSummary {
                            finish_s: ctx.now + plan.exec_time_s,
                            nodes: k,
                            node_peak_w: plan.peak_power_w,
                        });
                        let nodes: Vec<usize> = free.drain(..k).collect();
                        out.push(Assignment { queue_idx, nodes, plan });
                    } else {
                        // Head blocks: reserve its start, then try backfill.
                        let t = Self::reservation_time(
                            ctx,
                            &started,
                            free.len(),
                            headroom,
                            k,
                            plan.peak_power_w,
                        );
                        reservation = Some((t, k, plan.peak_power_w));
                    }
                }
                Some((reserved_start, _, _)) => {
                    if !fits_now {
                        continue;
                    }
                    // EASY condition: the backfilled job releases its nodes
                    // and power before the head's reservation, so it cannot
                    // delay the head.
                    if ctx.now + plan.exec_time_s <= reserved_start + 1e-9 {
                        headroom -= extra_w;
                        let nodes: Vec<usize> = free.drain(..k).collect();
                        out.push(Assignment { queue_idx, nodes, plan });
                    }
                }
            }
            if free.is_empty() {
                break;
            }
        }
        out
    }

    /// Heterogeneous pass: same-generation gangs placed on the fastest
    /// generation with room. The head's reservation is approximated on the
    /// pooled node count with the reference generation's plan peak — exact
    /// per-generation reservations would need per-generation release
    /// tracking for a corner the EASY condition already keeps conservative.
    fn assign_hetero(ctx: &SchedContext<'_>) -> Vec<Assignment> {
        let mut out = Vec::new();
        let mut free_by_gen: Vec<Vec<usize>> = vec![Vec::new(); ctx.gen_count()];
        for &n in ctx.idle_nodes {
            free_by_gen[ctx.gen_of(n)].push(n);
        }
        let mut total_free = ctx.idle_nodes.len();
        let mut headroom = ctx.headroom_w();
        let mut started: Vec<RunningSummary> = Vec::new();
        let mut reservation: Option<f64> = None;
        for (queue_idx, job) in ctx.queue.iter().enumerate() {
            let k = job.nodes;
            let mut best: Option<(usize, ExecutionPlan)> = None;
            for (gen, free) in free_by_gen.iter().enumerate() {
                if free.len() < k {
                    continue;
                }
                let plan = ctx.gen_model(gen).plan_fixed(job, Configuration::Four);
                if (plan.peak_power_w - ctx.gen_idle_w(gen)) * k as f64 > headroom + 1e-9 {
                    continue;
                }
                if best.as_ref().is_none_or(|(_, b)| plan.exec_time_s < b.exec_time_s) {
                    best = Some((gen, plan));
                }
            }
            let fits = best.is_some();
            let backfill_ok = match (reservation, &best) {
                (None, _) => true,
                (Some(t), Some((_, plan))) => ctx.now + plan.exec_time_s <= t + 1e-9,
                (Some(_), None) => false,
            };
            if fits && backfill_ok {
                let (gen, plan) = best.expect("fits");
                headroom -= (plan.peak_power_w - ctx.gen_idle_w(gen)) * k as f64;
                started.push(RunningSummary {
                    finish_s: ctx.now + plan.exec_time_s,
                    nodes: k,
                    node_peak_w: plan.peak_power_w,
                });
                total_free -= k;
                let nodes: Vec<usize> = free_by_gen[gen].drain(..k).collect();
                out.push(Assignment { queue_idx, nodes, plan });
            } else if reservation.is_none() {
                let ref_plan = ctx.gen_model(0).plan_fixed(job, Configuration::Four);
                reservation = Some(Self::reservation_time(
                    ctx,
                    &started,
                    total_free,
                    headroom,
                    k,
                    ref_plan.peak_power_w,
                ));
            }
            if total_free == 0 {
                break;
            }
        }
        out
    }
}

impl SchedulerPolicy for BackfillPolicy {
    fn name(&self) -> &'static str {
        "backfill"
    }

    fn assign(&mut self, ctx: &SchedContext<'_>) -> Vec<Assignment> {
        if ctx.is_heterogeneous() {
            Self::assign_hetero(ctx)
        } else {
            Self::assign_uniform(ctx)
        }
    }
}

/// Plans one job through a [`ControlPlane`]: per phase, observe the
/// sampling window once, ask the wrapped controller for its joint
/// (configuration, frequency) decision under `node_cap`, and cost the
/// resulting plan. Shared by [`PowerAwarePolicy`] (per-job equal headroom
/// shares) and the coordinator (jointly redistributed caps).
///
/// A contract violation panics: the conformance harness rejects such
/// controllers up front, and a defective decision must fail loudly rather
/// than let the job starve behind what would be misreported as a
/// power-budget problem
/// ([`actor_core::controller::validate_decision`] — applied inside the
/// plane — is the contract's one definition).
pub(crate) fn plan_via_plane<C: PowerPerfController>(
    plane: &mut ControlPlane<C>,
    model: &WorkloadModel,
    job: &Job,
    node_cap: f64,
    dvfs: bool,
) -> ExecutionPlan {
    let choices = decide_choices_via_plane(plane, model, job.benchmark, node_cap, dvfs);
    let mut iter = choices.into_iter();
    model.plan_with_joint(job, |_| iter.next().expect("one choice per phase"))
}

/// The decide half of [`plan_via_plane`]: the controller's validated
/// per-phase (configuration, frequency) choices for one benchmark under
/// `node_cap`, without job-specific costing. For a conformant controller
/// (decide is a pure function of construction state + observations — the
/// conformance contract — and each phase's sampling window is observed
/// exactly once, here) the result depends only on `(benchmark, node_cap)`,
/// which is what lets the coordinator cache it across scheduling events.
pub(crate) fn decide_choices_via_plane<C: PowerPerfController>(
    plane: &mut ControlPlane<C>,
    model: &WorkloadModel,
    benchmark: npb_workloads::BenchmarkId,
    node_cap: f64,
    dvfs: bool,
) -> Vec<(Configuration, phase_rt::FreqStep)> {
    let ladder = model.freq_ladder();
    let k = model.knowledge(benchmark);
    let mut choices = Vec::with_capacity(k.phases.len());
    for (idx, phase) in k.phases.iter().enumerate() {
        let pid = model.phase_id(benchmark, idx);
        plane.observe_once(pid, || phase.sample());
        // Both menus are borrowed from the model's per-phase caches — the
        // planning loop allocates nothing per decide beyond the returned
        // choices.
        let joint = if dvfs { phase.joint_candidates() } else { &[] };
        let pd = plane
            .decide(
                pid,
                phase.candidate_menu(),
                dvfs.then_some(DvfsSpace { ladder, joint }),
                Some(node_cap),
            )
            .unwrap_or_else(|v| panic!("{v} (planning {benchmark} phase {idx})"));
        choices.push((pd.config, pd.step));
    }
    choices
}

/// Controller-driven power-aware scheduling: per phase, whatever
/// configuration the wrapped [`PowerPerfController`] decides under the
/// per-node share of the current headroom. The observe → decide cycle is
/// the shared [`ControlPlane`] — the same plumbing that drives the Figure-8
/// harness and the live runtime — so the policy body is only the scheduling
/// mechanics.
///
/// With the default [`DecisionTableController`] built from the workload
/// model (the ANN ensembles' offline decisions) this reproduces ACTOR's
/// prediction path; swapping in an [`actor_core::OracleController`] or
/// [`actor_core::StaticController`] changes the decision-maker without
/// touching the scheduling mechanics — the plane feeds each phase's
/// sampling window to the controller exactly once (the model has one
/// sampling window per phase; replaying it at every scheduling event would
/// corrupt exploration-counting controllers), asks for a decision, and the
/// cluster's cap enforcement handles the rest.
#[derive(Debug)]
pub struct PowerAwarePolicy<C: PowerPerfController = DecisionTableController> {
    plane: ControlPlane<C>,
    /// Whether to offer the node machine's frequency ladder to the
    /// controller, widening decisions to the joint (threads × frequency)
    /// space: a job that would not fit its cap share at nominal frequency
    /// downclocks before it queues.
    dvfs: bool,
}

impl PowerAwarePolicy<DecisionTableController> {
    /// The standard ACTOR-driven policy: the model's ANN decisions.
    pub fn from_model(model: &WorkloadModel) -> Self {
        Self::new(model.decision_table())
    }

    /// The standard policy over a heterogeneous fleet: the union decision
    /// table across every generation's model.
    pub fn from_fleet(fleet: &FleetModel) -> Self {
        Self::new(fleet.decision_table())
    }
}

impl<C: PowerPerfController> PowerAwarePolicy<C> {
    /// Wraps an arbitrary controller (DCT-only: nominal frequency).
    pub fn new(controller: C) -> Self {
        Self { plane: ControlPlane::new(controller, MachineShape::quad_core()), dvfs: false }
    }

    /// Enables joint DVFS+DCT control: the controller is offered the node
    /// ladder and may downclock phases instead of queueing the job.
    pub fn with_dvfs(mut self) -> Self {
        self.dvfs = true;
        self
    }

    /// The wrapped controller.
    pub fn controller(&self) -> &C {
        self.plane.controller()
    }
}

impl<C: PowerPerfController> SchedulerPolicy for PowerAwarePolicy<C> {
    fn name(&self) -> &'static str {
        if self.dvfs {
            "power-aware-dvfs"
        } else {
            "power-aware"
        }
    }

    fn assign(&mut self, ctx: &SchedContext<'_>) -> Vec<Assignment> {
        // Ask the controller for the best configuration per phase under the
        // per-node share of the current headroom. A plan whose peak exceeds
        // the headroom makes the job wait (strict order, like FCFS) via the
        // budget check in `assign_in_order`.
        let plane = &mut self.plane;
        let dvfs = self.dvfs;
        assign_in_order(ctx, |job, node_cap, gen| {
            Some(plan_via_plane(plane, ctx.gen_model(gen), job, node_cap, dvfs))
        })
    }

    fn set_telemetry(&mut self, sink: actor_core::telemetry::SharedSink) {
        self.plane.set_telemetry(Some(sink));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actor_core::ActorConfig;
    use npb_workloads::BenchmarkId;
    use xeon_sim::Machine;

    const IDLE_W: f64 = 104.0;

    fn model() -> WorkloadModel {
        let machine = Machine::xeon_qx6600();
        let config = ActorConfig { corpus_replicas: 2, ..ActorConfig::fast() };
        WorkloadModel::build(
            &machine,
            &config,
            &[BenchmarkId::Cg, BenchmarkId::Is, BenchmarkId::Mg, BenchmarkId::Bt],
        )
        .unwrap()
    }

    fn job(id: usize, benchmark: BenchmarkId, nodes: usize) -> Job {
        Job {
            id,
            benchmark,
            arrival_s: id as f64,
            nodes,
            priority: 0,
            deadline_s: None,
            duration_scale: 1.0,
        }
    }

    fn ctx<'a>(
        model: &'a WorkloadModel,
        queue: &'a [Job],
        idle_nodes: &'a [usize],
        budget_w: f64,
        draw_w: f64,
        running: &'a [RunningSummary],
    ) -> SchedContext<'a> {
        SchedContext {
            now: 0.0,
            queue,
            idle_nodes,
            model,
            budget_w,
            draw_w,
            node_idle_w: IDLE_W,
            node_draw_w: &[],
            running,
            fleet: None,
            node_gen: &[],
        }
    }

    #[test]
    fn fcfs_respects_queue_order_nodes_and_power() {
        let model = model();
        let queue = vec![job(0, BenchmarkId::Cg, 1), job(1, BenchmarkId::Is, 1)];
        let idle = [0usize, 1];

        // Ample budget: both start, in order.
        let mut fcfs = FcfsPolicy;
        let a = fcfs.assign(&ctx(&model, &queue, &idle, 2000.0, 2.0 * IDLE_W, &[]));
        assert_eq!(a.len(), 2);
        assert_eq!((a[0].queue_idx, a[0].nodes.as_slice()), (0, &[0usize][..]));
        assert_eq!((a[1].queue_idx, a[1].nodes.as_slice()), (1, &[1usize][..]));
        for x in &a {
            assert!(x.plan.decisions.iter().all(|(_, c)| *c == Configuration::Four));
        }

        // Budget fits only one four-core job: the head starts, the second
        // waits even though nodes are free.
        let one_job_w = model.plan_fixed(&queue[0], Configuration::Four).peak_power_w;
        let budget = 2.0 * IDLE_W + (one_job_w - IDLE_W) + 1.0;
        let a = fcfs.assign(&ctx(&model, &queue, &idle, budget, 2.0 * IDLE_W, &[]));
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].queue_idx, 0);

        // A 4-node head with only 2 idle nodes blocks the whole queue.
        let queue = vec![job(0, BenchmarkId::Cg, 4), job(1, BenchmarkId::Is, 1)];
        let a = fcfs.assign(&ctx(&model, &queue, &idle, 4000.0, 2.0 * IDLE_W, &[]));
        assert!(a.is_empty(), "strict FCFS: nobody jumps a node-blocked head");
    }

    #[test]
    fn backfill_lets_short_jobs_jump_a_node_blocked_head() {
        let model = model();
        // Head wants 4 nodes but only 2 are idle; a short 1-node job waits
        // behind it. A running 2-node job finishes at t = 50.
        let mut head = job(0, BenchmarkId::Cg, 4);
        head.duration_scale = 3.0;
        let short = job(1, BenchmarkId::Is, 1);
        let short_time = model.plan_fixed(&short, Configuration::Four).exec_time_s;
        assert!(short_time < 50.0, "test premise: the short job fits the hole");
        let queue = vec![head, short];
        let idle = [2usize, 3];
        let running = [RunningSummary { finish_s: 50.0, nodes: 2, node_peak_w: 142.0 }];
        let draw = 2.0 * 142.0 + 2.0 * IDLE_W;

        let mut backfill = BackfillPolicy;
        let a = backfill.assign(&ctx(&model, &queue, &idle, 4000.0, draw, &running));
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].queue_idx, 1, "the short job backfills into the hole");
        assert_eq!(a[0].nodes.len(), 1);

        // FCFS on the same state starts nothing.
        let mut fcfs = FcfsPolicy;
        assert!(fcfs.assign(&ctx(&model, &queue, &idle, 4000.0, draw, &running)).is_empty());

        // A long job behind the head (finishing after t = 50) may not jump.
        let mut long_second = job(1, BenchmarkId::Cg, 1);
        long_second.duration_scale = 3.0;
        let queue = vec![job(0, BenchmarkId::Cg, 4), long_second];
        let a = backfill.assign(&ctx(&model, &queue, &idle, 4000.0, draw, &running));
        assert!(a.is_empty(), "backfilling must not delay the head's reservation");
    }

    #[test]
    fn backfill_reservation_sees_same_pass_assignments() {
        let model = model();
        // Empty cluster, one pass: A (1 node, short) starts immediately; the
        // head B (2 nodes) then blocks on nodes, and its true reservation is
        // A's finish. C (1 node, much longer than A) must NOT backfill — it
        // would hold B's second node long past the reservation.
        let a = job(0, BenchmarkId::Is, 1);
        let b = job(1, BenchmarkId::Cg, 2);
        let mut c = job(2, BenchmarkId::Cg, 1);
        c.duration_scale = 3.0;
        let a_time = model.plan_fixed(&a, Configuration::Four).exec_time_s;
        let c_time = model.plan_fixed(&c, Configuration::Four).exec_time_s;
        assert!(c_time > a_time, "test premise: C outlives A's completion");
        let queue = vec![a, b, c];
        let idle = [0usize, 1];

        let mut backfill = BackfillPolicy;
        let assignments = backfill.assign(&ctx(&model, &queue, &idle, 10_000.0, 2.0 * IDLE_W, &[]));
        let started: Vec<usize> = assignments.iter().map(|x| x.queue_idx).collect();
        assert_eq!(started, vec![0], "only A starts; C may not delay the head past A's finish");
    }

    #[test]
    fn power_aware_throttles_into_a_tight_budget() {
        let model = model();
        let queue = vec![job(0, BenchmarkId::Is, 1)];
        let idle = [0usize];
        let four_w = model.plan_fixed(&queue[0], Configuration::Four).peak_power_w;
        // Budget below the four-core peak but above single-core power.
        let budget = IDLE_W + (four_w - IDLE_W) * 0.5;

        let mut fcfs = FcfsPolicy;
        assert!(fcfs.assign(&ctx(&model, &queue, &idle, budget, IDLE_W, &[])).is_empty());

        let mut aware = PowerAwarePolicy::from_model(&model);
        let a = aware.assign(&ctx(&model, &queue, &idle, budget, IDLE_W, &[]));
        assert_eq!(a.len(), 1, "power-aware should throttle the job to fit");
        assert!(a[0].plan.peak_power_w <= budget - IDLE_W + IDLE_W + 1e-9);
        assert!(
            a[0].plan.decisions.iter().any(|(_, c)| *c != Configuration::Four),
            "fitting under the cap requires throttling at least one phase"
        );
    }

    #[test]
    fn power_aware_matches_unconstrained_actor_when_budget_is_ample() {
        let model = model();
        let queue = vec![job(0, BenchmarkId::Mg, 1)];
        let idle = [0usize];
        let mut aware = PowerAwarePolicy::from_model(&model);
        let a = aware.assign(&ctx(&model, &queue, &idle, 10_000.0, IDLE_W, &[]));
        assert_eq!(a.len(), 1);
        let expected: Vec<Configuration> =
            model.knowledge(BenchmarkId::Mg).phases.iter().map(|p| p.decision.chosen).collect();
        let got: Vec<Configuration> = a[0].plan.decisions.iter().map(|(_, c)| *c).collect();
        assert_eq!(got, expected, "with no pressure, the plan is ACTOR's own decision");
    }

    #[test]
    fn power_aware_dvfs_downclocks_instead_of_shedding_threads() {
        let model = model();
        let queue = vec![job(0, BenchmarkId::Is, 1)];
        let idle = [0usize];
        let four_w = model.plan_fixed(&queue[0], Configuration::Four).peak_power_w;
        // Budget below the four-core nominal peak but above single-core power.
        let budget = IDLE_W + (four_w - IDLE_W) * 0.5;

        let mut dct = PowerAwarePolicy::from_model(&model);
        let dct_plan = &dct.assign(&ctx(&model, &queue, &idle, budget, IDLE_W, &[]))[0].plan;
        assert!(dct_plan.freq_steps.is_empty(), "DCT-only plans carry no frequency axis");

        let mut joint = PowerAwarePolicy::from_model(&model).with_dvfs();
        assert_eq!(joint.name(), "power-aware-dvfs");
        let a = joint.assign(&ctx(&model, &queue, &idle, budget, IDLE_W, &[]));
        assert_eq!(a.len(), 1, "joint control must also fit the job under the cap");
        let plan = &a[0].plan;
        assert!(plan.peak_power_w <= budget - IDLE_W + IDLE_W + 1e-9);
        assert!(
            !plan.freq_steps.is_empty() && plan.freq_steps.iter().any(|&s| s > 0),
            "IS is memory-bound: the joint controller should downclock at least one phase \
             (steps: {:?})",
            plan.freq_steps
        );
        // Keeping more threads at a lower clock must not run slower than
        // shedding threads at nominal.
        assert!(
            plan.exec_time_s <= dct_plan.exec_time_s * 1.001,
            "joint plan ({:.2} s) should not lose time to the DCT-only plan ({:.2} s)",
            plan.exec_time_s,
            dct_plan.exec_time_s
        );
    }

    #[test]
    fn power_aware_dvfs_matches_dct_when_budget_is_ample() {
        let model = model();
        let queue = vec![job(0, BenchmarkId::Mg, 1)];
        let idle = [0usize];
        let mut joint = PowerAwarePolicy::from_model(&model).with_dvfs();
        let a = joint.assign(&ctx(&model, &queue, &idle, 10_000.0, IDLE_W, &[]));
        assert_eq!(a.len(), 1);
        let expected: Vec<Configuration> =
            model.knowledge(BenchmarkId::Mg).phases.iter().map(|p| p.decision.chosen).collect();
        let got: Vec<Configuration> = a[0].plan.decisions.iter().map(|(_, c)| *c).collect();
        assert_eq!(got, expected, "no pressure: the joint plan is ACTOR's own decision");
        assert!(
            a[0].plan.freq_steps.is_empty(),
            "no pressure: nominal frequency everywhere (steps: {:?})",
            a[0].plan.freq_steps
        );
    }

    #[test]
    fn policies_are_constructible_by_name() {
        let model = model();
        for name in POLICY_NAMES {
            assert_eq!(policy_by_name(name, &model).unwrap().name(), name);
        }
        let err = policy_by_name("lottery", &model).err().expect("unknown policy must fail");
        let msg = err.to_string();
        for name in POLICY_NAMES {
            assert!(msg.contains(name), "error message must list {name}: {msg}");
        }
    }

    #[test]
    fn power_aware_is_generic_over_controllers() {
        use actor_core::controller::StaticController;

        let model = model();
        let queue = vec![job(0, BenchmarkId::Is, 1)];
        let idle = [0usize];

        // A static four-core controller in the power-aware mechanics behaves
        // like FCFS: it never throttles, so a tight budget blocks the job...
        let four_w = model.plan_fixed(&queue[0], Configuration::Four).peak_power_w;
        let budget = IDLE_W + (four_w - IDLE_W) * 0.5;
        let mut static_policy = PowerAwarePolicy::new(StaticController::os_default());
        assert!(static_policy.assign(&ctx(&model, &queue, &idle, budget, IDLE_W, &[])).is_empty());

        // ...while the default ANN-table controller throttles the job in.
        let mut ann_policy = PowerAwarePolicy::from_model(&model);
        let a = ann_policy.assign(&ctx(&model, &queue, &idle, budget, IDLE_W, &[]));
        assert_eq!(a.len(), 1);

        // With ample budget the static controller schedules at full width.
        let a = static_policy.assign(&ctx(&model, &queue, &idle, 10_000.0, IDLE_W, &[]));
        assert_eq!(a.len(), 1);
        assert!(a[0].plan.decisions.iter().all(|(_, c)| *c == Configuration::Four));
    }
}
