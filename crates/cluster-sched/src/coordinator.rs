//! Coordinated multi-node capping: the cluster-level control plane.
//!
//! The independent power-aware policies split the headroom *statically*:
//! each job being planned gets an equal per-node share of whatever is left,
//! in queue order, and keeps it until completion. That split ignores what
//! the jobs actually are — a memory-bound job barely slows down at the
//! ladder bottom, while a compute-bound job pays full price for every watt
//! it is denied. [`CapCoordinator`] replaces the static split with a
//! redistribution decided at every discrete event:
//!
//! 1. **Observe** — the per-node draw ([`SchedContext::node_draw_w`]) fixes
//!    the headroom the cluster can still allocate.
//! 2. **Decide** — every startable job is first planned at its *cheapest*
//!    feasible operating point (deep DVFS + narrow concurrency, via the
//!    shared [`ControlPlane`] and the same DCT + ladder decisions the
//!    independent policies use); the remaining watts are then spent
//!    greedily on the upgrade with the best time-saved-per-watt ratio.
//!    Memory-bound jobs offer tiny ratios (downclocking costs them almost
//!    nothing), so their slack funds compute-bound jobs' boosts — the
//!    coordination the ROADMAP asked for.
//! 3. **Act** — the chosen per-job caps become costed [`ExecutionPlan`]s;
//!    the cluster's own cap enforcement still re-checks every assignment.
//!
//! The redistribution keeps the strict queue discipline of the independent
//! policies (a job never starts before an earlier job that could start),
//! and its output is validated before it is returned: caps that oversubscribe
//! the budget or undercut a node's idle floor surface as typed
//! [`SchedError`]s, never as release-path panics.

use actor_core::control_plane::ControlPlane;
use actor_core::controller::{DecisionTableController, PowerPerfController};
use actor_core::telemetry::{SharedSink, TraceEvent};
use phase_rt::MachineShape;

use crate::error::SchedError;
use crate::job::Job;
use std::collections::HashMap;

use npb_workloads::BenchmarkId;
use phase_rt::FreqStep;
use xeon_sim::Configuration;

use crate::policy::{decide_choices_via_plane, Assignment, SchedContext, SchedulerPolicy};
use crate::profile::{ExecutionPlan, WorkloadModel};

/// Slack tolerance for the coordinator's internal floating-point budget
/// arithmetic (same as `assign_in_order`'s headroom check; the cluster's
/// own cap enforcement and [`validate_caps`] use the looser
/// [`VALIDATE_EPS`]).
const EPS: f64 = 1e-9;

/// Tolerance of the post-hoc cap validation, matching the cluster event
/// loop's cap-enforcement slack in `cluster.rs`.
const VALIDATE_EPS: f64 = 1e-6;

/// One job's redistributed share of the cluster budget.
#[derive(Debug, Clone)]
pub struct JobCap {
    /// Index into the scheduling context's queue.
    pub queue_idx: usize,
    /// The job's gang width (nodes it occupies).
    pub width: usize,
    /// Machine generation the gang is placed on (index into the fleet; 0 on
    /// homogeneous clusters).
    pub gen: usize,
    /// Idle floor of that generation's nodes (W) — what each occupied node
    /// stops drawing, and the floor [`validate_caps`] enforces.
    pub node_idle_w: f64,
    /// The per-node cap the coordinator granted (W) — the peak draw of the
    /// plan chosen under it.
    pub node_cap_w: f64,
    /// The costed plan actuating that cap (DCT + DVFS decisions per phase).
    pub plan: ExecutionPlan,
}

/// One feasible operating point of a benchmark at a probe cap, cached per
/// `(benchmark, effective timesteps)`. [`ExecutionPlan`]s from
/// `plan_with_joint` depend on the job only through its benchmark and its
/// effective timestep count, so the full per-cap candidate list is a pure
/// function of that pair and is computed once; each scheduling event then
/// folds the admitted prefix (caps within the event's headroom) into a
/// Pareto menu without re-planning.
#[derive(Debug, Clone)]
struct MenuCandidate {
    /// The probe cap (W) this plan was decided under.
    cap_w: f64,
    plan: ExecutionPlan,
}

/// One rung of a job's Pareto menu inside the shared scratch arena:
/// peak/time for the greedy-upgrade arithmetic plus the index of the
/// backing [`MenuCandidate`] (the plan is only cloned for the final caps).
#[derive(Debug, Clone, Copy)]
struct MenuPoint {
    /// Per-node peak draw (W).
    peak_w: f64,
    /// Job execution time under this point (s).
    time_s: f64,
    /// Index into the job's cached candidate list.
    cand: usize,
}

/// One startable job's menu: a slice of the shared point arena plus the
/// cache key to resolve chosen points back to plans.
#[derive(Debug, Clone, Copy)]
struct MenuRef {
    /// Index into the scheduling context's queue.
    queue_idx: usize,
    /// Gang width (nodes).
    width: usize,
    /// Idle floor of the chosen generation's nodes (W).
    idle_w: f64,
    /// Key into the coordinator's candidate cache (generation, benchmark,
    /// effective timesteps).
    key: (usize, BenchmarkId, u64),
    /// First point in the arena.
    start: usize,
    /// Number of points.
    len: usize,
}

/// Per-event scratch of [`CapCoordinator::redistribute`], hoisted into the
/// coordinator so the event loop's hottest call allocates nothing in steady
/// state: all menus live in one flat point arena (`points`), referenced by
/// range.
#[derive(Debug, Default)]
struct RedistributeScratch {
    points: Vec<MenuPoint>,
    menus: Vec<MenuRef>,
    chosen: Vec<usize>,
}

/// The cluster-level coordinator: redistributes the power budget across
/// startable jobs at every scheduling event. Generic over the
/// decision-making controller exactly like the independent policies; the
/// default is the workload model's ANN decision table.
pub struct CapCoordinator<C: PowerPerfController = DecisionTableController> {
    plane: ControlPlane<C>,
    /// The controller's per-phase choices per (generation, benchmark,
    /// probed cap). Sound to cache because a conformant controller's
    /// decisions are a pure function of its observations (fed exactly once
    /// per phase — see [`decide_choices_via_plane`]), so the same probe at
    /// a later event would decide identically; only the cheap per-job
    /// costing (duration scaling) is redone.
    choice_cache: HashMap<(usize, BenchmarkId, u64), Vec<(Configuration, FreqStep)>>,
    /// Every distinct joint-cell power of a benchmark's phases on one
    /// generation's machine, sorted ascending and deduplicated — the cap
    /// probe points. A pure function of the static workload model, computed
    /// once per (generation, benchmark) instead of re-enumerating (and
    /// re-allocating) every phase's joint cells at every scheduling event.
    cap_cache: HashMap<(usize, BenchmarkId), Vec<f64>>,
    /// Full feasible candidate list per `(generation, benchmark, effective
    /// timesteps)`: one costed plan per probe cap, built eagerly on first
    /// sight of the triple (sound for the same purity reason as
    /// `choice_cache`, plus `plan_with_joint` depending on the job only
    /// through benchmark and timesteps).
    menu_cache: HashMap<(usize, BenchmarkId, u64), Vec<MenuCandidate>>,
    /// Reused per-event scratch (menus arena + greedy state).
    scratch: RedistributeScratch,
    /// Attached sink: one [`TraceEvent::Redistribute`] per
    /// [`CapCoordinator::redistribute`] call (latency in ns). `None` keeps
    /// the redistribution loop timestamp- and allocation-free.
    telemetry: Option<SharedSink>,
}

impl<C: PowerPerfController + std::fmt::Debug> std::fmt::Debug for CapCoordinator<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CapCoordinator")
            .field("plane", &self.plane)
            .field("choice_cache", &self.choice_cache.len())
            .field("cap_cache", &self.cap_cache.len())
            .field("menu_cache", &self.menu_cache.len())
            .field("telemetry", &self.telemetry.is_some())
            .finish()
    }
}

impl CapCoordinator<DecisionTableController> {
    /// The standard coordinator: the model's ANN decisions drive every
    /// per-phase DCT + DVFS choice.
    pub fn from_model(model: &WorkloadModel) -> Self {
        Self::new(model.decision_table())
    }

    /// The standard coordinator over a heterogeneous fleet: the union
    /// decision table across every generation's model.
    pub fn from_fleet(fleet: &crate::fleet::FleetModel) -> Self {
        Self::new(fleet.decision_table())
    }
}

impl<C: PowerPerfController> CapCoordinator<C> {
    /// Wraps an arbitrary controller.
    pub fn new(controller: C) -> Self {
        Self {
            plane: ControlPlane::new(controller, MachineShape::quad_core()),
            choice_cache: HashMap::new(),
            cap_cache: HashMap::new(),
            menu_cache: HashMap::new(),
            scratch: RedistributeScratch::default(),
            telemetry: None,
        }
    }

    /// Attaches a telemetry sink: every [`CapCoordinator::redistribute`]
    /// emits one [`TraceEvent::Redistribute`], and the underlying control
    /// plane traces each per-phase planning decision.
    pub fn set_telemetry(&mut self, sink: Option<SharedSink>) {
        self.plane.set_telemetry(sink.clone());
        self.telemetry = sink;
    }

    /// The wrapped controller.
    pub fn controller(&self) -> &C {
        self.plane.controller()
    }

    /// The headroom the coordinator observes: budget minus the summed
    /// per-node draw (falling back to the context's aggregate when no
    /// per-node observation is available, e.g. in hand-built contexts).
    pub fn observed_headroom_w(ctx: &SchedContext<'_>) -> f64 {
        let draw_w =
            if ctx.node_draw_w.is_empty() { ctx.draw_w } else { ctx.node_draw_w.iter().sum() };
        ctx.budget_w - draw_w
    }

    /// Ensures the full feasible candidate list for this job's
    /// `(generation, benchmark, effective timesteps)` triple is cached and
    /// returns the key. Every achievable plan peak is the power of some
    /// joint cell of some phase, so probing one cap per distinct cell power
    /// enumerates the complete menu; infeasible probes (the controller's
    /// lowest-power fallback still overdraws the cap) are dropped here,
    /// once.
    fn ensure_candidates(
        &mut self,
        ctx: &SchedContext<'_>,
        job: &Job,
        gen: usize,
    ) -> (usize, BenchmarkId, u64) {
        let model = ctx.gen_model(gen);
        let knowledge = model.knowledge(job.benchmark);
        let key = (gen, job.benchmark, job.effective_timesteps(knowledge.profile.timesteps) as u64);
        if self.menu_cache.contains_key(&key) {
            return key;
        }
        let caps = self.cap_cache.entry((gen, job.benchmark)).or_insert_with(|| {
            let mut caps: Vec<f64> = knowledge
                .phases
                .iter()
                .flat_map(|p| p.joint_candidates())
                .filter_map(|cell| cell.avg_power_w)
                .collect();
            caps.sort_by(f64::total_cmp);
            caps.dedup_by(|a, b| (*a - *b).abs() < EPS);
            caps
        });
        let mut cands: Vec<MenuCandidate> = Vec::with_capacity(caps.len());
        for &cap in caps.iter() {
            let choice_key = (gen, job.benchmark, cap.to_bits());
            if !self.choice_cache.contains_key(&choice_key) {
                let fresh =
                    decide_choices_via_plane(&mut self.plane, model, job.benchmark, cap, true);
                self.choice_cache.insert(choice_key, fresh);
            }
            let mut iter = self.choice_cache[&choice_key].iter().copied();
            let plan = model.plan_with_joint(job, |_| iter.next().expect("one per phase"));
            if plan.peak_power_w > cap + EPS {
                // Some phase had no admissible cell under this cap — not a
                // feasible operating point at this probe.
                continue;
            }
            cands.push(MenuCandidate { cap_w: cap, plan });
        }
        self.menu_cache.insert(key, cands);
        key
    }

    /// Observes the cluster state and decides per-job caps for the jobs that
    /// can start now, redistributing the headroom so memory-bound slack
    /// funds compute-bound boost. The returned caps are validated: a total
    /// exceeding the observed headroom or a cap below the node idle floor is
    /// a typed [`SchedError`], never a panic.
    pub fn redistribute(&mut self, ctx: &SchedContext<'_>) -> Result<Vec<JobCap>, SchedError> {
        // Timestamp only when traced: the untraced path stays identical.
        let started = self.telemetry.as_ref().map(|_| std::time::Instant::now());
        let headroom_w = Self::observed_headroom_w(ctx);
        // Borrow dance: the scratch moves out of `self` so menu building
        // can call `ensure_candidates` (&mut self) while filling it.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.points.clear();
        scratch.menus.clear();
        scratch.chosen.clear();

        // Strict queue discipline on nodes: the startable set is the longest
        // queue prefix whose cumulative width fits the idle nodes. Each
        // startable job's Pareto menu — the admitted cap prefix, folded to
        // rising peak draw with strictly falling execution time — lands in
        // the shared point arena. On a heterogeneous fleet gangs stay within
        // one generation; each job goes to the generation with enough free
        // nodes whose nominal four-core run is fastest (ties to the lower
        // index — deterministic).
        let hetero = ctx.is_heterogeneous();
        let mut free = ctx.idle_nodes.len();
        let mut free_by_gen: Vec<usize> = vec![0; if hetero { ctx.gen_count() } else { 0 }];
        if hetero {
            for &n in ctx.idle_nodes {
                free_by_gen[ctx.gen_of(n)] += 1;
            }
        }
        let mut startable_n = 0usize;
        for (queue_idx, job) in ctx.queue.iter().enumerate() {
            let gen = if hetero {
                let mut best: Option<(usize, f64)> = None;
                for (g, &gen_free) in free_by_gen.iter().enumerate() {
                    if gen_free < job.nodes {
                        continue;
                    }
                    let t = ctx.gen_model(g).four_core_time_s(job.benchmark);
                    if best.is_none_or(|(_, bt)| t < bt) {
                        best = Some((g, t));
                    }
                }
                let Some((g, _)) = best else { break };
                free_by_gen[g] -= job.nodes;
                g
            } else {
                if job.nodes > free {
                    break;
                }
                free -= job.nodes;
                ctx.common_gen()
            };
            startable_n += 1;
            let idle_w = ctx.gen_idle_w(gen);
            let max_cap_w = headroom_w / job.nodes as f64 + idle_w;
            let key = self.ensure_candidates(ctx, job, gen);
            let start = scratch.points.len();
            for (cand, c) in self.menu_cache[&key].iter().enumerate() {
                if c.cap_w > max_cap_w + EPS {
                    break;
                }
                let (peak_w, time_s) = (c.plan.peak_power_w, c.plan.exec_time_s);
                if scratch.points.len() > start {
                    let last = scratch.points.last().expect("non-empty menu");
                    // Keep only Pareto-improving points: higher peak must
                    // buy strictly less time.
                    if time_s >= last.time_s - EPS {
                        continue;
                    }
                    if peak_w <= last.peak_w + EPS {
                        // Same peak, faster plan (cap slack changed a
                        // tie-break): replace.
                        scratch.points.pop();
                    }
                }
                scratch.points.push(MenuPoint { peak_w, time_s, cand });
            }
            scratch.menus.push(MenuRef {
                queue_idx,
                width: job.nodes,
                idle_w,
                key,
                start,
                len: scratch.points.len() - start,
            });
        }

        // Floor: every job at its cheapest point; jobs whose floor no longer
        // fits (or that have no feasible point at all) wait, and — strict
        // order — so does everything behind them.
        let mut spent_w = 0.0;
        let mut admitted = 0usize;
        for m in &scratch.menus {
            if m.len == 0 {
                break;
            }
            let floor = scratch.points[m.start];
            let extra = (floor.peak_w - m.idle_w) * m.width as f64;
            if spent_w + extra > headroom_w + EPS {
                break;
            }
            spent_w += extra;
            scratch.chosen.push(0);
            admitted += 1;
        }
        scratch.menus.truncate(admitted);

        // Greedy upgrades: spend the remaining watts where a watt buys the
        // most time. Memory-bound jobs offer near-zero ratios, so the watts
        // flow to compute-bound jobs — their boost is funded by the others'
        // slack.
        loop {
            let mut best: Option<(usize, f64)> = None; // (menu idx, ratio)
            for (i, m) in scratch.menus.iter().enumerate() {
                let cur = scratch.points[m.start + scratch.chosen[i]];
                if scratch.chosen[i] + 1 >= m.len {
                    continue;
                }
                let next = scratch.points[m.start + scratch.chosen[i] + 1];
                let extra = (next.peak_w - cur.peak_w) * m.width as f64;
                if spent_w + extra > headroom_w + EPS {
                    continue;
                }
                let ratio = (cur.time_s - next.time_s) / extra.max(EPS);
                if best.is_none_or(|(_, r)| ratio > r) {
                    best = Some((i, ratio));
                }
            }
            let Some((i, _)) = best else { break };
            let m = scratch.menus[i];
            let pick = scratch.chosen[i];
            spent_w += (scratch.points[m.start + pick + 1].peak_w
                - scratch.points[m.start + pick].peak_w)
                * m.width as f64;
            scratch.chosen[i] += 1;
        }

        let caps: Vec<JobCap> = scratch
            .menus
            .iter()
            .zip(&scratch.chosen)
            .map(|(m, &pick)| {
                let point = scratch.points[m.start + pick];
                JobCap {
                    queue_idx: m.queue_idx,
                    width: m.width,
                    gen: m.key.0,
                    node_idle_w: m.idle_w,
                    node_cap_w: point.peak_w,
                    plan: self.menu_cache[&m.key][point.cand].plan.clone(),
                }
            })
            .collect();
        let upgrades: usize = scratch.chosen.iter().sum();
        self.scratch = scratch;
        validate_caps(&caps, headroom_w)?;
        if let (Some(sink), Some(started)) = (&self.telemetry, started) {
            sink.record_owned(TraceEvent::Redistribute {
                time_s: ctx.now,
                startable: startable_n,
                admitted,
                headroom_before_w: headroom_w,
                headroom_after_w: headroom_w - spent_w,
                upgrades,
                latency_ns: started.elapsed().as_nanos() as u64,
            });
        }
        Ok(caps)
    }
}

/// Validates a redistribution against the budget invariants: the summed
/// extra draw of all caps must fit the observed headroom, and no cap may
/// fall below its own generation's node idle floor ([`JobCap::node_idle_w`]
/// — a job must never be starved beneath the power an idle node already
/// draws). Violations are typed [`SchedError`]s so release paths fail
/// loudly without panicking.
pub fn validate_caps(caps: &[JobCap], headroom_w: f64) -> Result<(), SchedError> {
    let total_extra_w: f64 =
        caps.iter().map(|c| (c.node_cap_w - c.node_idle_w) * c.width as f64).sum();
    if total_extra_w > headroom_w + VALIDATE_EPS {
        return Err(SchedError::CapOverBudget { extra_w: total_extra_w, headroom_w });
    }
    for cap in caps {
        if cap.node_cap_w < cap.node_idle_w - VALIDATE_EPS {
            return Err(SchedError::CapBelowIdleFloor {
                cap_w: cap.node_cap_w,
                idle_w: cap.node_idle_w,
            });
        }
    }
    Ok(())
}

/// The coordinated scheduling policy: [`CapCoordinator`] behind the
/// [`SchedulerPolicy`] interface. Replaces the static per-job headroom
/// split of the independent power-aware policies with per-event
/// redistribution; registered as `"power-aware-coordinated"`.
#[derive(Debug)]
pub struct CoordinatedPowerPolicy<C: PowerPerfController = DecisionTableController> {
    coordinator: CapCoordinator<C>,
}

impl CoordinatedPowerPolicy<DecisionTableController> {
    /// The standard coordinated policy over the model's ANN decisions.
    pub fn from_model(model: &WorkloadModel) -> Self {
        Self { coordinator: CapCoordinator::from_model(model) }
    }

    /// The standard coordinated policy over a heterogeneous fleet.
    pub fn from_fleet(fleet: &crate::fleet::FleetModel) -> Self {
        Self { coordinator: CapCoordinator::from_fleet(fleet) }
    }
}

impl<C: PowerPerfController> CoordinatedPowerPolicy<C> {
    /// Wraps an arbitrary controller.
    pub fn new(controller: C) -> Self {
        Self { coordinator: CapCoordinator::new(controller) }
    }

    /// The coordinator.
    pub fn coordinator(&self) -> &CapCoordinator<C> {
        &self.coordinator
    }
}

impl<C: PowerPerfController> SchedulerPolicy for CoordinatedPowerPolicy<C> {
    fn name(&self) -> &'static str {
        "power-aware-coordinated"
    }

    fn assign(&mut self, ctx: &SchedContext<'_>) -> Vec<Assignment> {
        match self.coordinator.redistribute(ctx) {
            Ok(caps) => {
                // One free list per generation, so each cap's gang lands on
                // the generation its menu was priced for. Homogeneous
                // clusters have a single list — the original behaviour.
                let mut free_by_gen: Vec<Vec<usize>> = vec![Vec::new(); ctx.gen_count()];
                for &n in ctx.idle_nodes {
                    free_by_gen[ctx.gen_of(n)].push(n);
                }
                caps.into_iter()
                    .map(|cap| Assignment {
                        queue_idx: cap.queue_idx,
                        nodes: free_by_gen[cap.gen].drain(..cap.width).collect(),
                        plan: cap.plan,
                    })
                    .collect()
            }
            Err(violation) => {
                // `redistribute` validates its own arithmetic, so this is
                // unreachable in practice — but the loud-failure convention
                // for release paths is a typed error and a visible stall
                // (the cluster's deadlock check reports starvation), not a
                // panic.
                debug_assert!(false, "coordinator produced invalid caps: {violation}");
                Vec::new()
            }
        }
    }

    fn set_telemetry(&mut self, sink: SharedSink) {
        self.coordinator.set_telemetry(Some(sink));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actor_core::ActorConfig;
    use npb_workloads::BenchmarkId;
    use xeon_sim::{Configuration, Machine};

    const IDLE_W: f64 = 104.0;

    fn model() -> WorkloadModel {
        let machine = Machine::xeon_qx6600();
        let config = ActorConfig { corpus_replicas: 2, ..ActorConfig::fast() };
        WorkloadModel::build(
            &machine,
            &config,
            &[BenchmarkId::Cg, BenchmarkId::Is, BenchmarkId::Mg, BenchmarkId::Bt],
        )
        .unwrap()
    }

    fn job(id: usize, benchmark: BenchmarkId, nodes: usize) -> Job {
        Job {
            id,
            benchmark,
            arrival_s: id as f64,
            nodes,
            priority: 0,
            deadline_s: None,
            duration_scale: 1.0,
        }
    }

    fn ctx<'a>(
        model: &'a WorkloadModel,
        queue: &'a [Job],
        idle_nodes: &'a [usize],
        budget_w: f64,
        node_draw_w: &'a [f64],
    ) -> SchedContext<'a> {
        SchedContext {
            now: 0.0,
            queue,
            idle_nodes,
            model,
            budget_w,
            draw_w: node_draw_w.iter().sum(),
            node_idle_w: IDLE_W,
            node_draw_w,
            running: &[],
            fleet: None,
            node_gen: &[],
        }
    }

    #[test]
    fn redistribution_respects_budget_and_idle_floor() {
        let model = model();
        let queue = vec![
            job(0, BenchmarkId::Cg, 1),
            job(1, BenchmarkId::Is, 1),
            job(2, BenchmarkId::Mg, 1),
        ];
        let idle = [0usize, 1, 2];
        let draws = [IDLE_W; 3];
        // A budget tight enough that not every job can run at full tilt.
        let budget = 3.0 * IDLE_W + 110.0;
        let mut coordinator = CapCoordinator::from_model(&model);
        let caps = coordinator.redistribute(&ctx(&model, &queue, &idle, budget, &draws)).unwrap();
        assert!(!caps.is_empty(), "a feasible budget must start at least the head job");
        let headroom = budget - 3.0 * IDLE_W;
        let total: f64 = caps.iter().map(|c| (c.node_cap_w - IDLE_W) * c.width as f64).sum();
        assert!(total <= headroom + 1e-6, "caps total {total:.1} W > headroom {headroom:.1} W");
        for cap in &caps {
            assert!(cap.node_cap_w >= IDLE_W, "cap {:.1} W under the idle floor", cap.node_cap_w);
            assert!(cap.plan.peak_power_w <= cap.node_cap_w + 1e-6);
        }
    }

    #[test]
    fn memory_bound_slack_funds_compute_bound_boost() {
        let model = model();
        // IS is memory-bound (tolerates downclocking), BT compute-bound.
        let queue = vec![job(0, BenchmarkId::Is, 1), job(1, BenchmarkId::Bt, 1)];
        let idle = [0usize, 1];
        let draws = [IDLE_W; 2];
        let is_four = model.plan_fixed(&queue[0], Configuration::Four).peak_power_w;
        let bt_four = model.plan_fixed(&queue[1], Configuration::Four).peak_power_w;
        // Enough headroom for ~1.2 four-core jobs: an equal split would
        // throttle both; the coordinator should tilt watts towards BT.
        let budget = 2.0 * IDLE_W + (is_four - IDLE_W) * 0.3 + (bt_four - IDLE_W) * 0.9;
        let mut coordinator = CapCoordinator::from_model(&model);
        let caps = coordinator.redistribute(&ctx(&model, &queue, &idle, budget, &draws)).unwrap();
        assert_eq!(caps.len(), 2, "both jobs must start");
        let is_cap = &caps[0];
        let bt_cap = &caps[1];
        assert!(
            bt_cap.node_cap_w - IDLE_W > is_cap.node_cap_w - IDLE_W,
            "compute-bound BT ({:.1} W extra) should out-rank memory-bound IS ({:.1} W extra)",
            bt_cap.node_cap_w - IDLE_W,
            is_cap.node_cap_w - IDLE_W
        );
        // IS pays for it with DVFS/DCT, not starvation: it still runs.
        assert!(is_cap.plan.exec_time_s > 0.0);
    }

    #[test]
    fn strict_queue_discipline_is_preserved() {
        let model = model();
        // The head wants 4 nodes but only 2 are idle: nothing may start.
        let queue = vec![job(0, BenchmarkId::Cg, 4), job(1, BenchmarkId::Is, 1)];
        let idle = [0usize, 1];
        let draws = [IDLE_W; 2];
        let mut coordinator = CapCoordinator::from_model(&model);
        let caps = coordinator.redistribute(&ctx(&model, &queue, &idle, 10_000.0, &draws)).unwrap();
        assert!(caps.is_empty(), "a node-blocked head blocks the redistribution");
    }

    #[test]
    fn validate_caps_flags_over_budget_and_starvation() {
        let plan = ExecutionPlan {
            decisions: vec![("a".into(), Configuration::Four)],
            freq_steps: Vec::new(),
            exec_time_s: 1.0,
            energy_j: 100.0,
            peak_power_w: 150.0,
        };
        let cap = |w: f64| JobCap {
            queue_idx: 0,
            width: 2,
            gen: 0,
            node_idle_w: 104.0,
            node_cap_w: w,
            plan: plan.clone(),
        };
        assert!(validate_caps(&[cap(120.0)], 40.0).is_ok());
        let err = validate_caps(&[cap(150.0)], 40.0).unwrap_err();
        assert!(matches!(err, SchedError::CapOverBudget { .. }), "{err}");
        assert!(err.to_string().contains("exceed"), "{err}");
        let err = validate_caps(&[cap(10.0)], 40.0).unwrap_err();
        assert!(matches!(err, SchedError::CapBelowIdleFloor { .. }), "{err}");
    }
}
