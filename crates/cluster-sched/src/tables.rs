//! Report tables (per-job and cluster-level) over `core::report::Table`.

use actor_core::report::{fmt3, Table};

use crate::cluster::ClusterReport;
use crate::job::JobOutcome;

fn config_summary(outcome: &JobOutcome) -> String {
    let mut parts: Vec<String> = Vec::new();
    for (_, config) in &outcome.decisions {
        let label = config.label().to_string();
        match parts.last_mut() {
            Some(last) if last.split('×').next_back() == Some(label.as_str()) => {
                // Collapse runs like "4,4,4" into "3×4".
                let (count, _) = last.split_once('×').unwrap_or(("1", label.as_str()));
                let count: usize = count.parse().unwrap_or(1);
                *last = format!("{}×{label}", count + 1);
            }
            _ => parts.push(format!("1×{label}")),
        }
    }
    parts.join(" ")
}

/// Per-job table: one row per completed job, in completion order.
pub fn job_table(report: &ClusterReport) -> Table {
    let mut table = Table::new(vec![
        "job", "bench", "prio", "nodes", "arrive s", "start s", "finish s", "wait s", "exec s",
        "energy J", "peak W", "ED2 J.s2", "deadline", "configs",
    ]);
    for o in &report.outcomes {
        table.push_row(vec![
            o.job.id.to_string(),
            o.job.benchmark.to_string(),
            o.job.priority.to_string(),
            o.nodes.iter().map(ToString::to_string).collect::<Vec<_>>().join("+"),
            fmt3(o.job.arrival_s),
            fmt3(o.start_s),
            fmt3(o.finish_s),
            fmt3(o.wait_s()),
            fmt3(o.exec_s()),
            fmt3(o.energy_j),
            fmt3(o.peak_power_w),
            fmt3(o.ed2()),
            match o.job.deadline_s {
                Some(_) if o.deadline_met() => "met".to_string(),
                Some(_) => "MISSED".to_string(),
                None => "-".to_string(),
            },
            config_summary(o),
        ]);
    }
    table
}

/// Column headers of the cluster-level comparison table — shared by
/// [`cluster_summary_table`] and streaming producers
/// (`actor_core::report::StreamingReporter`) so both render identically.
pub fn cluster_summary_headers() -> Vec<&'static str> {
    vec![
        "policy",
        "nodes",
        "budget W",
        "jobs",
        "makespan s",
        "energy kJ",
        "avg power W",
        "peak W",
        "cluster ED2 MJ.s2",
        "avg wait s",
        "misses",
        "throttled %",
        "cap viol",
    ]
}

/// One run's row of the cluster-level comparison table (the one definition
/// of the row format; [`cluster_summary_table`] delegates here).
pub fn cluster_summary_row(r: &ClusterReport) -> Vec<String> {
    vec![
        r.policy.clone(),
        r.nodes.to_string(),
        fmt3(r.power_budget_w),
        r.outcomes.len().to_string(),
        fmt3(r.makespan_s),
        fmt3(r.total_energy_j / 1e3),
        fmt3(r.total_energy_j / r.makespan_s.max(1e-12)),
        fmt3(r.peak_power_w),
        fmt3(r.cluster_ed2() / 1e6),
        fmt3(r.avg_wait_s()),
        r.deadline_misses().to_string(),
        fmt3(r.throttle_fraction() * 100.0),
        r.cap_violations.to_string(),
    ]
}

/// Cluster-level comparison table: one row per run.
pub fn cluster_summary_table(reports: &[ClusterReport]) -> Table {
    let mut table = Table::new(cluster_summary_headers());
    for r in reports {
        table.push_row(cluster_summary_row(r));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use npb_workloads::BenchmarkId;
    use xeon_sim::Configuration;

    fn outcome() -> JobOutcome {
        JobOutcome {
            job: Job {
                id: 3,
                benchmark: BenchmarkId::Is,
                arrival_s: 1.0,
                nodes: 2,
                priority: 2,
                deadline_s: Some(4.0),
                duration_scale: 1.0,
            },
            nodes: vec![0, 1],
            start_s: 2.0,
            finish_s: 5.0,
            energy_j: 450.0,
            peak_power_w: 150.0,
            completed: true,
            decisions: vec![
                ("p0".into(), Configuration::Four),
                ("p1".into(), Configuration::Four),
                ("p2".into(), Configuration::TwoLoose),
            ],
        }
    }

    fn report() -> ClusterReport {
        ClusterReport {
            policy: "fcfs".into(),
            nodes: 2,
            machines: "uniform".into(),
            power_budget_w: 400.0,
            outcomes: vec![outcome()],
            makespan_s: 5.0,
            total_energy_j: 1500.0,
            peak_power_w: 380.0,
            cap_violations: 0,
            node_failures: 0,
            killed_jobs: 0,
        }
    }

    #[test]
    fn job_table_has_one_row_per_outcome_and_flags_misses() {
        let r = report();
        let t = job_table(&r);
        assert_eq!(t.len(), 1);
        let text = t.to_text();
        assert!(text.contains("MISSED"), "finish 5.0 > deadline 4.0: {text}");
        assert!(text.contains("2×4 1×2b"), "config runs collapse: {text}");
    }

    #[test]
    fn summary_table_reports_cluster_metrics() {
        let r = report();
        let t = cluster_summary_table(std::slice::from_ref(&r));
        let text = t.to_text();
        assert!(text.contains("fcfs"));
        let csv = t.to_csv();
        assert!(csv.lines().count() == 2);
    }
}
