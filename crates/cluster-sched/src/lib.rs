//! # cluster-sched — multi-node job scheduling under a cluster-wide power
//! budget, driven by ACTOR's ANN predictors
//!
//! The paper ("Identifying Energy-Efficient Concurrency Levels Using Machine
//! Learning", Curtis-Maury et al., IEEE Cluster 2007) evaluates
//! prediction-based concurrency throttling on a single quad-core Xeon. This
//! crate scales the idea out: a cluster of N simulated Xeon nodes executes a
//! queue of NPB jobs under one shared power envelope, and a power-aware
//! scheduling policy uses the existing [`actor_core::AnnPredictor`] ensembles
//! to pick, per job phase, the concurrency configuration with the highest
//! predicted throughput that still fits the remaining power headroom.
//!
//! The pieces:
//!
//! * [`node::Node`] — one cluster node: a [`xeon_sim::Machine`] plus per-node
//!   [`actor_core::ActorRuntime`] state (the running job's phase → binding
//!   plan, as a live `phase_rt` team would consult it) and energy accounting.
//! * [`job`] — [`job::Job`], [`job::JobOutcome`] and seeded workload
//!   generation from [`npb_workloads::suite`] (Poisson arrivals, priorities,
//!   deadlines, per-job problem scaling).
//! * [`profile::WorkloadModel`] — the scheduler's oracle, built once from
//!   ACTOR's leave-one-out evaluation pipeline: per phase, the ANN throttle
//!   decision plus machine-model time/power/energy for every configuration.
//! * [`policy`] — the [`policy::SchedulerPolicy`] trait and three built-ins:
//!   strict FCFS, EASY backfill, and the power-aware policy — the latter
//!   generic over any [`actor_core::PowerPerfController`], so the ANN
//!   ensembles, an oracle or a static baseline drop into the cluster loop
//!   interchangeably. New policies are one file each.
//! * [`cluster`] — the discrete-event loop, cap enforcement, and
//!   [`cluster::ClusterReport`]; [`tables`] renders per-job and
//!   cluster-level reports as [`actor_core::report::Table`]s.
//! * [`sweep`] — the parallel sweep engine: a [`sweep::SweepSpec`] grid
//!   (nodes × budgets × policies × seeds, plus explicit cells) expanded
//!   into independent cells and executed concurrently on a
//!   [`phase_rt::ThreadPool`] against one `Arc`-shared workload model,
//!   with deterministic cell-ordered results.

pub mod cluster;
pub mod coordinator;
pub mod error;
pub mod fleet;
pub mod job;
pub mod node;
pub mod policy;
pub mod profile;
pub mod scenario;
pub mod sweep;
pub mod tables;

pub use cluster::{
    budget_from_fraction, simulate, simulate_fleet, simulate_traced, Cluster, ClusterReport,
    ClusterSpec,
};
pub use coordinator::{validate_caps, CapCoordinator, CoordinatedPowerPolicy, JobCap};
pub use error::{ClusterError, SchedError};
pub use fleet::{
    budget_for_mix, mix_by_name, FleetGen, FleetModel, MachineMix, GEN_PHASE_ID_STRIDE,
    MACHINE_MIX_NAMES,
};
pub use job::{ArrivalProcess, Job, JobOutcome, TenantSpec, WorkloadSpec};
pub use node::{binding_for, Node};
pub use policy::{
    policy_by_name, policy_by_name_fleet, Assignment, BackfillPolicy, FcfsPolicy, PowerAwarePolicy,
    SchedContext, SchedulerPolicy, POLICY_NAMES,
};
pub use profile::{ExecutionPlan, WorkloadModel};
pub use scenario::{
    arrival_process_by_name, fault_scenario_by_name, fault_timeline, FaultPolicy, FaultSpec,
    FaultTimeline, ARRIVAL_PROCESS_NAMES, FAULT_SCENARIO_NAMES,
};
pub use sweep::{
    default_workload, execute_cell, light_workload, quad_test_workload, run_sweep, run_sweep_fleet,
    run_sweep_traced, workload_shape_by_name, SweepCell, SweepCellOutcome, SweepError, SweepPoint,
    SweepRun, SweepSpec, WORKLOAD_SHAPE_NAMES,
};
pub use tables::{cluster_summary_headers, cluster_summary_row, cluster_summary_table, job_table};
