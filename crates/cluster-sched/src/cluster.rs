//! The cluster: N nodes, one power budget, a job queue, and a
//! discrete-event loop.
//!
//! Events are job arrivals and job completions; after each batch of
//! simultaneous events the active [`SchedulerPolicy`] is consulted and its
//! assignments applied. The cluster itself enforces the power budget on
//! every assignment (a defective policy produces recorded violations, never
//! an actually-breached cap) and tracks the instantaneous draw so the
//! invariant "cluster power never exceeds the budget" is checkable after the
//! fact.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

use actor_core::telemetry::{SharedSink, TraceEvent};
use serde::{Deserialize, Serialize};
use xeon_sim::Machine;

use crate::error::ClusterError;
use crate::job::{Job, JobOutcome, WorkloadSpec};
use crate::node::Node;
use crate::policy::{RunningSummary, SchedContext, SchedulerPolicy};
use crate::profile::WorkloadModel;

/// Static description of a cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Cluster-wide power budget (W).
    pub power_budget_w: f64,
    /// The workload to run.
    pub workload: WorkloadSpec,
    /// Seed for workload generation (the model has its own seed in
    /// `ActorConfig`).
    pub seed: u64,
}

impl ClusterSpec {
    /// Validates the spec against the machine's idle floor.
    pub fn validate(&self, idle_node_w: f64) -> Result<(), ClusterError> {
        if self.nodes == 0 {
            return Err(ClusterError::InvalidSpec { reason: "cluster needs nodes".into() });
        }
        self.workload.validate()?;
        if self.workload.node_counts.iter().any(|&k| k > self.nodes) {
            return Err(ClusterError::InvalidSpec {
                reason: format!(
                    "workload contains jobs wider ({} nodes) than the cluster ({})",
                    self.workload.node_counts.iter().max().unwrap(),
                    self.nodes
                ),
            });
        }
        let idle_floor_w = idle_node_w * self.nodes as f64;
        if self.power_budget_w < idle_floor_w {
            return Err(ClusterError::BudgetBelowIdleFloor {
                budget_w: self.power_budget_w,
                idle_floor_w,
            });
        }
        Ok(())
    }
}

/// A power budget expressed as idle floor + fraction of the maximum dynamic
/// range, the natural way to sweep "tight" → "ample".
pub fn budget_from_fraction(nodes: usize, idle_node_w: f64, max_node_w: f64, fraction: f64) -> f64 {
    let n = nodes as f64;
    n * idle_node_w + fraction * n * (max_node_w - idle_node_w)
}

/// The results of one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Policy that produced this run.
    pub policy: String,
    /// Node count.
    pub nodes: usize,
    /// The budget that was enforced (W).
    pub power_budget_w: f64,
    /// Every job's outcome, in completion order.
    pub outcomes: Vec<JobOutcome>,
    /// Time from first arrival (t = 0) to last completion (s).
    pub makespan_s: f64,
    /// Total cluster energy, idle periods included (J).
    pub total_energy_j: f64,
    /// Highest instantaneous cluster draw observed (W).
    pub peak_power_w: f64,
    /// Assignments the cluster had to veto for breaching the budget (a
    /// correct policy never produces any).
    pub cap_violations: usize,
}

impl ClusterReport {
    /// Cluster-level energy-delay-squared (J·s²): total energy × makespan².
    pub fn cluster_ed2(&self) -> f64 {
        self.total_energy_j * self.makespan_s * self.makespan_s
    }

    /// Mean queueing delay over all jobs (s).
    pub fn avg_wait_s(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().map(JobOutcome::wait_s).sum::<f64>() / self.outcomes.len() as f64
    }

    /// Number of jobs that missed their deadline.
    pub fn deadline_misses(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.deadline_met()).count()
    }

    /// Fraction of phase decisions that throttled below four cores.
    pub fn throttle_fraction(&self) -> f64 {
        let total: usize = self.outcomes.iter().map(|o| o.decisions.len()).sum();
        if total == 0 {
            return 0.0;
        }
        let throttled: usize = self
            .outcomes
            .iter()
            .flat_map(|o| &o.decisions)
            .filter(|(_, c)| *c != xeon_sim::Configuration::Four)
            .count();
        throttled as f64 / total as f64
    }
}

#[derive(Debug, Clone, PartialEq)]
enum EventKind {
    Arrival(Job),
    /// A whole gang completes at once; `nodes` are its members.
    Completion {
        nodes: Vec<usize>,
    },
}

#[derive(Debug, Clone)]
struct Event {
    time_s: f64,
    /// Tie-breaker making the heap order total and deterministic.
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other.time_s.total_cmp(&self.time_s).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Cheap deterministic hasher for the gang-summary index: the keys are
/// `(f64::to_bits, f64::to_bits)` pairs that are already well-mixed doubles,
/// so two multiply-xor rounds beat SipHash by an order of magnitude on the
/// scheduling pass without risking adversarial input (the keys come from the
/// simulation itself).
#[derive(Debug, Default)]
struct GangKeyHasher(u64);

impl Hasher for GangKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(29);
    }
}

/// The simulated cluster.
pub struct Cluster<'a> {
    spec: ClusterSpec,
    model: &'a WorkloadModel,
    nodes: Vec<Node>,
    /// Attached sink: one record per arrival/start/completion event. `None`
    /// keeps the event loop free of timestamps and record construction.
    telemetry: Option<SharedSink>,
}

impl<'a> Cluster<'a> {
    /// Builds a cluster of identical Xeon nodes.
    pub fn new(spec: ClusterSpec, model: &'a WorkloadModel) -> Result<Self, ClusterError> {
        let machine = Machine::xeon_qx6600();
        spec.validate(machine.params().power.system_idle_w)?;
        let nodes = (0..spec.nodes).map(|id| Node::new(id, machine.clone())).collect();
        Ok(Self { spec, model, nodes, telemetry: None })
    }

    /// Attaches a telemetry sink: [`Cluster::run`] then emits one
    /// [`TraceEvent`] per job arrival, start and completion, and installs
    /// the sink into the policy (so controller-driven policies trace their
    /// planning decisions too).
    #[must_use]
    pub fn with_telemetry(mut self, sink: SharedSink) -> Self {
        self.telemetry = Some(sink);
        self
    }

    /// Current instantaneous cluster draw (W).
    fn draw_w(&self) -> f64 {
        self.nodes.iter().map(Node::power_draw_w).sum()
    }

    /// Runs the workload to completion under `policy`.
    pub fn run(&mut self, policy: &mut dyn SchedulerPolicy) -> Result<ClusterReport, ClusterError> {
        if let Some(sink) = &self.telemetry {
            policy.set_telemetry(sink.clone());
        }
        let idle_node_w = self.nodes[0].idle_power_w();
        let jobs =
            self.spec.workload.generate(self.spec.seed, |id| self.model.four_core_time_s(id))?;

        let mut heap = BinaryHeap::new();
        let mut seq = 0u64;
        for job in jobs {
            heap.push(Event { time_s: job.arrival_s, seq, kind: EventKind::Arrival(job) });
            seq += 1;
        }

        let mut queue: Vec<Job> = Vec::new();
        let mut outcomes: Vec<JobOutcome> = Vec::new();
        let mut peak_power_w = self.draw_w();
        let mut cap_violations = 0usize;
        let mut makespan_s = 0.0f64;

        // Per-event scratch, hoisted out of the loop: a 256-node run visits
        // hundreds of thousands of events, and rebuilding these five
        // vectors per event made the allocator the hottest part of the
        // simulation. Each is cleared (never shrunk) per event.
        let mut batch: Vec<Event> = Vec::new();
        let mut runs: Vec<crate::node::RunningJob> = Vec::new();
        let mut idle_nodes: Vec<usize> = Vec::new();
        let mut running: Vec<RunningSummary> = Vec::new();
        let mut node_draws: Vec<f64> = Vec::new();
        // Index over `running`: gang key → index of the *first* summary with
        // that key. With hundreds of running single-node gangs a linear
        // first-match scan per node is O(nodes × gangs) per scheduling pass —
        // at 256 nodes it was two thirds of the whole simulation.
        let mut running_index: HashMap<(u64, u64), usize, BuildHasherDefault<GangKeyHasher>> =
            HashMap::default();

        while let Some(event) = heap.pop() {
            let now = event.time_s;
            makespan_s = makespan_s.max(now);
            batch.clear();
            batch.push(event);
            while let Some(next) = heap.peek() {
                if next.time_s == now {
                    batch.push(heap.pop().expect("peeked"));
                } else {
                    break;
                }
            }
            for event in batch.drain(..) {
                match event.kind {
                    EventKind::Arrival(job) => {
                        if let Some(sink) = &self.telemetry {
                            sink.record_owned(TraceEvent::JobArrival {
                                time_s: now,
                                job: job.id,
                                benchmark: job.benchmark.to_string(),
                                width: job.nodes,
                            });
                        }
                        // Ordered insert — priority first (descending), then
                        // arrival, then id. Ids are unique, so the order is
                        // total and inserting equals the stable re-sort this
                        // replaces (minus the per-arrival O(n log n) churn).
                        let pos = queue.partition_point(|q| {
                            q.priority
                                .cmp(&job.priority)
                                .then(job.arrival_s.total_cmp(&q.arrival_s))
                                .then(job.id.cmp(&q.id))
                                != Ordering::Less
                        });
                        queue.insert(pos, job);
                    }
                    EventKind::Completion { nodes } => {
                        runs.clear();
                        for &node in &nodes {
                            runs.push(self.nodes[node].complete(now));
                        }
                        let energy_j: f64 = runs.iter().map(|r| r.plan.energy_j).sum();
                        let peak_power_w: f64 = runs.iter().map(|r| r.plan.peak_power_w).sum();
                        if let Some(sink) = &self.telemetry {
                            let run = runs.first().expect("completions have members");
                            sink.record_owned(TraceEvent::JobCompletion {
                                time_s: now,
                                job: run.job.id,
                                width: nodes.len(),
                                energy_j,
                            });
                        }
                        // The gang's node list travels by move: policy
                        // assignment → completion event → outcome, never
                        // copied.
                        let run = runs.swap_remove(0);
                        outcomes.push(JobOutcome {
                            job: run.job,
                            start_s: run.start_s,
                            finish_s: now,
                            energy_j,
                            peak_power_w,
                            decisions: run.plan.decisions,
                            nodes,
                        });
                    }
                }
            }

            // Scheduling pass.
            idle_nodes.clear();
            idle_nodes.extend(self.nodes.iter().filter(|n| n.is_idle()).map(|n| n.id));
            if !queue.is_empty() && !idle_nodes.is_empty() {
                // Summarise running gangs (one entry per job, not per node):
                // each node folds into the first summary matching its
                // (finish, peak) key, starting a new one when that summary is
                // already at its gang's width. `running_index` finds the
                // first match in O(1); keying on bits equals keying on `==`
                // here because neither field can be NaN or -0.0 (finish is
                // now + a positive runtime, peak is a positive draw). Gang
                // members are adjacent in node order often enough that the
                // previous node's key short-circuits most map probes.
                running.clear();
                running_index.clear();
                let mut prev: Option<((u64, u64), usize)> = None;
                for n in &self.nodes {
                    if let Some(r) = n.running() {
                        let key = (r.finish_s.to_bits(), r.plan.peak_power_w.to_bits());
                        let first = match prev {
                            Some((k, idx)) if k == key => idx,
                            _ => *running_index.entry(key).or_insert(running.len()),
                        };
                        match running.get_mut(first) {
                            Some(s) if s.nodes < r.job.nodes => s.nodes += 1,
                            _ => running.push(RunningSummary {
                                finish_s: r.finish_s,
                                nodes: 1,
                                node_peak_w: r.plan.peak_power_w,
                            }),
                        }
                        prev = Some((key, first));
                    }
                }
                running.sort_by(|a, b| a.finish_s.total_cmp(&b.finish_s));
                // The observe step of the control plane at cluster level:
                // per-node instantaneous draw. Coordinators use it to size
                // the headroom (budget minus running draw) they
                // redistribute across the jobs starting at this event;
                // running jobs keep their granted caps until completion.
                node_draws.clear();
                node_draws.extend(self.nodes.iter().map(Node::power_draw_w));
                let ctx = SchedContext {
                    now,
                    queue: &queue,
                    idle_nodes: &idle_nodes,
                    model: self.model,
                    budget_w: self.spec.power_budget_w,
                    draw_w: self.draw_w(),
                    node_idle_w: idle_node_w,
                    node_draw_w: &node_draws,
                    running: &running,
                };
                let assignments = policy.assign(&ctx);
                // Apply in descending queue index so removals stay valid.
                let mut ordered = assignments;
                ordered.sort_by_key(|a| std::cmp::Reverse(a.queue_idx));
                for a in ordered {
                    // The cluster re-checks the cap: an assignment may only
                    // raise the draw by k × (plan peak − a node's idle draw),
                    // and every gang member must actually be idle.
                    let k = a.nodes.len();
                    let extra = (a.plan.peak_power_w - idle_node_w) * k as f64;
                    let members_idle = a.nodes.iter().all(|&n| self.nodes[n].is_idle());
                    let width_ok = k == queue[a.queue_idx].nodes;
                    if !members_idle
                        || !width_ok
                        || self.draw_w() + extra > self.spec.power_budget_w + 1e-6
                    {
                        cap_violations += 1;
                        continue;
                    }
                    let job = queue.remove(a.queue_idx);
                    if let Some(sink) = &self.telemetry {
                        sink.record(&TraceEvent::JobStart {
                            time_s: now,
                            job: job.id,
                            width: k,
                            node_peak_w: a.plan.peak_power_w,
                            exec_time_s: a.plan.exec_time_s,
                        });
                    }
                    let mut finish = now;
                    for &node in &a.nodes {
                        finish = self.nodes[node].assign(job.clone(), a.plan.clone(), now);
                    }
                    heap.push(Event {
                        time_s: finish,
                        seq,
                        kind: EventKind::Completion { nodes: a.nodes },
                    });
                    seq += 1;
                }
            }
            peak_power_w = peak_power_w.max(self.draw_w());

            // Deadlock check: nothing running, nothing scheduled, no future
            // events, but jobs still queued — the budget starves the queue.
            if heap.is_empty() && !queue.is_empty() && self.nodes.iter().all(Node::is_idle) {
                return Err(ClusterError::InvalidSpec {
                    reason: format!(
                        "power budget {:.0} W cannot run the {} remaining job(s) even exclusively",
                        self.spec.power_budget_w,
                        queue.len()
                    ),
                });
            }
        }

        let total_energy_j = self.nodes.iter_mut().map(|n| n.energy_until(makespan_s)).sum::<f64>();
        Ok(ClusterReport {
            policy: policy.name().to_string(),
            nodes: self.spec.nodes,
            power_budget_w: self.spec.power_budget_w,
            outcomes,
            makespan_s,
            total_energy_j,
            peak_power_w,
            cap_violations,
        })
    }
}

/// Convenience: build a cluster and run one policy.
pub fn simulate(
    spec: &ClusterSpec,
    model: &WorkloadModel,
    policy: &mut dyn SchedulerPolicy,
) -> Result<ClusterReport, ClusterError> {
    simulate_traced(spec, model, policy, None)
}

/// [`simulate`] with an optional telemetry sink: `Some` traces every job
/// arrival/start/completion (and, through the policy, every controller
/// decision and budget redistribution); `None` is exactly [`simulate`].
pub fn simulate_traced(
    spec: &ClusterSpec,
    model: &WorkloadModel,
    policy: &mut dyn SchedulerPolicy,
    telemetry: Option<SharedSink>,
) -> Result<ClusterReport, ClusterError> {
    let cluster = Cluster::new(spec.clone(), model)?;
    match telemetry {
        Some(sink) => cluster.with_telemetry(sink),
        None => cluster,
    }
    .run(policy)
}
