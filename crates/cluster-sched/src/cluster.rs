//! The cluster: N nodes, one power budget, a job queue, and a
//! discrete-event loop.
//!
//! Events are job arrivals, job completions, and node fault transitions
//! (crashes and recoveries from the seeded
//! [`FaultTimeline`]); after each batch of
//! simultaneous events the active [`SchedulerPolicy`] is consulted and its
//! assignments applied. The cluster itself enforces the power budget on
//! every assignment (a defective policy produces recorded violations, never
//! an actually-breached cap) and tracks the instantaneous draw so the
//! invariant "cluster power never exceeds the budget" is checkable after the
//! fact.
//!
//! Nodes need not be identical: [`ClusterSpec::machines`] names a
//! [`MachineMix`], and the cluster resolves each node's machine generation
//! against a [`FleetModel`] holding one workload model per generation. A
//! gang caught on a crashing node is aborted on every member and either
//! rescheduled or killed per the spec's
//! [`FaultPolicy`].

use std::borrow::Cow;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

use actor_core::telemetry::{SharedSink, TraceEvent};
use serde::{Deserialize, Serialize};

use crate::error::ClusterError;
use crate::fleet::{FleetModel, MachineMix};
use crate::job::{Job, JobOutcome, WorkloadSpec};
use crate::node::Node;
use crate::policy::{RunningSummary, SchedContext, SchedulerPolicy};
use crate::profile::WorkloadModel;
use crate::scenario::{fault_timeline, FaultPolicy, FaultSpec, FaultTimeline};

/// Static description of a cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Cluster-wide power budget (W).
    pub power_budget_w: f64,
    /// Which machine generation each node is.
    pub machines: MachineMix,
    /// Fault injection for this run (crashes, stragglers).
    pub faults: FaultSpec,
    /// The workload to run.
    pub workload: WorkloadSpec,
    /// Seed for workload generation and the fault timeline (the model has
    /// its own seed in `ActorConfig`).
    pub seed: u64,
}

impl ClusterSpec {
    /// Validates the spec: workload, machine mix, fault rates, and the
    /// budget against the mix's own idle floor.
    pub fn validate(&self) -> Result<(), ClusterError> {
        if self.nodes == 0 {
            return Err(ClusterError::InvalidSpec { reason: "cluster needs nodes".into() });
        }
        self.workload.validate()?;
        if self.workload.node_counts.iter().any(|&k| k > self.nodes) {
            return Err(ClusterError::InvalidSpec {
                reason: format!(
                    "workload contains jobs wider ({} nodes) than the cluster ({})",
                    self.workload.node_counts.iter().max().unwrap(),
                    self.nodes
                ),
            });
        }
        self.machines.validate()?;
        self.faults.validate()?;
        let idle_floor_w = self.machines.idle_floor_w(self.nodes);
        if self.power_budget_w < idle_floor_w {
            return Err(ClusterError::BudgetBelowIdleFloor {
                budget_w: self.power_budget_w,
                idle_floor_w,
            });
        }
        Ok(())
    }
}

/// A power budget expressed as idle floor + fraction of the maximum dynamic
/// range, the natural way to sweep "tight" → "ample". For heterogeneous
/// mixes use [`budget_for_mix`](crate::fleet::budget_for_mix), which prices
/// each node's own floor.
pub fn budget_from_fraction(nodes: usize, idle_node_w: f64, max_node_w: f64, fraction: f64) -> f64 {
    let n = nodes as f64;
    n * idle_node_w + fraction * n * (max_node_w - idle_node_w)
}

/// The results of one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Policy that produced this run.
    pub policy: String,
    /// Node count.
    pub nodes: usize,
    /// Machine mix name the cluster ran under.
    pub machines: String,
    /// The budget that was enforced (W).
    pub power_budget_w: f64,
    /// Every job's outcome, in completion order (killed jobs included, with
    /// [`JobOutcome::completed`] false).
    pub outcomes: Vec<JobOutcome>,
    /// Time from first arrival (t = 0) to the last job outcome (s).
    pub makespan_s: f64,
    /// Total cluster energy, idle periods included (J).
    pub total_energy_j: f64,
    /// Highest instantaneous cluster draw observed (W).
    pub peak_power_w: f64,
    /// Assignments the cluster had to veto for breaching the budget (a
    /// correct policy never produces any).
    pub cap_violations: usize,
    /// Node crash events replayed from the fault timeline.
    pub node_failures: usize,
    /// Jobs recorded as failed because a member node crashed under the
    /// `Kill` fault policy.
    pub killed_jobs: usize,
}

impl ClusterReport {
    /// Cluster-level energy-delay-squared (J·s²): total energy × makespan².
    pub fn cluster_ed2(&self) -> f64 {
        self.total_energy_j * self.makespan_s * self.makespan_s
    }

    /// Mean queueing delay over all jobs (s).
    pub fn avg_wait_s(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().map(JobOutcome::wait_s).sum::<f64>() / self.outcomes.len() as f64
    }

    /// Number of jobs that missed their deadline (killed jobs with a
    /// deadline always count).
    pub fn deadline_misses(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.deadline_met()).count()
    }

    /// Fraction of phase decisions that throttled below four cores.
    pub fn throttle_fraction(&self) -> f64 {
        let total: usize = self.outcomes.iter().map(|o| o.decisions.len()).sum();
        if total == 0 {
            return 0.0;
        }
        let throttled: usize = self
            .outcomes
            .iter()
            .flat_map(|o| &o.decisions)
            .filter(|(_, c)| *c != xeon_sim::Configuration::Four)
            .count();
        throttled as f64 / total as f64
    }
}

#[derive(Debug, Clone, PartialEq)]
enum EventKind {
    Arrival(Job),
    /// A whole gang completes at once. The members live in the cluster's
    /// gang table; the event is ignored as stale when the gang's
    /// incarnation has moved on (a crash aborted the run it belongs to).
    Completion {
        job_id: usize,
        incarnation: u32,
    },
    /// A node crashes (`fail`) or comes back, per the seeded timeline.
    NodeFault {
        node: usize,
        fail: bool,
    },
}

#[derive(Debug, Clone)]
struct Event {
    time_s: f64,
    /// Tie-breaker making the heap order total and deterministic. Arrivals
    /// are numbered first, then fault transitions, then completions as they
    /// are scheduled — so within one timestamp arrivals land before faults
    /// and faults before completions.
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other.time_s.total_cmp(&self.time_s).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Ordered queue insert — priority first (descending), then arrival, then
/// id. Ids are unique, so the order is total and inserting equals a stable
/// re-sort. Rescheduled jobs keep their original arrival, so they re-enter
/// at the head of their (priority, arrival) class.
fn enqueue(queue: &mut Vec<Job>, job: Job) {
    let pos = queue.partition_point(|q| {
        q.priority
            .cmp(&job.priority)
            .then(job.arrival_s.total_cmp(&q.arrival_s))
            .then(job.id.cmp(&q.id))
            != Ordering::Less
    });
    queue.insert(pos, job);
}

/// Cheap deterministic hasher for the gang-summary index: the keys are
/// `(f64::to_bits, f64::to_bits)` pairs that are already well-mixed doubles,
/// so two multiply-xor rounds beat SipHash by an order of magnitude on the
/// scheduling pass without risking adversarial input (the keys come from the
/// simulation itself).
#[derive(Debug, Default)]
struct GangKeyHasher(u64);

impl Hasher for GangKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(29);
    }
}

/// The simulated cluster.
pub struct Cluster<'a> {
    spec: ClusterSpec,
    /// One workload model per machine generation; borrowed for fleet runs,
    /// owned (a single-generation wrapper) on the compatibility path.
    fleet: Cow<'a, FleetModel>,
    nodes: Vec<Node>,
    /// Machine-generation index of each node, resolved from the spec's mix.
    node_gen: Vec<u16>,
    /// The precomputed fault schedule replayed by the event loop.
    timeline: FaultTimeline,
    /// Attached sink: one record per arrival/start/completion/fault event.
    /// `None` keeps the event loop free of timestamps and record
    /// construction.
    telemetry: Option<SharedSink>,
}

impl<'a> Cluster<'a> {
    /// Builds a cluster from one workload model — the compatibility path
    /// for homogeneous reference clusters. The spec's machine mix must be
    /// uniform `qx6600` (the machine the model was trained on): anything
    /// else needs a real fleet, so this fails loudly instead of silently
    /// running every node as the reference Xeon (the historical bug this
    /// guard retires). Use [`Cluster::new_fleet`] or [`simulate_fleet`]
    /// for mixed-generation specs.
    pub fn new(spec: ClusterSpec, model: &'a WorkloadModel) -> Result<Self, ClusterError> {
        if spec.machines.generations() != ["qx6600"] {
            return Err(ClusterError::InvalidSpec {
                reason: format!(
                    "spec machine mix {:?} needs per-generation models; build a FleetModel \
                     covering the mix and use Cluster::new_fleet / simulate_fleet",
                    spec.machines.name
                ),
            });
        }
        Self::build(spec, Cow::Owned(FleetModel::single(model.clone())))
    }

    /// Builds a cluster against a fleet of per-generation models. Every
    /// generation the spec's machine mix names must be present in the
    /// fleet; a missing one is a loud [`ClusterError::InvalidSpec`].
    pub fn new_fleet(spec: ClusterSpec, fleet: &'a FleetModel) -> Result<Self, ClusterError> {
        Self::build(spec, Cow::Borrowed(fleet))
    }

    fn build(spec: ClusterSpec, fleet: Cow<'a, FleetModel>) -> Result<Self, ClusterError> {
        spec.validate()?;
        let node_gen = fleet.node_gens(&spec.machines, spec.nodes)?;
        let timeline = fault_timeline(&spec.faults, spec.nodes, spec.seed);
        let mut nodes: Vec<Node> = node_gen
            .iter()
            .enumerate()
            .map(|(id, &g)| Node::new(id, fleet.gen(g as usize).machine.clone()))
            .collect();
        for (node, &slowdown) in timeline.slowdowns.iter().enumerate() {
            nodes[node].set_slowdown(slowdown);
        }
        Ok(Self { spec, fleet, nodes, node_gen, timeline, telemetry: None })
    }

    /// Attaches a telemetry sink: [`Cluster::run`] then emits one
    /// [`TraceEvent`] per job arrival, start and completion, per node
    /// crash/recovery, and per SLO violation, and installs the sink into
    /// the policy (so controller-driven policies trace their planning
    /// decisions too).
    #[must_use]
    pub fn with_telemetry(mut self, sink: SharedSink) -> Self {
        self.telemetry = Some(sink);
        self
    }

    /// Current instantaneous cluster draw (W).
    fn draw_w(&self) -> f64 {
        self.nodes.iter().map(Node::power_draw_w).sum()
    }

    /// Runs the workload to completion under `policy`.
    pub fn run(&mut self, policy: &mut dyn SchedulerPolicy) -> Result<ClusterReport, ClusterError> {
        if let Some(sink) = &self.telemetry {
            policy.set_telemetry(sink.clone());
        }
        let fleet: &FleetModel = &self.fleet;
        // Homogeneous clusters (whatever the generation) take the exact
        // pre-fleet scheduling paths against their own generation's model;
        // only genuinely mixed clusters pay for the fleet-aware paths.
        let hetero = self.node_gen.windows(2).any(|w| w[0] != w[1]);
        let common_gen =
            if hetero { 0 } else { self.node_gen.first().copied().unwrap_or(0) as usize };
        let (ctx_model, idle_node_w) = {
            let g = fleet.gen(common_gen);
            (&g.model, g.idle_w)
        };
        let ctx_fleet = if hetero { Some(fleet) } else { None };
        let ctx_node_gen: &[u16] = if hetero { &self.node_gen } else { &[] };
        // Jobs are always priced against the reference generation, so the
        // job stream of a (shape, seed) pair is identical across mixes.
        let jobs = self
            .spec
            .workload
            .generate(self.spec.seed, |id| fleet.reference().four_core_time_s(id))?;
        let total_jobs = jobs.len();

        let mut heap = BinaryHeap::new();
        let mut seq = 0u64;
        for job in jobs {
            heap.push(Event { time_s: job.arrival_s, seq, kind: EventKind::Arrival(job) });
            seq += 1;
        }
        for &(time_s, node, fail) in &self.timeline.transitions {
            heap.push(Event { time_s, seq, kind: EventKind::NodeFault { node, fail } });
            seq += 1;
        }

        let mut queue: Vec<Job> = Vec::new();
        let mut outcomes: Vec<JobOutcome> = Vec::new();
        let mut peak_power_w = self.draw_w();
        let mut cap_violations = 0usize;
        let mut node_failures = 0usize;
        let mut killed_jobs = 0usize;
        let mut makespan_s = 0.0f64;
        // Gang table: job id → (incarnation, members). The incarnation is
        // bumped when a crash aborts the gang, so the completion event of
        // the aborted run — still in the heap — arrives stale and is
        // dropped, while a rescheduled rerun completes under the new
        // incarnation.
        let mut gangs: HashMap<usize, (u32, Vec<usize>)> = HashMap::new();
        let mut incarnations: HashMap<usize, u32> = HashMap::new();

        // Per-event scratch, hoisted out of the loop: a 256-node run visits
        // hundreds of thousands of events, and rebuilding these five
        // vectors per event made the allocator the hottest part of the
        // simulation. Each is cleared (never shrunk) per event.
        let mut batch: Vec<Event> = Vec::new();
        let mut runs: Vec<crate::node::RunningJob> = Vec::new();
        let mut idle_nodes: Vec<usize> = Vec::new();
        let mut running: Vec<RunningSummary> = Vec::new();
        let mut node_draws: Vec<f64> = Vec::new();
        // Index over `running`: gang key → index of the *first* summary with
        // that key. With hundreds of running single-node gangs a linear
        // first-match scan per node is O(nodes × gangs) per scheduling pass —
        // at 256 nodes it was two thirds of the whole simulation.
        let mut running_index: HashMap<(u64, u64), usize, BuildHasherDefault<GangKeyHasher>> =
            HashMap::default();

        while let Some(event) = heap.pop() {
            let now = event.time_s;
            batch.clear();
            batch.push(event);
            while let Some(next) = heap.peek() {
                if next.time_s == now {
                    batch.push(heap.pop().expect("peeked"));
                } else {
                    break;
                }
            }
            for event in batch.drain(..) {
                match event.kind {
                    EventKind::Arrival(job) => {
                        if let Some(sink) = &self.telemetry {
                            sink.record_owned(TraceEvent::JobArrival {
                                time_s: now,
                                job: job.id,
                                benchmark: job.benchmark.to_string(),
                                width: job.nodes,
                            });
                        }
                        enqueue(&mut queue, job);
                    }
                    EventKind::Completion { job_id, incarnation } => {
                        let live = gangs.get(&job_id).is_some_and(|(inc, _)| *inc == incarnation);
                        if !live {
                            // A crash aborted this run after its completion
                            // was scheduled.
                            continue;
                        }
                        let (_, members) = gangs.remove(&job_id).expect("checked above");
                        runs.clear();
                        for &node in &members {
                            runs.push(self.nodes[node].complete(now));
                        }
                        let energy_j: f64 = runs.iter().map(|r| r.plan.energy_j).sum();
                        let peak_power_w: f64 = runs.iter().map(|r| r.plan.peak_power_w).sum();
                        if let Some(sink) = &self.telemetry {
                            let run = runs.first().expect("completions have members");
                            sink.record_owned(TraceEvent::JobCompletion {
                                time_s: now,
                                job: run.job.id,
                                width: members.len(),
                                energy_j,
                            });
                        }
                        // The gang's node list travels by move: policy
                        // assignment → gang table → outcome, never copied.
                        let run = runs.swap_remove(0);
                        if let Some(sink) = &self.telemetry {
                            if let Some(deadline_s) = run.job.deadline_s {
                                if now > deadline_s {
                                    sink.record_owned(TraceEvent::SloViolated {
                                        time_s: now,
                                        job: run.job.id,
                                        deadline_s,
                                        finish_s: now,
                                    });
                                }
                            }
                        }
                        makespan_s = makespan_s.max(now);
                        outcomes.push(JobOutcome {
                            job: run.job,
                            start_s: run.start_s,
                            finish_s: now,
                            energy_j,
                            peak_power_w,
                            decisions: run.plan.decisions,
                            nodes: members,
                            completed: true,
                        });
                    }
                    EventKind::NodeFault { node, fail } => {
                        if !fail {
                            self.nodes[node].recover(now);
                            if let Some(sink) = &self.telemetry {
                                sink.record_owned(TraceEvent::NodeRecovered { time_s: now, node });
                            }
                            continue;
                        }
                        node_failures += 1;
                        if let Some(sink) = &self.telemetry {
                            sink.record_owned(TraceEvent::NodeFailed { time_s: now, node });
                        }
                        let Some(run) = self.nodes[node].fail(now) else { continue };
                        // The crash caught a gang mid-run: abort every
                        // member (each charges its pro-rata energy) and
                        // retire this incarnation.
                        let job_id = run.job.id;
                        let (inc, members) =
                            gangs.remove(&job_id).expect("running share implies a live gang");
                        incarnations.insert(job_id, inc + 1);
                        runs.clear();
                        runs.push(run);
                        for &m in &members {
                            if m != node {
                                runs.push(
                                    self.nodes[m].abort(now).expect("gang members run together"),
                                );
                            }
                        }
                        match self.spec.faults.on_failure {
                            FaultPolicy::Reschedule => {
                                enqueue(&mut queue, runs[0].job.clone());
                            }
                            FaultPolicy::Kill => {
                                killed_jobs += 1;
                                let energy_j: f64 = runs
                                    .iter()
                                    .map(|r| {
                                        let span = r.finish_s - r.start_s;
                                        let frac = if span > 0.0 {
                                            ((now - r.start_s) / span).clamp(0.0, 1.0)
                                        } else {
                                            1.0
                                        };
                                        r.plan.energy_j * frac
                                    })
                                    .sum();
                                let peak_power_w: f64 =
                                    runs.iter().map(|r| r.plan.peak_power_w).sum();
                                let run = runs.swap_remove(0);
                                if let Some(sink) = &self.telemetry {
                                    if let Some(deadline_s) = run.job.deadline_s {
                                        // A killed job can never meet its
                                        // deadline.
                                        sink.record_owned(TraceEvent::SloViolated {
                                            time_s: now,
                                            job: run.job.id,
                                            deadline_s,
                                            finish_s: now,
                                        });
                                    }
                                }
                                makespan_s = makespan_s.max(now);
                                outcomes.push(JobOutcome {
                                    job: run.job,
                                    start_s: run.start_s,
                                    finish_s: now,
                                    energy_j,
                                    peak_power_w,
                                    decisions: run.plan.decisions,
                                    nodes: members,
                                    completed: false,
                                });
                            }
                        }
                    }
                }
            }

            // Scheduling pass.
            idle_nodes.clear();
            idle_nodes.extend(self.nodes.iter().filter(|n| n.is_available()).map(|n| n.id));
            if !queue.is_empty() && !idle_nodes.is_empty() {
                // Summarise running gangs (one entry per job, not per node):
                // each node folds into the first summary matching its
                // (finish, peak) key, starting a new one when that summary is
                // already at its gang's width. `running_index` finds the
                // first match in O(1); keying on bits equals keying on `==`
                // here because neither field can be NaN or -0.0 (finish is
                // now + a positive runtime, peak is a positive draw). Gang
                // members are adjacent in node order often enough that the
                // previous node's key short-circuits most map probes.
                running.clear();
                running_index.clear();
                let mut prev: Option<((u64, u64), usize)> = None;
                for n in &self.nodes {
                    if let Some(r) = n.running() {
                        let key = (r.finish_s.to_bits(), r.plan.peak_power_w.to_bits());
                        let first = match prev {
                            Some((k, idx)) if k == key => idx,
                            _ => *running_index.entry(key).or_insert(running.len()),
                        };
                        match running.get_mut(first) {
                            Some(s) if s.nodes < r.job.nodes => s.nodes += 1,
                            _ => running.push(RunningSummary {
                                finish_s: r.finish_s,
                                nodes: 1,
                                node_peak_w: r.plan.peak_power_w,
                            }),
                        }
                        prev = Some((key, first));
                    }
                }
                running.sort_by(|a, b| a.finish_s.total_cmp(&b.finish_s));
                // The observe step of the control plane at cluster level:
                // per-node instantaneous draw. Coordinators use it to size
                // the headroom (budget minus running draw) they
                // redistribute across the jobs starting at this event;
                // running jobs keep their granted caps until completion.
                node_draws.clear();
                node_draws.extend(self.nodes.iter().map(Node::power_draw_w));
                let ctx = SchedContext {
                    now,
                    queue: &queue,
                    idle_nodes: &idle_nodes,
                    model: ctx_model,
                    budget_w: self.spec.power_budget_w,
                    draw_w: self.draw_w(),
                    node_idle_w: idle_node_w,
                    node_draw_w: &node_draws,
                    running: &running,
                    fleet: ctx_fleet,
                    node_gen: ctx_node_gen,
                };
                let assignments = policy.assign(&ctx);
                // Apply in descending queue index so removals stay valid.
                let mut ordered = assignments;
                ordered.sort_by_key(|a| std::cmp::Reverse(a.queue_idx));
                for a in ordered {
                    // The cluster re-checks the cap: an assignment may only
                    // raise the draw by Σ (plan peak − the member's idle
                    // draw), and every gang member must actually be up and
                    // idle.
                    let k = a.nodes.len();
                    let extra: f64 = if hetero {
                        a.nodes
                            .iter()
                            .map(|&n| a.plan.peak_power_w - self.nodes[n].idle_power_w())
                            .sum()
                    } else {
                        (a.plan.peak_power_w - idle_node_w) * k as f64
                    };
                    let members_free = a.nodes.iter().all(|&n| self.nodes[n].is_available());
                    let width_ok = k == queue[a.queue_idx].nodes;
                    if !members_free
                        || !width_ok
                        || self.draw_w() + extra > self.spec.power_budget_w + 1e-6
                    {
                        cap_violations += 1;
                        continue;
                    }
                    let job = queue.remove(a.queue_idx);
                    if let Some(sink) = &self.telemetry {
                        sink.record(&TraceEvent::JobStart {
                            time_s: now,
                            job: job.id,
                            width: k,
                            node_peak_w: a.plan.peak_power_w,
                            exec_time_s: a.plan.exec_time_s,
                        });
                    }
                    // An SPMD gang runs at the pace of its slowest member:
                    // a straggler stretches the whole gang's finish.
                    let slow =
                        a.nodes.iter().map(|&n| self.nodes[n].slowdown()).fold(1.0, f64::max);
                    let finish_s = now + a.plan.exec_time_s * slow;
                    let job_id = job.id;
                    for &node in &a.nodes {
                        self.nodes[node].assign(job.clone(), a.plan.clone(), now, finish_s);
                    }
                    let inc = *incarnations.entry(job_id).or_insert(0);
                    gangs.insert(job_id, (inc, a.nodes));
                    heap.push(Event {
                        time_s: finish_s,
                        seq,
                        kind: EventKind::Completion { job_id, incarnation: inc },
                    });
                    seq += 1;
                }
            }
            peak_power_w = peak_power_w.max(self.draw_w());

            // Every job has an outcome: later fault transitions cannot
            // change the report, so stop replaying them.
            if outcomes.len() == total_jobs {
                break;
            }

            // Deadlock check: nothing running, nothing scheduled, no future
            // events, but jobs still queued — the spec starves the queue.
            if heap.is_empty() && !queue.is_empty() && self.nodes.iter().all(Node::is_idle) {
                let widest = queue.iter().map(|j| j.nodes).max().unwrap_or(0);
                return Err(ClusterError::InvalidSpec {
                    reason: format!(
                        "the {} remaining job(s) cannot run even on an idle cluster: the \
                         {:.0} W budget starves them, or no machine generation of the {:?} \
                         mix has {widest} node(s) for the widest gang (gangs never span \
                         generations)",
                        queue.len(),
                        self.spec.power_budget_w,
                        self.spec.machines.name,
                    ),
                });
            }
        }

        let total_energy_j = self.nodes.iter_mut().map(|n| n.energy_until(makespan_s)).sum::<f64>();
        Ok(ClusterReport {
            policy: policy.name().to_string(),
            nodes: self.spec.nodes,
            machines: self.spec.machines.name.clone(),
            power_budget_w: self.spec.power_budget_w,
            outcomes,
            makespan_s,
            total_energy_j,
            peak_power_w,
            cap_violations,
            node_failures,
            killed_jobs,
        })
    }
}

/// Convenience: build a cluster and run one policy (homogeneous reference
/// clusters; see [`simulate_fleet`] for mixed-generation specs).
pub fn simulate(
    spec: &ClusterSpec,
    model: &WorkloadModel,
    policy: &mut dyn SchedulerPolicy,
) -> Result<ClusterReport, ClusterError> {
    simulate_traced(spec, model, policy, None)
}

/// [`simulate`] with an optional telemetry sink: `Some` traces every job
/// arrival/start/completion, node crash/recovery, SLO violation (and,
/// through the policy, every controller decision and budget
/// redistribution); `None` is exactly [`simulate`].
pub fn simulate_traced(
    spec: &ClusterSpec,
    model: &WorkloadModel,
    policy: &mut dyn SchedulerPolicy,
    telemetry: Option<SharedSink>,
) -> Result<ClusterReport, ClusterError> {
    let cluster = Cluster::new(spec.clone(), model)?;
    match telemetry {
        Some(sink) => cluster.with_telemetry(sink),
        None => cluster,
    }
    .run(policy)
}

/// [`simulate_traced`] against a fleet of per-generation models — required
/// whenever the spec's machine mix is not the uniform reference.
pub fn simulate_fleet(
    spec: &ClusterSpec,
    fleet: &FleetModel,
    policy: &mut dyn SchedulerPolicy,
    telemetry: Option<SharedSink>,
) -> Result<ClusterReport, ClusterError> {
    let cluster = Cluster::new_fleet(spec.clone(), fleet)?;
    match telemetry {
        Some(sink) => cluster.with_telemetry(sink),
        None => cluster,
    }
    .run(policy)
}
