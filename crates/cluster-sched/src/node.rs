//! A cluster node: one machine plus its per-node ACTOR runtime state.
//!
//! Each [`Node`] owns a [`xeon_sim::Machine`] (the hardware model) and an
//! [`actor_core::ActorRuntime`] in fixed-plan mode: when the cluster
//! scheduler starts a job, the per-phase configuration choices are installed
//! as a phase → binding plan, exactly what a live `phase_rt::Team` on that
//! node would consult before each parallel region. The node also does the
//! energy bookkeeping: idle intervals are charged at the machine's idle
//! power, busy intervals at the job plan's energy.
//!
//! Multi-node jobs are gang-scheduled: every member node receives the same
//! plan (SPMD), and the cluster completes all members at the job's finish
//! time.
//!
//! Nodes also carry the scenario layer's health state: a *failed* node draws
//! no power, accepts no work and aborts its running share (charged pro-rata
//! for the fraction it executed); a *straggler* node runs every job
//! [`Node::slowdown`]× longer than planned. Failure and recovery times come
//! from the seeded [`crate::scenario::FaultTimeline`].

use std::collections::HashMap;

use actor_core::{ActorRuntime, ThrottleMode};
use phase_rt::{Binding, MachineShape, PhaseId};
use xeon_sim::{Configuration, Machine};

use crate::job::Job;
use crate::profile::ExecutionPlan;

/// A job (share) currently executing on a node.
#[derive(Debug, Clone)]
pub struct RunningJob {
    /// The job this node is a member of.
    pub job: Job,
    /// When it started (s).
    pub start_s: f64,
    /// When it will finish (s).
    pub finish_s: f64,
    /// The per-node plan it runs under.
    pub plan: ExecutionPlan,
}

/// One node of the simulated cluster.
#[derive(Debug)]
pub struct Node {
    /// Stable node id.
    pub id: usize,
    machine: Machine,
    runtime: ActorRuntime,
    running: Option<RunningJob>,
    /// Total energy charged to this node so far (J), idle + busy.
    energy_j: f64,
    /// Simulation time up to which energy has been accounted (s).
    accounted_to_s: f64,
    /// Whether the node is currently crashed (draws no power, takes no work).
    failed: bool,
    /// Execution-time multiplier (`1.0` healthy, `> 1.0` straggler).
    slowdown: f64,
}

/// Maps a paper configuration onto a live-runtime binding for a node-local
/// `phase_rt` team (the canonical mapping shared with the controller layer).
pub fn binding_for(config: Configuration, shape: &MachineShape) -> Binding {
    actor_core::controller::binding_for(config, shape)
}

impl Node {
    /// Creates a node around a machine model.
    pub fn new(id: usize, machine: Machine) -> Self {
        Self {
            id,
            machine,
            runtime: ActorRuntime::new(ThrottleMode::Fixed { plan: HashMap::new() }),
            running: None,
            energy_j: 0.0,
            accounted_to_s: 0.0,
            failed: false,
            slowdown: 1.0,
        }
    }

    /// Marks the node a straggler: jobs take `slowdown`× the planned time.
    /// Set once before the run starts, from the seeded fault timeline.
    pub fn set_slowdown(&mut self, slowdown: f64) {
        assert!(slowdown >= 1.0, "slowdown must be >= 1");
        self.slowdown = slowdown;
    }

    /// The node's execution-time multiplier (`1.0` for healthy nodes).
    pub fn slowdown(&self) -> f64 {
        self.slowdown
    }

    /// Whether the node is currently crashed.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Whether the node can accept a job: up *and* idle.
    pub fn is_available(&self) -> bool {
        !self.failed && self.running.is_none()
    }

    /// The machine model.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The node's live-runtime view of the current job's plan (phase →
    /// binding), as a `phase_rt` listener would consult it.
    pub fn runtime(&self) -> &ActorRuntime {
        &self.runtime
    }

    /// Idle power of this node (W).
    pub fn idle_power_w(&self) -> f64 {
        self.machine.params().power.system_idle_w
    }

    /// Whether the node can accept a job.
    pub fn is_idle(&self) -> bool {
        self.running.is_none()
    }

    /// The running job (share), if any.
    pub fn running(&self) -> Option<&RunningJob> {
        self.running.as_ref()
    }

    /// Instantaneous power draw (W): the running plan's peak while busy
    /// (conservative, this is what the cap must cover), idle floor otherwise
    /// — and nothing at all while crashed.
    pub fn power_draw_w(&self) -> f64 {
        if self.failed {
            return 0.0;
        }
        match &self.running {
            Some(run) => run.plan.peak_power_w,
            None => self.idle_power_w(),
        }
    }

    /// Charges idle energy up to `now`. Called before any state change. A
    /// crashed node accrues nothing.
    fn account_until(&mut self, now: f64) {
        if now > self.accounted_to_s {
            if self.running.is_none() && !self.failed {
                self.energy_j += (now - self.accounted_to_s) * self.idle_power_w();
            }
            self.accounted_to_s = now;
        }
    }

    /// Starts a job share under `plan` at time `now`, finishing at
    /// `finish_s` — the *gang* finish time, which the cluster computes as
    /// the plan time stretched by the slowest member's [`Self::slowdown`]
    /// (an SPMD gang runs at the pace of its slowest node). Returns
    /// `finish_s` for convenience.
    ///
    /// Panics if the node is busy or crashed — the scheduler must only
    /// assign to [`Self::is_available`] nodes.
    pub fn assign(&mut self, job: Job, plan: ExecutionPlan, now: f64, finish_s: f64) -> f64 {
        assert!(self.is_idle(), "node {} is busy", self.id);
        assert!(!self.failed, "node {} is failed", self.id);
        self.account_until(now);
        let shape = MachineShape::quad_core();
        let bindings: HashMap<PhaseId, Binding> = plan
            .decisions
            .iter()
            .enumerate()
            .map(|(i, (_, config))| (PhaseId::new(i as u32), binding_for(*config, &shape)))
            .collect();
        self.runtime = ActorRuntime::new(ThrottleMode::Fixed { plan: bindings });
        self.running = Some(RunningJob { job, start_s: now, finish_s, plan });
        finish_s
    }

    /// Completes the running job share at `now` (its scheduled finish time)
    /// and returns the per-node record. The cluster merges the gang members'
    /// records into one [`crate::job::JobOutcome`].
    pub fn complete(&mut self, now: f64) -> RunningJob {
        let run = self.running.take().expect("complete called on an idle node");
        // Busy interval energy comes from the plan (already integrated over
        // the job's phases and timesteps). On a straggler the same work is
        // spread over a longer interval — same energy, lower average power —
        // a deliberate work-conserving approximation.
        self.energy_j += run.plan.energy_j;
        self.accounted_to_s = now;
        self.runtime = ActorRuntime::new(ThrottleMode::Fixed { plan: HashMap::new() });
        run
    }

    /// Aborts the running share at `now` without completing it (the gang
    /// lost a member). Energy is charged pro rata for the fraction of the
    /// interval actually executed; the node itself stays up.
    pub fn abort(&mut self, now: f64) -> Option<RunningJob> {
        let aborted = self.running.take();
        if let Some(run) = &aborted {
            let span = run.finish_s - run.start_s;
            let frac = if span > 0.0 { ((now - run.start_s) / span).clamp(0.0, 1.0) } else { 1.0 };
            self.energy_j += run.plan.energy_j * frac;
            self.accounted_to_s = self.accounted_to_s.max(now);
            self.runtime = ActorRuntime::new(ThrottleMode::Fixed { plan: HashMap::new() });
        }
        aborted
    }

    /// Crashes the node at `now`: the running share, if any, is aborted (see
    /// [`Self::abort`]) and returned. While failed the node draws no power.
    pub fn fail(&mut self, now: f64) -> Option<RunningJob> {
        self.account_until(now);
        let aborted = self.abort(now);
        self.failed = true;
        aborted
    }

    /// Brings a crashed node back at `now`; it resumes idling (and idle
    /// power) immediately.
    pub fn recover(&mut self, now: f64) {
        self.account_until(now);
        self.failed = false;
    }

    /// Total energy charged to this node up to `now` (J).
    pub fn energy_until(&mut self, now: f64) -> f64 {
        self.account_until(now);
        self.energy_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npb_workloads::BenchmarkId;

    fn plan() -> ExecutionPlan {
        ExecutionPlan {
            decisions: vec![
                ("a".to_string(), Configuration::TwoLoose),
                ("b".to_string(), Configuration::Four),
            ],
            freq_steps: Vec::new(),
            exec_time_s: 10.0,
            energy_j: 1500.0,
            peak_power_w: 180.0,
        }
    }

    fn job() -> Job {
        Job {
            id: 1,
            benchmark: BenchmarkId::Cg,
            arrival_s: 0.0,
            nodes: 1,
            priority: 0,
            deadline_s: Some(25.0),
            duration_scale: 1.0,
        }
    }

    #[test]
    fn lifecycle_idle_busy_idle_with_energy_accounting() {
        let mut node = Node::new(0, Machine::xeon_qx6600());
        let idle_w = node.idle_power_w();
        assert!(node.is_idle());
        assert_eq!(node.power_draw_w(), idle_w);

        // 5 s idle, then a 10 s job.
        let finish = node.assign(job(), plan(), 5.0, 15.0);
        assert_eq!(finish, 15.0);
        assert!(!node.is_idle());
        assert_eq!(node.power_draw_w(), 180.0);

        let run = node.complete(finish);
        assert!(node.is_idle());
        assert_eq!(run.start_s, 5.0);
        assert_eq!(run.finish_s, 15.0);
        assert_eq!(run.plan.decisions.len(), 2);

        // Energy: 5 s idle + the job's 1500 J, then 5 more idle seconds.
        let total = node.energy_until(20.0);
        assert!((total - (10.0 * idle_w + 1500.0)).abs() < 1e-6);
    }

    #[test]
    fn runtime_exposes_the_installed_plan() {
        let mut node = Node::new(3, Machine::xeon_qx6600());
        node.assign(job(), plan(), 0.0, 10.0);
        // Phase 0 was planned as 2b = two threads spread across dies.
        let binding = node.runtime().decision_for(PhaseId::new(0)).unwrap();
        assert_eq!(binding.num_threads(), 2);
        let binding = node.runtime().decision_for(PhaseId::new(1)).unwrap();
        assert_eq!(binding.num_threads(), 4);
        assert!(node.runtime().decision_for(PhaseId::new(9)).is_none());
        node.complete(10.0);
        assert!(node.runtime().decision_for(PhaseId::new(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "busy")]
    fn double_assignment_panics() {
        let mut node = Node::new(0, Machine::xeon_qx6600());
        node.assign(job(), plan(), 0.0, 10.0);
        node.assign(job(), plan(), 1.0, 11.0);
    }

    #[test]
    fn failure_aborts_pro_rata_and_draws_nothing_until_recovery() {
        let mut node = Node::new(0, Machine::xeon_qx6600());
        let idle_w = node.idle_power_w();
        // Fail 4 s into a 10 s job: 40 % of the plan's 1500 J is charged.
        node.assign(job(), plan(), 0.0, 10.0);
        let aborted = node.fail(4.0).expect("a running share was aborted");
        assert_eq!(aborted.job.id, 1);
        assert!(node.is_failed());
        assert!(!node.is_available());
        assert_eq!(node.power_draw_w(), 0.0);
        // 4..9 s down: no idle energy accrues while failed.
        assert!((node.energy_until(9.0) - 0.4 * 1500.0).abs() < 1e-9);
        node.recover(9.0);
        assert!(node.is_available());
        assert_eq!(node.power_draw_w(), idle_w);
        // 9..11 s idle again.
        assert!((node.energy_until(11.0) - (0.4 * 1500.0 + 2.0 * idle_w)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn assigning_to_a_failed_node_panics() {
        let mut node = Node::new(0, Machine::xeon_qx6600());
        node.fail(0.0);
        node.assign(job(), plan(), 1.0, 11.0);
    }
}
