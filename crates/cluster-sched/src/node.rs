//! A cluster node: one machine plus its per-node ACTOR runtime state.
//!
//! Each [`Node`] owns a [`xeon_sim::Machine`] (the hardware model) and an
//! [`actor_core::ActorRuntime`] in fixed-plan mode: when the cluster
//! scheduler starts a job, the per-phase configuration choices are installed
//! as a phase → binding plan, exactly what a live `phase_rt::Team` on that
//! node would consult before each parallel region. The node also does the
//! energy bookkeeping: idle intervals are charged at the machine's idle
//! power, busy intervals at the job plan's energy.
//!
//! Multi-node jobs are gang-scheduled: every member node receives the same
//! plan (SPMD), and the cluster completes all members at the job's finish
//! time.

use std::collections::HashMap;

use actor_core::{ActorRuntime, ThrottleMode};
use phase_rt::{Binding, MachineShape, PhaseId};
use xeon_sim::{Configuration, Machine};

use crate::job::Job;
use crate::profile::ExecutionPlan;

/// A job (share) currently executing on a node.
#[derive(Debug, Clone)]
pub struct RunningJob {
    /// The job this node is a member of.
    pub job: Job,
    /// When it started (s).
    pub start_s: f64,
    /// When it will finish (s).
    pub finish_s: f64,
    /// The per-node plan it runs under.
    pub plan: ExecutionPlan,
}

/// One node of the simulated cluster.
#[derive(Debug)]
pub struct Node {
    /// Stable node id.
    pub id: usize,
    machine: Machine,
    runtime: ActorRuntime,
    running: Option<RunningJob>,
    /// Total energy charged to this node so far (J), idle + busy.
    energy_j: f64,
    /// Simulation time up to which energy has been accounted (s).
    accounted_to_s: f64,
}

/// Maps a paper configuration onto a live-runtime binding for a node-local
/// `phase_rt` team (the canonical mapping shared with the controller layer).
pub fn binding_for(config: Configuration, shape: &MachineShape) -> Binding {
    actor_core::controller::binding_for(config, shape)
}

impl Node {
    /// Creates a node around a machine model.
    pub fn new(id: usize, machine: Machine) -> Self {
        Self {
            id,
            machine,
            runtime: ActorRuntime::new(ThrottleMode::Fixed { plan: HashMap::new() }),
            running: None,
            energy_j: 0.0,
            accounted_to_s: 0.0,
        }
    }

    /// The machine model.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The node's live-runtime view of the current job's plan (phase →
    /// binding), as a `phase_rt` listener would consult it.
    pub fn runtime(&self) -> &ActorRuntime {
        &self.runtime
    }

    /// Idle power of this node (W).
    pub fn idle_power_w(&self) -> f64 {
        self.machine.params().power.system_idle_w
    }

    /// Whether the node can accept a job.
    pub fn is_idle(&self) -> bool {
        self.running.is_none()
    }

    /// The running job (share), if any.
    pub fn running(&self) -> Option<&RunningJob> {
        self.running.as_ref()
    }

    /// Instantaneous power draw (W): the running plan's peak while busy
    /// (conservative, this is what the cap must cover), idle floor otherwise.
    pub fn power_draw_w(&self) -> f64 {
        match &self.running {
            Some(run) => run.plan.peak_power_w,
            None => self.idle_power_w(),
        }
    }

    /// Charges idle energy up to `now`. Called before any state change.
    fn account_until(&mut self, now: f64) {
        if now > self.accounted_to_s {
            if self.running.is_none() {
                self.energy_j += (now - self.accounted_to_s) * self.idle_power_w();
            }
            self.accounted_to_s = now;
        }
    }

    /// Starts a job share under `plan` at time `now`; returns its finish
    /// time.
    ///
    /// Panics if the node is busy — the scheduler must only assign to idle
    /// nodes.
    pub fn assign(&mut self, job: Job, plan: ExecutionPlan, now: f64) -> f64 {
        assert!(self.is_idle(), "node {} is busy", self.id);
        self.account_until(now);
        let shape = MachineShape::quad_core();
        let bindings: HashMap<PhaseId, Binding> = plan
            .decisions
            .iter()
            .enumerate()
            .map(|(i, (_, config))| (PhaseId::new(i as u32), binding_for(*config, &shape)))
            .collect();
        self.runtime = ActorRuntime::new(ThrottleMode::Fixed { plan: bindings });
        let finish_s = now + plan.exec_time_s;
        self.running = Some(RunningJob { job, start_s: now, finish_s, plan });
        finish_s
    }

    /// Completes the running job share at `now` (its scheduled finish time)
    /// and returns the per-node record. The cluster merges the gang members'
    /// records into one [`crate::job::JobOutcome`].
    pub fn complete(&mut self, now: f64) -> RunningJob {
        let run = self.running.take().expect("complete called on an idle node");
        // Busy interval energy comes from the plan (already integrated over
        // the job's phases and timesteps).
        self.energy_j += run.plan.energy_j;
        self.accounted_to_s = now;
        self.runtime = ActorRuntime::new(ThrottleMode::Fixed { plan: HashMap::new() });
        run
    }

    /// Total energy charged to this node up to `now` (J).
    pub fn energy_until(&mut self, now: f64) -> f64 {
        self.account_until(now);
        self.energy_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npb_workloads::BenchmarkId;

    fn plan() -> ExecutionPlan {
        ExecutionPlan {
            decisions: vec![
                ("a".to_string(), Configuration::TwoLoose),
                ("b".to_string(), Configuration::Four),
            ],
            freq_steps: Vec::new(),
            exec_time_s: 10.0,
            energy_j: 1500.0,
            peak_power_w: 180.0,
        }
    }

    fn job() -> Job {
        Job {
            id: 1,
            benchmark: BenchmarkId::Cg,
            arrival_s: 0.0,
            nodes: 1,
            priority: 0,
            deadline_s: Some(25.0),
            duration_scale: 1.0,
        }
    }

    #[test]
    fn lifecycle_idle_busy_idle_with_energy_accounting() {
        let mut node = Node::new(0, Machine::xeon_qx6600());
        let idle_w = node.idle_power_w();
        assert!(node.is_idle());
        assert_eq!(node.power_draw_w(), idle_w);

        // 5 s idle, then a 10 s job.
        let finish = node.assign(job(), plan(), 5.0);
        assert_eq!(finish, 15.0);
        assert!(!node.is_idle());
        assert_eq!(node.power_draw_w(), 180.0);

        let run = node.complete(finish);
        assert!(node.is_idle());
        assert_eq!(run.start_s, 5.0);
        assert_eq!(run.finish_s, 15.0);
        assert_eq!(run.plan.decisions.len(), 2);

        // Energy: 5 s idle + the job's 1500 J, then 5 more idle seconds.
        let total = node.energy_until(20.0);
        assert!((total - (10.0 * idle_w + 1500.0)).abs() < 1e-6);
    }

    #[test]
    fn runtime_exposes_the_installed_plan() {
        let mut node = Node::new(3, Machine::xeon_qx6600());
        node.assign(job(), plan(), 0.0);
        // Phase 0 was planned as 2b = two threads spread across dies.
        let binding = node.runtime().decision_for(PhaseId::new(0)).unwrap();
        assert_eq!(binding.num_threads(), 2);
        let binding = node.runtime().decision_for(PhaseId::new(1)).unwrap();
        assert_eq!(binding.num_threads(), 4);
        assert!(node.runtime().decision_for(PhaseId::new(9)).is_none());
        node.complete(10.0);
        assert!(node.runtime().decision_for(PhaseId::new(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "busy")]
    fn double_assignment_panics() {
        let mut node = Node::new(0, Machine::xeon_qx6600());
        node.assign(job(), plan(), 0.0);
        node.assign(job(), plan(), 1.0);
    }
}
