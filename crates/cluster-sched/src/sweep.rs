//! The parallel sweep engine: a cartesian grid of cluster experiments run
//! concurrently on a [`phase_rt::ThreadPool`].
//!
//! The cluster sweeps (`cluster_power_cap`, `coordinated_capping`, the
//! policy-search `cluster_sweep` grid, the `scenario_sweep` hazard grids)
//! are embarrassingly parallel: every
//! (nodes × budget × policy × machines × faults × arrivals × seed) cell is
//! an independent discrete-event simulation against the same immutable
//! [`FleetModel`]. The engine expands a [`SweepSpec`] into ordered
//! [`SweepCell`]s, shares the fleet by `Arc` (built once — thousands of
//! cells never re-train the ANN ensembles), executes cells on a worker
//! pool, and streams results back over a channel in completion order while
//! preserving a deterministic *report* order: [`run_sweep_fleet`] returns
//! outcomes sorted by cell index, so rendered CSV/JSON is bit-identical
//! regardless of worker count or completion order
//! (`actor_core::report::StreamingReporter` is the matching presentation
//! adapter).
//!
//! Worker panics do not poison the engine: the pool catches the unwind at
//! the job boundary and the sweep join surfaces it as
//! [`phase_rt::RtError::WorkerPanicked`] inside [`SweepError::Pool`].

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use actor_core::telemetry::{SharedSink, TraceEvent};
use phase_rt::{RtError, ThreadPool};
use serde::{Deserialize, Serialize};

use crate::cluster::{simulate_fleet, ClusterReport, ClusterSpec};
use crate::error::ClusterError;
use crate::fleet::{budget_for_mix, mix_by_name, FleetModel, MACHINE_MIX_NAMES};
use crate::job::WorkloadSpec;
use crate::policy::{policy_by_name_fleet, POLICY_NAMES};
use crate::profile::WorkloadModel;
use crate::scenario::{
    arrival_process_by_name, fault_scenario_by_name, ARRIVAL_PROCESS_NAMES, FAULT_SCENARIO_NAMES,
};

/// The per-node dynamic power ceiling used to translate budget fractions
/// into watts — the historical constant of every cluster bin.
pub const DEFAULT_MAX_NODE_W: f64 = 160.0;

/// The workload-shaping rule the cluster bins have always used: job count
/// and arrival rate scale with the cluster, and job width is capped at half
/// the cluster so the tight budget tier stays feasible for strict FCFS (a
/// full-width four-core BT would need ~0.83 of the dynamic range to
/// itself).
pub fn default_workload(nodes: usize) -> WorkloadSpec {
    WorkloadSpec {
        num_jobs: 8 * nodes.max(3),
        mean_interarrival_s: 12.0 / nodes as f64,
        node_counts: if nodes >= 8 {
            vec![1, 1, 2, 4]
        } else if nodes >= 4 {
            vec![1, 1, 2]
        } else {
            vec![1]
        },
        ..Default::default()
    }
}

/// A light workload for huge policy-search grids: a handful of jobs per
/// cell so a ~1000-cell grid stays interactive, same width rule as
/// [`default_workload`].
pub fn light_workload(nodes: usize) -> WorkloadSpec {
    WorkloadSpec { num_jobs: (2 * nodes).clamp(4, 16), ..default_workload(nodes) }
}

/// The four-benchmark test workload the cross-crate suites sweep with: six
/// jobs per cell drawing only CG/IS/MG/BT, so it pairs with a model trained
/// on those four benchmarks (`ActorConfig::fast`, `corpus_replicas: 2`)
/// instead of the full NAS suite the bins use.
pub fn quad_test_workload(nodes: usize) -> WorkloadSpec {
    use npb_workloads::BenchmarkId;
    WorkloadSpec {
        num_jobs: 6,
        mean_interarrival_s: 12.0 / nodes as f64,
        benchmarks: vec![BenchmarkId::Cg, BenchmarkId::Is, BenchmarkId::Mg, BenchmarkId::Bt],
        node_counts: if nodes >= 4 { vec![1, 1, 2] } else { vec![1] },
        ..Default::default()
    }
}

/// The workload shapes a sweep can name *on the wire*: a
/// [`SweepSpec::workload`] is a function pointer, which cannot cross a
/// process boundary, so the distributed cluster daemon ships one of these
/// names and workers rebuild the `fn` through [`workload_shape_by_name`].
pub const WORKLOAD_SHAPE_NAMES: [&str; 3] = ["default", "light", "quad-test"];

/// Resolves a named workload shape ([`WORKLOAD_SHAPE_NAMES`]) back to its
/// function: `"default"` → [`default_workload`], `"light"` →
/// [`light_workload`], `"quad-test"` → [`quad_test_workload`].
pub fn workload_shape_by_name(name: &str) -> Option<fn(usize) -> WorkloadSpec> {
    match name {
        "default" => Some(default_workload),
        "light" => Some(light_workload),
        "quad-test" => Some(quad_test_workload),
        _ => None,
    }
}

/// One point of the sweep grid (a cell before it is given its index).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Cluster size.
    pub nodes: usize,
    /// Budget tier label (reporting only).
    pub budget_label: String,
    /// Budget as a fraction of the cluster's dynamic power range.
    pub budget_fraction: f64,
    /// Scheduling policy name (see [`POLICY_NAMES`]).
    pub policy: String,
    /// Machine mix name (see [`MACHINE_MIX_NAMES`]); `"uniform"` is the
    /// historical all-reference cluster.
    pub machines: String,
    /// Fault scenario name (see [`FAULT_SCENARIO_NAMES`]); `"none"` is the
    /// historical healthy cluster.
    pub faults: String,
    /// Arrival process name (see [`ARRIVAL_PROCESS_NAMES`]); `"poisson"` is
    /// the historical steady stream.
    pub arrivals: String,
    /// Workload generation seed.
    pub seed: u64,
}

/// One expanded, ordered cell of the sweep. `index` is the cell's position
/// in the deterministic expansion order — the order every report uses, no
/// matter which worker finishes first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Position in the deterministic expansion order.
    pub index: usize,
    /// The grid point.
    pub point: SweepPoint,
}

/// A cartesian sweep grid plus explicit extra cells.
///
/// Expansion order is `nodes → budgets → policies → machines → faults →
/// arrivals → seeds` (the historical nested-loop order of the cluster bins,
/// with the scenario axes innermost before seeds), with `extra` points
/// appended afterwards in their given order.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Node-count axis.
    pub nodes: Vec<usize>,
    /// Budget axis: `(label, fraction of the dynamic power range)`.
    pub budgets: Vec<(String, f64)>,
    /// Policy axis (names accepted by [`policy_by_name_fleet`]).
    pub policies: Vec<String>,
    /// Machine-mix axis (names accepted by [`mix_by_name`]).
    pub machine_mixes: Vec<String>,
    /// Fault-scenario axis (names accepted by
    /// [`fault_scenario_by_name`]).
    pub faults: Vec<String>,
    /// Arrival-process axis (names accepted by
    /// [`arrival_process_by_name`]).
    pub arrivals: Vec<String>,
    /// Workload-seed axis.
    pub seeds: Vec<u64>,
    /// Explicit cells appended after the grid (for targeted re-runs and
    /// irregular grids).
    pub extra: Vec<SweepPoint>,
    /// Per-node dynamic power ceiling (W) for fraction → watts conversion.
    pub max_node_w: f64,
    /// Workload shape per node count. A plain `fn` so specs stay `Clone`
    /// and comparable; the default is [`default_workload`].
    pub workload: fn(usize) -> WorkloadSpec,
}

impl Default for SweepSpec {
    fn default() -> Self {
        Self {
            nodes: vec![8],
            budgets: vec![("tight".into(), 0.45)],
            policies: vec!["power-aware".into()],
            machine_mixes: vec!["uniform".into()],
            faults: vec!["none".into()],
            arrivals: vec!["poisson".into()],
            seeds: vec![2007],
            extra: Vec::new(),
            max_node_w: DEFAULT_MAX_NODE_W,
            workload: default_workload,
        }
    }
}

impl SweepSpec {
    /// The default grid of the `cluster_power_cap` binary: 2/4/8 nodes ×
    /// tight/medium/ample × the DCT-only policies, seed 2007; `dvfs` adds
    /// the joint and coordinated policies exactly like the bin's `--dvfs`
    /// flag.
    pub fn power_cap_default(dvfs: bool) -> Self {
        let mut policies = vec!["fcfs".to_string(), "backfill".into(), "power-aware".into()];
        if dvfs {
            policies.push("power-aware-dvfs".into());
            policies.push("power-aware-coordinated".into());
        }
        Self {
            nodes: vec![2, 4, 8],
            budgets: vec![("tight".into(), 0.45), ("medium".into(), 0.7), ("ample".into(), 1.0)],
            policies,
            seeds: vec![2007],
            ..Self::default()
        }
    }

    /// The default grid of the `coordinated_capping` binary: 8 nodes ×
    /// tight/snug/medium/ample × the three power-aware policies, seed 2007.
    pub fn coordinated_default() -> Self {
        Self {
            nodes: vec![8],
            budgets: vec![
                ("tight".into(), 0.45),
                ("snug".into(), 0.55),
                ("medium".into(), 0.7),
                ("ample".into(), 1.0),
            ],
            policies: vec![
                "power-aware".into(),
                "power-aware-dvfs".into(),
                "power-aware-coordinated".into(),
            ],
            seeds: vec![2007],
            ..Self::default()
        }
    }

    /// The default grid of the `scenario_sweep` binary: independent vs
    /// coordinated capping across machine mixes, fault scenarios and
    /// hostile arrival streams — the heterogeneous+faulty re-run of the
    /// scoreboard.
    pub fn scenario_default() -> Self {
        Self {
            nodes: vec![8],
            budgets: vec![("tight".into(), 0.45), ("medium".into(), 0.7)],
            policies: vec!["power-aware-dvfs".into(), "power-aware-coordinated".into()],
            machine_mixes: vec!["uniform".into(), "mixed".into(), "legacy".into()],
            faults: vec!["none".into(), "crash".into()],
            arrivals: vec!["poisson".into(), "bursty".into()],
            seeds: vec![2007],
            ..Self::default()
        }
    }

    /// Expands the DVFS on/off axis into the policy axis: with `off` only,
    /// the base names; with `on`, each policy that has a joint DVFS+DCT
    /// variant contributes it ("power-aware" → "power-aware-dvfs";
    /// policies that are already DVFS-aware or have no frequency axis are
    /// contributed once, by the `off` arm, so no cell is duplicated).
    pub fn dvfs_axis(base: &[&str], on: &[bool]) -> Vec<String> {
        let mut out = Vec::new();
        for &dvfs in on {
            for &name in base {
                let effective = match (name, dvfs) {
                    ("power-aware", true) => Some("power-aware-dvfs"),
                    (_, true) => None, // no DVFS variant: covered by the off arm
                    (name, false) => Some(name),
                };
                if let Some(e) = effective {
                    if !out.contains(&e.to_string()) {
                        out.push(e.to_string());
                    }
                }
            }
        }
        out
    }

    /// Validates the axes: every axis non-empty, every policy/mix/fault/
    /// arrival name known, every budget fraction in (0, 1], node counts
    /// positive.
    pub fn validate(&self) -> Result<(), SweepError> {
        let empty = |name: &'static str| SweepError::InvalidGrid {
            reason: format!("axis {name:?} is empty — the grid has no cells"),
        };
        if self.nodes.is_empty() && self.extra.is_empty() {
            return Err(empty("nodes"));
        }
        if !self.nodes.is_empty() {
            if self.budgets.is_empty() {
                return Err(empty("budgets"));
            }
            if self.policies.is_empty() {
                return Err(empty("policies"));
            }
            if self.machine_mixes.is_empty() {
                return Err(empty("machines"));
            }
            if self.faults.is_empty() {
                return Err(empty("faults"));
            }
            if self.arrivals.is_empty() {
                return Err(empty("arrivals"));
            }
            if self.seeds.is_empty() {
                return Err(empty("seeds"));
            }
        }
        let check_point =
            |nodes: usize, fraction: f64, policy: &str, mix: &str, fault: &str, arr: &str| {
                if nodes == 0 {
                    return Err(SweepError::InvalidGrid {
                        reason: "node counts must be positive".into(),
                    });
                }
                if !(fraction.is_finite() && fraction > 0.0 && fraction <= 1.0) {
                    return Err(SweepError::InvalidGrid {
                        reason: format!("budget fraction {fraction} outside (0, 1]"),
                    });
                }
                if !POLICY_NAMES.contains(&policy) {
                    return Err(SweepError::InvalidGrid {
                        reason: format!(
                            "unknown policy {policy:?}; valid policies are: {}",
                            POLICY_NAMES.join(", ")
                        ),
                    });
                }
                if mix_by_name(mix).is_none() {
                    return Err(SweepError::InvalidGrid {
                        reason: format!(
                            "unknown machine mix {mix:?}; valid mixes are: {}",
                            MACHINE_MIX_NAMES.join(", ")
                        ),
                    });
                }
                if fault_scenario_by_name(fault).is_none() {
                    return Err(SweepError::InvalidGrid {
                        reason: format!(
                            "unknown fault scenario {fault:?}; valid scenarios are: {}",
                            FAULT_SCENARIO_NAMES.join(", ")
                        ),
                    });
                }
                if arrival_process_by_name(arr).is_none() {
                    return Err(SweepError::InvalidGrid {
                        reason: format!(
                            "unknown arrival process {arr:?}; valid processes are: {}",
                            ARRIVAL_PROCESS_NAMES.join(", ")
                        ),
                    });
                }
                Ok(())
            };
        for &nodes in &self.nodes {
            for (_, fraction) in &self.budgets {
                for policy in &self.policies {
                    for mix in &self.machine_mixes {
                        for fault in &self.faults {
                            for arr in &self.arrivals {
                                check_point(nodes, *fraction, policy, mix, fault, arr)?;
                            }
                        }
                    }
                }
            }
        }
        for p in &self.extra {
            check_point(
                p.nodes,
                p.budget_fraction,
                &p.policy,
                &p.machines,
                &p.faults,
                &p.arrivals,
            )?;
        }
        Ok(())
    }

    /// Number of cells the spec expands to.
    pub fn len(&self) -> usize {
        self.nodes.len()
            * self.budgets.len()
            * self.policies.len()
            * self.machine_mixes.len()
            * self.faults.len()
            * self.arrivals.len()
            * self.seeds.len()
            + self.extra.len()
    }

    /// Whether the spec expands to no cells at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid into ordered cells (`nodes → budgets → policies →
    /// machines → faults → arrivals → seeds`, then `extra`).
    pub fn expand(&self) -> Vec<SweepCell> {
        let mut cells = Vec::with_capacity(self.len());
        for &nodes in &self.nodes {
            for (budget_label, budget_fraction) in &self.budgets {
                for policy in &self.policies {
                    for machines in &self.machine_mixes {
                        for faults in &self.faults {
                            for arrivals in &self.arrivals {
                                for &seed in &self.seeds {
                                    cells.push(SweepPoint {
                                        nodes,
                                        budget_label: budget_label.clone(),
                                        budget_fraction: *budget_fraction,
                                        policy: policy.clone(),
                                        machines: machines.clone(),
                                        faults: faults.clone(),
                                        arrivals: arrivals.clone(),
                                        seed,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        cells.extend(self.extra.iter().cloned());
        cells.into_iter().enumerate().map(|(index, point)| SweepCell { index, point }).collect()
    }

    /// The machine mixes the grid touches (axis plus extras), resolved —
    /// exactly what a [`FleetModel::build`] for this sweep must cover.
    pub fn mixes(&self) -> Result<Vec<crate::fleet::MachineMix>, SweepError> {
        let mut names: Vec<&str> = Vec::new();
        for name in self.machine_mixes.iter().chain(self.extra.iter().map(|p| &p.machines)) {
            if !names.contains(&name.as_str()) {
                names.push(name);
            }
        }
        names
            .into_iter()
            .map(|name| {
                mix_by_name(name).ok_or_else(|| SweepError::InvalidGrid {
                    reason: format!(
                        "unknown machine mix {name:?}; valid mixes are: {}",
                        MACHINE_MIX_NAMES.join(", ")
                    ),
                })
            })
            .collect()
    }

    /// The distinct machine-mix *names* the grid touches, in
    /// first-appearance order — what a sweep daemon ships on the wire so
    /// workers rebuild a covering fleet.
    pub fn mix_names(&self) -> Result<Vec<String>, SweepError> {
        Ok(self.mixes()?.into_iter().map(|m| m.name).collect())
    }

    /// Parses a `--grid` command-line override: semicolon-separated
    /// `axis=values` clauses over the default axes, e.g.
    ///
    /// ```text
    /// nodes=2,4,8;budgets=tight:0.45,ample:1.0;policies=fcfs,power-aware;seeds=1..9
    /// ```
    ///
    /// * `nodes` — comma-separated counts.
    /// * `budgets` — comma-separated `label:fraction` pairs.
    /// * `policies` — comma-separated policy names.
    /// * `machines` — comma-separated machine-mix names
    ///   ([`MACHINE_MIX_NAMES`]).
    /// * `faults` — comma-separated fault-scenario names
    ///   ([`FAULT_SCENARIO_NAMES`]).
    /// * `arrivals` — comma-separated arrival-process names
    ///   ([`ARRIVAL_PROCESS_NAMES`]).
    /// * `seeds` — comma-separated values; `a..b` spans the half-open range.
    /// * `dvfs` — `on`, `off` or `both`: rewrites the policy axis through
    ///   [`Self::dvfs_axis`] (apply after `policies`).
    ///
    /// Unspecified axes keep the values `self` already has.
    pub fn with_grid(mut self, grid: &str) -> Result<Self, SweepError> {
        let invalid = |reason: String| SweepError::InvalidGrid { reason };
        for clause in grid.split(';').filter(|c| !c.trim().is_empty()) {
            let (axis, values) = clause
                .split_once('=')
                .ok_or_else(|| invalid(format!("clause {clause:?} is not axis=values")))?;
            let values = values.trim();
            match axis.trim() {
                "nodes" => {
                    self.nodes = values
                        .split(',')
                        .map(|v| {
                            v.trim()
                                .parse::<usize>()
                                .map_err(|_| invalid(format!("bad node count {v:?}")))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "budgets" => {
                    self.budgets = values
                        .split(',')
                        .map(|pair| {
                            let (label, fraction) = pair
                                .trim()
                                .split_once(':')
                                .ok_or_else(|| invalid(format!("{pair:?} is not label:frac")))?;
                            let f = fraction
                                .parse::<f64>()
                                .map_err(|_| invalid(format!("bad fraction {fraction:?}")))?;
                            Ok((label.to_string(), f))
                        })
                        .collect::<Result<_, SweepError>>()?;
                }
                "policies" => {
                    self.policies = values.split(',').map(|v| v.trim().to_string()).collect();
                }
                "machines" => {
                    self.machine_mixes = values.split(',').map(|v| v.trim().to_string()).collect();
                }
                "faults" => {
                    self.faults = values.split(',').map(|v| v.trim().to_string()).collect();
                }
                "arrivals" => {
                    self.arrivals = values.split(',').map(|v| v.trim().to_string()).collect();
                }
                "seeds" => {
                    let mut seeds = Vec::new();
                    for v in values.split(',') {
                        let v = v.trim();
                        if let Some((a, b)) = v.split_once("..") {
                            let a =
                                a.parse::<u64>().map_err(|_| invalid(format!("bad seed {a:?}")))?;
                            let b =
                                b.parse::<u64>().map_err(|_| invalid(format!("bad seed {b:?}")))?;
                            if a >= b {
                                return Err(invalid(format!("empty seed range {v:?}")));
                            }
                            seeds.extend(a..b);
                        } else {
                            seeds.push(
                                v.parse::<u64>().map_err(|_| invalid(format!("bad seed {v:?}")))?,
                            );
                        }
                    }
                    self.seeds = seeds;
                }
                "dvfs" => {
                    let on: &[bool] = match values {
                        "on" => &[true],
                        "off" => &[false],
                        "both" => &[false, true],
                        other => {
                            return Err(invalid(format!(
                                "dvfs must be on, off or both, got {other:?}"
                            )))
                        }
                    };
                    let base: Vec<&str> = self.policies.iter().map(String::as_str).collect();
                    self.policies = Self::dvfs_axis(&base, on);
                }
                other => return Err(invalid(format!("unknown axis {other:?}"))),
            }
        }
        self.validate()?;
        Ok(self)
    }
}

/// One completed cell: the grid point plus its simulated cluster report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCellOutcome {
    /// The cell that ran.
    pub cell: SweepCell,
    /// The simulation result.
    pub report: ClusterReport,
}

/// The result of a whole sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRun {
    /// Every cell's outcome, sorted by cell index (deterministic report
    /// order, independent of worker count).
    pub outcomes: Vec<SweepCellOutcome>,
    /// Worker threads used.
    pub jobs: usize,
    /// Wall-clock duration of the execute phase (s).
    pub wall_clock_s: f64,
}

impl SweepRun {
    /// Throughput headline: completed cells per wall-clock second.
    pub fn cells_per_sec(&self) -> f64 {
        if self.wall_clock_s > 0.0 {
            self.outcomes.len() as f64 / self.wall_clock_s
        } else {
            f64::INFINITY
        }
    }

    /// The reports alone, in cell order.
    pub fn reports(&self) -> Vec<&ClusterReport> {
        self.outcomes.iter().map(|o| &o.report).collect()
    }
}

/// Sweep failures: an invalid grid, a failing cell, or a pool-level fault
/// (including a panicking worker job, surfaced as
/// [`RtError::WorkerPanicked`]).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SweepError {
    /// The grid specification is malformed.
    InvalidGrid {
        /// What was wrong.
        reason: String,
    },
    /// A cell's simulation failed; the lowest-index failure is reported.
    Cell {
        /// The failing cell.
        cell: Box<SweepCell>,
        /// Why it failed.
        source: ClusterError,
    },
    /// The worker pool failed (shutdown, or a panicking cell job).
    Pool(RtError),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::InvalidGrid { reason } => write!(f, "invalid sweep grid: {reason}"),
            SweepError::Cell { cell, source } => write!(
                f,
                "sweep cell {} ({} nodes, {} budget, {}, machines {}, faults {}, arrivals {}, \
                 seed {}) failed: {source}",
                cell.index,
                cell.point.nodes,
                cell.point.budget_label,
                cell.point.policy,
                cell.point.machines,
                cell.point.faults,
                cell.point.arrivals,
                cell.point.seed
            ),
            SweepError::Pool(e) => write!(f, "sweep worker pool failed: {e}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<RtError> for SweepError {
    fn from(e: RtError) -> Self {
        SweepError::Pool(e)
    }
}

/// The per-cell trace record: the cell's grid coordinates plus the two
/// headline results every downstream aggregation starts from.
fn sweep_cell_event(outcome: &SweepCellOutcome) -> TraceEvent {
    let point = &outcome.cell.point;
    TraceEvent::SweepCell {
        index: outcome.cell.index,
        nodes: point.nodes,
        budget: point.budget_label.clone(),
        policy: point.policy.clone(),
        seed: point.seed,
        makespan_s: outcome.report.makespan_s,
        total_energy_j: outcome.report.total_energy_j,
    }
}

/// Runs one cell against the shared fleet — exactly what each in-process
/// sweep worker does, exported so remote workers (the distributed
/// `cluster_worker`) execute cells through the *same* code path and stay
/// byte-identical with [`run_sweep_fleet`].
///
/// The cell's machine-mix, fault-scenario and arrival-process names are
/// resolved here, and the budget is priced with
/// [`budget_for_mix`] against the cell's own
/// mix — each node's idle floor is its own generation's, never a hardcoded
/// reference machine. A mix naming a generation the fleet was not built
/// with fails loudly inside [`simulate_fleet`].
///
/// `workload` is the spec's shape function (a remote worker rebuilds it via
/// [`workload_shape_by_name`]) and `max_node_w` the spec's per-node dynamic
/// ceiling.
pub fn execute_cell(
    fleet: &FleetModel,
    workload: fn(usize) -> WorkloadSpec,
    max_node_w: f64,
    cell: &SweepCell,
    telemetry: Option<&SharedSink>,
) -> Result<ClusterReport, ClusterError> {
    let point = &cell.point;
    let invalid = |reason: String| ClusterError::InvalidSpec { reason };
    let machines = mix_by_name(&point.machines).ok_or_else(|| {
        invalid(format!(
            "unknown machine mix {:?}; valid mixes are: {}",
            point.machines,
            MACHINE_MIX_NAMES.join(", ")
        ))
    })?;
    let faults = fault_scenario_by_name(&point.faults).ok_or_else(|| {
        invalid(format!(
            "unknown fault scenario {:?}; valid scenarios are: {}",
            point.faults,
            FAULT_SCENARIO_NAMES.join(", ")
        ))
    })?;
    let arrivals = arrival_process_by_name(&point.arrivals).ok_or_else(|| {
        invalid(format!(
            "unknown arrival process {:?}; valid processes are: {}",
            point.arrivals,
            ARRIVAL_PROCESS_NAMES.join(", ")
        ))
    })?;
    let mut workload = workload(point.nodes);
    workload.arrivals = arrivals;
    let cluster_spec = ClusterSpec {
        nodes: point.nodes,
        power_budget_w: budget_for_mix(point.nodes, &machines, max_node_w, point.budget_fraction),
        machines,
        faults,
        workload,
        seed: point.seed,
    };
    let mut policy = policy_by_name_fleet(&point.policy, fleet)?;
    simulate_fleet(&cluster_spec, fleet, policy.as_mut(), telemetry.cloned())
}

/// Runs one cell against the shared fleet.
fn run_cell(
    fleet: &FleetModel,
    spec: &SweepSpec,
    cell: &SweepCell,
    telemetry: Option<&SharedSink>,
) -> Result<ClusterReport, ClusterError> {
    execute_cell(fleet, spec.workload, spec.max_node_w, cell, telemetry)
}

/// Executes every cell of `spec` against one shared reference model —
/// the homogeneous compatibility spelling of [`run_sweep_fleet`]: the
/// model is wrapped once (per sweep, not per cell) as a single-generation
/// fleet, so grids whose machine axis is `uniform` behave exactly as
/// before, and a grid that names another mix fails loudly instead of
/// silently simulating reference nodes.
pub fn run_sweep(
    spec: &SweepSpec,
    model: &Arc<WorkloadModel>,
    jobs: usize,
    on_cell: impl FnMut(&SweepCellOutcome, usize, usize),
) -> Result<SweepRun, SweepError> {
    run_sweep_traced(spec, model, jobs, None, on_cell)
}

/// [`run_sweep`] with an optional telemetry sink: the sink is shared into
/// every worker (cells trace their cluster events and controller decisions
/// through it, concurrently) and one [`TraceEvent::SweepCell`] per
/// completed cell is emitted from the single-threaded join side, in
/// completion order. `None` is exactly [`run_sweep`].
pub fn run_sweep_traced(
    spec: &SweepSpec,
    model: &Arc<WorkloadModel>,
    jobs: usize,
    telemetry: Option<SharedSink>,
    on_cell: impl FnMut(&SweepCellOutcome, usize, usize),
) -> Result<SweepRun, SweepError> {
    let fleet = Arc::new(FleetModel::single(WorkloadModel::clone(model)));
    run_sweep_fleet(spec, &fleet, jobs, telemetry, on_cell)
}

/// Executes every cell of `spec` against the shared `fleet` on `jobs`
/// worker threads (1 = in-line serial execution, no pool).
///
/// `on_cell(outcome, done, total)` streams results in *completion* order as
/// they arrive — progress narration, incremental CSV rows. The returned
/// [`SweepRun`] is always sorted by cell index, so anything rendered from
/// it is bit-identical across worker counts; pair with
/// `actor_core::report::StreamingReporter` for the presentation side.
///
/// The fleet is `Arc`-shared immutably: one ANN training pass per
/// generation serves every cell, and each cell constructs its own policy
/// (policies are stateful) from the shared decision tables. The fleet must
/// cover every machine mix the grid names ([`SweepSpec::mixes`] lists
/// them); a missing generation is a loud per-cell error, never a silent
/// fallback to the reference machine.
pub fn run_sweep_fleet(
    spec: &SweepSpec,
    fleet: &Arc<FleetModel>,
    jobs: usize,
    telemetry: Option<SharedSink>,
    mut on_cell: impl FnMut(&SweepCellOutcome, usize, usize),
) -> Result<SweepRun, SweepError> {
    spec.validate()?;
    let cells = spec.expand();
    let total = cells.len();
    let started = Instant::now();

    let mut outcomes: Vec<SweepCellOutcome> = Vec::with_capacity(total);
    let mut failures: Vec<(SweepCell, ClusterError)> = Vec::new();

    if jobs <= 1 {
        for cell in cells {
            // Same panic semantics as the pooled path: a panicking cell is
            // contained and surfaced as WorkerPanicked, not an unwind
            // through the caller.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_cell(fleet, spec, &cell, telemetry.as_ref())
            }));
            match result {
                Ok(Ok(report)) => {
                    let outcome = SweepCellOutcome { cell, report };
                    if let Some(sink) = &telemetry {
                        sink.record(&sweep_cell_event(&outcome));
                    }
                    on_cell(&outcome, outcomes.len() + 1, total);
                    outcomes.push(outcome);
                }
                Ok(Err(e)) => failures.push((cell, e)),
                Err(payload) => {
                    return Err(SweepError::Pool(RtError::WorkerPanicked {
                        message: format!(
                            "sweep cell {} panicked: {}",
                            cell.index,
                            phase_rt::pool::panic_message(payload.as_ref())
                        ),
                    }))
                }
            }
        }
    } else {
        let pool = ThreadPool::new(jobs)?;
        let (tx, rx) = crossbeam::channel::unbounded();
        let shared_spec = Arc::new(spec.clone());
        for cell in cells {
            let fleet = Arc::clone(fleet);
            let spec = Arc::clone(&shared_spec);
            let tx = tx.clone();
            let telemetry = telemetry.clone();
            pool.execute(move || {
                let result = run_cell(&fleet, &spec, &cell, telemetry.as_ref());
                // A send failure means the join loop is gone; nothing to do.
                let _ = tx.send((cell, result));
            })?;
        }
        // The join loop holds no sender: when every job has sent (or
        // panicked, dropping its sender mid-unwind), the channel
        // disconnects and `recv` returns Err instead of hanging.
        drop(tx);
        let mut done = 0usize;
        while let Ok((cell, result)) = rx.recv() {
            done += 1;
            match result {
                Ok(report) => {
                    let outcome = SweepCellOutcome { cell, report };
                    if let Some(sink) = &telemetry {
                        sink.record(&sweep_cell_event(&outcome));
                    }
                    on_cell(&outcome, done, total);
                    outcomes.push(outcome);
                }
                Err(e) => failures.push((cell, e)),
            }
        }
        pool.wait_idle();
        if pool.panicked() > 0 {
            return Err(SweepError::Pool(RtError::WorkerPanicked {
                message: format!(
                    "{} sweep cell(s) panicked; last: {}",
                    pool.panicked(),
                    pool.last_panic().unwrap_or_else(|| "unknown".into())
                ),
            }));
        }
    }

    if let Some((cell, source)) = failures.into_iter().min_by_key(|(cell, _)| cell.index) {
        return Err(SweepError::Cell { cell: Box::new(cell), source });
    }
    outcomes.sort_by_key(|o| o.cell.index);
    Ok(SweepRun { outcomes, jobs: jobs.max(1), wall_clock_s: started.elapsed().as_secs_f64() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(nodes: usize, policy: &str, seed: u64) -> SweepPoint {
        SweepPoint {
            nodes,
            budget_label: "odd".into(),
            budget_fraction: 0.6,
            policy: policy.into(),
            machines: "uniform".into(),
            faults: "none".into(),
            arrivals: "poisson".into(),
            seed,
        }
    }

    #[test]
    fn expansion_order_is_the_historical_nested_loop() {
        let spec = SweepSpec {
            nodes: vec![2, 4],
            budgets: vec![("tight".into(), 0.45), ("ample".into(), 1.0)],
            policies: vec!["fcfs".into(), "power-aware".into()],
            seeds: vec![1, 2],
            extra: vec![point(8, "backfill", 99)],
            ..SweepSpec::default()
        };
        assert_eq!(spec.len(), 17);
        assert!(!spec.is_empty());
        let cells = spec.expand();
        assert_eq!(cells.len(), 17);
        assert!(cells.iter().enumerate().all(|(i, c)| c.index == i));
        // nodes is the outermost axis, seeds the innermost.
        assert_eq!((cells[0].point.nodes, cells[0].point.seed), (2, 1));
        assert_eq!((cells[1].point.nodes, cells[1].point.seed), (2, 2));
        assert_eq!(cells[2].point.policy, "power-aware");
        assert_eq!(cells[4].point.budget_label, "ample");
        assert_eq!(cells[8].point.nodes, 4);
        assert_eq!(cells[16].point.budget_label, "odd");
    }

    #[test]
    fn scenario_axes_expand_between_policies_and_seeds() {
        let spec = SweepSpec {
            machine_mixes: vec!["uniform".into(), "mixed".into()],
            faults: vec!["none".into(), "crash".into()],
            arrivals: vec!["poisson".into(), "bursty".into()],
            seeds: vec![1, 2],
            ..SweepSpec::default()
        };
        assert_eq!(spec.len(), 16);
        let cells = spec.expand();
        // machines is outermost of the scenario axes, seeds innermost.
        assert_eq!(cells[0].point.machines, "uniform");
        assert_eq!((cells[0].point.faults.as_str(), cells[0].point.seed), ("none", 1));
        assert_eq!((cells[1].point.faults.as_str(), cells[1].point.seed), ("none", 2));
        assert_eq!(cells[2].point.arrivals, "bursty");
        assert_eq!(cells[4].point.faults, "crash");
        assert_eq!(cells[8].point.machines, "mixed");
        let mixes = spec.mixes().unwrap();
        assert_eq!(mixes.len(), 2);
        assert_eq!(mixes[0].name, "uniform");
        assert_eq!(mixes[1].name, "mixed");
    }

    #[test]
    fn validation_rejects_bad_grids() {
        let ok = SweepSpec::power_cap_default(true);
        assert!(ok.validate().is_ok());
        assert_eq!(ok.policies.len(), 5);
        assert!(SweepSpec::scenario_default().validate().is_ok());

        let empty = SweepSpec { nodes: vec![], ..ok.clone() };
        assert!(matches!(empty.validate(), Err(SweepError::InvalidGrid { .. })));
        let bad_policy = SweepSpec { policies: vec!["lottery".into()], ..ok.clone() };
        let err = bad_policy.validate().unwrap_err();
        assert!(err.to_string().contains("power-aware-coordinated"), "{err}");
        let bad_fraction = SweepSpec { budgets: vec![("x".into(), 1.5)], ..ok.clone() };
        assert!(bad_fraction.validate().is_err());
        let bad_mix = SweepSpec { machine_mixes: vec!["beowulf".into()], ..ok.clone() };
        let err = bad_mix.validate().unwrap_err();
        assert!(err.to_string().contains("uniform"), "error lists valid mixes: {err}");
        let bad_fault = SweepSpec { faults: vec!["meteor".into()], ..ok.clone() };
        assert!(bad_fault.validate().is_err());
        let bad_arrivals = SweepSpec { arrivals: vec!["pigeon".into()], ..ok.clone() };
        assert!(bad_arrivals.validate().is_err());
        let zero_nodes = SweepSpec { nodes: vec![0], ..ok };
        assert!(zero_nodes.validate().is_err());
    }

    #[test]
    fn grid_parsing_overrides_axes() {
        let spec = SweepSpec::power_cap_default(false)
            .with_grid("nodes=2,8;budgets=t:0.5,a:1.0;policies=fcfs,power-aware;seeds=1..4,9")
            .unwrap();
        assert_eq!(spec.nodes, vec![2, 8]);
        assert_eq!(spec.budgets, vec![("t".into(), 0.5), ("a".into(), 1.0)]);
        assert_eq!(spec.policies, vec!["fcfs".to_string(), "power-aware".into()]);
        assert_eq!(spec.seeds, vec![1, 2, 3, 9]);

        // The scenario axes parse the same way.
        let hazard = SweepSpec::power_cap_default(false)
            .with_grid("machines=uniform,mixed;faults=crash,storm;arrivals=bursty")
            .unwrap();
        assert_eq!(hazard.machine_mixes, vec!["uniform".to_string(), "mixed".into()]);
        assert_eq!(hazard.faults, vec!["crash".to_string(), "storm".into()]);
        assert_eq!(hazard.arrivals, vec!["bursty".to_string()]);

        // dvfs rewrites the policy axis through dvfs_axis.
        let both = SweepSpec::power_cap_default(false)
            .with_grid("policies=fcfs,power-aware;dvfs=both")
            .unwrap();
        assert_eq!(
            both.policies,
            vec!["fcfs".to_string(), "power-aware".into(), "power-aware-dvfs".into()]
        );

        for bad in [
            "nodes=two",
            "budgets=0.5",
            "seeds=5..5",
            "dvfs=sideways",
            "warp=9",
            "policies=lottery",
            "machines=beowulf",
            "faults=meteor",
            "arrivals=pigeon",
            "noequals",
        ] {
            assert!(
                SweepSpec::power_cap_default(false).with_grid(bad).is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn dvfs_axis_expands_without_duplicates() {
        let base = ["fcfs", "power-aware"];
        assert_eq!(SweepSpec::dvfs_axis(&base, &[false]), vec!["fcfs", "power-aware"]);
        assert_eq!(SweepSpec::dvfs_axis(&base, &[true]), vec!["power-aware-dvfs"]);
        assert_eq!(
            SweepSpec::dvfs_axis(&base, &[false, true]),
            vec!["fcfs", "power-aware", "power-aware-dvfs"]
        );
    }

    #[test]
    fn workload_shapes_match_the_historical_rule() {
        for nodes in [1, 2, 4, 8, 16] {
            let w = default_workload(nodes);
            assert_eq!(w.num_jobs, 8 * nodes.max(3));
            assert!((w.mean_interarrival_s - 12.0 / nodes as f64).abs() < 1e-12);
            let widest = *w.node_counts.iter().max().unwrap();
            assert!(widest <= nodes.max(1), "width must fit the cluster");
            let light = light_workload(nodes);
            assert!(light.num_jobs <= 16 && light.num_jobs >= 4);
            assert_eq!(light.node_counts, w.node_counts);
            let quad = quad_test_workload(nodes);
            assert_eq!(quad.num_jobs, 6);
            assert_eq!(quad.benchmarks.len(), 4);
            assert!(*quad.node_counts.iter().max().unwrap() <= nodes.max(1));
        }
    }

    #[test]
    fn every_named_shape_resolves_and_unknown_names_do_not() {
        for name in WORKLOAD_SHAPE_NAMES {
            let shape = workload_shape_by_name(name)
                .unwrap_or_else(|| panic!("shape {name:?} must resolve"));
            assert!(shape(4).num_jobs > 0);
        }
        assert_eq!(
            workload_shape_by_name("default").map(|f| f as *const ()),
            Some(default_workload as fn(usize) -> WorkloadSpec as *const ())
        );
        assert!(workload_shape_by_name("bespoke").is_none());
    }
}
