//! Scenario layer: fault injection and hostile arrival presets.
//!
//! The paper evaluates policies on a healthy machine fed a steady stream of
//! jobs. Real clusters are neither: nodes crash and come back, aging parts
//! straggle, and traffic arrives in bursts with tenants holding SLOs. This
//! module turns those hazards into *named, seeded, deterministic* scenario
//! axes the sweep engine can grid over:
//!
//! * [`FaultSpec`] — crash/recover schedules (exponential MTTF/MTTR) and
//!   straggler nodes running at a degraded rate, with a [`FaultPolicy`]
//!   deciding whether a gang caught on a failed node is rescheduled or
//!   killed. Presets under [`FAULT_SCENARIO_NAMES`].
//! * [`arrival_process_by_name`] — presets over
//!   [`ArrivalProcess`]: plain Poisson, diurnal
//!   and bursty modulated-Poisson streams, and a multi-tenant priority/SLO
//!   stream. Presets under [`ARRIVAL_PROCESS_NAMES`].
//!
//! Everything is derived from the spec seed through [`fault_timeline`], so a
//! `(spec, seed)` pair produces one fault schedule regardless of process,
//! thread count, or event interleaving — the byte-identity contract of the
//! sweep engine extends to faults.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::ClusterError;
use crate::job::{ArrivalProcess, TenantSpec};

/// Names of the built-in fault scenarios accepted by the sweep engine's
/// `faults=` axis (see [`fault_scenario_by_name`]).
pub const FAULT_SCENARIO_NAMES: [&str; 4] = ["none", "crash", "stragglers", "storm"];

/// Names of the built-in arrival processes accepted by the sweep engine's
/// `arrivals=` axis (see [`arrival_process_by_name`]).
pub const ARRIVAL_PROCESS_NAMES: [&str; 4] = ["poisson", "diurnal", "bursty", "tenants"];

/// What happens to a gang job whose node fails mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultPolicy {
    /// Abort every member and put the job back at the head of its priority
    /// class in the queue; it reruns from scratch on healthy nodes.
    Reschedule,
    /// Abort every member and record the job as failed (`completed: false`);
    /// a missed deadline on a killed job still counts as an SLO violation.
    Kill,
}

/// Seeded fault injection for one cluster run.
///
/// `mttf_s`/`mttr_s` are the means of exponential time-to-failure and
/// time-to-repair draws made independently per node; `mttf_s == 0` disables
/// crashes. A `straggler_fraction` of nodes (an independent seeded coin per
/// node) runs every job `straggler_slowdown`× longer than planned — the
/// degraded-clock latent fault mode, invisible to the planner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Scenario name, used in reports and as the sweep-axis value.
    pub scenario: String,
    /// Mean time to failure per node (s); `0` disables crashes.
    pub mttf_s: f64,
    /// Mean time to repair per node (s).
    pub mttr_s: f64,
    /// Cap on crash/recover cycles per node (bounds the event horizon).
    pub max_failures_per_node: usize,
    /// Fraction of nodes that straggle, in `[0, 1]`.
    pub straggler_fraction: f64,
    /// Execution-time multiplier on straggler nodes, `>= 1`.
    pub straggler_slowdown: f64,
    /// Fate of gangs caught on a failing node.
    pub on_failure: FaultPolicy,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self {
            scenario: "none".into(),
            mttf_s: 0.0,
            mttr_s: 0.0,
            max_failures_per_node: 0,
            straggler_fraction: 0.0,
            straggler_slowdown: 1.0,
            on_failure: FaultPolicy::Reschedule,
        }
    }
}

impl FaultSpec {
    /// Whether this spec injects anything at all.
    pub fn is_none(&self) -> bool {
        (self.mttf_s <= 0.0 || self.max_failures_per_node == 0)
            && (self.straggler_fraction <= 0.0 || self.straggler_slowdown <= 1.0)
    }

    /// Checks rates and fractions are finite and in range.
    pub fn validate(&self) -> Result<(), ClusterError> {
        let bad = |reason: String| Err(ClusterError::InvalidSpec { reason });
        if !(self.mttf_s.is_finite() && self.mttf_s >= 0.0) {
            return bad(format!("fault mttf_s {} must be finite and >= 0", self.mttf_s));
        }
        if self.mttf_s > 0.0 && !(self.mttr_s.is_finite() && self.mttr_s > 0.0) {
            return bad(format!(
                "fault mttr_s {} must be finite and > 0 when crashes are on",
                self.mttr_s
            ));
        }
        if !(0.0..=1.0).contains(&self.straggler_fraction) {
            return bad(format!("straggler_fraction {} outside [0, 1]", self.straggler_fraction));
        }
        if !(self.straggler_slowdown.is_finite() && self.straggler_slowdown >= 1.0) {
            return bad(format!(
                "straggler_slowdown {} must be finite and >= 1",
                self.straggler_slowdown
            ));
        }
        Ok(())
    }
}

/// Resolves a built-in fault scenario by name (see [`FAULT_SCENARIO_NAMES`]):
/// `"none"`, `"crash"` (occasional crash + reschedule), `"stragglers"`
/// (a quarter of nodes 1.6× slow, no crashes), `"storm"` (frequent crashes,
/// stragglers, and gangs killed rather than rescheduled).
pub fn fault_scenario_by_name(name: &str) -> Option<FaultSpec> {
    let mut spec = FaultSpec { scenario: name.into(), ..FaultSpec::default() };
    match name {
        "none" => {}
        "crash" => {
            spec.mttf_s = 600.0;
            spec.mttr_s = 120.0;
            spec.max_failures_per_node = 2;
        }
        "stragglers" => {
            spec.straggler_fraction = 0.25;
            spec.straggler_slowdown = 1.6;
        }
        "storm" => {
            spec.mttf_s = 240.0;
            spec.mttr_s = 60.0;
            spec.max_failures_per_node = 3;
            spec.straggler_fraction = 0.25;
            spec.straggler_slowdown = 1.5;
            spec.on_failure = FaultPolicy::Kill;
        }
        _ => return None,
    }
    Some(spec)
}

/// Resolves a built-in arrival process by name (see
/// [`ARRIVAL_PROCESS_NAMES`]): `"poisson"` (the paper's steady stream),
/// `"diurnal"` (slow ±70 % load wave), `"bursty"` (short near-saturating
/// bursts), `"tenants"` (three priority classes with SLO deadlines: batch,
/// standard, premium).
pub fn arrival_process_by_name(name: &str) -> Option<ArrivalProcess> {
    match name {
        "poisson" => Some(ArrivalProcess::Poisson),
        "diurnal" => Some(ArrivalProcess::Diurnal { period_s: 300.0, amplitude: 0.7 }),
        "bursty" => Some(ArrivalProcess::Diurnal { period_s: 60.0, amplitude: 0.95 }),
        "tenants" => Some(ArrivalProcess::MultiTenant {
            tenants: vec![
                TenantSpec { weight: 3.0, priority: 0, slo_slack: 8.0 },
                TenantSpec { weight: 2.0, priority: 1, slo_slack: 4.0 },
                TenantSpec { weight: 1.0, priority: 2, slo_slack: 2.0 },
            ],
        }),
        _ => None,
    }
}

/// The precomputed, deterministic fault schedule of one run: what the
/// cluster event loop replays.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTimeline {
    /// `(time_s, node, fail)` transitions, sorted by time (ties by node);
    /// `fail == true` is a crash, `false` a recovery. Crash/recover pairs
    /// per node never overlap.
    pub transitions: Vec<(f64, usize, bool)>,
    /// Per-node execution-time multiplier (`1.0` for healthy nodes).
    pub slowdowns: Vec<f64>,
}

/// Mixes a node id into the spec seed so per-node fault streams are
/// decorrelated but reproducible (splitmix-style odd multiplier).
fn node_seed(seed: u64, node: usize, salt: u64) -> u64 {
    seed ^ salt ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(node as u64 + 1))
}

/// Exponential draw with the inverse-CDF transform used by
/// [`WorkloadSpec::generate`](crate::job::WorkloadSpec::generate).
fn exp_draw(rng: &mut StdRng, mean_s: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    -mean_s * (1.0 - u).ln()
}

/// Expands a [`FaultSpec`] into the [`FaultTimeline`] for an `nodes`-node
/// cluster under `seed`. Each node draws its own crash/recover sequence and
/// straggler coin from a seed mixed from `(seed, node)`, so the timeline is
/// independent of node iteration order and identical in every worker
/// process.
pub fn fault_timeline(spec: &FaultSpec, nodes: usize, seed: u64) -> FaultTimeline {
    const CRASH_SALT: u64 = 0xFA17_0C4A_5B1E_0001;
    const STRAGGLER_SALT: u64 = 0xFA17_0C4A_5B1E_0002;
    let mut transitions = Vec::new();
    let mut slowdowns = vec![1.0; nodes];
    for (node, slowdown) in slowdowns.iter_mut().enumerate() {
        if spec.mttf_s > 0.0 && spec.max_failures_per_node > 0 {
            let mut rng = StdRng::seed_from_u64(node_seed(seed, node, CRASH_SALT));
            let mut t = 0.0;
            for _ in 0..spec.max_failures_per_node {
                t += exp_draw(&mut rng, spec.mttf_s);
                transitions.push((t, node, true));
                t += exp_draw(&mut rng, spec.mttr_s);
                transitions.push((t, node, false));
            }
        }
        if spec.straggler_fraction > 0.0 && spec.straggler_slowdown > 1.0 {
            let mut rng = StdRng::seed_from_u64(node_seed(seed, node, STRAGGLER_SALT));
            if rng.gen_bool(spec.straggler_fraction.clamp(0.0, 1.0)) {
                *slowdown = spec.straggler_slowdown;
            }
        }
    }
    transitions.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    FaultTimeline { transitions, slowdowns }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_and_validate() {
        for name in FAULT_SCENARIO_NAMES {
            let spec = fault_scenario_by_name(name).unwrap_or_else(|| panic!("{name}"));
            assert_eq!(spec.scenario, name);
            spec.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        assert!(fault_scenario_by_name("meteor").is_none());
        assert!(fault_scenario_by_name("none").unwrap().is_none());
        assert!(!fault_scenario_by_name("storm").unwrap().is_none());
        for name in ARRIVAL_PROCESS_NAMES {
            assert!(arrival_process_by_name(name).is_some(), "{name} should resolve");
        }
        assert!(arrival_process_by_name("carrier-pigeon").is_none());
    }

    #[test]
    fn validation_rejects_out_of_range_specs() {
        let mut s = FaultSpec { straggler_fraction: 1.5, ..FaultSpec::default() };
        assert!(s.validate().is_err());
        s.straggler_fraction = 0.5;
        s.straggler_slowdown = 0.5;
        assert!(s.validate().is_err());
        s.straggler_slowdown = 2.0;
        assert!(s.validate().is_ok());
        s.mttf_s = 100.0; // crashes on but mttr unset
        assert!(s.validate().is_err());
        s.mttr_s = 10.0;
        assert!(s.validate().is_ok());
    }

    #[test]
    fn timelines_are_deterministic_sorted_and_alternating() {
        let spec = fault_scenario_by_name("storm").unwrap();
        let a = fault_timeline(&spec, 12, 7);
        let b = fault_timeline(&spec, 12, 7);
        assert_eq!(a, b, "same (spec, nodes, seed) must replay identically");
        let c = fault_timeline(&spec, 12, 8);
        assert_ne!(a, c, "seed must matter");
        assert!(a.transitions.windows(2).all(|w| w[0].0 <= w[1].0), "sorted by time");
        for node in 0..12 {
            let per: Vec<bool> =
                a.transitions.iter().filter(|t| t.1 == node).map(|t| t.2).collect();
            assert_eq!(per.len(), 2 * spec.max_failures_per_node);
            for (i, fail) in per.iter().enumerate() {
                assert_eq!(*fail, i % 2 == 0, "fail/recover must alternate per node");
            }
        }
        assert!(a.slowdowns.iter().all(|s| *s == 1.0 || *s == spec.straggler_slowdown));
        let none = fault_timeline(&FaultSpec::default(), 12, 7);
        assert!(none.transitions.is_empty());
        assert!(none.slowdowns.iter().all(|s| *s == 1.0));
    }
}
