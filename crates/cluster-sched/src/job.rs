//! Jobs and workload generation.
//!
//! A [`Job`] is one NPB application submitted to the cluster: which
//! benchmark, when it arrives, how many nodes it wants (SPMD-style — each
//! node executes the same per-timestep phase profile over its share of a
//! weak-scaled problem), how urgent it is, and a duration scale (problem
//! length). [`WorkloadSpec`] generates job streams reproducibly from a
//! seeded RNG: Poisson arrivals (exponential interarrival gaps), uniform
//! benchmark mix, and deadlines derived from each job's four-core execution
//! time times a slack factor. The [`ArrivalProcess`] axis swaps the plain
//! Poisson stream for hostile traffic: a diurnally modulated Poisson process
//! (bursts and lulls via thinning) or multi-tenant streams where every
//! tenant's jobs carry its priority and an SLO deadline.

use npb_workloads::BenchmarkId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::ClusterError;

/// One submitted application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Stable id, also the submission order.
    pub id: usize,
    /// Which NPB application this job runs.
    pub benchmark: BenchmarkId,
    /// Submission time (s since simulation start).
    pub arrival_s: f64,
    /// Number of nodes the job runs on (gang-scheduled, all at once).
    pub nodes: usize,
    /// Larger is more urgent; used as the primary queue key.
    pub priority: u8,
    /// Completion deadline (s since simulation start), if any.
    pub deadline_s: Option<f64>,
    /// Multiplier on the benchmark's timestep count (problem length).
    pub duration_scale: f64,
}

impl Job {
    /// Effective number of timesteps for this job.
    pub fn effective_timesteps(&self, base_timesteps: usize) -> usize {
        ((base_timesteps as f64 * self.duration_scale).round() as usize).max(1)
    }
}

/// One tenant of a multi-tenant arrival stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Relative share of the job stream (weights need not sum to 1).
    pub weight: f64,
    /// Priority every job of this tenant carries (larger = more urgent).
    pub priority: u8,
    /// SLO deadline slack: deadline = arrival + slack × (duration scale ×
    /// four-core execution time). Every job of a tenant has a deadline.
    pub slo_slack: f64,
}

/// How job arrival times (and, for multi-tenant streams, priorities and
/// deadlines) are drawn.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at rate `1 / mean_interarrival_s` — the
    /// original, well-behaved stream.
    #[default]
    Poisson,
    /// Diurnally modulated Poisson: the instantaneous rate is
    /// `base × (1 + amplitude · sin(2π t / period_s))`, realised by thinning
    /// a homogeneous process at the peak rate. High amplitude with a short
    /// period is a burst generator; a long period models day/night load.
    Diurnal {
        /// Modulation period (s).
        period_s: f64,
        /// Modulation depth in `[0, 1)`: 0 is plain Poisson, values near 1
        /// alternate hard bursts with near-silence.
        amplitude: f64,
    },
    /// Competing tenant streams: each arrival is attributed to a tenant by
    /// weight, and carries that tenant's priority and an SLO deadline
    /// derived from its slack. Arrival times follow the base Poisson
    /// process; `deadline_fraction`/`deadline_slack`/`max_priority` of the
    /// surrounding spec are ignored (the tenants define urgency).
    MultiTenant {
        /// The tenants (at least one, weights positive).
        tenants: Vec<TenantSpec>,
    },
}

/// How a job stream is generated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of jobs to generate.
    pub num_jobs: usize,
    /// Mean gap between consecutive arrivals (s); Poisson process.
    pub mean_interarrival_s: f64,
    /// Benchmarks to draw from, uniformly.
    pub benchmarks: Vec<BenchmarkId>,
    /// Node counts to draw from, uniformly (repeat entries to weight the
    /// mix, e.g. `[1, 1, 2, 4]`).
    pub node_counts: Vec<usize>,
    /// Job duration scales are drawn uniformly from this range.
    pub duration_scale_range: (f64, f64),
    /// Fraction of jobs given a deadline.
    pub deadline_fraction: f64,
    /// Deadline = arrival + slack × (four-core execution time).
    pub deadline_slack: f64,
    /// Maximum priority (priorities are uniform in `0..=max_priority`).
    pub max_priority: u8,
    /// The arrival process (plain Poisson is the historical stream).
    pub arrivals: ArrivalProcess,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self {
            num_jobs: 24,
            mean_interarrival_s: 2.0,
            benchmarks: BenchmarkId::ALL.to_vec(),
            node_counts: vec![1, 1, 2, 4],
            duration_scale_range: (0.5, 1.5),
            deadline_fraction: 0.5,
            deadline_slack: 4.0,
            max_priority: 2,
            arrivals: ArrivalProcess::Poisson,
        }
    }
}

impl WorkloadSpec {
    /// Validates the specification.
    pub fn validate(&self) -> Result<(), ClusterError> {
        if self.num_jobs == 0 {
            return Err(ClusterError::InvalidSpec { reason: "num_jobs must be positive".into() });
        }
        if self.benchmarks.is_empty() {
            return Err(ClusterError::InvalidSpec {
                reason: "workload needs at least one benchmark".into(),
            });
        }
        if self.node_counts.is_empty() || self.node_counts.contains(&0) {
            return Err(ClusterError::InvalidSpec {
                reason: "node_counts must be non-empty and positive".into(),
            });
        }
        if !self.mean_interarrival_s.is_finite() || self.mean_interarrival_s <= 0.0 {
            return Err(ClusterError::InvalidSpec {
                reason: "mean_interarrival_s must be positive".into(),
            });
        }
        let (lo, hi) = self.duration_scale_range;
        if !(lo > 0.0 && hi >= lo) {
            return Err(ClusterError::InvalidSpec {
                reason: "duration_scale_range must be positive and ordered".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.deadline_fraction) {
            return Err(ClusterError::InvalidSpec {
                reason: "deadline_fraction must be in [0, 1]".into(),
            });
        }
        if !self.deadline_slack.is_finite() || self.deadline_slack < 1.0 {
            return Err(ClusterError::InvalidSpec {
                reason: "deadline_slack below 1 makes every deadline unmeetable".into(),
            });
        }
        match &self.arrivals {
            ArrivalProcess::Poisson => {}
            ArrivalProcess::Diurnal { period_s, amplitude } => {
                if !(period_s.is_finite() && *period_s > 0.0) {
                    return Err(ClusterError::InvalidSpec {
                        reason: "diurnal period must be positive".into(),
                    });
                }
                if !(0.0..1.0).contains(amplitude) {
                    return Err(ClusterError::InvalidSpec {
                        reason: format!("diurnal amplitude {amplitude} outside [0, 1)"),
                    });
                }
            }
            ArrivalProcess::MultiTenant { tenants } => {
                if tenants.is_empty() {
                    return Err(ClusterError::InvalidSpec {
                        reason: "multi-tenant stream needs at least one tenant".into(),
                    });
                }
                for t in tenants {
                    if !(t.weight.is_finite() && t.weight > 0.0) {
                        return Err(ClusterError::InvalidSpec {
                            reason: "tenant weights must be positive".into(),
                        });
                    }
                    if !t.slo_slack.is_finite() || t.slo_slack < 1.0 {
                        return Err(ClusterError::InvalidSpec {
                            reason: "tenant SLO slack below 1 makes every deadline unmeetable"
                                .into(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Generates the job stream. Deadlines are filled in relative to
    /// `four_core_time_s(benchmark)`, the caller-supplied four-core execution
    /// time of one unscaled run (the workload model knows it).
    pub fn generate(
        &self,
        seed: u64,
        mut four_core_time_s: impl FnMut(BenchmarkId) -> f64,
    ) -> Result<Vec<Job>, ClusterError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut jobs = Vec::with_capacity(self.num_jobs);
        let mut clock = 0.0f64;
        for id in 0..self.num_jobs {
            match &self.arrivals {
                ArrivalProcess::Poisson | ArrivalProcess::MultiTenant { .. } => {
                    // Exponential interarrival via inverse CDF.
                    let u: f64 = rng.gen_range(0.0..1.0);
                    clock += -self.mean_interarrival_s * (1.0 - u).ln();
                }
                ArrivalProcess::Diurnal { period_s, amplitude } => {
                    // Thinning (Lewis–Shedler): draw candidates from a
                    // homogeneous process at the peak rate and accept each
                    // with probability rate(t) / peak rate. Terminates
                    // because the acceptance probability is bounded below
                    // by (1 − a) / (1 + a) > 0 for a < 1.
                    let peak_rate = (1.0 + amplitude) / self.mean_interarrival_s;
                    loop {
                        let u: f64 = rng.gen_range(0.0..1.0);
                        clock += -(1.0 - u).ln() / peak_rate;
                        let phase = std::f64::consts::TAU * clock / period_s;
                        let rate = (1.0 + amplitude * phase.sin()) / self.mean_interarrival_s;
                        if rng.gen_bool((rate / peak_rate).clamp(0.0, 1.0)) {
                            break;
                        }
                    }
                }
            }
            let benchmark = self.benchmarks[rng.gen_range(0..self.benchmarks.len())];
            let nodes = self.node_counts[rng.gen_range(0..self.node_counts.len())];
            let (lo, hi) = self.duration_scale_range;
            let duration_scale = if hi > lo { rng.gen_range(lo..hi) } else { lo };
            let (priority, deadline_s) = match &self.arrivals {
                ArrivalProcess::MultiTenant { tenants } => {
                    // Weighted tenant draw; the job inherits the tenant's
                    // priority and always carries its SLO deadline.
                    let total: f64 = tenants.iter().map(|t| t.weight).sum();
                    let mut pick: f64 = rng.gen_range(0.0..total);
                    let tenant = tenants
                        .iter()
                        .find(|t| {
                            pick -= t.weight;
                            pick < 0.0
                        })
                        .unwrap_or(tenants.last().expect("validated non-empty"));
                    let deadline =
                        clock + tenant.slo_slack * duration_scale * four_core_time_s(benchmark);
                    (tenant.priority, Some(deadline))
                }
                _ => {
                    let priority = rng.gen_range(0..=self.max_priority as u32) as u8;
                    let deadline_s = if rng.gen_bool(self.deadline_fraction) {
                        Some(
                            clock
                                + self.deadline_slack
                                    * duration_scale
                                    * four_core_time_s(benchmark),
                        )
                    } else {
                        None
                    };
                    (priority, deadline_s)
                }
            };
            jobs.push(Job {
                id,
                benchmark,
                arrival_s: clock,
                nodes,
                priority,
                deadline_s,
                duration_scale,
            });
        }
        Ok(jobs)
    }
}

/// The final record of one job's life in the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// The job as submitted.
    pub job: Job,
    /// Nodes that executed it (gang).
    pub nodes: Vec<usize>,
    /// When execution began (s).
    pub start_s: f64,
    /// When execution finished (s).
    pub finish_s: f64,
    /// Energy consumed while running, summed over its nodes (J).
    pub energy_j: f64,
    /// Peak instantaneous cluster power attributable to the job (W),
    /// summed over its nodes.
    pub peak_power_w: f64,
    /// Per-phase configurations the job ran with (identical on every node).
    pub decisions: Vec<(String, xeon_sim::Configuration)>,
    /// Whether the job ran to completion. `false` means a node failure
    /// killed it mid-run (fault scenarios with the `Kill` policy);
    /// `finish_s` is then the kill time and `energy_j` the energy charged
    /// up to it.
    pub completed: bool,
}

impl JobOutcome {
    /// Queueing delay (s).
    pub fn wait_s(&self) -> f64 {
        self.start_s - self.job.arrival_s
    }

    /// Execution time (s).
    pub fn exec_s(&self) -> f64 {
        self.finish_s - self.start_s
    }

    /// Job-level energy-delay-squared (J·s²), on the job's own execution.
    pub fn ed2(&self) -> f64 {
        let t = self.exec_s();
        self.energy_j * t * t
    }

    /// Whether the job met its deadline (vacuously true without one; a
    /// killed job never meets a deadline it had).
    pub fn deadline_met(&self) -> bool {
        self.job.deadline_s.is_none_or(|d| self.completed && self.finish_s <= d + 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_ordered() {
        let spec = WorkloadSpec { num_jobs: 16, ..Default::default() };
        let a = spec.generate(7, |_| 10.0).unwrap();
        let b = spec.generate(7, |_| 10.0).unwrap();
        assert_eq!(a, b);
        let c = spec.generate(8, |_| 10.0).unwrap();
        assert_ne!(a, c, "different seeds should give different workloads");
        assert!(a.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert!(a.iter().any(|j| j.deadline_s.is_some()));
        for j in &a {
            assert!(j.duration_scale >= 0.5 && j.duration_scale <= 1.5);
            assert!(j.priority <= spec.max_priority);
            assert!(spec.node_counts.contains(&j.nodes));
            if let Some(d) = j.deadline_s {
                assert!(d > j.arrival_s);
            }
        }
    }

    #[test]
    fn spec_validation_rejects_nonsense() {
        let ok = WorkloadSpec::default();
        assert!(ok.validate().is_ok());
        assert!(WorkloadSpec { num_jobs: 0, ..ok.clone() }.validate().is_err());
        assert!(WorkloadSpec { benchmarks: vec![], ..ok.clone() }.validate().is_err());
        assert!(WorkloadSpec { node_counts: vec![], ..ok.clone() }.validate().is_err());
        assert!(WorkloadSpec { node_counts: vec![0], ..ok.clone() }.validate().is_err());
        assert!(WorkloadSpec { mean_interarrival_s: 0.0, ..ok.clone() }.validate().is_err());
        assert!(WorkloadSpec { duration_scale_range: (0.0, 1.0), ..ok.clone() }
            .validate()
            .is_err());
        assert!(WorkloadSpec { deadline_fraction: 1.5, ..ok.clone() }.validate().is_err());
        assert!(WorkloadSpec { deadline_slack: 0.5, ..ok }.validate().is_err());
    }

    #[test]
    fn effective_timesteps_scale_and_clamp() {
        let job = Job {
            id: 0,
            benchmark: BenchmarkId::Cg,
            arrival_s: 0.0,
            nodes: 1,
            priority: 0,
            deadline_s: None,
            duration_scale: 0.5,
        };
        assert_eq!(job.effective_timesteps(100), 50);
        assert_eq!(job.effective_timesteps(1), 1);
        let tiny = Job { duration_scale: 0.001, ..job };
        assert_eq!(tiny.effective_timesteps(100), 1);
    }
}
