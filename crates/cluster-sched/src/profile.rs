//! The workload model: everything the scheduler knows about each benchmark.
//!
//! Built once per cluster from ACTOR's existing offline pipeline
//! ([`actor_core::evaluate_benchmarks`]): leave-one-out ANN ensembles produce
//! a [`ThrottleDecision`] per phase (predicted IPC for every candidate
//! configuration), and the machine model fills in time/power/energy per
//! (phase, configuration). Policies consult this table to answer "what does
//! running job J at configuration c cost, and what throughput does the ANN
//! predict?" without re-running the pipeline per job.

use actor_core::controller::{
    best_config_by_ipc, CandidatePerf, DecisionTableController, JointPerf, PhaseSample,
};
use actor_core::{evaluate_benchmarks, ActorConfig, ThrottleDecision};
use npb_workloads::{suite, BenchmarkId, BenchmarkProfile};
use phase_rt::{FreqStep, PhaseId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use xeon_sim::{Configuration, FreqLadder, Machine, PhaseExecution};

use crate::error::ClusterError;
use crate::job::Job;

/// Phases per benchmark are bounded well below this, so one `u32` phase id
/// namespace covers (benchmark index, phase index) pairs.
const PHASE_ID_STRIDE: u32 = 64;

/// Per-phase knowledge: the ANN decision plus ground-truth executions.
#[derive(Debug, Clone)]
pub struct PhaseKnowledge {
    /// Phase name (unique within the benchmark).
    pub name: String,
    /// ACTOR's throttling decision (sampled IPC + ranked predictions).
    pub decision: ThrottleDecision,
    /// Counter-derived feature vector observed on the sampling
    /// configuration (what a live controller would re-predict from).
    pub features: Vec<f64>,
    /// Machine-model execution of one phase instance per configuration, at
    /// the nominal frequency.
    pub executions: Vec<(Configuration, PhaseExecution)>,
    /// Executions of the *downclocked* joint cells: one entry per
    /// (configuration, ladder step ≥ 1). Step 0 lives in `executions`.
    pub dvfs_executions: Vec<((Configuration, usize), PhaseExecution)>,
    /// Cached candidate menu (one [`CandidatePerf`] per nominal execution),
    /// derived from `executions` at construction so the planning hot path
    /// borrows it instead of rebuilding a `Vec` per decide.
    candidates: Vec<CandidatePerf>,
    /// Cached joint menu (see [`PhaseKnowledge::joint_candidates`]),
    /// derived from `executions` + `dvfs_executions` at construction.
    joint: Vec<JointPerf>,
}

impl PhaseKnowledge {
    /// Builds one phase's knowledge, deriving the cached candidate and
    /// joint menus from the executions.
    pub fn new(
        name: String,
        decision: ThrottleDecision,
        features: Vec<f64>,
        executions: Vec<(Configuration, PhaseExecution)>,
        dvfs_executions: Vec<((Configuration, usize), PhaseExecution)>,
    ) -> Self {
        let candidates: Vec<CandidatePerf> = executions
            .iter()
            .map(|(config, exec)| CandidatePerf {
                config: *config,
                avg_power_w: Some(exec.avg_power_w),
            })
            .collect();
        let mut joint: Vec<JointPerf> = executions
            .iter()
            .map(|(config, exec)| JointPerf {
                config: *config,
                step: FreqStep::NOMINAL,
                avg_power_w: Some(exec.avg_power_w),
                stall_fraction: Some(exec.stall_fraction()),
            })
            .collect();
        joint.extend(dvfs_executions.iter().map(|((config, step), exec)| JointPerf {
            config: *config,
            step: FreqStep::new(*step as u8),
            avg_power_w: Some(exec.avg_power_w),
            stall_fraction: Some(exec.stall_fraction()),
        }));
        Self { name, decision, features, executions, dvfs_executions, candidates, joint }
    }
    /// Execution of this phase under `config` at the nominal frequency.
    pub fn execution(&self, config: Configuration) -> &PhaseExecution {
        &self
            .executions
            .iter()
            .find(|(c, _)| *c == config)
            .expect("every configuration is pre-simulated")
            .1
    }

    /// Execution of this phase in the joint cell (`config`, `step`).
    ///
    /// Panics on a step the workload model did not pre-simulate — an
    /// out-of-ladder step is a contract violation upstream.
    pub fn execution_at(&self, config: Configuration, step: FreqStep) -> &PhaseExecution {
        if step.is_nominal() {
            return self.execution(config);
        }
        let key = (config, step.index() as usize);
        &self
            .dvfs_executions
            .iter()
            .find(|(c, _)| *c == key)
            .unwrap_or_else(|| {
                panic!(
                    "phase {:?}: joint cell ({config:?}, step {}) was not pre-simulated — \
                     the step is outside the machine's frequency ladder",
                    self.name,
                    step.index()
                )
            })
            .1
    }

    /// The memory-stall fraction observed on the sampling configuration —
    /// the stall/compute split a DVFS-aware controller extrapolates along
    /// the frequency ladder (one definition:
    /// [`PhaseExecution::stall_fraction`]).
    pub fn stall_fraction(&self) -> f64 {
        self.execution(Configuration::SAMPLE).stall_fraction()
    }

    /// The joint (configuration × frequency) candidate cells with their
    /// pre-simulated powers *and* each cell's own converged stall fraction,
    /// for a [`actor_core::DvfsSpace`] — the per-configuration stall model:
    /// a DVFS-aware controller extrapolates every configuration with its own
    /// contention-solved stall/compute split instead of the single sampled
    /// one (narrow configurations contend less for the bus, so the sampled
    /// split systematically overstates how well they tolerate downclocking).
    pub fn joint_candidates(&self) -> &[JointPerf] {
        &self.joint
    }

    /// The nominal candidate menu (one entry per pre-simulated
    /// configuration, with its average power), cached at construction — the
    /// `candidates` slice a [`actor_core::controller::DecisionCtx`] borrows.
    pub fn candidate_menu(&self) -> &[CandidatePerf] {
        &self.candidates
    }

    /// Predicted (or, for the sampling configuration, observed) IPC of this
    /// phase under `config`.
    pub fn predicted_ipc(&self, config: Configuration) -> f64 {
        self.decision.predicted_ipc(config)
    }

    /// The observation a [`actor_core::PowerPerfController`] would receive
    /// for this phase: the sampling-configuration window with its features,
    /// IPC and stall/compute split.
    pub fn sample(&self) -> PhaseSample {
        PhaseSample::sampling(
            self.features.clone(),
            self.decision.sampled_ipc,
            self.execution(Configuration::SAMPLE).time_s,
        )
        .with_stall_fraction(self.stall_fraction())
    }

    /// The highest-predicted-IPC configuration whose average phase power fits
    /// under `power_cap_w`, ties to fewer threads. `None` if not even the
    /// single-thread configuration fits. Delegates to the workspace's one
    /// definition of the selection rule
    /// ([`actor_core::controller::best_config_by_ipc`]).
    pub fn best_config_within(&self, power_cap_w: f64) -> Option<Configuration> {
        best_config_by_ipc(self.candidates.iter().copied(), Some(power_cap_w), |config| {
            self.predicted_ipc(config)
        })
        .map(|(c, _)| c)
    }
}

/// Per-benchmark knowledge.
#[derive(Debug, Clone)]
pub struct BenchmarkKnowledge {
    /// The profile (phases + timesteps).
    pub profile: BenchmarkProfile,
    /// Per-phase decisions and executions.
    pub phases: Vec<PhaseKnowledge>,
}

/// What one job will do on a node if started with the given per-phase
/// configurations: the policy's costed decision, applied by the node.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionPlan {
    /// Chosen configuration per phase, in phase order.
    pub decisions: Vec<(String, Configuration)>,
    /// Chosen DVFS step per phase, aligned with `decisions`. Empty means
    /// nominal frequency throughout (the DCT-only plans).
    pub freq_steps: Vec<u8>,
    /// Total execution time (s) over all timesteps.
    pub exec_time_s: f64,
    /// Total energy (J) over all timesteps.
    pub energy_j: f64,
    /// Peak instantaneous power across phases (W) — what the cap must cover.
    pub peak_power_w: f64,
}

impl ExecutionPlan {
    /// Time-averaged power of the plan (W).
    pub fn avg_power_w(&self) -> f64 {
        if self.exec_time_s > 0.0 {
            self.energy_j / self.exec_time_s
        } else {
            0.0
        }
    }
}

/// The scheduler's model of every benchmark in the workload.
#[derive(Debug, Clone)]
pub struct WorkloadModel {
    benchmarks: Vec<(BenchmarkId, BenchmarkKnowledge)>,
    /// The voltage/frequency ladder of the machine this model was built on,
    /// offered to DVFS-aware policies.
    ladder: FreqLadder,
    /// Offset added to every [`PhaseId`] this model mints. Zero for a
    /// homogeneous cluster; a heterogeneous fleet gives each generation's
    /// model its own disjoint namespace so one shared controller table can
    /// hold all generations' decisions without aliasing.
    phase_id_base: u32,
}

impl WorkloadModel {
    /// Builds the model for `ids` (at least two, for leave-one-out training)
    /// with the deterministic RNG derived from `config.seed`.
    pub fn build(
        machine: &Machine,
        config: &ActorConfig,
        ids: &[BenchmarkId],
    ) -> Result<Self, ClusterError> {
        let profiles: Vec<BenchmarkProfile> = ids.iter().map(|&id| suite::benchmark(id)).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let evaluations = evaluate_benchmarks(machine, config, &profiles, &mut rng)?;
        let mut benchmarks = Vec::with_capacity(profiles.len());
        for profile in &profiles {
            if profile.phases.len() >= PHASE_ID_STRIDE as usize {
                return Err(ClusterError::InvalidSpec {
                    reason: format!(
                        "benchmark {} has {} phases, exceeding the {} supported per benchmark \
                         (phase-id namespace would alias across benchmarks)",
                        profile.id,
                        profile.phases.len(),
                        PHASE_ID_STRIDE
                    ),
                });
            }
        }
        for profile in profiles {
            let eval = evaluations
                .iter()
                .find(|e| e.id == profile.id)
                .expect("evaluate_benchmarks covers every input benchmark");
            let phases = profile
                .phases
                .iter()
                .zip(&eval.phases)
                .map(|(phase, pe)| {
                    // One ladder-wide simulation per configuration: the
                    // nominal execution plus every downclocked cell from a
                    // single contention solve.
                    let mut executions = Vec::with_capacity(Configuration::ALL.len());
                    let mut dvfs_executions = Vec::new();
                    for &c in &Configuration::ALL {
                        let mut ladder_execs = machine.simulate_config_ladder(phase, c).into_iter();
                        executions
                            .push((c, ladder_execs.next().expect("ladders have a nominal step")));
                        dvfs_executions
                            .extend(ladder_execs.enumerate().map(|(i, e)| ((c, i + 1), e)));
                    }
                    PhaseKnowledge::new(
                        phase.name.clone(),
                        pe.decision.clone(),
                        pe.features.clone(),
                        executions,
                        dvfs_executions,
                    )
                })
                .collect();
            benchmarks.push((profile.id, BenchmarkKnowledge { profile, phases }));
        }
        Ok(Self { benchmarks, ladder: machine.freq_ladder().clone(), phase_id_base: 0 })
    }

    /// Moves this model's phase ids into their own namespace starting at
    /// `base` (see [`Self::phase_id`]). `base` must be a multiple of the
    /// per-benchmark stride times the benchmark count headroom; the fleet
    /// builder is the one caller and spaces generations far apart.
    #[must_use]
    pub fn with_phase_id_base(mut self, base: u32) -> Self {
        self.phase_id_base = base;
        self
    }

    /// The offset of this model's phase-id namespace (zero unless the model
    /// is part of a heterogeneous fleet).
    pub fn phase_id_base(&self) -> u32 {
        self.phase_id_base
    }

    /// The node machine's voltage/frequency ladder.
    pub fn freq_ladder(&self) -> &FreqLadder {
        &self.ladder
    }

    /// The benchmarks in the model.
    pub fn benchmark_ids(&self) -> Vec<BenchmarkId> {
        self.benchmarks.iter().map(|(id, _)| *id).collect()
    }

    /// Knowledge about one benchmark.
    pub fn knowledge(&self, id: BenchmarkId) -> &BenchmarkKnowledge {
        &self
            .benchmarks
            .iter()
            .find(|(b, _)| *b == id)
            .expect("job benchmarks must be part of the workload model")
            .1
    }

    /// Stable workspace-wide [`PhaseId`] of one phase of one benchmark, so
    /// controller observations made while planning one job carry over to
    /// later jobs of the same benchmark.
    pub fn phase_id(&self, id: BenchmarkId, phase_idx: usize) -> PhaseId {
        assert!(
            phase_idx < PHASE_ID_STRIDE as usize,
            "phase index {phase_idx} outside the per-benchmark id namespace (< {PHASE_ID_STRIDE}; \
             enforced at model build time)"
        );
        let bench_idx = self
            .benchmarks
            .iter()
            .position(|(b, _)| *b == id)
            .expect("job benchmarks must be part of the workload model");
        PhaseId::new(self.phase_id_base + bench_idx as u32 * PHASE_ID_STRIDE + phase_idx as u32)
    }

    /// The model's ANN decisions as a [`DecisionTableController`] — the
    /// default controller behind the power-aware scheduling policy, keyed by
    /// [`Self::phase_id`].
    pub fn decision_table(&self) -> DecisionTableController {
        DecisionTableController::new(self.decision_entries())
    }

    /// The `(phase id, decision)` pairs behind [`Self::decision_table`], for
    /// callers that merge several models into one controller (heterogeneous
    /// fleets, where each generation's ids live in their own namespace).
    pub fn decision_entries(&self) -> impl Iterator<Item = (PhaseId, ThrottleDecision)> + '_ {
        self.benchmarks.iter().flat_map(|(id, k)| {
            k.phases.iter().enumerate().map(|(i, p)| (self.phase_id(*id, i), p.decision.clone()))
        })
    }

    /// Four-core execution time of one unscaled run (for deadline generation
    /// and runtime estimates).
    pub fn four_core_time_s(&self, id: BenchmarkId) -> f64 {
        let k = self.knowledge(id);
        let per_timestep: f64 =
            k.phases.iter().map(|p| p.execution(Configuration::Four).time_s).sum();
        per_timestep * k.profile.timesteps as f64
    }

    /// Plan `job` with a fixed configuration for every phase (the
    /// non-adaptive policies run everything at maximal concurrency).
    pub fn plan_fixed(&self, job: &Job, config: Configuration) -> ExecutionPlan {
        self.plan_with(job, |_| config)
    }

    /// Plan `job` choosing, per phase, the highest-predicted-IPC
    /// configuration whose power fits under `power_cap_w`. `None` if any
    /// phase cannot fit (the job must wait for more headroom).
    pub fn plan_within_power(&self, job: &Job, power_cap_w: f64) -> Option<ExecutionPlan> {
        let k = self.knowledge(job.benchmark);
        let mut choices = Vec::with_capacity(k.phases.len());
        for phase in &k.phases {
            choices.push(phase.best_config_within(power_cap_w)?);
        }
        let mut iter = choices.iter().copied();
        Some(self.plan_with(job, |_| iter.next().expect("one choice per phase")))
    }

    /// Plan `job` with an arbitrary per-phase choice function.
    pub fn plan_with(
        &self,
        job: &Job,
        mut choose: impl FnMut(&PhaseKnowledge) -> Configuration,
    ) -> ExecutionPlan {
        self.plan_with_joint(job, |phase| (choose(phase), FreqStep::NOMINAL))
    }

    /// Plan `job` with an arbitrary per-phase choice in the joint
    /// (configuration × frequency) space. Panics on a step outside the node
    /// machine's ladder — an out-of-range step is a controller contract
    /// violation, not a schedulable plan.
    pub fn plan_with_joint(
        &self,
        job: &Job,
        mut choose: impl FnMut(&PhaseKnowledge) -> (Configuration, FreqStep),
    ) -> ExecutionPlan {
        let k = self.knowledge(job.benchmark);
        let timesteps = job.effective_timesteps(k.profile.timesteps) as f64;
        let mut decisions = Vec::with_capacity(k.phases.len());
        let mut steps = Vec::with_capacity(k.phases.len());
        let mut time_per_timestep = 0.0;
        let mut energy_per_timestep = 0.0;
        let mut peak_power_w = 0.0f64;
        for phase in &k.phases {
            let (config, step) = choose(phase);
            assert!(
                step.is_valid_for(self.ladder.len()),
                "phase {:?}: chosen frequency step {} is outside the node ladder ({} steps)",
                phase.name,
                step.index(),
                self.ladder.len()
            );
            let exec = phase.execution_at(config, step);
            decisions.push((phase.name.clone(), config));
            steps.push(step.index());
            time_per_timestep += exec.time_s;
            energy_per_timestep += exec.energy_j;
            peak_power_w = peak_power_w.max(exec.avg_power_w);
        }
        // DCT-only plans keep the compact representation (no frequency axis).
        let freq_steps = if steps.iter().all(|&s| s == 0) { Vec::new() } else { steps };
        ExecutionPlan {
            decisions,
            freq_steps,
            exec_time_s: time_per_timestep * timesteps,
            energy_j: energy_per_timestep * timesteps,
            peak_power_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> WorkloadModel {
        let machine = Machine::xeon_qx6600();
        let config = ActorConfig { corpus_replicas: 2, ..ActorConfig::fast() };
        WorkloadModel::build(
            &machine,
            &config,
            &[BenchmarkId::Cg, BenchmarkId::Is, BenchmarkId::Mg, BenchmarkId::Bt],
        )
        .unwrap()
    }

    fn job(benchmark: BenchmarkId) -> Job {
        Job {
            id: 0,
            benchmark,
            arrival_s: 0.0,
            nodes: 1,
            priority: 0,
            deadline_s: None,
            duration_scale: 1.0,
        }
    }

    #[test]
    fn model_covers_all_benchmarks_and_configs() {
        let m = model();
        assert_eq!(m.benchmark_ids().len(), 4);
        for id in m.benchmark_ids() {
            let k = m.knowledge(id);
            assert!(!k.phases.is_empty());
            for p in &k.phases {
                assert_eq!(p.executions.len(), Configuration::ALL.len());
                assert!(p.decision.sampled_ipc > 0.0);
                // Power rises with concurrency often but at minimum One < Four.
                assert!(
                    p.execution(Configuration::One).avg_power_w
                        < p.execution(Configuration::Four).avg_power_w
                );
            }
            assert!(m.four_core_time_s(id) > 0.0);
        }
    }

    #[test]
    fn power_capped_choice_respects_the_cap() {
        let m = model();
        for id in m.benchmark_ids() {
            for p in &m.knowledge(id).phases {
                let four_w = p.execution(Configuration::Four).avg_power_w;
                let one_w = p.execution(Configuration::One).avg_power_w;
                // Ample cap: any configuration allowed, the choice must match
                // the unconstrained ACTOR decision.
                let ample = p.best_config_within(four_w + 100.0).unwrap();
                assert_eq!(ample, p.decision.chosen);
                // Tight cap just above single-thread power: only One fits.
                let tight = p.best_config_within(one_w + 1e-9).unwrap();
                assert_eq!(tight, Configuration::One);
                // Impossible cap: nothing fits.
                assert!(p.best_config_within(one_w - 1.0).is_none());
            }
        }
    }

    #[test]
    fn joint_cells_are_presimulated_with_monotone_power() {
        let m = model();
        let ladder_len = m.freq_ladder().len();
        assert!(ladder_len >= 2, "the default node machine ships a real ladder");
        for id in m.benchmark_ids() {
            for p in &m.knowledge(id).phases {
                assert_eq!(
                    p.dvfs_executions.len(),
                    Configuration::ALL.len() * (ladder_len - 1),
                    "one pre-simulated cell per (configuration, downclocked step)"
                );
                let stall = p.stall_fraction();
                assert!((0.0..=1.0).contains(&stall));
                for &config in &Configuration::ALL {
                    let mut prev = p.execution_at(config, FreqStep::NOMINAL).avg_power_w;
                    for step in 1..ladder_len {
                        let exec = p.execution_at(config, FreqStep::new(step as u8));
                        assert!(exec.avg_power_w <= prev + 1e-9, "power rose down the ladder");
                        assert!(
                            exec.time_s + 1e-12 >= p.execution_at(config, FreqStep::NOMINAL).time_s,
                            "downclocking never speeds a phase up"
                        );
                        prev = exec.avg_power_w;
                    }
                }
                let joint = p.joint_candidates();
                assert_eq!(joint.len(), Configuration::ALL.len() * ladder_len);
                assert!(joint.iter().all(|c| c.avg_power_w.is_some()));
                // The sample a controller receives carries the stall split.
                assert_eq!(p.sample().stall_fraction, stall);
            }
        }
    }

    #[test]
    #[should_panic(expected = "not pre-simulated")]
    fn out_of_ladder_execution_lookup_fails_loudly() {
        let m = model();
        let id = m.benchmark_ids()[0];
        let p = &m.knowledge(id).phases[0];
        let _ = p.execution_at(Configuration::One, FreqStep::new(99));
    }

    #[test]
    fn joint_plans_price_the_frequency_axis() {
        let m = model();
        let j = job(BenchmarkId::Is);
        let ladder_len = m.freq_ladder().len();
        let nominal = m.plan_fixed(&j, Configuration::Four);
        assert!(nominal.freq_steps.is_empty());
        let bottom = FreqStep::new((ladder_len - 1) as u8);
        let slow = m.plan_with_joint(&j, |_| (Configuration::Four, bottom));
        assert_eq!(slow.freq_steps, vec![bottom.index(); slow.decisions.len()]);
        assert!(slow.peak_power_w < nominal.peak_power_w, "downclocked plan draws less");
        assert!(slow.exec_time_s >= nominal.exec_time_s, "…but never finishes earlier");
    }

    #[test]
    #[should_panic(expected = "outside the node ladder")]
    fn joint_plans_reject_out_of_ladder_steps() {
        let m = model();
        let j = job(BenchmarkId::Is);
        let _ = m.plan_with_joint(&j, |_| (Configuration::Four, FreqStep::new(99)));
    }

    #[test]
    fn plans_scale_with_duration_and_respect_power() {
        let m = model();
        let j = job(BenchmarkId::Is);
        let four = m.plan_fixed(&j, Configuration::Four);
        assert!(four.exec_time_s > 0.0 && four.energy_j > 0.0);
        assert!(four.peak_power_w >= four.avg_power_w());

        let long = m.plan_fixed(&Job { duration_scale: 2.0, ..j.clone() }, Configuration::Four);
        assert!((long.exec_time_s / four.exec_time_s - 2.0).abs() < 0.05);

        let capped = m.plan_within_power(&j, four.peak_power_w - 1.0).unwrap();
        assert!(capped.peak_power_w < four.peak_power_w);
        // An impossible cap yields no plan.
        assert!(m.plan_within_power(&j, 1.0).is_none());
    }
}
