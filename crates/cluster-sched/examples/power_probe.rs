//! Prints per-benchmark four-core and one-core plan power/time — handy when
//! picking power-budget tiers for sweeps.

use actor_core::ActorConfig;
use cluster_sched::{Job, WorkloadModel};
use npb_workloads::BenchmarkId;
use xeon_sim::{Configuration, Machine};

fn main() {
    let machine = Machine::xeon_qx6600();
    let config = ActorConfig { corpus_replicas: 2, ..ActorConfig::fast() };
    let model = WorkloadModel::build(&machine, &config, &BenchmarkId::ALL).unwrap();
    for id in BenchmarkId::ALL {
        let j = Job {
            id: 0,
            benchmark: id,
            arrival_s: 0.0,
            nodes: 1,
            priority: 0,
            deadline_s: None,
            duration_scale: 1.0,
        };
        let four = model.plan_fixed(&j, Configuration::Four);
        let one = model.plan_fixed(&j, Configuration::One);
        let aware = model.plan_within_power(&j, f64::INFINITY).unwrap();
        println!(
            "{id:>6}: four {:7.2}s {:6.2}W | one {:7.2}s {:6.2}W | actor {:7.2}s {:6.2}W",
            four.exec_time_s,
            four.peak_power_w,
            one.exec_time_s,
            one.peak_power_w,
            aware.exec_time_s,
            aware.peak_power_w,
        );
    }
}
