//! Benchmark descriptors: ordered phases executed over outer timesteps.

use serde::{Deserialize, Serialize};

use xeon_sim::{AggregateExecution, Configuration, Machine, PhaseExecution, PhaseProfile};

/// The eight NPB 3.2 OpenMP benchmarks used in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BenchmarkId {
    /// Block tri-diagonal solver.
    Bt,
    /// Conjugate gradient.
    Cg,
    /// 3-D fast Fourier transform.
    Ft,
    /// Integer sort.
    Is,
    /// Lower-upper Gauss-Seidel solver (pipelined).
    Lu,
    /// LU with hyperplane parallelisation.
    LuHp,
    /// Multigrid.
    Mg,
    /// Scalar penta-diagonal solver.
    Sp,
}

impl BenchmarkId {
    /// All benchmarks in the paper's presentation order.
    pub const ALL: [BenchmarkId; 8] = [
        BenchmarkId::Bt,
        BenchmarkId::Cg,
        BenchmarkId::Ft,
        BenchmarkId::Is,
        BenchmarkId::Lu,
        BenchmarkId::LuHp,
        BenchmarkId::Mg,
        BenchmarkId::Sp,
    ];

    /// The name used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            BenchmarkId::Bt => "BT",
            BenchmarkId::Cg => "CG",
            BenchmarkId::Ft => "FT",
            BenchmarkId::Is => "IS",
            BenchmarkId::Lu => "LU",
            BenchmarkId::LuHp => "LU-HP",
            BenchmarkId::Mg => "MG",
            BenchmarkId::Sp => "SP",
        }
    }

    /// Parses a figure name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|b| b.name().eq_ignore_ascii_case(name))
    }

    /// Whether the paper uses the reduced hardware-event set for this
    /// benchmark ("we use a reduced number of events for the applications
    /// with fewer iterations (FT, IS, and MG)").
    pub fn uses_reduced_event_set(&self) -> bool {
        matches!(self, BenchmarkId::Ft | BenchmarkId::Is | BenchmarkId::Mg)
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A benchmark as a sequence of phases executed once per outer timestep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkProfile {
    /// Which benchmark this is.
    pub id: BenchmarkId,
    /// Number of outer iterations (timesteps). The paper notes that several
    /// codes (FT, IS, MG) have very few iterations, which constrains how much
    /// execution ACTOR may spend sampling.
    pub timesteps: usize,
    /// The phases executed, in order, within each timestep. Each entry
    /// describes a single instance of that phase.
    pub phases: Vec<PhaseProfile>,
}

impl BenchmarkProfile {
    /// Number of distinct phases.
    pub fn num_phases(&self) -> usize {
        self.phases.len()
    }

    /// Total number of phase instances over the whole run.
    pub fn total_instances(&self) -> usize {
        self.timesteps * self.phases.len()
    }

    /// Simulates a single instance of every phase under `config`, in order.
    pub fn simulate_phases(&self, machine: &Machine, config: Configuration) -> Vec<PhaseExecution> {
        self.phases.iter().map(|p| machine.simulate_config(p, config)).collect()
    }

    /// Simulates the whole benchmark (all timesteps) with one static
    /// configuration, as in Figure 1 / Figure 3.
    pub fn simulate(&self, machine: &Machine, config: Configuration) -> AggregateExecution {
        let mut agg = AggregateExecution::new(format!("{} @ {}", self.id, config.label()));
        let per_timestep = self.simulate_phases(machine, config);
        for _ in 0..self.timesteps {
            for exec in &per_timestep {
                agg.add(exec);
            }
        }
        agg
    }

    /// Simulates the whole benchmark where each phase may use a *different*
    /// configuration (`choice[i]` applies to `phases[i]`), as ACTOR and the
    /// phase-optimal oracle do.
    pub fn simulate_per_phase(
        &self,
        machine: &Machine,
        choice: &[Configuration],
    ) -> AggregateExecution {
        assert_eq!(
            choice.len(),
            self.phases.len(),
            "need one configuration per phase of {}",
            self.id
        );
        let mut agg = AggregateExecution::new(format!("{} (per-phase)", self.id));
        let per_timestep: Vec<PhaseExecution> =
            self.phases.iter().zip(choice).map(|(p, &c)| machine.simulate_config(p, c)).collect();
        for _ in 0..self.timesteps {
            for exec in &per_timestep {
                agg.add(exec);
            }
        }
        agg
    }

    /// Validates every phase profile.
    pub fn validate(&self) -> Result<(), xeon_sim::SimError> {
        for p in &self.phases {
            p.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xeon_sim::PhaseProfile;

    fn tiny() -> BenchmarkProfile {
        BenchmarkProfile {
            id: BenchmarkId::Cg,
            timesteps: 3,
            phases: vec![
                PhaseProfile::compute_bound("cg.p0", 1e8),
                PhaseProfile::bandwidth_bound("cg.p1", 2e8),
            ],
        }
    }

    #[test]
    fn id_names_round_trip() {
        for id in BenchmarkId::ALL {
            assert_eq!(BenchmarkId::from_name(id.name()), Some(id));
        }
        assert_eq!(BenchmarkId::from_name("lu-hp"), Some(BenchmarkId::LuHp));
        assert_eq!(BenchmarkId::from_name("nope"), None);
        assert_eq!(BenchmarkId::ALL.len(), 8);
    }

    #[test]
    fn reduced_event_set_flags_match_paper() {
        assert!(BenchmarkId::Ft.uses_reduced_event_set());
        assert!(BenchmarkId::Is.uses_reduced_event_set());
        assert!(BenchmarkId::Mg.uses_reduced_event_set());
        assert!(!BenchmarkId::Bt.uses_reduced_event_set());
        assert!(!BenchmarkId::Sp.uses_reduced_event_set());
    }

    #[test]
    fn counts_and_validation() {
        let b = tiny();
        assert_eq!(b.num_phases(), 2);
        assert_eq!(b.total_instances(), 6);
        assert!(b.validate().is_ok());
    }

    #[test]
    fn whole_benchmark_aggregation_scales_with_timesteps() {
        let b = tiny();
        let machine = Machine::xeon_qx6600();
        let phases = b.simulate_phases(&machine, Configuration::Four);
        let agg = b.simulate(&machine, Configuration::Four);
        let expected_time: f64 = phases.iter().map(|e| e.time_s).sum::<f64>() * 3.0;
        assert!((agg.time_s - expected_time).abs() < 1e-9);
        assert_eq!(agg.instances, 6);
        assert!(agg.energy_j > 0.0);
    }

    #[test]
    fn per_phase_configurations_differ_from_static() {
        let b = tiny();
        let machine = Machine::xeon_qx6600();
        // Phase 0 scales, phase 1 does not: a mixed choice must beat all-4
        // on energy-delay for this contrived benchmark.
        let static4 = b.simulate(&machine, Configuration::Four);
        let mixed = b.simulate_per_phase(&machine, &[Configuration::Four, Configuration::TwoLoose]);
        assert!(mixed.time_s <= static4.time_s * 1.05);
        assert!(mixed.instances == static4.instances);
    }

    #[test]
    #[should_panic(expected = "one configuration per phase")]
    fn per_phase_choice_length_is_checked() {
        let b = tiny();
        let machine = Machine::xeon_qx6600();
        b.simulate_per_phase(&machine, &[Configuration::One]);
    }
}
