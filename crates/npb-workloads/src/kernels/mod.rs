//! Executable kernels running on the `phase-rt` runtime.
//!
//! These are small but *real* computations standing in for the NPB codes on
//! the live path: a sparse conjugate-gradient solver ([`cg`]), a multigrid
//! V-cycle ([`mg`]), an integer bucket sort ([`is`]), a batched radix-2 FFT
//! ([`ft`]) and an SP-like line-sweep stencil ([`stencil`]). Each kernel
//! declares its parallel regions as phases, so ACTOR (or any
//! [`phase_rt::RegionListener`]) can observe and throttle them, and each
//! verifies its own numerical result.

pub mod cg;
pub mod ft;
pub mod is;
pub mod mg;
pub mod stencil;

pub use cg::ConjugateGradient;
pub use ft::BatchFft;
pub use is::IntegerSort;
pub use mg::Multigrid;
pub use stencil::LineSweepStencil;

use parking_lot::Mutex;
use phase_rt::{Binding, LoopSchedule, PhaseId, Team};

/// Computes `out[i] = f(i)` for `i in 0..n` in parallel under the given
/// binding, using one contiguous block per thread. Threads build their block
/// locally and copy it into the shared output under a short-lived lock, so no
/// unsafe aliasing is needed.
pub fn parallel_map(
    team: &Team,
    phase: PhaseId,
    binding: &Binding,
    n: usize,
    f: impl Fn(usize) -> f64 + Sync,
) -> Vec<f64> {
    let out = Mutex::new(vec![0.0f64; n]);
    // The work split must use the thread count the team *actually* runs with
    // (a listener may throttle the requested binding), so it is derived from
    // the worker context inside the region, not from `binding`.
    team.run_region(phase, binding, |ctx| {
        let chunk = n.div_ceil(ctx.num_threads.max(1));
        let lo = (ctx.thread_id * chunk).min(n);
        let hi = ((ctx.thread_id + 1) * chunk).min(n);
        if lo >= hi {
            return;
        }
        let local: Vec<f64> = (lo..hi).map(&f).collect();
        out.lock()[lo..hi].copy_from_slice(&local);
    });
    out.into_inner()
}

/// Parallel sum-reduction of `f(i)` for `i in 0..n`.
pub fn parallel_reduce(
    team: &Team,
    phase: PhaseId,
    binding: &Binding,
    n: usize,
    schedule: LoopSchedule,
    f: impl Fn(usize) -> f64 + Sync,
) -> f64 {
    let total = Mutex::new(0.0f64);
    // The chunk queue is created lazily inside the region so that it sees the
    // thread count actually granted by the team (after any listener
    // throttling), not the requested one.
    let queue_cell: std::sync::OnceLock<phase_rt::ChunkQueue> = std::sync::OnceLock::new();
    team.run_region(phase, binding, |ctx| {
        let queue = queue_cell.get_or_init(|| {
            let threads = ctx.num_threads.max(1);
            phase_rt::ChunkQueue::new(n, threads, schedule).unwrap_or_else(|_| {
                phase_rt::ChunkQueue::new(n, threads, LoopSchedule::Static { chunk: 0 })
                    .expect("static schedule is always valid")
            })
        });
        let mut local = 0.0;
        while let Some(range) = queue.next_chunk(ctx.thread_id) {
            for i in range {
                local += f(i);
            }
        }
        *total.lock() += local;
    });
    total.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phase_rt::MachineShape;

    #[test]
    fn parallel_map_matches_sequential() {
        let team = Team::new(4).unwrap();
        let shape = MachineShape::quad_core();
        for threads in 1..=4 {
            let binding = Binding::packed(threads, &shape);
            let out = parallel_map(&team, PhaseId::new(0), &binding, 1000, |i| (i * i) as f64);
            assert_eq!(out.len(), 1000);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, (i * i) as f64);
            }
        }
        // empty map
        let binding = Binding::packed(4, &shape);
        assert!(parallel_map(&team, PhaseId::new(0), &binding, 0, |_| 1.0).is_empty());
    }

    #[test]
    fn parallel_reduce_matches_sequential() {
        let team = Team::new(4).unwrap();
        let shape = MachineShape::quad_core();
        let expected: f64 = (0..10_000).map(|i| i as f64).sum();
        for schedule in [
            LoopSchedule::Static { chunk: 0 },
            LoopSchedule::Dynamic { chunk: 64 },
            LoopSchedule::Guided { min_chunk: 16 },
        ] {
            let got = parallel_reduce(
                &team,
                PhaseId::new(1),
                &Binding::spread(4, &shape),
                10_000,
                schedule,
                |i| i as f64,
            );
            assert!((got - expected).abs() < 1e-6, "{schedule:?}: {got} != {expected}");
        }
    }
}
