//! Batched radix-2 FFT (the live counterpart of NPB FT).
//!
//! NPB FT performs 3-D FFTs as batches of 1-D transforms along each axis.
//! This kernel transforms a batch of independent complex vectors with an
//! iterative radix-2 Cooley-Tukey FFT; each batch sweep is one parallel
//! region (the rows are independent, like FT's pencil transforms).

use parking_lot::Mutex;
use phase_rt::{Binding, PhaseId, Team};

/// Phase ids used by the FFT kernel.
pub mod phases {
    use phase_rt::PhaseId;
    /// Forward transforms over the batch.
    pub const FFT_FORWARD: PhaseId = PhaseId::new(130);
    /// Inverse transforms over the batch.
    pub const FFT_INVERSE: PhaseId = PhaseId::new(131);
    /// Point-wise evolution (frequency-domain scaling).
    pub const EVOLVE: PhaseId = PhaseId::new(132);
}

/// A complex number stored as `(re, im)`.
pub type Complex = (f64, f64);

fn c_add(a: Complex, b: Complex) -> Complex {
    (a.0 + b.0, a.1 + b.1)
}

fn c_sub(a: Complex, b: Complex) -> Complex {
    (a.0 - b.0, a.1 - b.1)
}

fn c_mul(a: Complex, b: Complex) -> Complex {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

/// In-place iterative radix-2 FFT of one row. `inverse` selects the inverse
/// transform (including the 1/n normalisation).
pub fn fft_row(row: &mut [Complex], inverse: bool) {
    let n = row.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            row.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let angle = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = (angle.cos(), angle.sin());
        let mut i = 0;
        while i < n {
            let mut w = (1.0, 0.0);
            for k in 0..len / 2 {
                let u = row[i + k];
                let v = c_mul(row[i + k + len / 2], w);
                row[i + k] = c_add(u, v);
                row[i + k + len / 2] = c_sub(u, v);
                w = c_mul(w, wlen);
            }
            i += len;
        }
        len <<= 1;
    }
    if inverse {
        for v in row.iter_mut() {
            v.0 /= n as f64;
            v.1 /= n as f64;
        }
    }
}

/// The batched-FFT kernel.
#[derive(Debug, Clone)]
pub struct BatchFft {
    rows: usize,
    len: usize,
    data: Vec<Vec<Complex>>,
}

impl BatchFft {
    /// Creates a batch of `rows` vectors of length `len` (rounded up to a
    /// power of two) filled with a deterministic smooth signal.
    pub fn new(rows: usize, len: usize) -> Self {
        let len = len.max(8).next_power_of_two();
        let rows = rows.max(1);
        let data = (0..rows)
            .map(|r| {
                (0..len)
                    .map(|i| {
                        let t = i as f64 / len as f64;
                        let f = (r % 7 + 1) as f64;
                        (
                            (2.0 * std::f64::consts::PI * f * t).sin(),
                            (2.0 * std::f64::consts::PI * f * t).cos() * 0.5,
                        )
                    })
                    .collect()
            })
            .collect();
        Self { rows, len, data }
    }

    /// Number of rows in the batch.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Runs forward FFT → frequency-domain evolution → inverse FFT over the
    /// batch, returning the maximum absolute error against the original data
    /// when `evolve_factor` is 1.0 (a round-trip check).
    #[allow(clippy::needless_range_loop)] // thread-chunked row indexing into shared buffers
    pub fn run(&self, team: &Team, binding: &Binding, evolve_factor: f64) -> f64 {
        let transformed =
            self.batch_transform(team, binding, &self.data, false, phases::FFT_FORWARD);

        // Point-wise evolution in frequency space.
        let evolved: Vec<Vec<Complex>> = {
            let out = Mutex::new(vec![Vec::new(); self.rows]);
            team.run_region(phases::EVOLVE, binding, |ctx| {
                let chunk = self.rows.div_ceil(ctx.num_threads.max(1));
                let lo = (ctx.thread_id * chunk).min(self.rows);
                let hi = ((ctx.thread_id + 1) * chunk).min(self.rows);
                for r in lo..hi {
                    let row: Vec<Complex> = transformed[r]
                        .iter()
                        .map(|&(re, im)| (re * evolve_factor, im * evolve_factor))
                        .collect();
                    out.lock()[r] = row;
                }
            });
            out.into_inner()
        };

        let back = self.batch_transform(team, binding, &evolved, true, phases::FFT_INVERSE);

        // Round-trip error against evolve_factor * original.
        let mut max_err = 0.0f64;
        for (orig_row, back_row) in self.data.iter().zip(&back) {
            for (o, b) in orig_row.iter().zip(back_row) {
                let err =
                    ((o.0 * evolve_factor - b.0).abs()).max((o.1 * evolve_factor - b.1).abs());
                max_err = max_err.max(err);
            }
        }
        max_err
    }

    #[allow(clippy::needless_range_loop)] // thread-chunked row indexing into shared buffers
    fn batch_transform(
        &self,
        team: &Team,
        binding: &Binding,
        input: &[Vec<Complex>],
        inverse: bool,
        phase: PhaseId,
    ) -> Vec<Vec<Complex>> {
        let out = Mutex::new(vec![Vec::new(); input.len()]);
        team.run_region(phase, binding, |ctx| {
            let chunk = input.len().div_ceil(ctx.num_threads.max(1));
            let lo = (ctx.thread_id * chunk).min(input.len());
            let hi = ((ctx.thread_id + 1) * chunk).min(input.len());
            for r in lo..hi {
                let mut row = input[r].clone();
                fft_row(&mut row, inverse);
                out.lock()[r] = row;
            }
        });
        out.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phase_rt::MachineShape;

    #[test]
    fn fft_round_trip_is_identity() {
        let mut row: Vec<Complex> = (0..16).map(|i| (i as f64, -(i as f64) / 3.0)).collect();
        let original = row.clone();
        fft_row(&mut row, false);
        fft_row(&mut row, true);
        for (a, b) in row.iter().zip(&original) {
            assert!((a.0 - b.0).abs() < 1e-9 && (a.1 - b.1).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_of_constant_signal_concentrates_in_dc() {
        let mut row: Vec<Complex> = vec![(1.0, 0.0); 8];
        fft_row(&mut row, false);
        assert!((row[0].0 - 8.0).abs() < 1e-9);
        for v in &row[1..] {
            assert!(v.0.abs() < 1e-9 && v.1.abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut row: Vec<Complex> = vec![(0.0, 0.0); 12];
        fft_row(&mut row, false);
    }

    #[test]
    fn batch_round_trip_on_all_bindings() {
        let team = Team::new(4).unwrap();
        let shape = MachineShape::quad_core();
        let fft = BatchFft::new(64, 128);
        assert_eq!(fft.rows(), 64);
        assert_eq!(fft.len(), 128);
        assert!(!fft.is_empty());
        for threads in [1, 2, 4] {
            let err = fft.run(&team, &Binding::spread(threads, &shape), 1.0);
            assert!(err < 1e-9, "round-trip error {err} with {threads} threads");
        }
    }

    #[test]
    fn evolution_scales_the_signal() {
        let team = Team::new(2).unwrap();
        let shape = MachineShape::quad_core();
        let fft = BatchFft::new(8, 32);
        // With factor 2, the round-trip against 2x the original must be exact.
        let err = fft.run(&team, &Binding::packed(2, &shape), 2.0);
        assert!(err < 1e-9, "scaled round-trip error {err}");
    }
}
