//! Conjugate-gradient solver (the live counterpart of NPB CG).
//!
//! Solves `A x = b` for a symmetric positive-definite sparse matrix stored in
//! CSR form (a 2-D five-point Poisson operator). Each CG iteration exposes
//! the same phases as NPB CG: a sparse matrix-vector product, two AXPY
//! updates and two dot products — all executed as parallel regions on the
//! `phase-rt` team, so a listener can throttle each phase independently.

use phase_rt::{Binding, LoopSchedule, Team};

use super::{parallel_map, parallel_reduce};

/// Phase ids used by the CG kernel (stable across runs so ACTOR can track
/// them).
pub mod phases {
    use phase_rt::PhaseId;
    /// Sparse matrix-vector product.
    pub const SPMV: PhaseId = PhaseId::new(100);
    /// `x += alpha p; r -= alpha q` update.
    pub const AXPY: PhaseId = PhaseId::new(101);
    /// Dot products / norms.
    pub const DOT: PhaseId = PhaseId::new(102);
}

/// CSR sparse matrix.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds the five-point Laplacian on a `grid × grid` mesh (SPD after
    /// sign flip; diagonally dominant).
    pub fn poisson_2d(grid: usize) -> Self {
        let n = grid * grid;
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..grid {
            for c in 0..grid {
                let i = r * grid + c;
                let mut push = |j: usize, v: f64| {
                    col_idx.push(j);
                    values.push(v);
                };
                if r > 0 {
                    push(i - grid, -1.0);
                }
                if c > 0 {
                    push(i - 1, -1.0);
                }
                push(i, 4.0);
                if c + 1 < grid {
                    push(i + 1, -1.0);
                }
                if r + 1 < grid {
                    push(i + grid, -1.0);
                }
                row_ptr.push(col_idx.len());
            }
        }
        Self { n, row_ptr, col_idx, values }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `y[i] = (A x)[i]` for a single row.
    pub fn row_dot(&self, i: usize, x: &[f64]) -> f64 {
        let mut acc = 0.0;
        for k in self.row_ptr[i]..self.row_ptr[i + 1] {
            acc += self.values[k] * x[self.col_idx[k]];
        }
        acc
    }
}

/// Result of a CG solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgResult {
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual_norm: f64,
    /// The solution vector.
    pub solution: Vec<f64>,
}

/// The conjugate-gradient kernel.
#[derive(Debug, Clone)]
pub struct ConjugateGradient {
    matrix: CsrMatrix,
    rhs: Vec<f64>,
    max_iterations: usize,
    tolerance: f64,
}

impl ConjugateGradient {
    /// Creates a solver for the 2-D Poisson problem on a `grid × grid` mesh
    /// with a constant right-hand side.
    pub fn poisson(grid: usize, max_iterations: usize) -> Self {
        let matrix = CsrMatrix::poisson_2d(grid.max(2));
        let rhs = vec![1.0; matrix.dim()];
        Self { matrix, rhs, max_iterations: max_iterations.max(1), tolerance: 1e-8 }
    }

    /// The problem size (number of unknowns).
    pub fn dim(&self) -> usize {
        self.matrix.dim()
    }

    /// Runs CG on the team under the given binding.
    pub fn run(&self, team: &Team, binding: &Binding) -> CgResult {
        let n = self.dim();
        let a = &self.matrix;
        let mut x = vec![0.0; n];
        // r = b - A x = b  (x starts at zero)
        let mut r = self.rhs.clone();
        let mut p = r.clone();
        let mut rr = parallel_reduce(
            team,
            phases::DOT,
            binding,
            n,
            LoopSchedule::Static { chunk: 0 },
            |i| r[i] * r[i],
        );
        let mut iterations = 0;

        for _ in 0..self.max_iterations {
            if rr.sqrt() <= self.tolerance {
                break;
            }
            iterations += 1;

            // q = A p (SpMV phase)
            let q = parallel_map(team, phases::SPMV, binding, n, |i| a.row_dot(i, &p));

            // alpha = rr / (p . q)
            let pq = parallel_reduce(
                team,
                phases::DOT,
                binding,
                n,
                LoopSchedule::Static { chunk: 0 },
                |i| p[i] * q[i],
            );
            if pq.abs() < f64::MIN_POSITIVE {
                break;
            }
            let alpha = rr / pq;

            // x += alpha p ; r -= alpha q (AXPY phase)
            let new_x = parallel_map(team, phases::AXPY, binding, n, |i| x[i] + alpha * p[i]);
            let new_r = parallel_map(team, phases::AXPY, binding, n, |i| r[i] - alpha * q[i]);
            x = new_x;
            r = new_r;

            let new_rr = parallel_reduce(
                team,
                phases::DOT,
                binding,
                n,
                LoopSchedule::Static { chunk: 0 },
                |i| r[i] * r[i],
            );
            let beta = new_rr / rr;
            rr = new_rr;

            // p = r + beta p
            p = parallel_map(team, phases::AXPY, binding, n, |i| r[i] + beta * p[i]);
        }

        CgResult { iterations, residual_norm: rr.sqrt(), solution: x }
    }

    /// Residual norm ‖b − A x‖₂ computed sequentially, for verification.
    pub fn residual_of(&self, x: &[f64]) -> f64 {
        (0..self.dim())
            .map(|i| {
                let d = self.rhs[i] - self.matrix.row_dot(i, x);
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phase_rt::MachineShape;

    #[test]
    fn poisson_matrix_shape() {
        let a = CsrMatrix::poisson_2d(8);
        assert_eq!(a.dim(), 64);
        // interior points have 5 entries, corners 3
        assert!(a.nnz() > 64 * 3 && a.nnz() < 64 * 5 + 1);
        // Diagonal dominance of the first row.
        assert!(a.row_dot(0, &vec![1.0; 64]) > 0.0);
    }

    #[test]
    fn cg_converges_and_solution_is_correct() {
        let team = Team::new(4).unwrap();
        let shape = MachineShape::quad_core();
        let solver = ConjugateGradient::poisson(24, 400);
        let result = solver.run(&team, &Binding::packed(4, &shape));
        assert!(result.iterations > 5, "CG should need a few iterations");
        assert!(
            result.residual_norm < 1e-6,
            "CG did not converge: residual {}",
            result.residual_norm
        );
        // Independent residual check.
        assert!(solver.residual_of(&result.solution) < 1e-5);
    }

    #[test]
    fn result_is_independent_of_thread_count() {
        let team = Team::new(4).unwrap();
        let shape = MachineShape::quad_core();
        let solver = ConjugateGradient::poisson(16, 300);
        let seq = solver.run(&team, &Binding::packed(1, &shape));
        let par = solver.run(&team, &Binding::spread(4, &shape));
        assert_eq!(seq.iterations, par.iterations);
        let max_diff = seq
            .solution
            .iter()
            .zip(&par.solution)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_diff < 1e-9, "solutions diverged by {max_diff}");
    }
}
