//! Line-sweep stencil solver (the live counterpart of NPB SP/BT's x/y/z
//! solves).
//!
//! SP and BT spend their time in alternating-direction implicit sweeps: for
//! each grid line along one axis, solve a small banded system (here: the
//! Thomas algorithm for a tridiagonal system), then sweep the other axis.
//! Lines are independent, so each sweep is one parallel region.

use parking_lot::Mutex;
use phase_rt::{Binding, Team};

/// Phase ids used by the stencil kernel.
pub mod phases {
    use phase_rt::PhaseId;
    /// Sweep along x (rows).
    pub const X_SOLVE: PhaseId = PhaseId::new(140);
    /// Sweep along y (columns).
    pub const Y_SOLVE: PhaseId = PhaseId::new(141);
    /// Right-hand-side update between sweeps.
    pub const RHS: PhaseId = PhaseId::new(142);
}

/// The line-sweep kernel on an `n × n` grid.
#[derive(Debug, Clone)]
pub struct LineSweepStencil {
    n: usize,
    diffusion: f64,
}

impl LineSweepStencil {
    /// Creates a solver on an `n × n` grid (minimum 8) with the given
    /// diffusion coefficient (controls how strongly each sweep smooths).
    pub fn new(n: usize, diffusion: f64) -> Self {
        Self { n: n.max(8), diffusion: diffusion.clamp(0.01, 10.0) }
    }

    /// Grid dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves one tridiagonal line `(I + 2d) u_i - d u_{i-1} - d u_{i+1} = rhs_i`
    /// with the Thomas algorithm.
    fn solve_line(&self, rhs: &[f64]) -> Vec<f64> {
        let n = rhs.len();
        let d = self.diffusion;
        let a = -d; // sub-diagonal
        let b = 1.0 + 2.0 * d; // diagonal
        let c = -d; // super-diagonal
        let mut cp = vec![0.0; n];
        let mut dp = vec![0.0; n];
        cp[0] = c / b;
        dp[0] = rhs[0] / b;
        for i in 1..n {
            let m = b - a * cp[i - 1];
            cp[i] = c / m;
            dp[i] = (rhs[i] - a * dp[i - 1]) / m;
        }
        let mut x = vec![0.0; n];
        x[n - 1] = dp[n - 1];
        for i in (0..n - 1).rev() {
            x[i] = dp[i] - cp[i] * x[i + 1];
        }
        x
    }

    /// Runs `sweeps` alternating x/y sweeps starting from a deterministic
    /// initial field; returns the final field's mean absolute value (a
    /// smoothness checksum that decreases as the field is diffused).
    pub fn run(&self, team: &Team, binding: &Binding, sweeps: usize) -> f64 {
        let n = self.n;
        let mut field: Vec<f64> = (0..n * n)
            .map(|i| {
                let (r, c) = (i / n, i % n);
                if (r + c) % 2 == 0 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();

        for _ in 0..sweeps.max(1) {
            // x sweep: each row independently.
            field = self.sweep(team, binding, &field, true);
            // rhs "update": mild nonlinearity between sweeps.
            field = super::parallel_map(team, phases::RHS, binding, n * n, |i| {
                let v: f64 = field[i];
                v - 0.01 * v * v * v
            });
            // y sweep: each column independently.
            field = self.sweep(team, binding, &field, false);
        }

        field.iter().map(|v| v.abs()).sum::<f64>() / (n * n) as f64
    }

    fn sweep(&self, team: &Team, binding: &Binding, field: &[f64], rows: bool) -> Vec<f64> {
        let n = self.n;
        let phase = if rows { phases::X_SOLVE } else { phases::Y_SOLVE };
        let out = Mutex::new(vec![0.0f64; n * n]);
        team.run_region(phase, binding, |ctx| {
            let chunk = n.div_ceil(ctx.num_threads.max(1));
            let lo = (ctx.thread_id * chunk).min(n);
            let hi = ((ctx.thread_id + 1) * chunk).min(n);
            for line in lo..hi {
                let rhs: Vec<f64> = if rows {
                    field[line * n..(line + 1) * n].to_vec()
                } else {
                    (0..n).map(|r| field[r * n + line]).collect()
                };
                let solved = self.solve_line(&rhs);
                let mut guard = out.lock();
                if rows {
                    guard[line * n..(line + 1) * n].copy_from_slice(&solved);
                } else {
                    for (r, v) in solved.iter().enumerate() {
                        guard[r * n + line] = *v;
                    }
                }
            }
        });
        out.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phase_rt::MachineShape;

    #[test]
    fn thomas_solver_solves_tridiagonal_system() {
        let s = LineSweepStencil::new(8, 0.5);
        let rhs = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let x = s.solve_line(&rhs);
        // Verify A x = rhs for the implied tridiagonal matrix.
        let d = 0.5;
        for i in 0..rhs.len() {
            let mut lhs = (1.0 + 2.0 * d) * x[i];
            if i > 0 {
                lhs += -d * x[i - 1];
            }
            if i + 1 < rhs.len() {
                lhs += -d * x[i + 1];
            }
            assert!((lhs - rhs[i]).abs() < 1e-9, "row {i}: {lhs} vs {}", rhs[i]);
        }
    }

    #[test]
    fn sweeps_smooth_the_field() {
        let team = Team::new(4).unwrap();
        let shape = MachineShape::quad_core();
        let s = LineSweepStencil::new(64, 0.8);
        let binding = Binding::packed(4, &shape);
        let one = s.run(&team, &binding, 1);
        let many = s.run(&team, &binding, 5);
        assert!(one < 1.0, "diffusion must reduce the checkerboard amplitude, got {one}");
        assert!(many < one, "more sweeps must smooth more: {many} vs {one}");
    }

    #[test]
    fn numerics_independent_of_binding() {
        let team = Team::new(4).unwrap();
        let shape = MachineShape::quad_core();
        let s = LineSweepStencil::new(32, 0.5);
        let a = s.run(&team, &Binding::packed(1, &shape), 3);
        let b = s.run(&team, &Binding::spread(4, &shape), 3);
        assert!((a - b).abs() < 1e-12, "results diverged: {a} vs {b}");
    }

    #[test]
    fn construction_clamps_parameters() {
        let s = LineSweepStencil::new(2, 1000.0);
        assert!(s.dim() >= 8);
        assert!(s.diffusion <= 10.0);
    }
}
