//! Integer bucket sort (the live counterpart of NPB IS).
//!
//! Ranks a large array of small integer keys by histogramming, exactly like
//! NPB IS: a parallel histogram ("rank") phase, a sequential prefix sum, and
//! a parallel permutation phase. The key array is scanned with streaming
//! accesses, which is what makes the real IS so bandwidth-hungry.

use parking_lot::Mutex;
use phase_rt::{Binding, Team};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Phase ids used by the integer-sort kernel.
pub mod phases {
    use phase_rt::PhaseId;
    /// Histogram / ranking phase.
    pub const RANK: PhaseId = PhaseId::new(110);
    /// Permutation (key shuffle) phase.
    pub const SHUFFLE: PhaseId = PhaseId::new(111);
}

/// The integer-sort kernel.
#[derive(Debug, Clone)]
pub struct IntegerSort {
    keys: Vec<u32>,
    max_key: u32,
}

impl IntegerSort {
    /// Generates `n` pseudo-random keys in `[0, max_key)` from a fixed seed.
    pub fn new(n: usize, max_key: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let max_key = max_key.max(2);
        let keys = (0..n.max(1)).map(|_| rng.gen_range(0..max_key)).collect();
        Self { keys, max_key }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the key array is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Sorts the keys on the team, returning the sorted array.
    #[allow(clippy::needless_range_loop)] // bucket index doubles as the emitted key value
    pub fn run(&self, team: &Team, binding: &Binding) -> Vec<u32> {
        let n = self.keys.len();
        let buckets = self.max_key as usize;

        // Phase 1: per-thread histograms merged into a global histogram.
        // Work is split by the thread count actually granted by the team
        // (a listener may throttle the requested binding).
        let histogram = Mutex::new(vec![0usize; buckets]);
        team.run_region(phases::RANK, binding, |ctx| {
            let chunk = n.div_ceil(ctx.num_threads.max(1));
            let lo = (ctx.thread_id * chunk).min(n);
            let hi = ((ctx.thread_id + 1) * chunk).min(n);
            let mut local = vec![0usize; buckets];
            for &k in &self.keys[lo..hi] {
                local[k as usize] += 1;
            }
            let mut global = histogram.lock();
            for (g, l) in global.iter_mut().zip(&local) {
                *g += l;
            }
        });
        let histogram = histogram.into_inner();

        // Sequential prefix sum (tiny compared to the scans).
        let mut offsets = vec![0usize; buckets + 1];
        for b in 0..buckets {
            offsets[b + 1] = offsets[b] + histogram[b];
        }

        // Phase 2: emit sorted output. Each thread owns a contiguous range of
        // *buckets* and writes the keys of those buckets.
        let output = Mutex::new(vec![0u32; n]);
        team.run_region(phases::SHUFFLE, binding, |ctx| {
            let bucket_chunk = buckets.div_ceil(ctx.num_threads.max(1));
            let blo = (ctx.thread_id * bucket_chunk).min(buckets);
            let bhi = ((ctx.thread_id + 1) * bucket_chunk).min(buckets);
            if blo >= bhi {
                return;
            }
            let mut local = Vec::with_capacity(offsets[bhi] - offsets[blo]);
            for b in blo..bhi {
                for _ in 0..histogram[b] {
                    local.push(b as u32);
                }
            }
            output.lock()[offsets[blo]..offsets[bhi]].copy_from_slice(&local);
        });
        output.into_inner()
    }

    /// Checks that `sorted` is a sorted permutation of the input keys.
    pub fn verify(&self, sorted: &[u32]) -> bool {
        if sorted.len() != self.keys.len() {
            return false;
        }
        if sorted.windows(2).any(|w| w[0] > w[1]) {
            return false;
        }
        let mut expected = self.keys.clone();
        expected.sort_unstable();
        expected.as_slice() == sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phase_rt::MachineShape;

    #[test]
    fn sorts_correctly_on_all_thread_counts() {
        let team = Team::new(4).unwrap();
        let shape = MachineShape::quad_core();
        let is = IntegerSort::new(50_000, 1024, 42);
        assert_eq!(is.len(), 50_000);
        assert!(!is.is_empty());
        for threads in [1, 2, 4] {
            let sorted = is.run(&team, &Binding::spread(threads, &shape));
            assert!(is.verify(&sorted), "sort incorrect with {threads} threads");
        }
    }

    #[test]
    fn tight_and_loose_bindings_produce_identical_output() {
        let team = Team::new(4).unwrap();
        let shape = MachineShape::quad_core();
        let is = IntegerSort::new(20_000, 512, 7);
        let a = is.run(&team, &Binding::packed(2, &shape));
        let b = is.run(&team, &Binding::spread(2, &shape));
        assert_eq!(a, b);
    }

    #[test]
    fn verify_rejects_wrong_outputs() {
        let is = IntegerSort::new(100, 16, 1);
        let mut sorted =
            is.run(&Team::new(2).unwrap(), &Binding::packed(1, &MachineShape::quad_core()));
        assert!(is.verify(&sorted));
        sorted[0] = 15;
        assert!(!is.verify(&sorted), "tampered output must fail verification");
        assert!(!is.verify(&sorted[1..]), "wrong length must fail verification");
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        let is = IntegerSort::new(0, 0, 3);
        assert!(!is.is_empty());
        assert!(is.max_key >= 2);
    }
}
