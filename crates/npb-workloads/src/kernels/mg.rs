//! Multigrid V-cycle (the live counterpart of NPB MG).
//!
//! Solves the 2-D Poisson equation with a geometric multigrid V-cycle:
//! weighted-Jacobi smoothing, residual computation, restriction to a coarser
//! grid, recursive solve and prolongation back. The smoothing and residual
//! sweeps are the bandwidth-bound stencils that make NPB MG scale poorly.

use phase_rt::{Binding, Team};

use super::parallel_map;

/// Phase ids used by the multigrid kernel.
pub mod phases {
    use phase_rt::PhaseId;
    /// Jacobi smoothing sweep.
    pub const SMOOTH: PhaseId = PhaseId::new(120);
    /// Residual computation.
    pub const RESID: PhaseId = PhaseId::new(121);
    /// Restriction to the coarser grid.
    pub const RESTRICT: PhaseId = PhaseId::new(122);
    /// Prolongation to the finer grid.
    pub const PROLONG: PhaseId = PhaseId::new(123);
}

/// Square grid helper (interior points only are updated; boundary is zero).
#[derive(Debug, Clone)]
struct Grid {
    n: usize,
    data: Vec<f64>,
}

impl Grid {
    fn zeros(n: usize) -> Self {
        Self { n, data: vec![0.0; n * n] }
    }

    fn idx(&self, r: usize, c: usize) -> usize {
        r * self.n + c
    }

    fn get(&self, r: usize, c: usize) -> f64 {
        self.data[self.idx(r, c)]
    }
}

/// The multigrid kernel.
#[derive(Debug, Clone)]
pub struct Multigrid {
    n: usize,
    rhs: Grid,
    pre_smooth: usize,
    post_smooth: usize,
}

impl Multigrid {
    /// Creates a V-cycle solver on an `n × n` grid (n rounded up to a
    /// power-of-two-plus-one-friendly even size, minimum 8) with a smooth
    /// right-hand side.
    pub fn new(n: usize) -> Self {
        let n = n.max(8).next_power_of_two();
        let mut rhs = Grid::zeros(n);
        for r in 0..n {
            for c in 0..n {
                let x = r as f64 / n as f64;
                let y = c as f64 / n as f64;
                rhs.data[r * n + c] =
                    (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin();
            }
        }
        Self { n, rhs, pre_smooth: 2, post_smooth: 2 }
    }

    /// Grid dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Runs `cycles` V-cycles, returning the residual norm after each cycle.
    pub fn run(&self, team: &Team, binding: &Binding, cycles: usize) -> Vec<f64> {
        let mut u = Grid::zeros(self.n);
        let mut norms = Vec::with_capacity(cycles);
        for _ in 0..cycles.max(1) {
            u = self.v_cycle(team, binding, u, &self.rhs);
            let r = self.residual(team, binding, &u, &self.rhs);
            let norm =
                (r.data.iter().map(|v| v * v).sum::<f64>() / (self.n * self.n) as f64).sqrt();
            norms.push(norm);
        }
        norms
    }

    fn v_cycle(&self, team: &Team, binding: &Binding, mut u: Grid, f: &Grid) -> Grid {
        let n = u.n;
        for _ in 0..self.pre_smooth {
            u = self.smooth(team, binding, &u, f);
        }
        if n > 8 {
            let r = self.residual(team, binding, &u, f);
            let coarse_r = self.restrict(team, binding, &r);
            let coarse_zero = Grid::zeros(coarse_r.n);
            let coarse_e = {
                // One recursive level is enough to demonstrate the hierarchy;
                // smooth the coarse problem a few extra times instead of full
                // recursion to keep runtimes small.
                let mut e = coarse_zero;
                for _ in 0..(self.pre_smooth + self.post_smooth + 4) {
                    e = self.smooth(team, binding, &e, &coarse_r);
                }
                e
            };
            let correction = self.prolong(team, binding, &coarse_e, n);
            for i in 0..u.data.len() {
                u.data[i] += correction.data[i];
            }
        }
        for _ in 0..self.post_smooth {
            u = self.smooth(team, binding, &u, f);
        }
        u
    }

    fn smooth(&self, team: &Team, binding: &Binding, u: &Grid, f: &Grid) -> Grid {
        let n = u.n;
        let h2 = 1.0 / (n as f64 * n as f64);
        let data = parallel_map(team, phases::SMOOTH, binding, n * n, |i| {
            let (r, c) = (i / n, i % n);
            if r == 0 || c == 0 || r == n - 1 || c == n - 1 {
                return 0.0;
            }
            let neighbours = u.get(r - 1, c) + u.get(r + 1, c) + u.get(r, c - 1) + u.get(r, c + 1);
            let jacobi = 0.25 * (neighbours + h2 * f.get(r, c));
            // Weighted Jacobi (ω = 0.8).
            0.8 * jacobi + 0.2 * u.get(r, c)
        });
        Grid { n, data }
    }

    fn residual(&self, team: &Team, binding: &Binding, u: &Grid, f: &Grid) -> Grid {
        let n = u.n;
        let h2 = 1.0 / (n as f64 * n as f64);
        let data = parallel_map(team, phases::RESID, binding, n * n, |i| {
            let (r, c) = (i / n, i % n);
            if r == 0 || c == 0 || r == n - 1 || c == n - 1 {
                return 0.0;
            }
            let lap = 4.0 * u.get(r, c)
                - u.get(r - 1, c)
                - u.get(r + 1, c)
                - u.get(r, c - 1)
                - u.get(r, c + 1);
            f.get(r, c) - lap / h2
        });
        Grid { n, data }
    }

    fn restrict(&self, team: &Team, binding: &Binding, fine: &Grid) -> Grid {
        let nc = fine.n / 2;
        let data = parallel_map(team, phases::RESTRICT, binding, nc * nc, |i| {
            let (r, c) = (i / nc, i % nc);
            let (fr, fc) = (r * 2, c * 2);
            if fr + 1 >= fine.n || fc + 1 >= fine.n {
                return 0.0;
            }
            0.25 * (fine.get(fr, fc)
                + fine.get(fr + 1, fc)
                + fine.get(fr, fc + 1)
                + fine.get(fr + 1, fc + 1))
        });
        Grid { n: nc, data }
    }

    fn prolong(&self, team: &Team, binding: &Binding, coarse: &Grid, n_fine: usize) -> Grid {
        let data = parallel_map(team, phases::PROLONG, binding, n_fine * n_fine, |i| {
            let (r, c) = (i / n_fine, i % n_fine);
            let (cr, cc) = ((r / 2).min(coarse.n - 1), (c / 2).min(coarse.n - 1));
            coarse.get(cr, cc)
        });
        Grid { n: n_fine, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phase_rt::MachineShape;

    #[test]
    fn v_cycles_reduce_the_residual() {
        let team = Team::new(4).unwrap();
        let shape = MachineShape::quad_core();
        let mg = Multigrid::new(32);
        assert_eq!(mg.dim(), 32);
        let norms = mg.run(&team, &Binding::packed(4, &shape), 4);
        assert_eq!(norms.len(), 4);
        assert!(
            norms.last().unwrap() < &(norms[0] * 0.8),
            "residual should shrink across V-cycles: {norms:?}"
        );
        assert!(norms.iter().all(|n| n.is_finite()));
    }

    #[test]
    fn thread_count_does_not_change_the_numerics() {
        let team = Team::new(4).unwrap();
        let shape = MachineShape::quad_core();
        let mg = Multigrid::new(16);
        let seq = mg.run(&team, &Binding::packed(1, &shape), 2);
        let par = mg.run(&team, &Binding::spread(4, &shape), 2);
        for (a, b) in seq.iter().zip(&par) {
            assert!((a - b).abs() < 1e-12, "norms diverged: {a} vs {b}");
        }
    }

    #[test]
    fn small_grids_are_rounded_up() {
        let mg = Multigrid::new(3);
        assert!(mg.dim() >= 8);
    }
}
