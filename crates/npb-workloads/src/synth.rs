//! Synthetic training workloads.
//!
//! The paper trains its ANNs on "training applications representing a variety
//! of runtime characteristics, as identified by the performance counters".
//! Besides the leave-one-out NPB corpus, this module can generate additional
//! randomised phase profiles that span the behaviour space (compute-bound to
//! bandwidth-bound, cache-resident to thrashing), which is useful for
//! enlarging the training corpus and for property-based testing.

use rand::Rng;

use xeon_sim::{MissRatioCurve, PhaseProfile};

/// Generator of randomised, physically plausible phase profiles.
#[derive(Debug, Clone)]
pub struct SyntheticWorkloads {
    /// Instructions per generated phase instance.
    pub instructions: f64,
}

impl Default for SyntheticWorkloads {
    fn default() -> Self {
        Self { instructions: 5e8 }
    }
}

impl SyntheticWorkloads {
    /// Creates a generator with the given per-phase instruction count.
    pub fn new(instructions: f64) -> Self {
        Self { instructions: instructions.max(1.0) }
    }

    /// Generates one random phase profile. The memory intensity is drawn
    /// first and the remaining parameters are derived from it with jitter, so
    /// generated phases are coherent (a streaming phase also has high L1 miss
    /// rates, good prefetchability, and so on).
    pub fn generate_one<R: Rng + ?Sized>(&self, index: usize, rng: &mut R) -> PhaseProfile {
        // 0 = fully compute bound, 1 = fully bandwidth bound.
        let intensity: f64 = rng.gen_range(0.0..1.0f64);
        let base_cpi = 0.7 + 0.5 * intensity + rng.gen_range(-0.05..0.05);
        let l1_mpki = 5.0 + 60.0 * intensity * rng.gen_range(0.7..1.3);
        let floor = 0.5 + 28.0 * intensity * rng.gen_range(0.6..1.4);
        let peak = floor * rng.gen_range(1.5..4.0);
        let ws = 0.5 + 3.5 * rng.gen_range(0.2f64..1.0).max(intensity * 0.6);
        let shape = rng.gen_range(0.7..2.0);
        let prefetch = if rng.gen_bool(0.5) {
            // streaming: prefetch friendly
            rng.gen_range(0.55..0.8)
        } else {
            // irregular: prefetch hostile
            rng.gen_range(0.2..0.45)
        };
        let parallel_fraction = rng.gen_range(0.9..0.998);
        let imbalance = rng.gen_range(0.02..0.35);

        PhaseProfile {
            name: format!("synth.{index}"),
            instructions: self.instructions * rng.gen_range(0.3..3.0),
            parallel_fraction,
            base_cpi,
            mem_ref_per_instr: (0.28 + l1_mpki / 250.0).min(0.5),
            store_fraction: rng.gen_range(0.2..0.45),
            l1_mpki,
            l2_mrc: MissRatioCurve::new(floor, peak, ws, shape),
            load_imbalance: imbalance,
            serial_overhead_us: rng.gen_range(2.0..10.0),
            prefetch_coverage: prefetch,
            branch_pki: rng.gen_range(20.0..90.0),
            branch_miss_ratio: rng.gen_range(0.01..0.06),
            dtlb_mpki: l1_mpki / 25.0,
        }
    }

    /// Generates `n` random phase profiles.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<PhaseProfile> {
        (0..n).map(|i| self.generate_one(i, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xeon_sim::{Configuration, Machine};

    #[test]
    fn generated_profiles_are_valid_and_named_uniquely() {
        let gen = SyntheticWorkloads::default();
        let mut rng = StdRng::seed_from_u64(1);
        let phases = gen.generate(50, &mut rng);
        assert_eq!(phases.len(), 50);
        let mut names: Vec<_> = phases.iter().map(|p| p.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 50);
        for p in &phases {
            assert!(p.validate().is_ok(), "invalid synthetic profile {:?}", p);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = SyntheticWorkloads::new(1e8);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(gen.generate(10, &mut a), gen.generate(10, &mut b));
    }

    #[test]
    fn corpus_spans_compute_and_bandwidth_bound_behaviour() {
        let gen = SyntheticWorkloads::default();
        let mut rng = StdRng::seed_from_u64(3);
        let machine = Machine::xeon_qx6600();
        let phases = gen.generate(60, &mut rng);
        let speedups: Vec<f64> = phases
            .iter()
            .map(|p| {
                let t1 = machine.simulate_config(p, Configuration::One).time_s;
                let t4 = machine.simulate_config(p, Configuration::Four).time_s;
                t1 / t4
            })
            .collect();
        let max = speedups.iter().cloned().fold(f64::MIN, f64::max);
        let min = speedups.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 2.0, "corpus should contain scalable phases (max speedup {max:.2})");
        assert!(
            min < 1.5,
            "corpus should contain contention-limited phases (min speedup {min:.2})"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn any_seed_produces_valid_profiles(seed in 0u64..10_000) {
            let gen = SyntheticWorkloads::default();
            let mut rng = StdRng::seed_from_u64(seed);
            let p = gen.generate_one(0, &mut rng);
            prop_assert!(p.validate().is_ok());
            prop_assert!(p.parallel_fraction <= 1.0);
            prop_assert!(p.l2_mrc.peak_mpki >= p.l2_mrc.floor_mpki);
        }
    }
}
