//! Calibrated per-phase profiles of the NPB 3.2 benchmarks.
//!
//! The profiles are calibrated against the paper's Section III measurements
//! on the quad-core Xeon (Figures 1–3). Calibration targets are *relative*
//! behaviours, not absolute seconds:
//!
//! * **BT, FT, LU-HP** — scale well (the paper reports a mean 2.37× speedup
//!   on four cores for this class, BT reaching 2.69×);
//! * **CG, LU, SP** — scalability flattens after two cores (≈7 % mean gain
//!   from four cores vs. two);
//! * **MG, IS** — run fastest on two loosely-coupled cores; IS loses ≈40 %
//!   on four cores vs. one and is ≈2× slower on tightly-coupled than on
//!   loosely-coupled pairs because its working set thrashes a shared L2.
//!
//! Phase counts per benchmark sum to 59, matching the paper's corpus size
//! ("only one case out of 59").

use xeon_sim::{MissRatioCurve, PhaseProfile};

use crate::benchmark::{BenchmarkId, BenchmarkProfile};

/// Builds a phase profile from its primary knobs, deriving the secondary
/// counter-model fields from the memory intensity.
#[allow(clippy::too_many_arguments)]
fn phase(
    name: &str,
    instructions: f64,
    base_cpi: f64,
    parallel_fraction: f64,
    l1_mpki: f64,
    mrc: (f64, f64, f64, f64),
    prefetch: f64,
    imbalance: f64,
) -> PhaseProfile {
    let (floor, peak, ws_mb, shape) = mrc;
    let mem_ref = (0.28 + l1_mpki / 250.0).min(0.5);
    PhaseProfile {
        name: name.to_string(),
        instructions,
        parallel_fraction,
        base_cpi,
        mem_ref_per_instr: mem_ref,
        store_fraction: 0.35,
        l1_mpki,
        l2_mrc: MissRatioCurve::new(floor, peak, ws_mb, shape),
        load_imbalance: imbalance,
        serial_overhead_us: 5.0,
        prefetch_coverage: prefetch,
        branch_pki: 40.0 + l1_mpki * 0.3,
        branch_miss_ratio: 0.02 + (1.0 - prefetch) * 0.02,
        dtlb_mpki: l1_mpki / 25.0,
    }
}

/// BT — block tri-diagonal solver. Compute-dominated line solves with good
/// locality; the best-scaling benchmark in the paper (2.69×, power ×1.31).
pub fn bt() -> BenchmarkProfile {
    let i = 3.6e8; // instructions per phase instance
    BenchmarkProfile {
        id: BenchmarkId::Bt,
        timesteps: 200,
        phases: vec![
            phase("bt.compute_rhs", 1.6 * i, 0.85, 0.995, 26.0, (6.5, 20.0, 2.2, 1.4), 0.55, 0.06),
            phase("bt.x_solve", 1.4 * i, 0.72, 0.997, 12.0, (3.0, 11.0, 1.9, 1.5), 0.5, 0.05),
            phase("bt.x_backsub", 0.5 * i, 0.75, 0.995, 14.0, (3.5, 12.0, 1.9, 1.5), 0.5, 0.06),
            phase("bt.y_solve", 1.4 * i, 0.72, 0.997, 12.5, (3.2, 11.0, 1.9, 1.5), 0.5, 0.05),
            phase("bt.y_backsub", 0.5 * i, 0.75, 0.995, 14.0, (3.5, 12.0, 1.9, 1.5), 0.5, 0.06),
            phase("bt.z_solve", 1.5 * i, 0.74, 0.997, 13.5, (3.8, 13.0, 2.0, 1.5), 0.5, 0.05),
            phase("bt.z_backsub", 0.5 * i, 0.76, 0.995, 14.5, (3.8, 13.0, 2.0, 1.5), 0.5, 0.06),
            phase("bt.add", 0.35 * i, 0.9, 0.99, 34.0, (10.0, 26.0, 2.4, 1.2), 0.65, 0.05),
            phase("bt.exact_rhs", 0.4 * i, 0.8, 0.99, 16.0, (4.0, 13.0, 1.9, 1.5), 0.5, 0.08),
            phase("bt.error_norm", 0.2 * i, 0.95, 0.97, 26.0, (6.0, 16.0, 2.0, 1.4), 0.5, 0.1),
        ],
    }
}

/// CG — conjugate gradient. Irregular sparse matrix-vector products:
/// latency- and bandwidth-bound, saturating around two threads (1.95× on both
/// 2b and 4 in the paper).
pub fn cg() -> BenchmarkProfile {
    let i = 9.0e8;
    BenchmarkProfile {
        id: BenchmarkId::Cg,
        timesteps: 75,
        phases: vec![
            phase("cg.spmv", 2.6 * i, 1.0, 0.985, 45.0, (17.0, 42.0, 2.5, 1.0), 0.4, 0.07),
            phase("cg.axpy_p", 0.35 * i, 0.95, 0.99, 46.0, (18.0, 40.0, 2.4, 1.0), 0.65, 0.04),
            phase("cg.axpy_r", 0.35 * i, 0.95, 0.99, 46.0, (18.0, 40.0, 2.4, 1.0), 0.65, 0.04),
            phase("cg.dot", 0.3 * i, 0.9, 0.97, 40.0, (15.0, 34.0, 2.2, 1.1), 0.65, 0.05),
            phase("cg.norm", 0.2 * i, 0.9, 0.96, 34.0, (13.0, 28.0, 2.0, 1.1), 0.65, 0.05),
        ],
    }
}

/// FT — 3-D FFT. Compute-rich butterflies with blocked transposes; scales
/// reasonably well (the paper places FT in the scaling class).
pub fn ft() -> BenchmarkProfile {
    let i = 9.5e9; // few timesteps, large instances
    BenchmarkProfile {
        id: BenchmarkId::Ft,
        timesteps: 6,
        phases: vec![
            phase("ft.evolve", 0.6 * i, 0.9, 0.99, 30.0, (9.0, 24.0, 2.4, 1.2), 0.6, 0.06),
            phase("ft.fft_x", 1.0 * i, 0.74, 0.996, 14.0, (4.0, 13.0, 2.0, 1.5), 0.5, 0.05),
            phase("ft.fft_y", 1.0 * i, 0.75, 0.996, 15.0, (4.2, 14.0, 2.0, 1.5), 0.5, 0.05),
            phase("ft.fft_z", 1.1 * i, 0.78, 0.995, 18.0, (5.0, 16.0, 2.1, 1.4), 0.5, 0.06),
            phase("ft.checksum", 0.15 * i, 0.95, 0.96, 30.0, (8.0, 20.0, 2.0, 1.3), 0.6, 0.08),
        ],
    }
}

/// IS — integer sort. Streaming bucket counts over a working set comparable
/// to the whole L2: the paper's pathological case (40 % slower on four cores
/// than on one; 2.04× slower tightly-coupled than loosely-coupled).
pub fn is() -> BenchmarkProfile {
    let i = 1.05e9;
    BenchmarkProfile {
        id: BenchmarkId::Is,
        timesteps: 10,
        phases: vec![
            phase("is.rank", 0.62 * i, 1.1, 0.99, 62.0, (26.0, 95.0, 3.8, 0.65), 0.75, 0.05),
            phase("is.key_shuffle", 0.3 * i, 1.05, 0.99, 55.0, (24.0, 88.0, 3.6, 0.65), 0.75, 0.05),
            phase("is.partial_verify", 0.08 * i, 1.0, 0.95, 30.0, (8.0, 20.0, 1.2, 1.3), 0.6, 0.08),
        ],
    }
}

/// LU — pipelined SSOR solver. Wavefront parallelism limits the parallel
/// fraction and adds synchronisation, so scaling flattens after two threads.
pub fn lu() -> BenchmarkProfile {
    let i = 4.4e8;
    BenchmarkProfile {
        id: BenchmarkId::Lu,
        timesteps: 250,
        phases: vec![
            phase("lu.rhs_x", 0.6 * i, 0.88, 0.99, 32.0, (13.0, 32.0, 2.5, 1.1), 0.5, 0.07),
            phase("lu.rhs_y", 0.6 * i, 0.88, 0.99, 32.0, (13.0, 32.0, 2.5, 1.1), 0.5, 0.07),
            phase("lu.rhs_z", 0.65 * i, 0.9, 0.99, 34.0, (14.0, 34.0, 2.5, 1.1), 0.5, 0.07),
            phase("lu.jacld", 0.8 * i, 0.8, 0.99, 22.0, (8.0, 22.0, 2.3, 1.2), 0.45, 0.08),
            phase("lu.blts", 1.0 * i, 0.85, 0.89, 26.0, (10.0, 26.0, 2.4, 1.1), 0.4, 0.35),
            phase("lu.jacu", 0.8 * i, 0.8, 0.99, 22.0, (8.0, 22.0, 2.3, 1.2), 0.45, 0.08),
            phase("lu.buts", 1.0 * i, 0.85, 0.89, 26.0, (10.0, 26.0, 2.4, 1.1), 0.4, 0.35),
            phase("lu.add", 0.3 * i, 0.92, 0.99, 40.0, (15.0, 36.0, 2.6, 1.0), 0.6, 0.05),
            phase("lu.l2norm", 0.2 * i, 0.95, 0.95, 32.0, (11.0, 26.0, 2.2, 1.1), 0.6, 0.08),
        ],
    }
}

/// LU-HP — the hyperplane variant of LU: the same computation with more
/// exposed parallelism, so it lands in the scaling class.
pub fn lu_hp() -> BenchmarkProfile {
    let i = 5.2e8;
    BenchmarkProfile {
        id: BenchmarkId::LuHp,
        timesteps: 250,
        phases: vec![
            phase("lu-hp.rhs_x", 0.6 * i, 0.88, 0.995, 28.0, (8.0, 22.0, 2.2, 1.3), 0.55, 0.06),
            phase("lu-hp.rhs_y", 0.6 * i, 0.88, 0.995, 28.0, (8.0, 22.0, 2.2, 1.3), 0.55, 0.06),
            phase("lu-hp.rhs_z", 0.65 * i, 0.9, 0.995, 30.0, (8.5, 23.0, 2.2, 1.3), 0.55, 0.06),
            phase("lu-hp.jacld", 0.8 * i, 0.78, 0.996, 16.0, (4.5, 14.0, 2.0, 1.4), 0.5, 0.07),
            phase("lu-hp.blts_hp", 1.1 * i, 0.8, 0.99, 18.0, (5.0, 15.0, 2.0, 1.4), 0.5, 0.12),
            phase("lu-hp.jacu", 0.8 * i, 0.78, 0.996, 16.0, (4.5, 14.0, 2.0, 1.4), 0.5, 0.07),
            phase("lu-hp.buts_hp", 1.1 * i, 0.8, 0.99, 18.0, (5.0, 15.0, 2.0, 1.4), 0.5, 0.12),
            phase("lu-hp.add", 0.3 * i, 0.92, 0.99, 36.0, (11.0, 26.0, 2.3, 1.2), 0.6, 0.05),
            phase("lu-hp.l2norm", 0.2 * i, 0.95, 0.96, 30.0, (9.0, 20.0, 2.1, 1.2), 0.6, 0.07),
        ],
    }
}

/// MG — multigrid V-cycles. Bandwidth-bound stencils over grids larger than
/// the shared L2; fastest on two loosely-coupled cores in the paper (1.29×),
/// 18 % slower again on four cores.
pub fn mg() -> BenchmarkProfile {
    let i = 1.3e9;
    BenchmarkProfile {
        id: BenchmarkId::Mg,
        timesteps: 6,
        phases: vec![
            phase("mg.resid", 0.95 * i, 1.0, 0.99, 52.0, (21.0, 55.0, 3.3, 0.9), 0.75, 0.05),
            phase("mg.psinv", 0.85 * i, 1.0, 0.99, 48.0, (19.0, 50.0, 3.2, 0.9), 0.75, 0.05),
            phase("mg.rprj3", 0.35 * i, 0.95, 0.985, 40.0, (14.0, 36.0, 2.6, 1.1), 0.7, 0.07),
            phase("mg.interp", 0.4 * i, 0.92, 0.985, 36.0, (12.0, 32.0, 2.4, 1.1), 0.7, 0.07),
            phase("mg.norm2u3", 0.2 * i, 0.95, 0.96, 30.0, (10.0, 22.0, 1.8, 1.3), 0.7, 0.08),
            phase("mg.comm_zero", 0.1 * i, 0.9, 0.95, 20.0, (6.0, 14.0, 1.2, 1.4), 0.6, 0.08),
        ],
    }
}

/// SP — scalar penta-diagonal solver. The most phase-diverse benchmark
/// (Figure 2 plots twelve phases with IPCs from 0.32 to 4.64); overall it
/// lands in the "flat after two threads" class.
pub fn sp() -> BenchmarkProfile {
    let i = 2.1e8;
    BenchmarkProfile {
        id: BenchmarkId::Sp,
        timesteps: 400,
        phases: vec![
            phase("sp.compute_rhs", 1.3 * i, 0.9, 0.99, 38.0, (15.0, 36.0, 2.5, 1.0), 0.55, 0.06),
            phase("sp.txinvr", 0.4 * i, 0.85, 0.99, 32.0, (12.0, 30.0, 2.4, 1.1), 0.55, 0.05),
            phase("sp.x_solve", 0.9 * i, 0.74, 0.996, 11.0, (1.5, 7.0, 1.2, 1.8), 0.5, 0.05),
            phase("sp.ninvr", 0.3 * i, 0.88, 0.98, 38.0, (15.0, 36.0, 2.5, 1.0), 0.6, 0.06),
            phase("sp.y_solve", 0.9 * i, 0.75, 0.996, 12.0, (1.7, 8.0, 1.3, 1.8), 0.5, 0.05),
            phase("sp.pinvr", 0.3 * i, 0.88, 0.98, 38.0, (15.0, 36.0, 2.5, 1.0), 0.6, 0.06),
            phase("sp.z_solve", 1.0 * i, 0.78, 0.995, 14.0, (2.2, 9.0, 1.5, 1.7), 0.5, 0.06),
            phase("sp.tzetar", 0.35 * i, 0.88, 0.98, 36.0, (14.0, 34.0, 2.5, 1.0), 0.6, 0.06),
            phase("sp.add", 0.25 * i, 0.95, 0.99, 48.0, (20.0, 46.0, 2.8, 0.9), 0.65, 0.05),
            phase("sp.txinvr_small", 0.2 * i, 0.85, 0.97, 30.0, (11.0, 28.0, 2.3, 1.1), 0.55, 0.07),
            phase("sp.error_norm", 0.15 * i, 0.95, 0.95, 32.0, (12.0, 28.0, 2.3, 1.1), 0.6, 0.08),
            phase("sp.rhs_norm", 0.15 * i, 0.95, 0.95, 32.0, (12.0, 28.0, 2.3, 1.1), 0.6, 0.08),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_profile_is_valid() {
        for b in [bt(), cg(), ft(), is(), lu(), lu_hp(), mg(), sp()] {
            assert!(b.validate().is_ok(), "{} has an invalid phase", b.id);
            assert!(b.timesteps > 0);
            for p in &b.phases {
                assert!(
                    p.name.starts_with(&b.id.name().to_lowercase()),
                    "phase {} should be named after its benchmark {}",
                    p.name,
                    b.id
                );
            }
        }
    }

    #[test]
    fn corpus_has_59_phases_like_the_paper() {
        let total: usize = [bt(), cg(), ft(), is(), lu(), lu_hp(), mg(), sp()]
            .iter()
            .map(|b| b.num_phases())
            .sum();
        assert_eq!(total, 59);
    }

    #[test]
    fn phase_names_are_unique_across_the_suite() {
        let mut names = Vec::new();
        for b in [bt(), cg(), ft(), is(), lu(), lu_hp(), mg(), sp()] {
            for p in &b.phases {
                names.push(p.name.clone());
            }
        }
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate phase names in the suite");
    }

    #[test]
    fn few_iteration_benchmarks_have_few_timesteps() {
        assert!(ft().timesteps <= 10);
        assert!(is().timesteps <= 10);
        assert!(mg().timesteps <= 10);
        assert!(bt().timesteps >= 100);
        assert!(sp().timesteps >= 100);
    }
}
