//! # npb-workloads — NAS Parallel Benchmark workloads for the ACTOR reproduction
//!
//! The paper evaluates on the NAS Parallel Benchmarks 3.2 (OpenMP): BT, CG,
//! FT, IS, LU, LU-HP, MG and SP. This crate provides those workloads in two
//! complementary forms:
//!
//! * **Phase profiles** ([`profiles`], [`benchmark()`], [`suite`]) — per-phase
//!   analytical characterisations of each benchmark, calibrated so that the
//!   machine model reproduces the scalability classes of the paper's
//!   Section III: {BT, FT, LU-HP} scale well, {CG, LU, SP} flatten after two
//!   threads, {MG, IS} peak on two loosely-coupled cores and degrade beyond.
//!   These drive every figure regeneration.
//! * **Executable kernels** ([`kernels`]) — small real computations (conjugate
//!   gradient, multigrid relaxation, bucket sort, FFT, a stencil line solver)
//!   running on the [`phase_rt`] runtime, used by the examples and by live
//!   end-to-end tests of the throttling path.
//! * **Synthetic training workloads** ([`synth`]) — randomised phase profiles
//!   spanning the behaviour space, used to enlarge the ANN training corpus.

pub mod benchmark;
pub mod kernels;
pub mod profiles;
pub mod suite;
pub mod synth;

pub use benchmark::{BenchmarkId, BenchmarkProfile};
pub use suite::{benchmark, nas_suite};
pub use synth::SyntheticWorkloads;
