//! The benchmark suite and the scalability study of the paper's Section III.

use xeon_sim::{AggregateExecution, Configuration, Machine};

use crate::benchmark::{BenchmarkId, BenchmarkProfile};
use crate::profiles;

/// All eight benchmarks in the paper's order.
pub fn nas_suite() -> Vec<BenchmarkProfile> {
    BenchmarkId::ALL.iter().map(|&id| benchmark(id)).collect()
}

/// One benchmark by id.
pub fn benchmark(id: BenchmarkId) -> BenchmarkProfile {
    match id {
        BenchmarkId::Bt => profiles::bt(),
        BenchmarkId::Cg => profiles::cg(),
        BenchmarkId::Ft => profiles::ft(),
        BenchmarkId::Is => profiles::is(),
        BenchmarkId::Lu => profiles::lu(),
        BenchmarkId::LuHp => profiles::lu_hp(),
        BenchmarkId::Mg => profiles::mg(),
        BenchmarkId::Sp => profiles::sp(),
    }
}

/// Whole-benchmark results for every configuration (one row of Figure 1 /
/// Figure 3).
#[derive(Debug, Clone)]
pub struct ScalabilityRow {
    /// Which benchmark.
    pub id: BenchmarkId,
    /// One aggregate per configuration, ordered as [`Configuration::ALL`].
    pub by_config: Vec<(Configuration, AggregateExecution)>,
}

impl ScalabilityRow {
    /// The aggregate for one configuration.
    pub fn get(&self, config: Configuration) -> &AggregateExecution {
        &self.by_config.iter().find(|(c, _)| *c == config).expect("all configs simulated").1
    }

    /// Speedup of `config` over the sequential execution.
    pub fn speedup(&self, config: Configuration) -> f64 {
        self.get(Configuration::One).time_s / self.get(config).time_s
    }

    /// The configuration with the lowest execution time.
    pub fn best_time_config(&self) -> Configuration {
        self.by_config
            .iter()
            .min_by(|a, b| a.1.time_s.partial_cmp(&b.1.time_s).expect("finite times"))
            .expect("non-empty")
            .0
    }

    /// The configuration with the lowest energy-delay-squared.
    pub fn best_ed2_config(&self) -> Configuration {
        self.by_config
            .iter()
            .min_by(|a, b| a.1.ed2().partial_cmp(&b.1.ed2()).expect("finite ed2"))
            .expect("non-empty")
            .0
    }
}

/// Runs the full Section III scalability study: every benchmark on every
/// configuration.
pub fn scalability_study(machine: &Machine) -> Vec<ScalabilityRow> {
    nas_suite()
        .iter()
        .map(|b| ScalabilityRow {
            id: b.id,
            by_config: Configuration::ALL.iter().map(|&c| (c, b.simulate(machine, c))).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> Vec<ScalabilityRow> {
        scalability_study(&Machine::xeon_qx6600())
    }

    fn row(rows: &[ScalabilityRow], id: BenchmarkId) -> &ScalabilityRow {
        rows.iter().find(|r| r.id == id).unwrap()
    }

    #[test]
    fn suite_contains_all_eight_benchmarks() {
        let suite = nas_suite();
        assert_eq!(suite.len(), 8);
        for (b, id) in suite.iter().zip(BenchmarkId::ALL) {
            assert_eq!(b.id, id);
        }
    }

    #[test]
    fn scaling_class_benchmarks_scale_well() {
        // Paper: BT, FT, LU-HP average 2.37x on four cores; BT reaches 2.69x.
        let rows = study();
        let mut speedups = Vec::new();
        for id in [BenchmarkId::Bt, BenchmarkId::Ft, BenchmarkId::LuHp] {
            let s = row(&rows, id).speedup(Configuration::Four);
            assert!(s > 1.8, "{id} expected to scale, got {s:.2}x");
            speedups.push(s);
        }
        let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
        assert!(
            (1.9..3.2).contains(&mean),
            "scaling-class mean speedup {mean:.2} outside the paper's band (~2.37)"
        );
    }

    #[test]
    fn flat_class_benchmarks_gain_little_beyond_two_threads() {
        // Paper: CG, LU, SP gain ~7% on average from four cores vs two.
        let rows = study();
        for id in [BenchmarkId::Cg, BenchmarkId::Lu, BenchmarkId::Sp] {
            let r = row(&rows, id);
            let t2b = r.get(Configuration::TwoLoose).time_s;
            let t4 = r.get(Configuration::Four).time_s;
            let gain = t2b / t4 - 1.0;
            assert!(
                gain < 0.30,
                "{id}: four cores should give limited gain over 2b, got {:.1}%",
                gain * 100.0
            );
            // And they do get a real benefit from the second core.
            assert!(r.speedup(Configuration::TwoLoose) > 1.4, "{id} should benefit from 2 cores");
        }
    }

    #[test]
    fn poorly_scaling_benchmarks_peak_on_loosely_coupled_pairs() {
        // Paper: MG and IS run fastest on configuration 2b.
        let rows = study();
        for id in [BenchmarkId::Mg, BenchmarkId::Is] {
            let r = row(&rows, id);
            assert_eq!(
                r.best_time_config(),
                Configuration::TwoLoose,
                "{id} should be fastest on two loosely-coupled cores"
            );
            // Four cores are slower than 2b for this class.
            assert!(r.get(Configuration::Four).time_s > r.get(Configuration::TwoLoose).time_s);
        }
    }

    #[test]
    fn is_suffers_on_tightly_coupled_cores_and_on_four_cores() {
        // Paper: IS on 2b is 2.04x faster than on 2a, and 40% slower on 4 vs 1.
        let rows = study();
        let r = row(&rows, BenchmarkId::Is);
        let ratio_tight =
            r.get(Configuration::TwoTight).time_s / r.get(Configuration::TwoLoose).time_s;
        assert!(
            ratio_tight > 1.4,
            "IS tightly-coupled should be much slower than loosely-coupled, got {ratio_tight:.2}x"
        );
        let loss = r.get(Configuration::Four).time_s / r.get(Configuration::One).time_s;
        assert!(
            loss > 1.1,
            "IS on four cores should be slower than sequential (paper: 1.4x), got {loss:.2}x"
        );
    }

    #[test]
    fn power_grows_with_cores_and_most_for_scalable_codes() {
        // Paper: four-core power is ~14% above one-core on average; BT shows
        // the largest increase (x1.31), poorly-scaling codes change little.
        let rows = study();
        let mut ratios = Vec::new();
        for r in &rows {
            let p1 = r.get(Configuration::One).avg_power_w();
            let p4 = r.get(Configuration::Four).avg_power_w();
            assert!(p1 > 100.0 && p1 < 150.0, "{}: one-core power {p1}", r.id);
            assert!(p4 < 180.0, "{}: four-core power {p4}", r.id);
            ratios.push((r.id, p4 / p1));
        }
        let mean: f64 = ratios.iter().map(|(_, x)| x).sum::<f64>() / ratios.len() as f64;
        assert!((1.05..1.35).contains(&mean), "mean power growth {mean:.2} outside band");
        let bt_ratio = ratios.iter().find(|(id, _)| *id == BenchmarkId::Bt).unwrap().1;
        let is_ratio = ratios.iter().find(|(id, _)| *id == BenchmarkId::Is).unwrap().1;
        assert!(
            bt_ratio > is_ratio,
            "the scalable benchmark should show the larger power increase (BT {bt_ratio:.2} vs IS {is_ratio:.2})"
        );
    }

    #[test]
    fn energy_trends_match_the_paper() {
        let rows = study();
        // BT: large energy reduction on four cores (paper: factor ~2).
        let bt = row(&rows, BenchmarkId::Bt);
        let bt_energy_ratio =
            bt.get(Configuration::One).energy_j / bt.get(Configuration::Four).energy_j;
        assert!(
            bt_energy_ratio > 1.5,
            "BT four-core energy saving too small: {bt_energy_ratio:.2}"
        );
        // IS/MG: four cores do not reduce energy relative to 2b.
        for id in [BenchmarkId::Is, BenchmarkId::Mg] {
            let r = row(&rows, id);
            assert!(
                r.get(Configuration::Four).energy_j
                    > r.get(Configuration::TwoLoose).energy_j * 0.95,
                "{id}: four cores should not save energy over 2b"
            );
        }
    }

    #[test]
    fn best_ed2_config_is_never_the_worst_time_config() {
        let rows = study();
        for r in &rows {
            let best = r.best_ed2_config();
            let worst_time = r
                .by_config
                .iter()
                .max_by(|a, b| a.1.time_s.partial_cmp(&b.1.time_s).unwrap())
                .unwrap()
                .0;
            assert_ne!(best, worst_time, "{}: ED2-optimal config equals the slowest config", r.id);
        }
    }

    #[test]
    #[ignore = "calibration aid: prints the Figure 1/3 table; run with --ignored --nocapture"]
    fn print_scalability_table() {
        let rows = study();
        println!("\n{:8} {:>10} {:>10} {:>10} {:>10} {:>10}", "bench", "1", "2a", "2b", "3", "4");
        for r in &rows {
            let times: Vec<String> =
                Configuration::ALL.iter().map(|&c| format!("{:10.1}", r.get(c).time_s)).collect();
            println!("{:8} {}", r.id.name(), times.join(" "));
            let powers: Vec<String> = Configuration::ALL
                .iter()
                .map(|&c| format!("{:10.1}", r.get(c).avg_power_w()))
                .collect();
            println!("{:8} {}", "  power", powers.join(" "));
        }
    }
}
