//! Every `PowerPerfController` implementation shipped by this crate must
//! pass the shared conformance suite: decisions stay inside the machine's
//! configuration space, identically-constructed controllers produce
//! identical decision traces, and deciding never substitutes for observing
//! (probing `decide` early neither changes later decisions nor consumes
//! exploration budget).

use rand::rngs::StdRng;
use rand::SeedableRng;

use actor_core::baselines::LinearRegressionPredictor;
use actor_core::conformance::{assert_controller_conformance, ConformanceOptions};
use actor_core::controller::{
    AnnController, DecisionTableController, EmpiricalSearchController, JointSearchController,
    OracleController, PowerPerfController, PredictorController, StaticController,
};
use actor_core::predictor::AnnPredictor;
use actor_core::throttle::select_configuration;
use actor_core::{ActorConfig, TrainingCorpus};
use hwcounters::EventSet;
use npb_workloads::{suite, BenchmarkId};
use phase_rt::PhaseId;
use xeon_sim::{Configuration, Machine};

fn corpus() -> TrainingCorpus {
    let machine = Machine::xeon_qx6600();
    let benches = vec![
        suite::benchmark(BenchmarkId::Cg),
        suite::benchmark(BenchmarkId::Is),
        suite::benchmark(BenchmarkId::Bt),
    ];
    let mut rng = StdRng::seed_from_u64(3);
    TrainingCorpus::build(&machine, &benches, &EventSet::full(), 3, 0.05, &mut rng).unwrap()
}

#[test]
fn ann_controller_conforms() {
    // One trained model, cloned per conformance instance: identical
    // construction, as the determinism check requires.
    let config = ActorConfig { corpus_replicas: 2, ..ActorConfig::fast() };
    let mut rng = StdRng::seed_from_u64(7);
    let corpus = corpus();
    let feature_dim = corpus.samples[0].features.len();
    let predictor = AnnPredictor::train(&corpus, &config.predictor, &mut rng).unwrap();
    assert_controller_conformance(
        || Box::new(AnnController::ann(predictor.clone())),
        &ConformanceOptions::cap_aware().with_feature_dim(feature_dim),
    );
}

#[test]
fn regression_controller_conforms() {
    let corpus = corpus();
    let feature_dim = corpus.samples[0].features.len();
    let regression = LinearRegressionPredictor::train(&corpus, 1e-3).unwrap();
    assert_controller_conformance(
        || Box::new(PredictorController::new(regression.clone(), "regression")),
        &ConformanceOptions::cap_aware().with_feature_dim(feature_dim),
    );
}

#[test]
fn oracle_controller_conforms() {
    let machine = Machine::xeon_qx6600();
    let bench = suite::benchmark(BenchmarkId::Sp);
    assert_controller_conformance(
        || Box::new(OracleController::for_benchmark(&machine, &bench)),
        &ConformanceOptions::default(),
    );
}

#[test]
fn static_baselines_conform() {
    assert_controller_conformance(
        || Box::new(StaticController::os_default()),
        &ConformanceOptions::default(),
    );
    assert_controller_conformance(
        || Box::new(StaticController::new(Configuration::TwoLoose, "static-2b")),
        &ConformanceOptions::default(),
    );
}

#[test]
fn empirical_search_controller_conforms() {
    assert_controller_conformance(
        || Box::new(EmpiricalSearchController::default()),
        &ConformanceOptions::default(),
    );
}

#[test]
fn joint_search_controller_conforms() {
    // The joint (threads × frequency) search is cap-aware: it excludes
    // over-cap cells from exploration, so the harness may hold it to the
    // power-cap contract on both the nominal and the DVFS script.
    assert_controller_conformance(
        || Box::new(JointSearchController::default()),
        &ConformanceOptions::cap_aware(),
    );
}

#[test]
fn decision_table_controller_conforms() {
    let machine = Machine::xeon_qx6600();
    let bench = suite::benchmark(BenchmarkId::Is);
    assert_controller_conformance(
        || {
            let entries = bench.phases.iter().enumerate().map(|(i, phase)| {
                let preds: Vec<_> = Configuration::TARGETS
                    .iter()
                    .map(|&c| (c, machine.simulate_config(phase, c).aggregate_ipc))
                    .collect();
                let sampled = machine.simulate_config(phase, Configuration::SAMPLE).aggregate_ipc;
                (PhaseId::new(i as u32), select_configuration(sampled, &preds))
            });
            Box::new(DecisionTableController::new(entries)) as Box<dyn PowerPerfController>
        },
        &ConformanceOptions::cap_aware(),
    );
}
