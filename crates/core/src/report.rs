//! Plain-text / markdown / CSV table formatting for the figure binaries.

use std::fmt::Write as _;

/// A simple column-aligned table builder used by the benchmark harness to
/// print figure data in a readable form and to emit CSV for plotting.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row; the row is padded or truncated to the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned plain-text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let render = |cells: &[String], widths: &[usize], out: &mut String| {
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(out, "{cell:>width$}  ", width = w);
            }
            out.push('\n');
        };
        render(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render(row, &widths, &mut out);
        }
        out
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ =
            writeln!(out, "|{}|", self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders as CSV (comma-separated, quoting cells containing commas).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| quote(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Where experiment output goes: tables, free-form notes and file artefacts.
///
/// The benchmark harness (`actor-bench`) provides the standard
/// implementation that prints tables to stdout and writes CSV/JSON files
/// under `results/`; library code and examples can use [`StdoutReporter`]
/// (print only) or [`NullReporter`] (discard everything). One `Reporter`
/// implementation replaces the per-binary output-writing code that used to
/// be copy-pasted across the figure binaries.
pub trait Reporter {
    /// Reports one named table under a human-readable heading.
    fn table(&mut self, name: &str, heading: &str, table: &Table);

    /// Reports one free-form line (headline numbers, progress).
    fn note(&mut self, line: &str);

    /// Reports a named file artefact (e.g. `summary.json`); `filename`
    /// includes the extension.
    fn artifact(&mut self, filename: &str, contents: &str);
}

/// Prints tables and notes to stdout; artefacts are not persisted.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdoutReporter;

impl Reporter for StdoutReporter {
    fn table(&mut self, _name: &str, heading: &str, table: &Table) {
        println!("== {heading} ==");
        println!("{}", table.to_text());
    }

    fn note(&mut self, line: &str) {
        println!("{line}");
    }

    fn artifact(&mut self, _filename: &str, _contents: &str) {}
}

/// Discards all output (for tests and library callers that only want the
/// returned study values).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullReporter;

impl Reporter for NullReporter {
    fn table(&mut self, _name: &str, _heading: &str, _table: &Table) {}
    fn note(&mut self, _line: &str) {}
    fn artifact(&mut self, _filename: &str, _contents: &str) {}
}

/// Formats a float with 3 significant decimals for table cells.
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float as a percentage.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["bench", "1", "4"]);
        t.push_row(vec!["BT", "400.1", "148.9"]);
        t.push_row(vec!["IS"]);
        t
    }

    #[test]
    fn text_rendering_is_aligned_and_complete() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let text = t.to_text();
        assert!(text.contains("bench"));
        assert!(text.contains("400.1"));
        assert!(text.lines().count() == 4);
        // Short rows are padded.
        assert!(text.lines().last().unwrap().contains("IS"));
    }

    #[test]
    fn markdown_rendering() {
        let md = sample().to_markdown();
        assert!(md.starts_with("| bench | 1 | 4 |"));
        assert!(md.contains("|---|---|---|"));
        assert_eq!(md.lines().count(), 4);
    }

    #[test]
    fn csv_rendering_and_quoting() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["x,y", "has \"quote\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"has \"\"quote\"\"\""));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt3(1.23456), "1.235");
        assert_eq!(fmt_pct(0.0651), "6.5%");
    }

    #[test]
    fn empty_table() {
        let t = Table::new(vec!["only"]);
        assert!(t.is_empty());
        assert!(t.to_text().contains("only"));
        assert_eq!(t.to_csv().lines().count(), 1);
    }
}
