//! Plain-text / markdown / CSV table formatting for the figure binaries.

use std::fmt::Write as _;

/// A simple column-aligned table builder used by the benchmark harness to
/// print figure data in a readable form and to emit CSV for plotting.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row; the row is padded or truncated to the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned plain-text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let render = |cells: &[String], widths: &[usize], out: &mut String| {
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(out, "{cell:>width$}  ", width = w);
            }
            out.push('\n');
        };
        render(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render(row, &widths, &mut out);
        }
        out
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ =
            writeln!(out, "|{}|", self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders as CSV (comma-separated, quoting cells containing commas).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| quote(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        }
        out
    }
}

/// Where experiment output goes: tables, free-form notes and file artefacts.
///
/// The benchmark harness (`actor-bench`) provides the standard
/// implementation that prints tables to stdout and writes CSV/JSON files
/// under `results/`; library code and examples can use [`StdoutReporter`]
/// (print only) or [`NullReporter`] (discard everything). One `Reporter`
/// implementation replaces the per-binary output-writing code that used to
/// be copy-pasted across the figure binaries.
pub trait Reporter {
    /// Reports one named table under a human-readable heading.
    fn table(&mut self, name: &str, heading: &str, table: &Table);

    /// Reports one free-form line (headline numbers, progress).
    fn note(&mut self, line: &str);

    /// Reports a named file artefact (e.g. `summary.json`); `filename`
    /// includes the extension.
    fn artifact(&mut self, filename: &str, contents: &str);
}

/// Prints tables and notes to stdout; artefacts are not persisted.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdoutReporter;

impl Reporter for StdoutReporter {
    fn table(&mut self, _name: &str, heading: &str, table: &Table) {
        println!("== {heading} ==");
        println!("{}", table.to_text());
    }

    fn note(&mut self, line: &str) {
        println!("{line}");
    }

    fn artifact(&mut self, _filename: &str, _contents: &str) {}
}

/// Discards all output (for tests and library callers that only want the
/// returned study values).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullReporter;

impl Reporter for NullReporter {
    fn table(&mut self, _name: &str, _heading: &str, _table: &Table) {}
    fn note(&mut self, _line: &str) {}
    fn artifact(&mut self, _filename: &str, _contents: &str) {}
}

/// Streams out-of-order results into a deterministic, ordered final report.
///
/// Concurrent producers (the cluster sweep engine's worker pool) finish
/// cells in whatever order the scheduler dictates. This adapter accepts
/// `(index, row)` pairs as they arrive, emits an incremental progress note
/// through the wrapped [`Reporter`] for liveness, and on [`finish`] sorts
/// the rows by index and reports the final table — so the persisted
/// CSV/JSON artefact is bit-identical regardless of worker count or
/// completion order.
///
/// [`finish`]: StreamingReporter::finish
pub struct StreamingReporter {
    inner: Box<dyn Reporter>,
    name: String,
    heading: String,
    headers: Vec<String>,
    rows: Vec<(usize, Vec<String>)>,
    expected: usize,
    /// Emit a progress note every this many rows (and always on the last).
    progress_stride: usize,
    telemetry: Option<crate::telemetry::SharedSink>,
}

impl StreamingReporter {
    /// Streams `expected` rows into a table called `name` with the given
    /// column headers, narrating progress through `inner`.
    pub fn new<S: Into<String>>(
        inner: Box<dyn Reporter>,
        name: &str,
        heading: &str,
        headers: Vec<S>,
        expected: usize,
    ) -> Self {
        Self {
            inner,
            name: name.to_string(),
            heading: heading.to_string(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::with_capacity(expected),
            expected,
            // ~20 progress lines per run regardless of scale.
            progress_stride: (expected / 20).max(1),
            telemetry: None,
        }
    }

    /// Overrides the progress-note stride: a note every `stride` rows
    /// (and always on the last). `0` is treated as `1` (a note per row).
    #[must_use]
    pub fn with_stride(mut self, stride: usize) -> Self {
        self.progress_stride = stride.max(1);
        self
    }

    /// Routes each progress note into `sink` as a
    /// [`crate::telemetry::TraceEvent::Progress`] record, alongside the
    /// human-readable note through the wrapped reporter.
    #[must_use]
    pub fn with_telemetry(mut self, sink: crate::telemetry::SharedSink) -> Self {
        self.telemetry = Some(sink);
        self
    }

    /// Number of rows received so far.
    pub fn received(&self) -> usize {
        self.rows.len()
    }

    /// Accepts one result row. `index` is the row's position in the
    /// deterministic cell order; arrival order is irrelevant.
    pub fn row<S: Into<String>>(&mut self, index: usize, row: Vec<S>) {
        self.rows.push((index, row.into_iter().map(Into::into).collect()));
        let done = self.rows.len();
        if done.is_multiple_of(self.progress_stride) || done == self.expected {
            self.inner.note(&format!("[{}] {done}/{} cells done", self.name, self.expected));
            if let Some(sink) = &self.telemetry {
                sink.record(&crate::telemetry::TraceEvent::Progress {
                    name: self.name.clone(),
                    done,
                    expected: self.expected,
                });
            }
        }
    }

    /// Sorts the received rows by index, reports the final table through the
    /// wrapped reporter, and hands the reporter back for further output.
    /// Panics if two rows claimed the same index — a producer bug that would
    /// otherwise silently scramble the deterministic order.
    pub fn finish(mut self) -> Box<dyn Reporter> {
        self.rows.sort_by_key(|(index, _)| *index);
        for pair in self.rows.windows(2) {
            assert!(
                pair[0].0 != pair[1].0,
                "two streamed rows claimed cell index {} — duplicate producer",
                pair[0].0
            );
        }
        let mut table = Table::new(self.headers);
        for (_, row) in self.rows {
            table.push_row(row);
        }
        self.inner.table(&self.name, &self.heading, &table);
        self.inner
    }
}

/// Formats a float with 3 significant decimals for table cells.
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float as a percentage.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["bench", "1", "4"]);
        t.push_row(vec!["BT", "400.1", "148.9"]);
        t.push_row(vec!["IS"]);
        t
    }

    #[test]
    fn text_rendering_is_aligned_and_complete() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let text = t.to_text();
        assert!(text.contains("bench"));
        assert!(text.contains("400.1"));
        assert!(text.lines().count() == 4);
        // Short rows are padded.
        assert!(text.lines().last().unwrap().contains("IS"));
    }

    #[test]
    fn markdown_rendering() {
        let md = sample().to_markdown();
        assert!(md.starts_with("| bench | 1 | 4 |"));
        assert!(md.contains("|---|---|---|"));
        assert_eq!(md.lines().count(), 4);
    }

    #[test]
    fn csv_rendering_and_quoting() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["x,y", "has \"quote\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"has \"\"quote\"\"\""));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt3(1.23456), "1.235");
        assert_eq!(fmt_pct(0.0651), "6.5%");
    }

    use std::sync::{Arc, Mutex};

    /// Captures table CSVs and notes behind shared handles, so tests can
    /// inspect what a `Box<dyn Reporter>` received after it is consumed.
    #[derive(Default, Clone)]
    struct CaptureReporter {
        tables: Arc<Mutex<Vec<(String, String)>>>,
        notes: Arc<Mutex<Vec<String>>>,
    }

    impl Reporter for CaptureReporter {
        fn table(&mut self, name: &str, _heading: &str, table: &Table) {
            self.tables.lock().unwrap().push((name.to_string(), table.to_csv()));
        }
        fn note(&mut self, line: &str) {
            self.notes.lock().unwrap().push(line.to_string());
        }
        fn artifact(&mut self, _filename: &str, _contents: &str) {}
    }

    #[test]
    fn streaming_reporter_orders_rows_deterministically() {
        let csv_of = |arrival_order: &[usize]| {
            let capture = CaptureReporter::default();
            let mut streaming = StreamingReporter::new(
                Box::new(capture.clone()),
                "sweep",
                "a sweep",
                vec!["idx", "value"],
                arrival_order.len(),
            );
            for &i in arrival_order {
                streaming.row(i, vec![i.to_string(), format!("v{i}")]);
            }
            assert_eq!(streaming.received(), arrival_order.len());
            let _ = streaming.finish();
            let tables = capture.tables.lock().unwrap();
            assert_eq!(tables.len(), 1);
            assert_eq!(tables[0].0, "sweep");
            tables[0].1.clone()
        };
        // Shuffled completion order produces the identical final table.
        assert_eq!(csv_of(&[2, 0, 3, 1]), csv_of(&[0, 1, 2, 3]));
        assert!(csv_of(&[1, 0]).starts_with("idx,value\n0,v0\n1,v1\n"));
    }

    #[test]
    fn streaming_reporter_notes_progress() {
        let capture = CaptureReporter::default();
        let mut streaming =
            StreamingReporter::new(Box::new(capture.clone()), "s", "h", vec!["i"], 40);
        for i in 0..40 {
            streaming.row(i, vec![i.to_string()]);
        }
        let _ = streaming.finish();
        let notes = capture.notes.lock().unwrap();
        assert_eq!(notes.len(), 20, "one progress note per stride");
        assert!(notes.last().unwrap().contains("40/40"));
    }

    #[test]
    fn streaming_reporter_stride_is_configurable() {
        // stride 7 over 20 rows: notes at 7, 14 and the final row 20.
        let capture = CaptureReporter::default();
        let mut streaming =
            StreamingReporter::new(Box::new(capture.clone()), "s", "h", vec!["i"], 20)
                .with_stride(7);
        for i in 0..20 {
            streaming.row(i, vec![i.to_string()]);
        }
        let _ = streaming.finish();
        let notes = capture.notes.lock().unwrap().clone();
        assert_eq!(notes.len(), 3, "{notes:?}");
        assert!(notes[0].contains("7/20"));
        assert!(notes[1].contains("14/20"));
        assert!(notes[2].contains("20/20"));

        // stride larger than the run still notes the final row.
        let capture = CaptureReporter::default();
        let mut streaming =
            StreamingReporter::new(Box::new(capture.clone()), "s", "h", vec!["i"], 3)
                .with_stride(100);
        for i in 0..3 {
            streaming.row(i, vec![i.to_string()]);
        }
        let _ = streaming.finish();
        let notes = capture.notes.lock().unwrap().clone();
        assert_eq!(notes.len(), 1);
        assert!(notes[0].contains("3/3"));

        // stride 0 is clamped to 1: a note on every row.
        let capture = CaptureReporter::default();
        let mut streaming =
            StreamingReporter::new(Box::new(capture.clone()), "s", "h", vec!["i"], 2)
                .with_stride(0);
        streaming.row(0, vec!["a"]);
        streaming.row(1, vec!["b"]);
        let _ = streaming.finish();
        assert_eq!(capture.notes.lock().unwrap().len(), 2);
    }

    #[test]
    fn streaming_reporter_routes_progress_through_telemetry() {
        use crate::telemetry::{MemorySink, TraceEvent};

        let sink = Arc::new(MemorySink::new());
        let capture = CaptureReporter::default();
        let mut streaming =
            StreamingReporter::new(Box::new(capture.clone()), "sweep", "h", vec!["i"], 4)
                .with_stride(2)
                .with_telemetry(sink.clone());
        // Out-of-order ingestion: progress counts arrivals, not indices.
        for &i in &[3usize, 0, 2, 1] {
            streaming.row(i, vec![i.to_string()]);
        }
        let _ = streaming.finish();

        let events = sink.events();
        assert_eq!(events.len(), 2, "stride 2 over 4 rows → two progress events");
        match &events[0] {
            TraceEvent::Progress { name, done, expected } => {
                assert_eq!(name, "sweep");
                assert_eq!((*done, *expected), (2, 4));
            }
            other => panic!("expected progress, got {other:?}"),
        }
        match &events[1] {
            TraceEvent::Progress { done, expected, .. } => {
                assert_eq!((*done, *expected), (4, 4));
            }
            other => panic!("expected progress, got {other:?}"),
        }
        // The note path still works alongside the sink, and the final table
        // is still deterministically ordered.
        assert_eq!(capture.notes.lock().unwrap().len(), 2);
        let tables = capture.tables.lock().unwrap();
        assert!(tables[0].1.starts_with("i\n0\n1\n2\n3\n"));
    }

    #[test]
    #[should_panic(expected = "duplicate producer")]
    fn streaming_reporter_rejects_duplicate_indices() {
        let mut streaming = StreamingReporter::new(Box::new(NullReporter), "s", "h", vec!["i"], 2);
        streaming.row(1, vec!["a"]);
        streaming.row(1, vec!["b"]);
        let _ = streaming.finish();
    }

    #[test]
    fn empty_table() {
        let t = Table::new(vec!["only"]);
        assert!(t.is_empty());
        assert!(t.to_text().contains("only"));
        assert_eq!(t.to_csv().lines().count(), 1);
    }
}
