//! # actor-core — ACTOR: Adaptive Concurrency Throttling Optimization Runtime
//!
//! This crate is the primary contribution of the reproduced paper,
//! *"Identifying Energy-Efficient Concurrency Levels Using Machine Learning"*
//! (Curtis-Maury et al., 2007): a runtime system that dynamically throttles
//! the concurrency (thread count + placement) of each program *phase* to the
//! level with the highest predicted efficiency, using artificial neural
//! networks trained offline on hardware performance-counter event rates.
//!
//! The pipeline, mirroring Section IV of the paper:
//!
//! 1. **Offline training** ([`corpus`], [`predictor`]) — run training
//!    applications on every configuration, record counter event rates on the
//!    maximal-concurrency *sampling configuration* and the achieved IPC on
//!    every *target configuration*, and train one cross-validation ANN
//!    ensemble per target configuration (Equation 2).
//! 2. **Online sampling** ([`sampling`]) — at program start, ACTOR samples a
//!    few timesteps at maximal concurrency, rotating the monitored events
//!    through the two available counter registers, spending at most 20 % of
//!    the execution on sampling.
//! 3. **Prediction & throttling** ([`throttle`]) — for each phase, the ANN
//!    ensembles predict the IPC of every alternative configuration from the
//!    sampled event rates; the configuration with the highest (predicted or
//!    observed) IPC is enforced for all subsequent executions of the phase.
//! 4. **Evaluation** ([`scalability`], [`accuracy`], [`adaptation`],
//!    [`summary`]) — drivers regenerating every figure of the paper:
//!    execution time / power / energy per configuration (Figures 1–3),
//!    prediction-error CDF (Figure 6), rank-selection accuracy (Figure 7) and
//!    the adaptation comparison against oracle strategies (Figure 8).
//!
//! Baselines from the paper's related work — multiple linear regression \[3\]
//! and online empirical search \[17\] — are provided in [`baselines`], and a
//! live [`phase_rt::RegionListener`] implementation for running ACTOR against
//! real kernels is in [`runtime`].
//!
//! All of these decision-makers speak one language: the
//! [`controller::PowerPerfController`] trait (observe hardware samples per
//! phase, decide a typed binding + frequency actuation). The ANN predictor,
//! the oracles, the static baselines and empirical search implement it, the
//! [`conformance`] harness checks any implementation against the shared
//! contract, and every consumer — the Figure-8 harness, the live runtime
//! ([`runtime::ThrottleMode::Controller`] with online counter sampling) and
//! the cluster scheduler — drives any implementation through one shared
//! cycle, the [`control_plane::ControlPlane`] (observe-once bookkeeping,
//! context assembly, loud decision validation).

pub mod accuracy;
pub mod adaptation;
pub mod baselines;
pub mod config;
pub mod conformance;
pub mod control_plane;
pub mod controller;
pub mod corpus;
pub mod error;
pub mod evaluation;
pub mod oracle;
pub mod predictor;
pub mod report;
pub mod runtime;
pub mod sampling;
pub mod scalability;
pub mod summary;
pub mod telemetry;
pub mod throttle;

pub use accuracy::{run_accuracy_study, AccuracyStudy, PredictionRecord};
pub use adaptation::{
    adaptation_with_controller, run_adaptation_study, run_adaptation_study_seeded, AdaptationStudy,
    BenchmarkAdaptation, Metric, Strategy, StrategyOutcome,
};
pub use baselines::{EmpiricalSearchPolicy, LinearRegressionPredictor};
pub use config::{ActorConfig, PredictorConfig};
pub use conformance::{assert_controller_conformance, ConformanceOptions};
pub use control_plane::{ControlPlane, ControlViolation, PlaneDecision};
pub use controller::{
    binding_for, configuration_of, frequency_scaled_ipc, frequency_throughput_scale, shape_of,
    validate_decision, validate_decision_with, AnnController, CandidatePerf, ConfigurationMap,
    Decision, DecisionCtx, DecisionTableController, DvfsSpace, EmpiricalSearchController,
    InternedJointPolicy, JointPerf, JointSearchController, OracleController, PhaseSample,
    PowerPerfController, PredictorController, Rationale, StaticController,
};
pub use corpus::{TrainingCorpus, TrainingSample};
pub use error::ActorError;
pub use evaluation::{
    evaluate_benchmarks, leave_one_out_evaluation, BenchmarkEvaluation, PhaseEvaluation,
};
pub use oracle::{global_optimal, phase_optimal};
pub use predictor::{AnnPredictor, IpcPredictor};
pub use report::{NullReporter, Reporter, StdoutReporter, StreamingReporter, Table};
pub use runtime::{ActorRuntime, BackendSampler, CounterSampler, CounterWindow, ThrottleMode};
pub use sampling::{sample_phase, SamplingPlan};
pub use scalability::{phase_ipc_study, scalability_report, PhaseIpcRow, ScalabilityReport};
pub use summary::{paper_comparison, HeadlineNumbers};
pub use telemetry::{
    BufferedSink, FanoutSink, Histogram, HistogramSnapshot, JsonlSink, MemorySink, MetricsRegistry,
    NullSink, RingSink, SharedSink, SpanContext, SpanSink, SpannedEvent, TelemetrySink, TraceEvent,
};
pub use throttle::{select_configuration, ThrottleDecision};

/// Convenient glob import.
pub mod prelude {
    pub use crate::accuracy::{run_accuracy_study, AccuracyStudy};
    pub use crate::adaptation::{run_adaptation_study, AdaptationStudy, Strategy};
    pub use crate::config::{ActorConfig, PredictorConfig};
    pub use crate::control_plane::{ControlPlane, PlaneDecision};
    pub use crate::controller::{
        AnnController, Decision, DecisionCtx, DvfsSpace, JointSearchController, PhaseSample,
        PowerPerfController,
    };
    pub use crate::corpus::TrainingCorpus;
    pub use crate::error::ActorError;
    pub use crate::predictor::{AnnPredictor, IpcPredictor};
    pub use crate::report::{Reporter, Table};
    pub use crate::runtime::{ActorRuntime, ThrottleMode};
    pub use crate::scalability::scalability_report;
    pub use crate::summary::paper_comparison;
    pub use crate::telemetry::{
        JsonlSink, MemorySink, MetricsRegistry, NullSink, RingSink, SharedSink, SpanContext,
        SpanSink, SpannedEvent, TelemetrySink, TraceEvent,
    };
    pub use crate::throttle::select_configuration;
}
