//! Configuration of the ACTOR pipeline.

use serde::{Deserialize, Serialize};

use annlib::{EnsembleConfig, TrainConfig};

use crate::error::ActorError;

/// Hyper-parameters of the ANN predictor (one cross-validation ensemble per
/// target configuration).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Number of cross-validation folds (the paper uses 10).
    pub folds: usize,
    /// Hidden-layer sizes of every member network.
    pub hidden: Vec<usize>,
    /// Backpropagation hyper-parameters.
    pub train: TrainConfig,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            folds: 10,
            hidden: vec![16],
            train: TrainConfig { max_epochs: 250, patience: 20, ..TrainConfig::default() },
        }
    }
}

impl PredictorConfig {
    /// A faster configuration for unit tests and examples (fewer folds and
    /// epochs; accuracy is slightly lower but training is seconds, not
    /// minutes).
    pub fn fast() -> Self {
        Self {
            folds: 4,
            hidden: vec![10],
            train: TrainConfig { max_epochs: 80, patience: 10, ..TrainConfig::default() },
        }
    }

    /// Converts to the `annlib` ensemble configuration.
    pub fn ensemble(&self) -> EnsembleConfig {
        EnsembleConfig { folds: self.folds, hidden: self.hidden.clone(), train: self.train.clone() }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ActorError> {
        self.ensemble().validate().map_err(ActorError::from)
    }
}

/// Top-level configuration of ACTOR's online behaviour and of the evaluation
/// studies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActorConfig {
    /// Number of programmable counter registers available simultaneously
    /// (2 on the paper's platform).
    pub counter_registers: usize,
    /// Maximum fraction of the application's timesteps that may be spent
    /// sampling ("we limit the number of monitored timesteps to at most 20%
    /// of the total execution").
    pub sampling_budget: f64,
    /// Relative jitter applied to sampled executions, standing in for
    /// run-to-run measurement noise.
    pub measurement_noise: f64,
    /// Number of noisy replicas of each phase added to the training corpus
    /// (the paper samples multiple timesteps of each training phase).
    pub corpus_replicas: usize,
    /// Relative jitter used when generating the training corpus.
    pub corpus_noise: f64,
    /// Extra system power (W) charged to phases running on a throttled
    /// configuration, modelling the cache-warmth loss from re-binding threads
    /// that the paper identifies as the reason power is not reduced.
    pub rebinding_power_w: f64,
    /// Predictor hyper-parameters.
    pub predictor: PredictorConfig,
    /// Seed for all randomised steps (training shuffles, noise).
    pub seed: u64,
}

impl Default for ActorConfig {
    fn default() -> Self {
        Self {
            counter_registers: 2,
            sampling_budget: 0.2,
            measurement_noise: 0.03,
            corpus_replicas: 6,
            corpus_noise: 0.05,
            rebinding_power_w: 6.0,
            predictor: PredictorConfig::default(),
            seed: 0xAC7012,
        }
    }
}

impl ActorConfig {
    /// A fast configuration for tests and examples.
    pub fn fast() -> Self {
        Self { corpus_replicas: 3, predictor: PredictorConfig::fast(), ..Self::default() }
    }

    /// Validates ranges.
    pub fn validate(&self) -> Result<(), ActorError> {
        if self.counter_registers == 0 {
            return Err(ActorError::InvalidConfig {
                reason: "at least one counter register is required".into(),
            });
        }
        if !(0.0 < self.sampling_budget && self.sampling_budget <= 1.0) {
            return Err(ActorError::InvalidConfig {
                reason: format!("sampling_budget must be in (0,1], got {}", self.sampling_budget),
            });
        }
        if self.measurement_noise < 0.0 || self.corpus_noise < 0.0 {
            return Err(ActorError::InvalidConfig {
                reason: "noise levels must be non-negative".into(),
            });
        }
        if self.corpus_replicas == 0 {
            return Err(ActorError::InvalidConfig {
                reason: "corpus_replicas must be at least 1".into(),
            });
        }
        if self.rebinding_power_w < 0.0 {
            return Err(ActorError::InvalidConfig {
                reason: "rebinding_power_w must be non-negative".into(),
            });
        }
        self.predictor.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_match_paper_constants() {
        let c = ActorConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.counter_registers, 2);
        assert!((c.sampling_budget - 0.2).abs() < 1e-12);
        assert_eq!(c.predictor.folds, 10);
        assert!(ActorConfig::fast().validate().is_ok());
        assert!(PredictorConfig::fast().folds < PredictorConfig::default().folds);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let bad = [
            ActorConfig { counter_registers: 0, ..Default::default() },
            ActorConfig { sampling_budget: 0.0, ..Default::default() },
            ActorConfig { sampling_budget: 1.5, ..Default::default() },
            ActorConfig { measurement_noise: -0.1, ..Default::default() },
            ActorConfig { corpus_replicas: 0, ..Default::default() },
            ActorConfig { rebinding_power_w: -1.0, ..Default::default() },
            ActorConfig {
                predictor: PredictorConfig { folds: 1, ..Default::default() },
                ..Default::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err(), "{c:?} should fail validation");
        }
    }

    #[test]
    fn predictor_config_converts_to_ensemble() {
        let p = PredictorConfig::default();
        let e = p.ensemble();
        assert_eq!(e.folds, 10);
        assert_eq!(e.hidden, vec![16]);
    }
}
