//! Scalability and energy-efficiency study (Section III, Figures 1–3).

use serde::{Deserialize, Serialize};

use npb_workloads::{suite, BenchmarkId};
use xeon_sim::{Configuration, Machine};

/// Whole-benchmark result on one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigOutcome {
    /// The configuration.
    pub config: Configuration,
    /// Execution time (s) — Figure 1.
    pub time_s: f64,
    /// Average system power (W) — Figure 3.
    pub power_w: f64,
    /// Energy (J) — Figure 3.
    pub energy_j: f64,
    /// Energy-delay-squared (J·s²).
    pub ed2: f64,
}

/// Scalability results of one benchmark across all configurations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkScalability {
    /// The benchmark.
    pub id: BenchmarkId,
    /// One outcome per configuration, in [`Configuration::ALL`] order.
    pub per_config: Vec<ConfigOutcome>,
}

impl BenchmarkScalability {
    /// The outcome for one configuration.
    pub fn get(&self, config: Configuration) -> &ConfigOutcome {
        self.per_config.iter().find(|o| o.config == config).expect("all configurations present")
    }

    /// Speedup of `config` relative to the single-threaded execution.
    pub fn speedup(&self, config: Configuration) -> f64 {
        self.get(Configuration::One).time_s / self.get(config).time_s
    }

    /// Ratio of power on `config` to power on the single-threaded execution.
    pub fn power_ratio(&self, config: Configuration) -> f64 {
        self.get(config).power_w / self.get(Configuration::One).power_w
    }

    /// The configuration with the lowest execution time.
    pub fn best_time(&self) -> Configuration {
        self.per_config
            .iter()
            .min_by(|a, b| a.time_s.partial_cmp(&b.time_s).expect("finite"))
            .expect("non-empty")
            .config
    }
}

/// The whole Section III study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalabilityReport {
    /// One row per benchmark.
    pub rows: Vec<BenchmarkScalability>,
}

impl ScalabilityReport {
    /// Results for one benchmark.
    pub fn benchmark(&self, id: BenchmarkId) -> Option<&BenchmarkScalability> {
        self.rows.iter().find(|r| r.id == id)
    }

    /// Geometric mean of a per-benchmark quantity (used for the bottom-right
    /// panel of Figure 3).
    pub fn geomean_over_benchmarks(&self, f: impl Fn(&BenchmarkScalability) -> f64) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self.rows.iter().map(|r| f(r).max(1e-12).ln()).sum();
        (log_sum / self.rows.len() as f64).exp()
    }

    /// Mean speedup of the scaling class {BT, FT, LU-HP} on four cores
    /// (paper: 2.37×).
    pub fn scaling_class_speedup(&self) -> f64 {
        let ids = [BenchmarkId::Bt, BenchmarkId::Ft, BenchmarkId::LuHp];
        let mut total = 0.0;
        let mut n = 0;
        for id in ids {
            if let Some(r) = self.benchmark(id) {
                total += r.speedup(Configuration::Four);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }

    /// Mean four-core vs one-core power growth over the suite (paper: +14.2 %).
    pub fn mean_power_growth(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.power_ratio(Configuration::Four) - 1.0).sum::<f64>()
            / self.rows.len() as f64
    }

    /// Mean relative change in energy from one core to four cores
    /// (paper: −0.7 %, i.e. essentially flat).
    pub fn mean_energy_change(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows
            .iter()
            .map(|r| r.get(Configuration::Four).energy_j / r.get(Configuration::One).energy_j - 1.0)
            .sum::<f64>()
            / self.rows.len() as f64
    }
}

/// Runs the Section III study over the whole suite.
pub fn scalability_report(machine: &Machine) -> ScalabilityReport {
    let rows = suite::scalability_study(machine)
        .into_iter()
        .map(|row| BenchmarkScalability {
            id: row.id,
            per_config: row
                .by_config
                .iter()
                .map(|(config, agg)| ConfigOutcome {
                    config: *config,
                    time_s: agg.time_s,
                    power_w: agg.avg_power_w(),
                    energy_j: agg.energy_j,
                    ed2: agg.ed2(),
                })
                .collect(),
        })
        .collect();
    ScalabilityReport { rows }
}

/// One row of Figure 2: per-phase aggregate IPC on every configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseIpcRow {
    /// Phase name.
    pub phase: String,
    /// Aggregate IPC per configuration.
    pub ipc_by_config: Vec<(Configuration, f64)>,
}

impl PhaseIpcRow {
    /// The best configuration for this phase by IPC.
    pub fn best_config(&self) -> Configuration {
        self.ipc_by_config
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty")
            .0
    }

    /// The maximum IPC across configurations.
    pub fn max_ipc(&self) -> f64 {
        self.ipc_by_config.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max)
    }
}

/// Runs the Figure-2 study: per-phase IPC of one benchmark (the paper plots
/// SP) on every configuration.
pub fn phase_ipc_study(machine: &Machine, id: BenchmarkId) -> Vec<PhaseIpcRow> {
    let bench = suite::benchmark(id);
    bench
        .phases
        .iter()
        .map(|phase| PhaseIpcRow {
            phase: phase.name.clone(),
            ipc_by_config: Configuration::ALL
                .iter()
                .map(|&c| (c, machine.simulate_config(phase, c).aggregate_ipc))
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ScalabilityReport {
        scalability_report(&Machine::xeon_qx6600())
    }

    #[test]
    fn report_covers_the_whole_suite() {
        let r = report();
        assert_eq!(r.rows.len(), 8);
        for row in &r.rows {
            assert_eq!(row.per_config.len(), 5);
            for o in &row.per_config {
                assert!(o.time_s > 0.0 && o.energy_j > 0.0 && o.power_w > 50.0 && o.ed2 > 0.0);
            }
        }
    }

    #[test]
    fn headline_scalability_statistics_are_in_paper_bands() {
        let r = report();
        let class_speedup = r.scaling_class_speedup();
        assert!(
            (1.9..3.2).contains(&class_speedup),
            "scaling-class speedup {class_speedup:.2} outside band (paper: 2.37)"
        );
        let power_growth = r.mean_power_growth();
        assert!(
            (0.05..0.35).contains(&power_growth),
            "mean power growth {power_growth:.3} outside band (paper: 0.142)"
        );
        // Suite-wide energy at four cores stays within ±40% of the one-core
        // energy (the paper reports an essentially flat -0.7%).
        let energy_change = r.mean_energy_change();
        assert!(
            energy_change.abs() < 0.4,
            "mean energy change {energy_change:.2} too far from flat"
        );
    }

    #[test]
    fn best_time_configs_match_scalability_classes() {
        let r = report();
        assert_eq!(r.benchmark(BenchmarkId::Bt).unwrap().best_time(), Configuration::Four);
        assert_eq!(r.benchmark(BenchmarkId::Is).unwrap().best_time(), Configuration::TwoLoose);
        assert_eq!(r.benchmark(BenchmarkId::Mg).unwrap().best_time(), Configuration::TwoLoose);
        assert!(r.benchmark(BenchmarkId::Bt).unwrap().power_ratio(Configuration::Four) > 1.1);
        assert!(r.geomean_over_benchmarks(|b| b.power_ratio(Configuration::Four)) > 1.0);
    }

    #[test]
    fn sp_phases_are_diverse_like_figure_2() {
        let machine = Machine::xeon_qx6600();
        let rows = phase_ipc_study(&machine, BenchmarkId::Sp);
        assert_eq!(rows.len(), 12, "SP has twelve phases in Figure 2");
        let max_ipc = rows.iter().map(|r| r.max_ipc()).fold(f64::MIN, f64::max);
        let min_ipc = rows.iter().map(|r| r.max_ipc()).fold(f64::MAX, f64::min);
        assert!(
            max_ipc / min_ipc > 2.0,
            "SP's phases should span a wide IPC range ({min_ipc:.2}..{max_ipc:.2})"
        );
        // Not every phase prefers the same configuration — the motivation for
        // phase-level adaptation.
        let best: std::collections::HashSet<_> = rows.iter().map(|r| r.best_config()).collect();
        assert!(best.len() > 1);
        // Aggregate IPC on four cores can exceed 1 instruction per cycle.
        assert!(max_ipc > 1.0);
    }
}
