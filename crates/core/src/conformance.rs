//! Conformance harness for [`PowerPerfController`] implementations.
//!
//! Every controller in the workspace — and any new one — must satisfy the
//! same contract so it can be dropped into the single-node adaptation
//! harness or the cluster scheduler unchanged:
//!
//! 1. **Config-space validity** — every decision's binding is a valid
//!    placement on the machine shape and realises one of the paper's five
//!    configurations.
//! 2. **Determinism** — two controller instances built the same way (same
//!    seed, same training) produce bit-identical decision traces for the
//!    same observation script.
//! 3. **Observe-before-decide ordering** — a decision depends only on the
//!    observations made *before* it: probing `decide` early (before any
//!    observation of a phase) must not change what the controller decides
//!    after the observation arrives, and repeated `decide` calls must not
//!    consume exploration budget.
//! 4. **Power-cap respect** (opt-in, for cap-aware controllers) — when at
//!    least one candidate fits the cap, the chosen configuration fits it;
//!    when none fits, the decision is flagged [`Rationale::Infeasible`].
//! 5. **Nominal fallback** — when the decision context offers no
//!    [`DvfsSpace`], every decision carries [`FreqStep::NOMINAL`]: a
//!    controller must never actuate a frequency it was not offered.
//! 6. **Ladder validity** — when a frequency ladder *is* offered, every
//!    decision's step indexes an existing rung (the whole script is re-run
//!    with a DVFS-enabled context, including the determinism, ordering and
//!    cap checks over the joint space).
//! 7. **Control-plane compatibility** — routing the same script through the
//!    shared [`crate::control_plane::ControlPlane`] (the cycle the
//!    adaptation harness, the live runtime and the cluster policies all
//!    use) produces bit-identical decisions to driving the controller
//!    directly.
//! 8. **Cap-axis consistency** — in the joint (DVFS) context, a decision is
//!    a pure, piecewise-constant function of the power cap: probing every
//!    bucket boundary of the joint menu's distinct cell powers (ε below,
//!    exactly at, and ε above each, in ascending order on one instance and
//!    descending on another) yields bit-identical decisions per
//!    (phase, cap), caps inside one bucket decide identically, and a cap
//!    admitting every known-power cell decides exactly like no cap. This
//!    is the invariant that lets [`crate::controller::InternedJointPolicy`]
//!    intern per-cap-bucket winners — any interned table that diverges
//!    from the live ranking (stale entries, mis-bucketed threshold
//!    search, order-dependent cache state) breaks one of these
//!    equalities.
//!
//! The harness drives the controller with a deterministic synthetic script
//! (no RNG, no wall clock) and panics with a named violation on the first
//! breach, so it can sit directly inside `#[test]` functions:
//!
//! ```
//! use actor_core::conformance::{assert_controller_conformance, ConformanceOptions};
//! use actor_core::controller::StaticController;
//!
//! assert_controller_conformance(
//!     || Box::new(StaticController::os_default()),
//!     &ConformanceOptions::default(),
//! );
//! ```

use phase_rt::{FreqStep, MachineShape, PhaseId};
use xeon_sim::{Configuration, FreqLadder};

use crate::control_plane::ControlPlane;
use crate::controller::{
    configuration_of, frequency_throughput_scale, CandidatePerf, Decision, DecisionCtx, DvfsSpace,
    JointPerf, PhaseSample, PowerPerfController, Rationale,
};

/// What the harness checks beyond the universal contract, and how the
/// synthetic script is shaped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConformanceOptions {
    /// Also require the controller to respect power caps (static baselines
    /// deliberately ignore them — the caller enforces the budget — so this
    /// check is opt-in).
    pub respects_power_cap: bool,
    /// Length of the synthetic feature vectors fed through `observe`; set
    /// this to the model's input dimension for predictor-backed controllers.
    pub feature_dim: usize,
}

impl Default for ConformanceOptions {
    fn default() -> Self {
        Self { respects_power_cap: false, feature_dim: 6 }
    }
}

impl ConformanceOptions {
    /// Options for cap-aware controllers (predictors, oracles).
    pub fn cap_aware() -> Self {
        Self { respects_power_cap: true, ..Self::default() }
    }

    /// Sets the synthetic feature dimension.
    pub fn with_feature_dim(mut self, dim: usize) -> Self {
        self.feature_dim = dim;
        self
    }
}

/// Number of synthetic phases the script exercises.
const PHASES: usize = 3;
/// Observation/decision rounds per phase (enough to finish a five-candidate
/// empirical search at nominal; the joint search keeps exploring, which
/// exercises the exploration path under every check).
const ROUNDS: usize = 7;

/// The ladder the DVFS-enabled script offers.
fn script_ladder() -> FreqLadder {
    FreqLadder::xeon_4step()
}

/// Synthetic memory-stall fraction per phase: phase 1 is memory-bound,
/// phase 0 compute-bound, phase 2 mixed.
fn script_stall(phase: usize) -> f64 {
    match phase % PHASES {
        1 => 0.9,
        2 => 0.5,
        _ => 0.1,
    }
}

/// Synthetic per-configuration truth for one phase of the script: IPC favours
/// different configurations per phase, power grows with thread count.
fn script_ipc(phase: usize, config: Configuration) -> f64 {
    let base = match config {
        Configuration::One => 0.9,
        Configuration::TwoTight => 1.4,
        Configuration::TwoLoose => 1.6,
        Configuration::Three => 1.9,
        Configuration::Four => 2.2,
    };
    // Phase 1 is memory-bound (concurrency hurts), phase 2 is flat.
    match phase % PHASES {
        1 => 3.0 - base,
        2 => 1.5,
        _ => base,
    }
}

fn script_power(config: Configuration) -> f64 {
    100.0 + 15.0 * config.num_threads() as f64
}

/// Power of one joint cell: the thread-count term scales with `f·V²` down
/// the ladder, mirroring the machine model's core-dynamic term.
fn script_joint_power(ladder: &FreqLadder, config: Configuration, step: usize) -> f64 {
    let dyn_scale = ladder.dynamic_power_scale(step).expect("script steps are in range");
    100.0 + 15.0 * config.num_threads() as f64 * dyn_scale
}

fn script_sample(
    phase: usize,
    config: Configuration,
    step: FreqStep,
    feature_dim: usize,
    ladder: &FreqLadder,
) -> PhaseSample {
    let ipc = script_ipc(phase, config);
    if config == Configuration::SAMPLE && step.is_nominal() {
        let features =
            (0..feature_dim).map(|j| ipc / (1.0 + j as f64) + 0.05 * phase as f64).collect();
        return PhaseSample::sampling(features, ipc, (1.0 + phase as f64) / ipc)
            .with_stall_fraction(script_stall(phase));
    }
    // Work per phase instance is fixed, so time is inverse throughput; the
    // stall/compute split sets how much a lower clock hurts.
    let fs = ladder.freq_scale(step.index() as usize).expect("script steps are in range");
    let time_s = (1.0 + phase as f64) / (ipc * frequency_throughput_scale(script_stall(phase), fs));
    PhaseSample::measurement_at(config, step, time_s)
}

fn candidates_with_power() -> Vec<CandidatePerf> {
    Configuration::ALL
        .iter()
        .map(|&config| CandidatePerf { config, avg_power_w: Some(script_power(config)) })
        .collect()
}

fn joint_with_power(ladder: &FreqLadder) -> Vec<JointPerf> {
    // Per-cell powers without per-cell stalls: the script's stall split is
    // per *phase*, so the selection rule's per-configuration stall model
    // falls back to the sampled μ — keeping the script truths authoritative.
    let mut joint = Vec::new();
    for &config in &Configuration::ALL {
        for step in 0..ladder.len() {
            joint.push(JointPerf::with_power(
                config,
                FreqStep::new(step as u8),
                script_joint_power(ladder, config, step),
            ));
        }
    }
    joint
}

/// Checks a decision is inside the machine's configuration space — and the
/// frequency space the context offered — returning the configuration it
/// realises.
fn check_in_space(
    name: &str,
    shape: &MachineShape,
    decision: &Decision,
    ladder: Option<&FreqLadder>,
) -> Configuration {
    let threads = decision.binding.num_threads();
    assert!(
        threads >= 1 && threads <= shape.num_cores,
        "{name}: decision uses {threads} threads on a {}-core shape",
        shape.num_cores
    );
    for &core in decision.binding.cores() {
        assert!(
            core < shape.num_cores,
            "{name}: decision binds core {core} outside the {}-core shape",
            shape.num_cores
        );
    }
    match ladder {
        None => assert!(
            decision.freq_step.is_nominal(),
            "{name}: decision carries frequency step {} but no ladder was offered — \
             controllers must fall back to FreqStep::NOMINAL",
            decision.freq_step.index()
        ),
        Some(ladder) => assert!(
            decision.freq_step.is_valid_for(ladder.len()),
            "{name}: decision carries frequency step {} but the offered ladder has only {} steps",
            decision.freq_step.index(),
            ladder.len()
        ),
    }
    configuration_of(&decision.binding, shape).unwrap_or_else(|| {
        panic!(
            "{name}: decision binding {:?} is not one of the paper's five configurations",
            decision.binding.cores()
        )
    })
}

/// Runs the deterministic script against a fresh controller, alternating
/// observe → decide per phase, and returns the full decision trace.
///
/// `probe_first` additionally calls `decide` on every phase *before* any
/// observation (the ordering check): the probed decisions are discarded and
/// must not alter the returned trace. `ladder` switches the script into
/// DVFS mode: the context offers the ladder with per-cell powers, and the
/// feedback loop measures whatever (configuration, step) cell the
/// controller decided. `via_plane` routes every decision through the shared
/// [`ControlPlane`] instead of calling the controller directly (the
/// plane-compatibility check).
fn run_script(
    controller: &mut dyn PowerPerfController,
    shape: &MachineShape,
    capped: bool,
    probe_first: bool,
    feature_dim: usize,
    ladder: Option<&FreqLadder>,
    via_plane: bool,
) -> Vec<Decision> {
    let candidates = candidates_with_power();
    let joint = ladder.map(joint_with_power).unwrap_or_default();
    let dvfs = ladder.map(|ladder| DvfsSpace { ladder, joint: &joint });
    let cap = if capped { Some(script_power(Configuration::TwoLoose)) } else { None };
    let mut plane = ControlPlane::new(controller, *shape);
    let name = plane.controller().name();
    let ctx_for = |phase: usize| DecisionCtx {
        phase: PhaseId::new(phase as u32),
        shape,
        candidates: &candidates,
        power_cap_w: cap,
        dvfs,
    };
    let decide = |plane: &mut ControlPlane<&mut dyn PowerPerfController>, phase: usize| {
        if via_plane {
            plane
                .decide(PhaseId::new(phase as u32), &candidates, dvfs, cap)
                .unwrap_or_else(|v| panic!("{v}"))
                .decision
        } else {
            plane.controller_mut().decide(&ctx_for(phase))
        }
    };
    if probe_first {
        for phase in 0..PHASES {
            let probed = decide(&mut plane, phase);
            check_in_space(name, shape, &probed, ladder);
            // Repeated decides must be idempotent (no exploration consumed).
            assert_eq!(
                probed,
                decide(&mut plane, phase),
                "{name}: back-to-back decide() calls disagree — decide must not mutate search state",
            );
        }
    }
    let fallback_ladder = script_ladder();
    let time_ladder = ladder.unwrap_or(&fallback_ladder);
    let mut trace = Vec::new();
    for round in 0..ROUNDS {
        for phase in 0..PHASES {
            let pid = PhaseId::new(phase as u32);
            // Observe what the previously decided cell achieved (first
            // round: the sampling configuration at nominal), then decide.
            let observed = if round == 0 {
                (Configuration::SAMPLE, FreqStep::NOMINAL)
            } else {
                // Feed back the controller's own previous decision so search
                // strategies can explore.
                let prev: &Decision = &trace[(round - 1) * PHASES + phase];
                (
                    configuration_of(&prev.binding, shape).unwrap_or(Configuration::SAMPLE),
                    prev.freq_step,
                )
            };
            plane.observe(
                pid,
                &script_sample(phase, observed.0, observed.1, feature_dim, time_ladder),
            );
            // Always feed one sampling observation too, so predictor-style
            // controllers have features regardless of the decided config.
            if observed != (Configuration::SAMPLE, FreqStep::NOMINAL) {
                plane.observe(
                    pid,
                    &script_sample(
                        phase,
                        Configuration::SAMPLE,
                        FreqStep::NOMINAL,
                        feature_dim,
                        time_ladder,
                    ),
                );
            }
            let decision = decide(&mut plane, phase);
            check_in_space(name, shape, &decision, ladder);
            trace.push(decision);
        }
    }
    trace
}

/// Runs validity + determinism + ordering (+ opt-in cap respect) in one
/// script mode; `ladder` selects the nominal-only or DVFS-enabled context.
fn assert_conformance_in_mode(
    make: &mut dyn FnMut() -> Box<dyn PowerPerfController>,
    options: &ConformanceOptions,
    ladder: Option<&FreqLadder>,
) {
    let shape = MachineShape::quad_core();
    let mode = if ladder.is_some() { "joint (DVFS) script" } else { "nominal script" };

    // Validity along the trace and same-construction determinism.
    let mut a = make();
    let name = a.name();
    let trace_a = run_script(a.as_mut(), &shape, false, false, options.feature_dim, ladder, false);
    assert!(!trace_a.is_empty(), "{name}: the {mode} produced no decisions");
    let mut b = make();
    let trace_b = run_script(b.as_mut(), &shape, false, false, options.feature_dim, ladder, false);
    assert_eq!(
        trace_a, trace_b,
        "{name}: two identically-constructed controllers diverged on the same {mode}"
    );

    // Probing decide() before the first observation must not change the
    // post-observation decisions.
    let mut c = make();
    let trace_c = run_script(c.as_mut(), &shape, false, true, options.feature_dim, ladder, false);
    assert_eq!(
        trace_a, trace_c,
        "{name}: deciding before observing changed later decisions on the {mode} — decide() \
         must not consume exploration budget or fabricate observations"
    );

    // Control-plane compatibility: routing the same script through the
    // shared ControlPlane must not change a single decision.
    let mut p = make();
    let trace_p = run_script(p.as_mut(), &shape, false, false, options.feature_dim, ladder, true);
    assert_eq!(
        trace_a, trace_p,
        "{name}: the shared ControlPlane changed decisions on the {mode} — plane and direct \
         driving must be interchangeable"
    );

    // Opt-in: the cap is respected whenever it is satisfiable.
    if options.respects_power_cap {
        let mut d = make();
        let cap = script_power(Configuration::TwoLoose);
        let trace_d =
            run_script(d.as_mut(), &shape, true, false, options.feature_dim, ladder, false);
        for decision in &trace_d {
            let config = check_in_space(name, &shape, decision, ladder);
            if matches!(decision.rationale, Rationale::Infeasible { .. }) {
                continue;
            }
            let power = match ladder {
                None => script_power(config),
                Some(ladder) => {
                    script_joint_power(ladder, config, decision.freq_step.index() as usize)
                }
            };
            assert!(
                power <= cap + 1e-9,
                "{name}: chose {config:?} at step {} drawing {power:.1} W under a {cap:.1} W cap \
                 ({mode})",
                decision.freq_step.index(),
            );
        }
    }
}

/// Two decisions that agree up to the cap embedded in an
/// [`Rationale::Infeasible`] flag: caps in the same bucket must actuate the
/// same cell, but an infeasible decision faithfully reports the cap it
/// could not satisfy, which legitimately differs across probes.
fn same_modulo_infeasible_cap(a: &Decision, b: &Decision) -> bool {
    a == b
        || (matches!(a.rationale, Rationale::Infeasible { .. })
            && matches!(b.rationale, Rationale::Infeasible { .. })
            && a.binding == b.binding
            && a.freq_step == b.freq_step)
}

/// Check 8: cap-axis consistency of the joint selection — the invariant the
/// interned decision tables ([`crate::controller::InternedJointPolicy`])
/// rely on. See the module docs for the contract.
fn assert_cap_axis_consistency(
    make: &mut dyn FnMut() -> Box<dyn PowerPerfController>,
    options: &ConformanceOptions,
    ladder: &FreqLadder,
) {
    let shape = MachineShape::quad_core();
    let candidates = candidates_with_power();
    let joint = joint_with_power(ladder);
    let dvfs = DvfsSpace { ladder, joint: &joint };

    // Every power the admissibility test can observe, sorted: the cap
    // values at which the admissible cell set — and therefore the live
    // ranking or any faithfully interned table — may change.
    let mut thresholds: Vec<f64> = joint.iter().filter_map(|cell| cell.avg_power_w).collect();
    thresholds.sort_by(f64::total_cmp);
    thresholds.dedup();
    // Probe below every threshold (the nothing-admissible bucket), then
    // straddle each boundary, then uncapped.
    let mut caps: Vec<Option<f64>> = vec![Some(thresholds[0] - 1.0)];
    for &w in &thresholds {
        caps.extend([Some(w - 1e-6), Some(w), Some(w + 1e-6)]);
    }
    caps.push(None);

    let observe_script = |controller: &mut dyn PowerPerfController| {
        for phase in 0..PHASES {
            controller.observe(
                PhaseId::new(phase as u32),
                &script_sample(
                    phase,
                    Configuration::SAMPLE,
                    FreqStep::NOMINAL,
                    options.feature_dim,
                    ladder,
                ),
            );
        }
    };
    let decide_at = |controller: &mut dyn PowerPerfController, phase: usize, cap: Option<f64>| {
        controller.decide(&DecisionCtx {
            phase: PhaseId::new(phase as u32),
            shape: &shape,
            candidates: &candidates,
            power_cap_w: cap,
            dvfs: Some(dvfs),
        })
    };

    let mut fwd = make();
    let name = fwd.name();
    observe_script(fwd.as_mut());
    let mut decisions = Vec::with_capacity(caps.len() * PHASES);
    for &cap in &caps {
        for phase in 0..PHASES {
            let decision = decide_at(fwd.as_mut(), phase, cap);
            check_in_space(name, &shape, &decision, Some(ladder));
            decisions.push(decision);
        }
    }

    // Purity: sweeping the same caps in the opposite order on a fresh
    // instance must reproduce every decision bit-for-bit — stale or
    // order-dependent interned state diverges here.
    let mut bwd = make();
    observe_script(bwd.as_mut());
    for (ci, &cap) in caps.iter().enumerate().rev() {
        for phase in (0..PHASES).rev() {
            let decision = decide_at(bwd.as_mut(), phase, cap);
            assert_eq!(
                decisions[ci * PHASES + phase],
                decision,
                "{name}: sweeping the cap axis in the opposite order changed the decision for \
                 phase {phase} at cap {cap:?} — cached/interned decision state must be \
                 indistinguishable from a live re-rank"
            );
        }
    }

    // Piecewise constancy: a cap exactly at a threshold and one ε above it
    // admit the same cell set, so they must decide identically.
    for (ti, &w) in thresholds.iter().enumerate() {
        let at = 1 + ti * 3 + 1;
        for phase in 0..PHASES {
            let on = &decisions[at * PHASES + phase];
            let above = &decisions[(at + 1) * PHASES + phase];
            assert!(
                same_modulo_infeasible_cap(on, above),
                "{name}: caps {w} and {} admit the same cells but decide differently for phase \
                 {phase} ({on:?} vs {above:?}) — the selection must be piecewise-constant \
                 between the menu's cell powers",
                w + 1e-6
            );
        }
    }

    // A cap admitting every known-power cell is the same admissible set as
    // no cap at all — the uncapped bucket of an interned table.
    let top = 1 + (thresholds.len() - 1) * 3 + 1;
    let uncapped = caps.len() - 1;
    for phase in 0..PHASES {
        let capped = &decisions[top * PHASES + phase];
        let free = &decisions[uncapped * PHASES + phase];
        assert!(
            same_modulo_infeasible_cap(capped, free),
            "{name}: a cap admitting every cell decided {capped:?} but no cap decided {free:?} \
             for phase {phase} — the uncapped bucket must match the cap-free ranking"
        );
    }
}

/// Asserts the full conformance contract for a controller family.
///
/// `make` must build a *fresh but identically-constructed* controller on
/// every call (same training data, same seed): the determinism check runs
/// the script on two instances and requires identical traces. The whole
/// suite runs twice — once with a nominal-only context (checking the
/// nominal fallback) and once offering the frequency ladder (checking
/// ladder validity over the joint space) — and the DVFS context is then
/// probed along the cap axis (check 8).
pub fn assert_controller_conformance(
    mut make: impl FnMut() -> Box<dyn PowerPerfController>,
    options: &ConformanceOptions,
) {
    assert_conformance_in_mode(&mut make, options, None);
    let ladder = script_ladder();
    assert_conformance_in_mode(&mut make, options, Some(&ladder));
    assert_cap_axis_consistency(&mut make, options, &ladder);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{
        frequency_scaled_ipc, DecisionTableController, JointSearchController, StaticController,
    };
    use crate::throttle::select_configuration;

    #[test]
    fn static_and_table_controllers_conform() {
        assert_controller_conformance(
            || Box::new(StaticController::os_default()),
            &ConformanceOptions::default(),
        );
        assert_controller_conformance(
            || {
                let entries = (0..PHASES as u32).map(|p| {
                    let preds: Vec<_> = Configuration::TARGETS
                        .iter()
                        .map(|&c| (c, script_ipc(p as usize, c)))
                        .collect();
                    let sampled = script_ipc(p as usize, Configuration::SAMPLE);
                    (PhaseId::new(p), select_configuration(sampled, &preds))
                });
                Box::new(DecisionTableController::new(entries))
            },
            &ConformanceOptions::cap_aware(),
        );
    }

    #[test]
    fn joint_search_controller_conforms() {
        assert_controller_conformance(
            || Box::new(JointSearchController::default()),
            &ConformanceOptions::cap_aware(),
        );
    }

    #[test]
    #[should_panic(expected = "no ladder was offered")]
    fn non_nominal_decisions_without_a_ladder_are_rejected() {
        struct Overclocker;
        impl PowerPerfController for Overclocker {
            fn name(&self) -> &'static str {
                "overclocker"
            }
            fn observe(&mut self, _p: PhaseId, _s: &PhaseSample) {}
            fn decide(&mut self, ctx: &DecisionCtx<'_>) -> Decision {
                Decision::joint(
                    Configuration::One,
                    FreqStep::new(1),
                    ctx.shape,
                    Rationale::Static { label: "overclocker" },
                )
            }
        }
        assert_controller_conformance(|| Box::new(Overclocker), &ConformanceOptions::default());
    }

    #[test]
    #[should_panic(expected = "ladder has only")]
    fn out_of_ladder_steps_are_rejected() {
        struct DeepDiver;
        impl PowerPerfController for DeepDiver {
            fn name(&self) -> &'static str {
                "deep-diver"
            }
            fn observe(&mut self, _p: PhaseId, _s: &PhaseSample) {}
            fn decide(&mut self, ctx: &DecisionCtx<'_>) -> Decision {
                // Nominal when no ladder (passes the first mode), an absurd
                // step when one is offered (must trip ladder validity).
                let step = match ctx.dvfs {
                    None => FreqStep::NOMINAL,
                    Some(_) => FreqStep::new(99),
                };
                Decision::joint(
                    Configuration::One,
                    step,
                    ctx.shape,
                    Rationale::Static { label: "deep-diver" },
                )
            }
        }
        assert_controller_conformance(|| Box::new(DeepDiver), &ConformanceOptions::default());
    }

    #[test]
    #[should_panic(expected = "diverged")]
    fn nondeterministic_controllers_are_rejected() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static FLIP: AtomicU32 = AtomicU32::new(0);

        struct Flaky(Configuration);
        impl PowerPerfController for Flaky {
            fn name(&self) -> &'static str {
                "flaky"
            }
            fn observe(&mut self, _p: PhaseId, _s: &PhaseSample) {}
            fn decide(&mut self, ctx: &DecisionCtx<'_>) -> Decision {
                crate::controller::Decision::from_config(
                    self.0,
                    ctx.shape,
                    Rationale::Static { label: "flaky" },
                )
            }
        }
        assert_controller_conformance(
            || {
                let n = FLIP.fetch_add(1, Ordering::Relaxed);
                Box::new(Flaky(if n.is_multiple_of(2) {
                    Configuration::One
                } else {
                    Configuration::Four
                }))
            },
            &ConformanceOptions::default(),
        );
    }

    #[test]
    fn script_truths_are_internally_consistent() {
        let ladder = script_ladder();
        for phase in 0..PHASES {
            for &config in &Configuration::ALL {
                for step in 0..ladder.len() {
                    // Power never rises down the ladder, nominal matches the
                    // concurrency-only script power.
                    let p = script_joint_power(&ladder, config, step);
                    assert!(p <= script_joint_power(&ladder, config, 0) + 1e-12);
                    if step == 0 {
                        assert!((p - script_power(config)).abs() < 1e-12);
                    }
                    // Scaled IPC follows the stall split.
                    let fs = ladder.freq_scale(step).unwrap();
                    let ipc =
                        frequency_scaled_ipc(script_ipc(phase, config), script_stall(phase), fs);
                    assert!(ipc >= script_ipc(phase, config) - 1e-12);
                }
            }
        }
    }
}
