//! Conformance harness for [`PowerPerfController`] implementations.
//!
//! Every controller in the workspace — and any new one — must satisfy the
//! same contract so it can be dropped into the single-node adaptation
//! harness or the cluster scheduler unchanged:
//!
//! 1. **Config-space validity** — every decision's binding is a valid
//!    placement on the machine shape and realises one of the paper's five
//!    configurations.
//! 2. **Determinism** — two controller instances built the same way (same
//!    seed, same training) produce bit-identical decision traces for the
//!    same observation script.
//! 3. **Observe-before-decide ordering** — a decision depends only on the
//!    observations made *before* it: probing `decide` early (before any
//!    observation of a phase) must not change what the controller decides
//!    after the observation arrives, and repeated `decide` calls must not
//!    consume exploration budget.
//! 4. **Power-cap respect** (opt-in, for cap-aware controllers) — when at
//!    least one candidate fits the cap, the chosen configuration fits it;
//!    when none fits, the decision is flagged [`Rationale::Infeasible`].
//!
//! The harness drives the controller with a deterministic synthetic script
//! (no RNG, no wall clock) and panics with a named violation on the first
//! breach, so it can sit directly inside `#[test]` functions:
//!
//! ```
//! use actor_core::conformance::{assert_controller_conformance, ConformanceOptions};
//! use actor_core::controller::StaticController;
//!
//! assert_controller_conformance(
//!     || Box::new(StaticController::os_default()),
//!     &ConformanceOptions::default(),
//! );
//! ```

use phase_rt::{MachineShape, PhaseId};
use xeon_sim::Configuration;

use crate::controller::{
    configuration_of, CandidatePerf, Decision, DecisionCtx, PhaseSample, PowerPerfController,
    Rationale,
};

/// What the harness checks beyond the universal contract, and how the
/// synthetic script is shaped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConformanceOptions {
    /// Also require the controller to respect power caps (static baselines
    /// deliberately ignore them — the caller enforces the budget — so this
    /// check is opt-in).
    pub respects_power_cap: bool,
    /// Length of the synthetic feature vectors fed through `observe`; set
    /// this to the model's input dimension for predictor-backed controllers.
    pub feature_dim: usize,
}

impl Default for ConformanceOptions {
    fn default() -> Self {
        Self { respects_power_cap: false, feature_dim: 6 }
    }
}

impl ConformanceOptions {
    /// Options for cap-aware controllers (predictors, oracles).
    pub fn cap_aware() -> Self {
        Self { respects_power_cap: true, ..Self::default() }
    }

    /// Sets the synthetic feature dimension.
    pub fn with_feature_dim(mut self, dim: usize) -> Self {
        self.feature_dim = dim;
        self
    }
}

/// Number of synthetic phases the script exercises.
const PHASES: usize = 3;
/// Observation/decision rounds per phase (enough to finish a five-candidate
/// empirical search).
const ROUNDS: usize = 7;

/// Synthetic per-configuration truth for one phase of the script: IPC favours
/// different configurations per phase, power grows with thread count.
fn script_ipc(phase: usize, config: Configuration) -> f64 {
    let base = match config {
        Configuration::One => 0.9,
        Configuration::TwoTight => 1.4,
        Configuration::TwoLoose => 1.6,
        Configuration::Three => 1.9,
        Configuration::Four => 2.2,
    };
    // Phase 1 is memory-bound (concurrency hurts), phase 2 is flat.
    match phase % PHASES {
        1 => 3.0 - base,
        2 => 1.5,
        _ => base,
    }
}

fn script_power(config: Configuration) -> f64 {
    100.0 + 15.0 * config.num_threads() as f64
}

fn script_sample(phase: usize, config: Configuration, feature_dim: usize) -> PhaseSample {
    let ipc = script_ipc(phase, config);
    // Work per phase instance is fixed, so time is inverse throughput.
    let time_s = (1.0 + phase as f64) / ipc;
    if config == Configuration::SAMPLE {
        let features =
            (0..feature_dim).map(|j| ipc / (1.0 + j as f64) + 0.05 * phase as f64).collect();
        PhaseSample::sampling(features, ipc, time_s)
    } else {
        PhaseSample::measurement(config, time_s)
    }
}

fn candidates_with_power() -> Vec<CandidatePerf> {
    Configuration::ALL
        .iter()
        .map(|&config| CandidatePerf { config, avg_power_w: Some(script_power(config)) })
        .collect()
}

/// Checks a decision is inside the machine's configuration space, returning
/// the configuration it realises.
fn check_in_space(name: &str, shape: &MachineShape, decision: &Decision) -> Configuration {
    let threads = decision.binding.num_threads();
    assert!(
        threads >= 1 && threads <= shape.num_cores,
        "{name}: decision uses {threads} threads on a {}-core shape",
        shape.num_cores
    );
    for &core in decision.binding.cores() {
        assert!(
            core < shape.num_cores,
            "{name}: decision binds core {core} outside the {}-core shape",
            shape.num_cores
        );
    }
    configuration_of(&decision.binding, shape).unwrap_or_else(|| {
        panic!(
            "{name}: decision binding {:?} is not one of the paper's five configurations",
            decision.binding.cores()
        )
    })
}

/// Runs the deterministic script against a fresh controller, alternating
/// observe → decide per phase, and returns the full decision trace.
///
/// `probe_first` additionally calls `decide` on every phase *before* any
/// observation (the ordering check): the probed decisions are discarded and
/// must not alter the returned trace.
fn run_script(
    controller: &mut dyn PowerPerfController,
    shape: &MachineShape,
    capped: bool,
    probe_first: bool,
    feature_dim: usize,
) -> Vec<Decision> {
    let candidates = candidates_with_power();
    let cap = if capped { Some(script_power(Configuration::TwoLoose)) } else { None };
    if probe_first {
        for phase in 0..PHASES {
            let ctx = DecisionCtx {
                phase: PhaseId::new(phase as u32),
                shape,
                candidates: &candidates,
                power_cap_w: cap,
            };
            let probed = controller.decide(&ctx);
            check_in_space(controller.name(), shape, &probed);
            // Repeated decides must be idempotent (no exploration consumed).
            assert_eq!(
                probed,
                controller.decide(&ctx),
                "{}: back-to-back decide() calls disagree — decide must not mutate search state",
                controller.name()
            );
        }
    }
    let mut trace = Vec::new();
    for round in 0..ROUNDS {
        for phase in 0..PHASES {
            let pid = PhaseId::new(phase as u32);
            let ctx = DecisionCtx { phase: pid, shape, candidates: &candidates, power_cap_w: cap };
            // Observe what the previously decided configuration achieved
            // (first round: the sampling configuration), then decide.
            let observed_config = if round == 0 {
                Configuration::SAMPLE
            } else {
                // Feed back the controller's own previous decision so search
                // strategies can explore.
                let prev: &Decision = &trace[(round - 1) * PHASES + phase];
                configuration_of(&prev.binding, shape).unwrap_or(Configuration::SAMPLE)
            };
            controller.observe(pid, &script_sample(phase, observed_config, feature_dim));
            // Always feed one sampling observation too, so predictor-style
            // controllers have features regardless of the decided config.
            if observed_config != Configuration::SAMPLE {
                controller.observe(pid, &script_sample(phase, Configuration::SAMPLE, feature_dim));
            }
            let decision = controller.decide(&ctx);
            check_in_space(controller.name(), shape, &decision);
            trace.push(decision);
        }
    }
    trace
}

/// Asserts the full conformance contract for a controller family.
///
/// `make` must build a *fresh but identically-constructed* controller on
/// every call (same training data, same seed): the determinism check runs
/// the script on two instances and requires identical traces.
pub fn assert_controller_conformance(
    mut make: impl FnMut() -> Box<dyn PowerPerfController>,
    options: &ConformanceOptions,
) {
    let shape = MachineShape::quad_core();

    // 1 + 2: validity along the trace and same-construction determinism.
    let mut a = make();
    let name = a.name();
    let trace_a = run_script(a.as_mut(), &shape, false, false, options.feature_dim);
    assert!(!trace_a.is_empty(), "{name}: the script produced no decisions");
    let mut b = make();
    let trace_b = run_script(b.as_mut(), &shape, false, false, options.feature_dim);
    assert_eq!(
        trace_a, trace_b,
        "{name}: two identically-constructed controllers diverged on the same script"
    );

    // 3: probing decide() before the first observation must not change the
    // post-observation decisions.
    let mut c = make();
    let trace_c = run_script(c.as_mut(), &shape, false, true, options.feature_dim);
    assert_eq!(
        trace_a, trace_c,
        "{name}: deciding before observing changed later decisions — decide() must not \
         consume exploration budget or fabricate observations"
    );

    // 4 (opt-in): the cap is respected whenever it is satisfiable.
    if options.respects_power_cap {
        let mut d = make();
        let cap = script_power(Configuration::TwoLoose);
        let trace_d = run_script(d.as_mut(), &shape, true, false, options.feature_dim);
        for decision in &trace_d {
            let config = check_in_space(name, &shape, decision);
            if matches!(decision.rationale, Rationale::Infeasible { .. }) {
                continue;
            }
            assert!(
                script_power(config) <= cap + 1e-9,
                "{name}: chose {config:?} drawing {:.1} W under a {cap:.1} W cap",
                script_power(config)
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{DecisionTableController, StaticController};
    use crate::throttle::select_configuration;

    #[test]
    fn static_and_table_controllers_conform() {
        assert_controller_conformance(
            || Box::new(StaticController::os_default()),
            &ConformanceOptions::default(),
        );
        assert_controller_conformance(
            || {
                let entries = (0..PHASES as u32).map(|p| {
                    let preds: Vec<_> = Configuration::TARGETS
                        .iter()
                        .map(|&c| (c, script_ipc(p as usize, c)))
                        .collect();
                    let sampled = script_ipc(p as usize, Configuration::SAMPLE);
                    (PhaseId::new(p), select_configuration(sampled, &preds))
                });
                Box::new(DecisionTableController::new(entries))
            },
            &ConformanceOptions::cap_aware(),
        );
    }

    #[test]
    #[should_panic(expected = "diverged")]
    fn nondeterministic_controllers_are_rejected() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static FLIP: AtomicU32 = AtomicU32::new(0);

        struct Flaky(Configuration);
        impl PowerPerfController for Flaky {
            fn name(&self) -> &'static str {
                "flaky"
            }
            fn observe(&mut self, _p: PhaseId, _s: &PhaseSample) {}
            fn decide(&mut self, ctx: &DecisionCtx<'_>) -> Decision {
                crate::controller::Decision::from_config(
                    self.0,
                    ctx.shape,
                    Rationale::Static { label: "flaky" },
                )
            }
        }
        assert_controller_conformance(
            || {
                let n = FLIP.fetch_add(1, Ordering::Relaxed);
                Box::new(Flaky(if n.is_multiple_of(2) {
                    Configuration::One
                } else {
                    Configuration::Four
                }))
            },
            &ConformanceOptions::default(),
        );
    }
}
