//! Baseline strategies from the paper's related work.
//!
//! * **Multiple linear regression** — the predictor used by the authors'
//!   earlier work \[3\]; the paper argues ANNs match its accuracy while
//!   avoiding the hand-tuned, machine-specific model derivation. Implemented
//!   here as ridge-regularised least squares per target configuration, so the
//!   ANN-vs-regression ablation of Section IV-B can be reproduced.
//! * **Empirical search** — the online search strategy of \[17\]: execute each
//!   candidate configuration once, measure it, and keep the best. Costs one
//!   exploration pass over the configuration space (prohibitive with many
//!   cores, as the paper notes), but needs no model at all.

use rand::Rng;
use serde::{Deserialize, Serialize};

use hwcounters::EventSet;
use xeon_sim::Configuration;

use crate::corpus::TrainingCorpus;
use crate::error::ActorError;
use crate::predictor::IpcPredictor;

/// Multiple linear regression baseline (one weight vector per target
/// configuration), solved by ridge-regularised normal equations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearRegressionPredictor {
    event_set: EventSet,
    /// Per target configuration: intercept followed by one weight per feature.
    weights: Vec<(Configuration, Vec<f64>)>,
}

impl LinearRegressionPredictor {
    /// Fits the regression models on a corpus. `ridge` is the Tikhonov
    /// regularisation strength (the paper's regression baseline needs careful
    /// conditioning; a small ridge keeps the normal equations solvable).
    pub fn train(corpus: &TrainingCorpus, ridge: f64) -> Result<Self, ActorError> {
        if corpus.is_empty() {
            return Err(ActorError::EmptyCorpus {
                reason: "cannot fit regression on empty corpus".into(),
            });
        }
        let ridge = ridge.max(0.0);
        let mut weights = Vec::new();
        for &target in &Configuration::TARGETS {
            let dataset = corpus.dataset_for_target(target)?;
            let n = dataset.len();
            let d = dataset.input_dim() + 1; // + intercept
                                             // Normal equations: (XᵀX + λI) w = Xᵀy with X including a 1 column.
            let mut xtx = vec![vec![0.0f64; d]; d];
            let mut xty = vec![0.0f64; d];
            for i in 0..n {
                let (x, y) = dataset.sample(i);
                let mut row = Vec::with_capacity(d);
                row.push(1.0);
                row.extend_from_slice(x);
                for a in 0..d {
                    xty[a] += row[a] * y[0];
                    for b in 0..d {
                        xtx[a][b] += row[a] * row[b];
                    }
                }
            }
            for (a, row) in xtx.iter_mut().enumerate() {
                row[a] += ridge;
            }
            let w = solve_linear_system(xtx, xty).ok_or_else(|| ActorError::InvalidConfig {
                reason: format!("singular normal equations for target {target}"),
            })?;
            weights.push((target, w));
        }
        Ok(Self { event_set: corpus.event_set.clone(), weights })
    }

    /// The fitted weight vectors (intercept first), per target configuration.
    pub fn weights(&self) -> &[(Configuration, Vec<f64>)] {
        &self.weights
    }
}

impl IpcPredictor for LinearRegressionPredictor {
    fn predict(&self, features: &[f64]) -> Result<Vec<(Configuration, f64)>, ActorError> {
        let expected = self.feature_dim();
        if features.len() != expected {
            return Err(ActorError::FeatureMismatch { expected, actual: features.len() });
        }
        Ok(self
            .weights
            .iter()
            .map(|(c, w)| {
                let mut y = w[0];
                for (wi, xi) in w[1..].iter().zip(features) {
                    y += wi * xi;
                }
                (*c, y.max(0.0))
            })
            .collect())
    }

    fn event_set(&self) -> &EventSet {
        &self.event_set
    }
}

/// Gaussian elimination with partial pivoting. Returns `None` for singular
/// systems.
#[allow(clippy::needless_range_loop)] // textbook Gaussian elimination reads clearest with indices
fn solve_linear_system(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col].abs().partial_cmp(&a[j][col].abs()).expect("finite matrix entries")
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate.
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// The empirical-search policy of \[17\]: measure each candidate configuration
/// once (in the supplied order) and lock in the fastest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalSearchPolicy {
    candidates: Vec<Configuration>,
    observations: Vec<(Configuration, f64)>,
    decision: Option<Configuration>,
}

impl Default for EmpiricalSearchPolicy {
    fn default() -> Self {
        Self::new(Configuration::ALL.to_vec())
    }
}

impl EmpiricalSearchPolicy {
    /// Creates a search over the given candidate configurations.
    pub fn new(candidates: Vec<Configuration>) -> Self {
        Self { candidates, observations: Vec::new(), decision: None }
    }

    /// The configuration to run next: the next unexplored candidate during
    /// the search, then the locked decision forever after.
    pub fn next_configuration(&self) -> Configuration {
        if let Some(decision) = self.decision {
            return decision;
        }
        self.candidates
            .get(self.observations.len())
            .copied()
            .unwrap_or_else(|| self.best_observed().unwrap_or(Configuration::Four))
    }

    /// Reports the measured cost (e.g. execution time) of running the phase
    /// on `config`. Once every candidate has a measurement the search locks
    /// the cheapest one.
    pub fn observe(&mut self, config: Configuration, cost: f64) {
        if self.decision.is_some() {
            return;
        }
        self.observations.push((config, cost));
        if self.observations.len() >= self.candidates.len() {
            self.decision = self.best_observed();
        }
    }

    /// The decision, once the search has finished.
    pub fn decision(&self) -> Option<Configuration> {
        self.decision
    }

    /// The fastest configuration measured so far and its cost, if anything
    /// has been measured.
    pub fn best(&self) -> Option<(Configuration, f64)> {
        self.observations
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
            .copied()
    }

    /// Number of exploration steps performed so far.
    pub fn explored(&self) -> usize {
        self.observations.len()
    }

    /// Number of phase executions the search will spend exploring — the
    /// overhead the paper contrasts with prediction-based adaptation.
    pub fn exploration_cost(&self) -> usize {
        self.candidates.len()
    }

    fn best_observed(&self) -> Option<Configuration> {
        self.observations
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
            .map(|(c, _)| *c)
    }
}

/// Convenience: run an empirical search to completion given a cost oracle
/// (used in tests and ablation benches).
pub fn empirical_search_decide<R: Rng + ?Sized>(
    candidates: &[Configuration],
    mut cost: impl FnMut(Configuration, &mut R) -> f64,
    rng: &mut R,
) -> Configuration {
    let mut policy = EmpiricalSearchPolicy::new(candidates.to_vec());
    while policy.decision().is_none() {
        let c = policy.next_configuration();
        let measured = cost(c, rng);
        policy.observe(c, measured);
    }
    policy.decision().expect("search finished")
}

#[cfg(test)]
mod tests {
    use super::*;
    use npb_workloads::{suite, BenchmarkId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xeon_sim::Machine;

    fn corpus() -> TrainingCorpus {
        let machine = Machine::xeon_qx6600();
        let benches = vec![
            suite::benchmark(BenchmarkId::Cg),
            suite::benchmark(BenchmarkId::Is),
            suite::benchmark(BenchmarkId::Bt),
        ];
        let mut rng = StdRng::seed_from_u64(3);
        TrainingCorpus::build(&machine, &benches, &EventSet::full(), 3, 0.05, &mut rng).unwrap()
    }

    #[test]
    fn linear_system_solver_is_correct() {
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let b = vec![5.0, 10.0];
        let x = solve_linear_system(a, b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
        // Singular system.
        assert!(solve_linear_system(vec![vec![1.0, 1.0], vec![1.0, 1.0]], vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn regression_trains_and_predicts_reasonably() {
        let c = corpus();
        let reg = LinearRegressionPredictor::train(&c, 1e-3).unwrap();
        assert_eq!(reg.weights().len(), 4);
        // On training samples the prediction should correlate with the truth.
        let mut abs_err = Vec::new();
        for s in &c.samples {
            let preds = reg.predict(&s.features).unwrap();
            for (cfg, pred) in preds {
                let obs = s.ipc_on(cfg).unwrap();
                abs_err.push(((obs - pred) / obs).abs());
            }
        }
        let mean: f64 = abs_err.iter().sum::<f64>() / abs_err.len() as f64;
        assert!(mean < 0.5, "regression in-sample mean relative error too high: {mean}");
    }

    #[test]
    fn regression_validates_inputs() {
        let c = corpus();
        let reg = LinearRegressionPredictor::train(&c, 1e-3).unwrap();
        assert!(reg.predict(&[1.0]).is_err());
        let empty = c.only(BenchmarkId::Mg);
        assert!(LinearRegressionPredictor::train(&empty, 1e-3).is_err());
    }

    #[test]
    fn empirical_search_explores_then_locks_best() {
        let mut policy = EmpiricalSearchPolicy::default();
        assert_eq!(policy.exploration_cost(), 5);
        let costs = [
            (Configuration::One, 10.0),
            (Configuration::TwoTight, 8.0),
            (Configuration::TwoLoose, 4.0),
            (Configuration::Three, 6.0),
            (Configuration::Four, 7.0),
        ];
        for (c, cost) in costs {
            assert_eq!(policy.next_configuration(), c, "candidates explored in order");
            policy.observe(c, cost);
        }
        assert_eq!(policy.decision(), Some(Configuration::TwoLoose));
        assert_eq!(policy.next_configuration(), Configuration::TwoLoose);
        assert_eq!(policy.explored(), 5);
        // Further observations are ignored once locked.
        policy.observe(Configuration::One, 0.1);
        assert_eq!(policy.decision(), Some(Configuration::TwoLoose));
    }

    #[test]
    fn empirical_search_decide_matches_cost_oracle() {
        let machine = Machine::xeon_qx6600();
        let bench = suite::benchmark(BenchmarkId::Is);
        let phase = &bench.phases[0];
        let mut rng = StdRng::seed_from_u64(7);
        let chosen = empirical_search_decide(
            &Configuration::ALL,
            |c, _| machine.simulate_config(phase, c).time_s,
            &mut rng,
        );
        // IS's rank phase is fastest on two loosely-coupled cores.
        assert_eq!(chosen, Configuration::TwoLoose);
    }
}
