//! Prediction-accuracy study (Figures 6 and 7).
//!
//! Figure 6 is the cumulative distribution of the absolute relative IPC
//! prediction error `|(IPC_obs − IPC_pred)/IPC_obs|` over every phase and
//! every target configuration (the paper reports a median of 9.1 % and 29.2 %
//! of predictions under 5 %). Figure 7 is the fraction of phases for which
//! the configuration selected by ACTOR has true rank 1, 2, …, 5 (59.3 %
//! rank-1, +28.8 % rank-2, the worst configuration never selected).

use rand::Rng;
use serde::{Deserialize, Serialize};

use annlib::metrics;
use npb_workloads::BenchmarkId;
use xeon_sim::{Configuration, Machine};

use crate::config::ActorConfig;
use crate::error::ActorError;
use crate::evaluation::{evaluate_benchmarks, leave_one_out_evaluation, BenchmarkEvaluation};

/// One prediction compared against its ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionRecord {
    /// Benchmark the phase belongs to.
    pub benchmark: BenchmarkId,
    /// Phase name.
    pub phase: String,
    /// Target configuration being predicted.
    pub target: Configuration,
    /// Predicted IPC.
    pub predicted_ipc: f64,
    /// Observed IPC (clean simulation).
    pub observed_ipc: f64,
}

impl PredictionRecord {
    /// The paper's error metric for this record.
    pub fn relative_error(&self) -> f64 {
        if self.observed_ipc == 0.0 {
            0.0
        } else {
            ((self.observed_ipc - self.predicted_ipc) / self.observed_ipc).abs()
        }
    }
}

/// The full accuracy study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyStudy {
    /// Every (phase × target configuration) prediction.
    pub records: Vec<PredictionRecord>,
    /// Count of phases whose selected configuration has true rank 1..=5.
    pub rank_counts: [usize; 5],
    /// Number of phases evaluated.
    pub phases: usize,
}

impl AccuracyStudy {
    /// Builds the study from leave-one-out evaluations.
    pub fn from_evaluations(evals: &[BenchmarkEvaluation]) -> Self {
        let mut records = Vec::new();
        let mut rank_counts = [0usize; 5];
        let mut phases = 0usize;
        for eval in evals {
            for phase in &eval.phases {
                phases += 1;
                rank_counts[phase.chosen_rank() - 1] += 1;
                for (config, predicted) in &phase.decision.ranked_predictions {
                    records.push(PredictionRecord {
                        benchmark: eval.id,
                        phase: phase.phase_name.clone(),
                        target: *config,
                        predicted_ipc: *predicted,
                        observed_ipc: phase.observed_on(*config),
                    });
                }
            }
        }
        Self { records, rank_counts, phases }
    }

    /// All per-record relative errors.
    pub fn relative_errors(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.relative_error()).collect()
    }

    /// Median relative error (the paper reports 9.1 %).
    pub fn median_error(&self) -> f64 {
        metrics::median(&self.relative_errors()).unwrap_or(0.0)
    }

    /// Fraction of predictions with error at or below `threshold`
    /// (the paper reports 29.2 % below 5 %).
    pub fn fraction_below(&self, threshold: f64) -> f64 {
        metrics::fraction_below(&self.relative_errors(), threshold)
    }

    /// The cumulative distribution of Figure 6, evaluated at percent
    /// thresholds 0, 5, 10, …, 100.
    pub fn error_cdf(&self) -> Vec<metrics::CdfPoint> {
        let thresholds: Vec<f64> = (0..=20).map(|i| i as f64 * 0.05).collect();
        metrics::cdf(&self.relative_errors(), &thresholds)
    }

    /// Fraction of phases whose selected configuration has each true rank
    /// (Figure 7), rank 1 first.
    pub fn rank_fractions(&self) -> [f64; 5] {
        let mut out = [0.0; 5];
        if self.phases == 0 {
            return out;
        }
        for (i, c) in self.rank_counts.iter().enumerate() {
            out[i] = *c as f64 / self.phases as f64;
        }
        out
    }

    /// Fraction of phases where the single best configuration was selected.
    pub fn best_selection_rate(&self) -> f64 {
        self.rank_fractions()[0]
    }

    /// Fraction of phases where the selected configuration was ranked worst.
    pub fn worst_selection_rate(&self) -> f64 {
        self.rank_fractions()[4]
    }
}

/// Runs the full leave-one-out accuracy study over the NAS suite.
pub fn run_accuracy_study<R: Rng + ?Sized>(
    machine: &Machine,
    config: &ActorConfig,
    rng: &mut R,
) -> Result<AccuracyStudy, ActorError> {
    let evals = leave_one_out_evaluation(machine, config, rng)?;
    Ok(AccuracyStudy::from_evaluations(&evals))
}

/// Runs the accuracy study over an explicit list of benchmarks (used by tests
/// to bound runtimes).
pub fn run_accuracy_study_on<R: Rng + ?Sized>(
    machine: &Machine,
    config: &ActorConfig,
    benchmarks: &[npb_workloads::BenchmarkProfile],
    rng: &mut R,
) -> Result<AccuracyStudy, ActorError> {
    let evals = evaluate_benchmarks(machine, config, benchmarks, rng)?;
    Ok(AccuracyStudy::from_evaluations(&evals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use npb_workloads::suite;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn study() -> AccuracyStudy {
        let machine = Machine::xeon_qx6600();
        let config = ActorConfig { corpus_replicas: 2, ..ActorConfig::fast() };
        let benchmarks = vec![
            suite::benchmark(BenchmarkId::Cg),
            suite::benchmark(BenchmarkId::Is),
            suite::benchmark(BenchmarkId::Mg),
            suite::benchmark(BenchmarkId::Bt),
        ];
        let mut rng = StdRng::seed_from_u64(21);
        run_accuracy_study_on(&machine, &config, &benchmarks, &mut rng).unwrap()
    }

    #[test]
    fn study_shape_is_consistent() {
        let s = study();
        // 4 target predictions per phase.
        assert_eq!(s.records.len(), s.phases * 4);
        assert_eq!(s.rank_counts.iter().sum::<usize>(), s.phases);
        assert_eq!(s.phases, 5 + 3 + 6 + 10);
        let fr = s.rank_fractions();
        assert!((fr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn predictions_are_usefully_accurate() {
        // With the fast training configuration and a reduced suite the model
        // is weaker than the paper's, but the median error should still be
        // well under 50% and the CDF monotone.
        let s = study();
        let median = s.median_error();
        assert!(median < 0.5, "median relative error too high: {median}");
        let cdf = s.error_cdf();
        assert_eq!(cdf.len(), 21);
        for w in cdf.windows(2) {
            assert!(w[1].fraction >= w[0].fraction);
        }
        assert!(cdf.last().unwrap().fraction >= s.fraction_below(1.0));
    }

    #[test]
    fn selection_quality_beats_chance() {
        // Random selection among five configurations would land rank 1 only
        // 20% of the time and the worst 20% of the time.
        let s = study();
        assert!(
            s.best_selection_rate() > 0.3,
            "best-configuration selection rate {} is no better than chance",
            s.best_selection_rate()
        );
        assert!(
            s.worst_selection_rate() < 0.15,
            "worst-configuration selection rate {} too high",
            s.worst_selection_rate()
        );
    }

    #[test]
    fn record_error_metric_matches_paper_definition() {
        let r = PredictionRecord {
            benchmark: BenchmarkId::Cg,
            phase: "p".into(),
            target: Configuration::One,
            predicted_ipc: 0.9,
            observed_ipc: 1.0,
        };
        assert!((r.relative_error() - 0.1).abs() < 1e-12);
        let zero = PredictionRecord { observed_ipc: 0.0, ..r };
        assert_eq!(zero.relative_error(), 0.0);
    }

    #[test]
    fn empty_study_is_well_defined() {
        let s = AccuracyStudy::from_evaluations(&[]);
        assert_eq!(s.phases, 0);
        assert_eq!(s.median_error(), 0.0);
        assert_eq!(s.rank_fractions(), [0.0; 5]);
    }
}
