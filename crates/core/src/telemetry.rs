//! Structured telemetry: typed trace events, pluggable sinks, and a
//! metrics registry.
//!
//! Every decision loop in the workspace — the [`crate::ControlPlane`]'s
//! observe → decide cycle, the cluster's discrete-event loop, the
//! coordinator's per-event budget redistribution, and the sweep engine's
//! cell fan-out — can emit one typed [`TraceEvent`] per decision or event
//! into a [`TelemetrySink`]. Sinks are strictly opt-in: every instrumented
//! call site is gated on `Option<SharedSink>` being `Some`, so with no sink
//! attached the hot paths take no timestamps, build no records and allocate
//! nothing, and all outputs stay byte-identical to an uninstrumented build.
//!
//! The sinks that ship with the crate:
//!
//! * [`NullSink`] — accepts and discards everything (for byte-identity
//!   testing of the instrumented paths themselves);
//! * [`MemorySink`] — buffers events in memory for test assertions;
//! * [`JsonlSink`] — appends one JSON object per event to a file (the
//!   `--trace PATH` flag of the benchmark binaries), counting write errors
//!   ([`JsonlSink::write_errors`]) and warning to stderr once;
//! * [`BufferedSink`] — batches events in front of any inner sink and
//!   replays them through [`TelemetrySink::record_spanned`], amortising the
//!   inner sink's per-event cost (one lock/write per batch instead of per
//!   event);
//! * [`RingSink`] — the lock-free hot-path sink: a bounded ring buffer
//!   drained by a background thread, never blocking the recorder (overflow
//!   is counted in [`RingSink::dropped_events`], not waited out);
//! * [`SpanSink`] — stamps each event with a [`SpanContext`] (run id,
//!   source identity, dense per-source sequence, current sweep cell) so
//!   traces from many processes merge into one causal timeline.
//!
//! [`TraceEvent`] also implements [`serde::Deserialize`], so a JSONL trace
//! (or an RPC `TraceBatch` frame) round-trips back into typed events;
//! [`SpannedEvent`] round-trips the same flat schema plus the span keys.
//!
//! [`MetricsRegistry`] is the aggregating counterpart: counters, gauges and
//! log-bucketed latency histograms with p50/p95/p99 snapshots. It
//! implements [`TelemetrySink`] itself, counting events by kind and feeding
//! decision/redistribution latencies into histograms — which is how the
//! `decision_bench` binary turns a trace stream into decisions-per-second
//! headlines. [`FanoutSink`] broadcasts one stream into several sinks
//! (e.g. a registry *and* a JSONL file).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::Path;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};

pub mod clock;
mod ring;
mod span;

pub use ring::RingSink;
pub use span::{SpanContext, SpanSink, SpannedEvent};

/// The shared, thread-safe handle instrumented code stores: sinks cross
/// worker-pool and live-runtime boundaries, so they are reference-counted
/// trait objects rather than borrows.
pub type SharedSink = Arc<dyn TelemetrySink>;

/// One structured record from an instrumented decision loop.
///
/// Serialized (via [`serde::Serialize`]) as a flat JSON object whose
/// `"event"` field names the variant in `snake_case` — the schema the
/// README's Observability section documents.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// One validated [`crate::ControlPlane::decide`] call.
    Decision {
        /// Raw id of the phase being decided.
        phase: u32,
        /// [`crate::controller::PowerPerfController::name`] of the decider.
        controller: &'static str,
        /// Concurrency candidates offered to the controller.
        candidates: usize,
        /// Joint (threads × frequency) menu size (0 = no DVFS axis offered).
        joint_cells: usize,
        /// Threads of the validated binding (the chosen concurrency).
        threads: usize,
        /// Chosen frequency-step index (0 = nominal).
        freq_step: u8,
        /// Variant name of the decision's [`crate::controller::Rationale`].
        rationale: &'static str,
        /// IPC sampled for the phase, when the plane observed one.
        ipc: Option<f64>,
        /// Memory-stall fraction sampled for the phase, when observed.
        stall_fraction: Option<f64>,
        /// The average-power cap offered to the controller (W).
        power_cap_w: Option<f64>,
        /// Wall-clock latency of the decide call (ns); 0 when this
        /// decision was not latency-sampled (the control plane stamps one
        /// in sixteen — see [`TraceEvent::latency_ns`]).
        latency_ns: u64,
    },
    /// A job joined the cluster queue.
    JobArrival {
        /// Simulation time (s).
        time_s: f64,
        /// Job id.
        job: usize,
        /// Benchmark the job runs.
        benchmark: String,
        /// Gang width (nodes) the job needs.
        width: usize,
    },
    /// A job started on its gang.
    JobStart {
        /// Simulation time (s).
        time_s: f64,
        /// Job id.
        job: usize,
        /// Gang width (nodes).
        width: usize,
        /// Per-node peak draw of the chosen plan (W).
        node_peak_w: f64,
        /// Planned execution time (s).
        exec_time_s: f64,
    },
    /// A gang completed.
    JobCompletion {
        /// Simulation time (s).
        time_s: f64,
        /// Job id.
        job: usize,
        /// Gang width (nodes).
        width: usize,
        /// Energy the gang consumed (J).
        energy_j: f64,
    },
    /// A node crashed (scenario fault injection).
    NodeFailed {
        /// Simulation time (s).
        time_s: f64,
        /// Node id.
        node: usize,
    },
    /// A crashed node came back.
    NodeRecovered {
        /// Simulation time (s).
        time_s: f64,
        /// Node id.
        node: usize,
    },
    /// A job with an SLO deadline missed it (at completion, or when a fault
    /// policy killed it).
    SloViolated {
        /// Simulation time (s).
        time_s: f64,
        /// Job id.
        job: usize,
        /// The deadline the job carried (s).
        deadline_s: f64,
        /// When the job actually finished — or was killed (s).
        finish_s: f64,
    },
    /// One `CapCoordinator::redistribute` invocation in `cluster-sched`.
    Redistribute {
        /// Simulation time (s).
        time_s: f64,
        /// Jobs whose gang fit the idle nodes (the startable prefix).
        startable: usize,
        /// Jobs actually granted a cap this event.
        admitted: usize,
        /// Power headroom observed before redistribution (W).
        headroom_before_w: f64,
        /// Headroom left after all caps were granted (W).
        headroom_after_w: f64,
        /// Greedy menu upgrades performed across all admitted jobs.
        upgrades: usize,
        /// Wall-clock latency of the redistribution (ns).
        latency_ns: u64,
    },
    /// One completed cell of a sweep grid.
    SweepCell {
        /// Cell position in the deterministic expansion order.
        index: usize,
        /// Cluster size of the cell.
        nodes: usize,
        /// Budget tier label.
        budget: String,
        /// Policy name.
        policy: String,
        /// Workload seed.
        seed: u64,
        /// Simulated makespan (s).
        makespan_s: f64,
        /// Total cluster energy (J).
        total_energy_j: f64,
    },
    /// A progress note from a [`crate::StreamingReporter`].
    Progress {
        /// Table name the reporter streams into.
        name: String,
        /// Rows received so far.
        done: usize,
        /// Rows expected in total.
        expected: usize,
    },
    /// A worker completed the daemon handshake (daemon-side lifecycle).
    WorkerConnected {
        /// Worker name from its `Hello`.
        worker: String,
    },
    /// The daemon declared a worker dead (daemon-side lifecycle).
    WorkerDead {
        /// Worker name.
        worker: String,
        /// Why: connection loss, heartbeat stall, or protocol violation.
        reason: String,
    },
    /// A cell held by a dead worker went back into the daemon's queue
    /// (daemon-side lifecycle; emitted whether the retry budget allows a
    /// re-run or routes the cell to terminal failure).
    CellReassigned {
        /// Cell index in the sweep grid.
        index: usize,
        /// Worker that held the cell when it died.
        worker: String,
        /// Dispatch attempts the cell has consumed so far.
        attempt: usize,
    },
}

impl TraceEvent {
    /// The `snake_case` kind tag of the variant — the `"event"` field of the
    /// serialized record and the counter key in [`MetricsRegistry`].
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Decision { .. } => "decision",
            TraceEvent::JobArrival { .. } => "job_arrival",
            TraceEvent::JobStart { .. } => "job_start",
            TraceEvent::JobCompletion { .. } => "job_completion",
            TraceEvent::NodeFailed { .. } => "node_failed",
            TraceEvent::NodeRecovered { .. } => "node_recovered",
            TraceEvent::SloViolated { .. } => "slo_violated",
            TraceEvent::Redistribute { .. } => "redistribute",
            TraceEvent::SweepCell { .. } => "sweep_cell",
            TraceEvent::Progress { .. } => "progress",
            TraceEvent::WorkerConnected { .. } => "worker_connected",
            TraceEvent::WorkerDead { .. } => "worker_dead",
            TraceEvent::CellReassigned { .. } => "cell_reassigned",
        }
    }

    /// The latency the event carries, for variants that time a hot path.
    /// `None` for variants with no latency field *and* for unsampled
    /// records: latency stamping is sampled on the decide hot path, and
    /// unstamped records carry the sentinel 0 (a real measurement can
    /// never round to 0 ns — a decide is hundreds of ns).
    pub fn latency_ns(&self) -> Option<u64> {
        match self {
            TraceEvent::Decision { latency_ns, .. }
            | TraceEvent::Redistribute { latency_ns, .. } => {
                (*latency_ns > 0).then_some(*latency_ns)
            }
            _ => None,
        }
    }

    /// The registry histogram name for this event's latency samples —
    /// `"{kind}_latency_ns"`, precomputed so [`MetricsRegistry`] delivery
    /// never allocates the `String` per event (or per batch) just to look
    /// the histogram up.
    pub fn latency_metric_name(&self) -> &'static str {
        match self {
            TraceEvent::Decision { .. } => "decision_latency_ns",
            TraceEvent::JobArrival { .. } => "job_arrival_latency_ns",
            TraceEvent::JobStart { .. } => "job_start_latency_ns",
            TraceEvent::JobCompletion { .. } => "job_completion_latency_ns",
            TraceEvent::NodeFailed { .. } => "node_failed_latency_ns",
            TraceEvent::NodeRecovered { .. } => "node_recovered_latency_ns",
            TraceEvent::SloViolated { .. } => "slo_violated_latency_ns",
            TraceEvent::Redistribute { .. } => "redistribute_latency_ns",
            TraceEvent::SweepCell { .. } => "sweep_cell_latency_ns",
            TraceEvent::Progress { .. } => "progress_latency_ns",
            TraceEvent::WorkerConnected { .. } => "worker_connected_latency_ns",
            TraceEvent::WorkerDead { .. } => "worker_dead_latency_ns",
            TraceEvent::CellReassigned { .. } => "cell_reassigned_latency_ns",
        }
    }
}

impl Serialize for TraceEvent {
    fn to_value(&self) -> Value {
        let opt = |v: &Option<f64>| match v {
            Some(x) => Value::Float(*x),
            None => Value::Null,
        };
        let mut m: Vec<(String, Value)> = vec![("event".into(), Value::Str(self.kind().into()))];
        match self {
            TraceEvent::Decision {
                phase,
                controller,
                candidates,
                joint_cells,
                threads,
                freq_step,
                rationale,
                ipc,
                stall_fraction,
                power_cap_w,
                latency_ns,
            } => {
                m.push(("phase".into(), Value::UInt(u64::from(*phase))));
                m.push(("controller".into(), Value::Str((*controller).into())));
                m.push(("candidates".into(), Value::UInt(*candidates as u64)));
                m.push(("joint_cells".into(), Value::UInt(*joint_cells as u64)));
                m.push(("threads".into(), Value::UInt(*threads as u64)));
                m.push(("freq_step".into(), Value::UInt(u64::from(*freq_step))));
                m.push(("rationale".into(), Value::Str((*rationale).into())));
                m.push(("ipc".into(), opt(ipc)));
                m.push(("stall_fraction".into(), opt(stall_fraction)));
                m.push(("power_cap_w".into(), opt(power_cap_w)));
                m.push(("latency_ns".into(), Value::UInt(*latency_ns)));
            }
            TraceEvent::JobArrival { time_s, job, benchmark, width } => {
                m.push(("time_s".into(), Value::Float(*time_s)));
                m.push(("job".into(), Value::UInt(*job as u64)));
                m.push(("benchmark".into(), Value::Str(benchmark.clone())));
                m.push(("width".into(), Value::UInt(*width as u64)));
            }
            TraceEvent::JobStart { time_s, job, width, node_peak_w, exec_time_s } => {
                m.push(("time_s".into(), Value::Float(*time_s)));
                m.push(("job".into(), Value::UInt(*job as u64)));
                m.push(("width".into(), Value::UInt(*width as u64)));
                m.push(("node_peak_w".into(), Value::Float(*node_peak_w)));
                m.push(("exec_time_s".into(), Value::Float(*exec_time_s)));
            }
            TraceEvent::JobCompletion { time_s, job, width, energy_j } => {
                m.push(("time_s".into(), Value::Float(*time_s)));
                m.push(("job".into(), Value::UInt(*job as u64)));
                m.push(("width".into(), Value::UInt(*width as u64)));
                m.push(("energy_j".into(), Value::Float(*energy_j)));
            }
            TraceEvent::NodeFailed { time_s, node }
            | TraceEvent::NodeRecovered { time_s, node } => {
                m.push(("time_s".into(), Value::Float(*time_s)));
                m.push(("node".into(), Value::UInt(*node as u64)));
            }
            TraceEvent::SloViolated { time_s, job, deadline_s, finish_s } => {
                m.push(("time_s".into(), Value::Float(*time_s)));
                m.push(("job".into(), Value::UInt(*job as u64)));
                m.push(("deadline_s".into(), Value::Float(*deadline_s)));
                m.push(("finish_s".into(), Value::Float(*finish_s)));
            }
            TraceEvent::Redistribute {
                time_s,
                startable,
                admitted,
                headroom_before_w,
                headroom_after_w,
                upgrades,
                latency_ns,
            } => {
                m.push(("time_s".into(), Value::Float(*time_s)));
                m.push(("startable".into(), Value::UInt(*startable as u64)));
                m.push(("admitted".into(), Value::UInt(*admitted as u64)));
                m.push(("headroom_before_w".into(), Value::Float(*headroom_before_w)));
                m.push(("headroom_after_w".into(), Value::Float(*headroom_after_w)));
                m.push(("upgrades".into(), Value::UInt(*upgrades as u64)));
                m.push(("latency_ns".into(), Value::UInt(*latency_ns)));
            }
            TraceEvent::SweepCell {
                index,
                nodes,
                budget,
                policy,
                seed,
                makespan_s,
                total_energy_j,
            } => {
                m.push(("index".into(), Value::UInt(*index as u64)));
                m.push(("nodes".into(), Value::UInt(*nodes as u64)));
                m.push(("budget".into(), Value::Str(budget.clone())));
                m.push(("policy".into(), Value::Str(policy.clone())));
                m.push(("seed".into(), Value::UInt(*seed)));
                m.push(("makespan_s".into(), Value::Float(*makespan_s)));
                m.push(("total_energy_j".into(), Value::Float(*total_energy_j)));
            }
            TraceEvent::Progress { name, done, expected } => {
                m.push(("name".into(), Value::Str(name.clone())));
                m.push(("done".into(), Value::UInt(*done as u64)));
                m.push(("expected".into(), Value::UInt(*expected as u64)));
            }
            TraceEvent::WorkerConnected { worker } => {
                m.push(("worker".into(), Value::Str(worker.clone())));
            }
            TraceEvent::WorkerDead { worker, reason } => {
                m.push(("worker".into(), Value::Str(worker.clone())));
                m.push(("reason".into(), Value::Str(reason.clone())));
            }
            TraceEvent::CellReassigned { index, worker, attempt } => {
                m.push(("index".into(), Value::UInt(*index as u64)));
                m.push(("worker".into(), Value::Str(worker.clone())));
                m.push(("attempt".into(), Value::UInt(*attempt as u64)));
            }
        }
        Value::Map(m)
    }
}

/// Interns a string into a `&'static str`.
///
/// [`TraceEvent::Decision`] carries two `&'static str` fields (controller
/// and rationale names) that are string literals on the serializing side.
/// Deserialization leaks each *distinct* name once and reuses it afterwards
/// — the name space is the closed set of controller/rationale labels, so
/// the leak is bounded and a long-running daemon can decode traces forever.
fn intern(s: &str) -> &'static str {
    static INTERNED: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let mut set = INTERNED.get_or_init(|| Mutex::new(BTreeSet::new())).lock();
    if let Some(existing) = set.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    set.insert(leaked);
    leaked
}

impl Deserialize for TraceEvent {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        fn req<T: Deserialize>(m: &Value, key: &str) -> Result<T, SerdeError> {
            T::from_value(m.get(key).ok_or_else(|| SerdeError::missing_field(key))?)
        }
        let kind: String = req(value, "event")?;
        match kind.as_str() {
            "decision" => Ok(TraceEvent::Decision {
                phase: req(value, "phase")?,
                controller: intern(&req::<String>(value, "controller")?),
                candidates: req(value, "candidates")?,
                joint_cells: req(value, "joint_cells")?,
                threads: req(value, "threads")?,
                freq_step: req(value, "freq_step")?,
                rationale: intern(&req::<String>(value, "rationale")?),
                ipc: req(value, "ipc")?,
                stall_fraction: req(value, "stall_fraction")?,
                power_cap_w: req(value, "power_cap_w")?,
                latency_ns: req(value, "latency_ns")?,
            }),
            "job_arrival" => Ok(TraceEvent::JobArrival {
                time_s: req(value, "time_s")?,
                job: req(value, "job")?,
                benchmark: req(value, "benchmark")?,
                width: req(value, "width")?,
            }),
            "job_start" => Ok(TraceEvent::JobStart {
                time_s: req(value, "time_s")?,
                job: req(value, "job")?,
                width: req(value, "width")?,
                node_peak_w: req(value, "node_peak_w")?,
                exec_time_s: req(value, "exec_time_s")?,
            }),
            "job_completion" => Ok(TraceEvent::JobCompletion {
                time_s: req(value, "time_s")?,
                job: req(value, "job")?,
                width: req(value, "width")?,
                energy_j: req(value, "energy_j")?,
            }),
            "node_failed" => Ok(TraceEvent::NodeFailed {
                time_s: req(value, "time_s")?,
                node: req(value, "node")?,
            }),
            "node_recovered" => Ok(TraceEvent::NodeRecovered {
                time_s: req(value, "time_s")?,
                node: req(value, "node")?,
            }),
            "slo_violated" => Ok(TraceEvent::SloViolated {
                time_s: req(value, "time_s")?,
                job: req(value, "job")?,
                deadline_s: req(value, "deadline_s")?,
                finish_s: req(value, "finish_s")?,
            }),
            "redistribute" => Ok(TraceEvent::Redistribute {
                time_s: req(value, "time_s")?,
                startable: req(value, "startable")?,
                admitted: req(value, "admitted")?,
                headroom_before_w: req(value, "headroom_before_w")?,
                headroom_after_w: req(value, "headroom_after_w")?,
                upgrades: req(value, "upgrades")?,
                latency_ns: req(value, "latency_ns")?,
            }),
            "sweep_cell" => Ok(TraceEvent::SweepCell {
                index: req(value, "index")?,
                nodes: req(value, "nodes")?,
                budget: req(value, "budget")?,
                policy: req(value, "policy")?,
                seed: req(value, "seed")?,
                makespan_s: req(value, "makespan_s")?,
                total_energy_j: req(value, "total_energy_j")?,
            }),
            "progress" => Ok(TraceEvent::Progress {
                name: req(value, "name")?,
                done: req(value, "done")?,
                expected: req(value, "expected")?,
            }),
            "worker_connected" => Ok(TraceEvent::WorkerConnected { worker: req(value, "worker")? }),
            "worker_dead" => Ok(TraceEvent::WorkerDead {
                worker: req(value, "worker")?,
                reason: req(value, "reason")?,
            }),
            "cell_reassigned" => Ok(TraceEvent::CellReassigned {
                index: req(value, "index")?,
                worker: req(value, "worker")?,
                attempt: req(value, "attempt")?,
            }),
            other => Err(SerdeError::custom(format!("unknown trace event kind {other:?}"))),
        }
    }
}

/// Receives [`TraceEvent`]s from instrumented decision loops.
///
/// Implementations must be cheap and non-blocking enough to sit on hot
/// paths, and interiorly mutable (`record` takes `&self`): one sink is
/// shared across sweep workers and live-runtime locks via [`SharedSink`].
pub trait TelemetrySink: Send + Sync {
    /// Accepts one event. Called synchronously from the instrumented path.
    fn record(&self, event: &TraceEvent);

    /// Accepts one event by value. Sinks that copy the event into owned
    /// storage anyway ([`RingSink`], [`MemorySink`], [`BufferedSink`])
    /// override this to consume it directly, so a hot-path caller pays one
    /// event construction instead of build-plus-clone. The default
    /// forwards to [`TelemetrySink::record`]; behaviour is identical
    /// either way.
    fn record_owned(&self, event: TraceEvent) {
        self.record(&event);
    }

    /// Accepts a batch of events in order.
    ///
    /// The default forwards to [`TelemetrySink::record`] per event; sinks
    /// with per-call locking override it to take their lock once per batch.
    /// [`BufferedSink`] replays its buffer through this, and the cluster
    /// daemon ingests worker `TraceBatch` frames with it.
    fn record_batch(&self, events: &[TraceEvent]) {
        for event in events {
            self.record(event);
        }
    }

    /// Accepts a batch of span-stamped events in order.
    ///
    /// This is the path causal traces travel: a [`SpanSink`] stamps events
    /// and forwards them here, the distributed daemon re-ingests worker
    /// `TraceBatch` frames through it, and span-aware sinks
    /// ([`JsonlSink`], [`MemorySink`], [`RingSink`], …) override it to
    /// preserve the stamps. The default strips spans and forwards the bare
    /// events to [`TelemetrySink::record`], so span-oblivious sinks (a
    /// metrics registry, a custom aggregator) keep working unchanged.
    fn record_spanned(&self, events: &[SpannedEvent]) {
        for event in events {
            self.record(&event.event);
        }
    }

    /// Flushes any buffered output (no-op by default).
    fn flush(&self) {}
}

/// Accepts and discards every event — the sink to attach when only the
/// *instrumented code path* should be exercised (byte-identity tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn record(&self, _event: &TraceEvent) {}

    fn record_owned(&self, _event: TraceEvent) {}

    fn record_batch(&self, _events: &[TraceEvent]) {}

    fn record_spanned(&self, _events: &[SpannedEvent]) {}
}

/// Buffers every event in memory, for tests and in-process inspection.
/// Span stamps are kept when events arrive through
/// [`TelemetrySink::record_spanned`] (see [`MemorySink::spanned_events`]).
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<SpannedEvent>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// A snapshot of every recorded event, in arrival order, spans
    /// stripped.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().iter().map(|e| e.event.clone()).collect()
    }

    /// A snapshot of every recorded event with its span stamp (if it
    /// arrived with one), in arrival order.
    pub fn spanned_events(&self) -> Vec<SpannedEvent> {
        self.events.lock().clone()
    }

    /// Drains and returns every recorded event, spans stripped.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock()).into_iter().map(|e| e.event).collect()
    }
}

impl TelemetrySink for MemorySink {
    fn record(&self, event: &TraceEvent) {
        self.events.lock().push(SpannedEvent::unspanned(event.clone()));
    }

    fn record_owned(&self, event: TraceEvent) {
        self.events.lock().push(SpannedEvent::unspanned(event));
    }

    fn record_batch(&self, events: &[TraceEvent]) {
        let mut buf = self.events.lock();
        buf.extend(events.iter().cloned().map(SpannedEvent::unspanned));
    }

    fn record_spanned(&self, events: &[SpannedEvent]) {
        self.events.lock().extend_from_slice(events);
    }
}

/// Appends one compact JSON object per event to a file — the sink behind
/// the benchmark binaries' `--trace PATH` flag. Events arriving through
/// [`TelemetrySink::record_spanned`] keep their span keys on the line.
///
/// Write errors (full disk, closed descriptor) must not panic or stall the
/// simulation being observed, but they must not vanish either: each failed
/// write bumps a counter readable as [`JsonlSink::write_errors`], and the
/// first failure prints one warning to stderr.
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
    path: String,
    errors: std::sync::atomic::AtomicU64,
    warned: std::sync::atomic::AtomicBool,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(&path)?;
        Ok(Self {
            out: Mutex::new(BufWriter::new(file)),
            path: path.as_ref().display().to_string(),
            errors: std::sync::atomic::AtomicU64::new(0),
            warned: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// Write/flush failures so far. Non-zero means the trace file is
    /// incomplete even though the run itself carried on.
    pub fn write_errors(&self) -> u64 {
        self.errors.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn note_error(&self, err: &io::Error) {
        use std::sync::atomic::Ordering;
        self.errors.fetch_add(1, Ordering::Relaxed);
        if !self.warned.swap(true, Ordering::Relaxed) {
            eprintln!(
                "warning: trace file {}: {err}; the run continues but the trace is incomplete \
                 (further write errors are counted silently)",
                self.path
            );
        }
    }

    fn write_line(&self, out: &mut BufWriter<File>, line: &str) {
        if let Err(err) = writeln!(out, "{line}") {
            self.note_error(&err);
        }
    }
}

impl fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink")
            .field("path", &self.path)
            .field("write_errors", &self.write_errors())
            .finish_non_exhaustive()
    }
}

impl TelemetrySink for JsonlSink {
    fn record(&self, event: &TraceEvent) {
        let line = serde_json::to_string(event).expect("trace events always serialize");
        let mut out = self.out.lock();
        self.write_line(&mut out, &line);
    }

    fn record_batch(&self, events: &[TraceEvent]) {
        let mut out = self.out.lock();
        for event in events {
            let line = serde_json::to_string(event).expect("trace events always serialize");
            self.write_line(&mut out, &line);
        }
    }

    fn record_spanned(&self, events: &[SpannedEvent]) {
        let mut out = self.out.lock();
        for event in events {
            let line = serde_json::to_string(event).expect("trace events always serialize");
            self.write_line(&mut out, &line);
        }
    }

    fn flush(&self) {
        if let Err(err) = self.out.lock().flush() {
            self.note_error(&err);
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Broadcasts every event to several sinks (e.g. a [`MetricsRegistry`] for
/// aggregation *and* a [`JsonlSink`] for the raw trace).
#[derive(Clone, Default)]
pub struct FanoutSink {
    sinks: Vec<SharedSink>,
}

impl FanoutSink {
    /// Fans out to `sinks`, in order.
    pub fn new(sinks: Vec<SharedSink>) -> Self {
        Self { sinks }
    }
}

impl fmt::Debug for FanoutSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FanoutSink").field("sinks", &self.sinks.len()).finish()
    }
}

impl TelemetrySink for FanoutSink {
    fn record(&self, event: &TraceEvent) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }

    fn record_batch(&self, events: &[TraceEvent]) {
        for sink in &self.sinks {
            sink.record_batch(events);
        }
    }

    fn record_spanned(&self, events: &[SpannedEvent]) {
        for sink in &self.sinks {
            sink.record_spanned(events);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

/// Number of log₂ buckets a [`Histogram`] keeps: bucket `i` holds values
/// whose bit length is `i`, so 65 buckets cover the full `u64` range.
const HISTOGRAM_BUCKETS: usize = 65;

/// A log₂-bucketed latency histogram: O(1) insertion, 65 fixed buckets,
/// exact count/min/max/mean and approximate quantiles (each bucket spans
/// one power of two, so a quantile is accurate to within ~50 %, plenty for
/// order-of-magnitude latency headlines).
#[derive(Debug, Clone)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: u64,
    max: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self { count: 0, sum: 0.0, min: u64::MAX, max: 0, buckets: [0; HISTOGRAM_BUCKETS] }
    }
}

impl Histogram {
    /// Records one value (typically a latency in ns).
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum += value as f64;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[(u64::BITS - value.leading_zeros()) as usize] += 1;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another histogram into this one (used by batch aggregation:
    /// observe into a thread-local histogram, merge under the lock once).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (bucket, add) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *bucket += add;
        }
    }

    /// The approximate `q`-quantile (`0.0 ..= 1.0`): the geometric midpoint
    /// of the bucket holding the `q`-th value, clamped to the exact
    /// observed min/max. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket i covers [2^(i-1), 2^i); represent it by 1.5·2^(i-1).
                let mid = if i == 0 { 0.0 } else { 1.5 * (i as f64 - 1.0).exp2() };
                return mid.clamp(self.min as f64, self.max as f64);
            }
        }
        self.max as f64
    }

    /// An immutable summary of the histogram's current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            mean: if self.count == 0 { 0.0 } else { self.sum / self.count as f64 },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// A point-in-time summary of one [`Histogram`]: exact count/min/max/mean
/// plus approximate p50/p95/p99 (same unit as the recorded values).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    /// Recorded values.
    pub count: u64,
    /// Smallest recorded value.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Exact arithmetic mean.
    pub mean: f64,
    /// Approximate median.
    pub p50: f64,
    /// Approximate 95th percentile.
    pub p95: f64,
    /// Approximate 99th percentile.
    pub p99: f64,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A registry of named counters, gauges and latency [`Histogram`]s.
///
/// As a [`TelemetrySink`] it aggregates instead of storing: every event
/// bumps the counter named after its [`TraceEvent::kind`], and events that
/// carry a latency ([`TraceEvent::latency_ns`]) feed the
/// `"<kind>_latency_ns"` histogram — so attaching a registry to an
/// instrumented loop yields decisions/s and p50/p95/p99 headlines with no
/// per-event storage.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1 to the counter `name` (created at 0 on first use).
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to the counter `name`.
    pub fn add(&self, name: &str, n: u64) {
        *self.inner.lock().counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Current value of the counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.inner.lock().counters.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Sets the gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.inner.lock().gauges.insert(name.to_string(), value);
    }

    /// Current value of the gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.lock().gauges.get(name).copied()
    }

    /// Records one value into the histogram `name` (created on first use).
    pub fn observe(&self, name: &str, value: u64) {
        self.inner.lock().histograms.entry(name.to_string()).or_default().observe(value);
    }

    /// A snapshot of the histogram `name`, if it exists.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.inner.lock().histograms.get(name).map(Histogram::snapshot)
    }

    /// Snapshots of every histogram, sorted by name.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        self.inner.lock().histograms.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect()
    }

    /// Renders the whole registry as plain `name value` lines, one metric
    /// per line, deterministically ordered — the text exposition the
    /// cluster daemon serves over `Message::MetricsRequest` and
    /// `cluster_daemon --metrics` prints. Histograms expand into
    /// `_count`/`_min`/`_max`/`_mean`/`_p50`/`_p95`/`_p99` lines.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let inner = self.inner.lock();
        let mut out = String::new();
        for (name, value) in &inner.counters {
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &inner.gauges {
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, histogram) in &inner.histograms {
            let snap = histogram.snapshot();
            let _ = writeln!(out, "{name}_count {}", snap.count);
            let _ = writeln!(out, "{name}_min {}", snap.min);
            let _ = writeln!(out, "{name}_max {}", snap.max);
            let _ = writeln!(out, "{name}_mean {}", snap.mean);
            let _ = writeln!(out, "{name}_p50 {}", snap.p50);
            let _ = writeln!(out, "{name}_p95 {}", snap.p95);
            let _ = writeln!(out, "{name}_p99 {}", snap.p99);
        }
        out
    }

    /// Batch aggregation core: tallies the batch into per-kind totals and
    /// scratch histograms *outside* the lock — the kind set is tiny, so a
    /// linear scan beats any map — then applies one map update per
    /// distinct kind. A naive per-event loop costs a `String` allocation
    /// and a `BTreeMap` walk per event (two for latency-carrying events);
    /// on the `RingSink` drainer that made delivery more expensive than
    /// the decide loop being traced. Names are only allocated the first
    /// time a kind appears in the registry.
    fn aggregate<'a>(&self, events: impl Iterator<Item = &'a TraceEvent>) {
        let mut counts: Vec<(&'static str, u64)> = Vec::new();
        let mut latencies: Vec<(&'static str, Histogram)> = Vec::new();
        for event in events {
            let kind = event.kind();
            match counts.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, n)) => *n += 1,
                None => counts.push((kind, 1)),
            }
            if let Some(ns) = event.latency_ns() {
                let name = event.latency_metric_name();
                match latencies.iter_mut().find(|(k, _)| *k == name) {
                    Some((_, h)) => h.observe(ns),
                    None => {
                        let mut h = Histogram::default();
                        h.observe(ns);
                        latencies.push((name, h));
                    }
                }
            }
        }
        if counts.is_empty() {
            return;
        }
        let mut inner = self.inner.lock();
        for (kind, n) in counts {
            match inner.counters.get_mut(kind) {
                Some(counter) => *counter += n,
                None => {
                    inner.counters.insert(kind.to_string(), n);
                }
            }
        }
        for (name, scratch) in latencies {
            // `name` is the precomputed `&'static` histogram key; the
            // `String` is only allocated the first time a kind appears.
            match inner.histograms.get_mut(name) {
                Some(histogram) => histogram.merge(&scratch),
                None => {
                    inner.histograms.insert(name.to_string(), scratch);
                }
            }
        }
    }
}

impl TelemetrySink for MetricsRegistry {
    fn record(&self, event: &TraceEvent) {
        let kind = event.kind();
        let mut inner = self.inner.lock();
        match inner.counters.get_mut(kind) {
            Some(counter) => *counter += 1,
            None => {
                inner.counters.insert(kind.to_string(), 1);
            }
        }
        if let Some(ns) = event.latency_ns() {
            let name = event.latency_metric_name();
            match inner.histograms.get_mut(name) {
                Some(histogram) => histogram.observe(ns),
                None => {
                    let mut h = Histogram::default();
                    h.observe(ns);
                    inner.histograms.insert(name.to_string(), h);
                }
            }
        }
    }

    fn record_batch(&self, events: &[TraceEvent]) {
        self.aggregate(events.iter());
    }

    fn record_spanned(&self, events: &[SpannedEvent]) {
        // Aggregation ignores spans.
        self.aggregate(events.iter().map(|event| &event.event));
    }
}

/// Batches events in front of any inner sink, flushing them through
/// [`TelemetrySink::record_spanned`] whenever `capacity` events accumulate
/// (and on [`TelemetrySink::flush`] / drop).
///
/// It amortises the inner sink's per-event cost — one lock or write per
/// batch instead of per event — while preserving span stamps end to end
/// (unstamped events pass through with no span). For hot paths that must
/// never even take this sink's `Mutex`, use [`RingSink`] instead.
///
/// Batch boundaries never reorder events: the buffer is drained under the
/// same lock that admits new events, so the inner sink observes the exact
/// record order.
pub struct BufferedSink {
    inner: SharedSink,
    capacity: usize,
    buf: Mutex<Vec<SpannedEvent>>,
}

impl BufferedSink {
    /// Default batch size: large enough to amortise a lock/syscall, small
    /// enough that a worker's trace frames stay a few KiB.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// Buffers up to [`Self::DEFAULT_CAPACITY`] events in front of `inner`.
    pub fn new(inner: SharedSink) -> Self {
        Self::with_capacity(inner, Self::DEFAULT_CAPACITY)
    }

    /// Buffers up to `capacity` events in front of `inner` (min 1).
    pub fn with_capacity(inner: SharedSink, capacity: usize) -> Self {
        Self { inner, capacity: capacity.max(1), buf: Mutex::new(Vec::new()) }
    }

    /// Events currently buffered (not yet pushed to the inner sink).
    pub fn buffered(&self) -> usize {
        self.buf.lock().len()
    }
}

impl fmt::Debug for BufferedSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BufferedSink")
            .field("capacity", &self.capacity)
            .field("buffered", &self.buffered())
            .finish_non_exhaustive()
    }
}

impl TelemetrySink for BufferedSink {
    fn record(&self, event: &TraceEvent) {
        self.record_owned(event.clone());
    }

    fn record_owned(&self, event: TraceEvent) {
        let mut buf = self.buf.lock();
        buf.push(SpannedEvent::unspanned(event));
        if buf.len() >= self.capacity {
            let batch = std::mem::take(&mut *buf);
            // Deliver while still holding the lock so concurrent recorders
            // cannot interleave a later event ahead of this batch.
            self.inner.record_spanned(&batch);
        }
    }

    fn record_batch(&self, events: &[TraceEvent]) {
        let mut buf = self.buf.lock();
        buf.extend(events.iter().cloned().map(SpannedEvent::unspanned));
        if buf.len() >= self.capacity {
            let batch = std::mem::take(&mut *buf);
            self.inner.record_spanned(&batch);
        }
    }

    fn record_spanned(&self, events: &[SpannedEvent]) {
        let mut buf = self.buf.lock();
        buf.extend_from_slice(events);
        if buf.len() >= self.capacity {
            let batch = std::mem::take(&mut *buf);
            self.inner.record_spanned(&batch);
        }
    }

    fn flush(&self) {
        let mut buf = self.buf.lock();
        if !buf.is_empty() {
            let batch = std::mem::take(&mut *buf);
            self.inner.record_spanned(&batch);
        }
        drop(buf);
        self.inner.flush();
    }
}

impl Drop for BufferedSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(latency_ns: u64) -> TraceEvent {
        TraceEvent::Decision {
            phase: 7,
            controller: "decision-table",
            candidates: 5,
            joint_cells: 20,
            threads: 2,
            freq_step: 1,
            rationale: "Predicted",
            ipc: Some(1.25),
            stall_fraction: Some(0.4),
            power_cap_w: Some(140.0),
            latency_ns,
        }
    }

    #[test]
    fn kinds_and_latencies_are_exposed() {
        assert_eq!(decision(9).kind(), "decision");
        assert_eq!(decision(9).latency_ns(), Some(9));
        assert_eq!(decision(0).latency_ns(), None, "0 is the unsampled sentinel");
        let arrival =
            TraceEvent::JobArrival { time_s: 0.0, job: 1, benchmark: "CG".into(), width: 2 };
        assert_eq!(arrival.kind(), "job_arrival");
        assert_eq!(arrival.latency_ns(), None);
    }

    #[test]
    fn events_serialize_flat_with_an_event_tag() {
        let v = decision(123).to_value();
        assert_eq!(v.get("event"), Some(&Value::Str("decision".into())));
        assert_eq!(v.get("phase"), Some(&Value::UInt(7)));
        assert_eq!(v.get("rationale"), Some(&Value::Str("Predicted".into())));
        assert_eq!(v.get("latency_ns"), Some(&Value::UInt(123)));
        let line = serde_json::to_string(&decision(123)).unwrap();
        assert!(line.starts_with("{\"event\":\"decision\""), "{line}");
        assert!(!line.contains('\n'));

        let mut none = decision(1);
        if let TraceEvent::Decision { ipc, stall_fraction, power_cap_w, .. } = &mut none {
            *ipc = None;
            *stall_fraction = None;
            *power_cap_w = None;
        }
        assert_eq!(none.to_value().get("ipc"), Some(&Value::Null));
    }

    #[test]
    fn every_event_variant_round_trips_through_json() {
        let events = vec![
            decision(123),
            TraceEvent::JobArrival { time_s: 1.5, job: 3, benchmark: "CG".into(), width: 2 },
            TraceEvent::JobStart {
                time_s: 2.0,
                job: 3,
                width: 2,
                node_peak_w: 151.25,
                exec_time_s: 40.5,
            },
            TraceEvent::JobCompletion { time_s: 42.5, job: 3, width: 2, energy_j: 1.25e4 },
            TraceEvent::NodeFailed { time_s: 17.25, node: 5 },
            TraceEvent::NodeRecovered { time_s: 33.5, node: 5 },
            TraceEvent::SloViolated { time_s: 99.0, job: 3, deadline_s: 80.0, finish_s: 99.0 },
            TraceEvent::Redistribute {
                time_s: 42.5,
                startable: 4,
                admitted: 3,
                headroom_before_w: 200.0,
                headroom_after_w: 12.5,
                upgrades: 2,
                latency_ns: 777,
            },
            TraceEvent::SweepCell {
                index: 9,
                nodes: 8,
                budget: "tight".into(),
                policy: "power-aware".into(),
                seed: 2007,
                makespan_s: 512.0,
                total_energy_j: 9.5e5,
            },
            TraceEvent::Progress { name: "sweep".into(), done: 3, expected: 48 },
        ];
        for event in events {
            let json = serde_json::to_string(&event).unwrap();
            let back: TraceEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, event, "round-trip of {json}");
        }

        // Option fields survive as Null.
        let mut none = decision(1);
        if let TraceEvent::Decision { ipc, stall_fraction, power_cap_w, .. } = &mut none {
            *ipc = None;
            *stall_fraction = None;
            *power_cap_w = None;
        }
        let back: TraceEvent =
            serde_json::from_str(&serde_json::to_string(&none).unwrap()).unwrap();
        assert_eq!(back, none);

        // Deserialized &'static str fields intern to the same content, and
        // repeated decodes reuse the same interned pointer.
        if let (
            TraceEvent::Decision { controller: a, .. },
            TraceEvent::Decision { controller: b, .. },
        ) = (
            serde_json::from_str::<TraceEvent>(&serde_json::to_string(&decision(1)).unwrap())
                .unwrap(),
            serde_json::from_str::<TraceEvent>(&serde_json::to_string(&decision(2)).unwrap())
                .unwrap(),
        ) {
            assert!(std::ptr::eq(a, b));
        } else {
            panic!("decisions decode as decisions");
        }
    }

    #[test]
    fn deserialize_rejects_unknown_kinds_and_missing_fields() {
        let err = serde_json::from_str::<TraceEvent>("{\"event\":\"warp_drive\"}").unwrap_err();
        assert!(err.to_string().contains("warp_drive"), "{err}");
        let err =
            serde_json::from_str::<TraceEvent>("{\"event\":\"progress\",\"done\":1}").unwrap_err();
        assert!(err.to_string().contains("name") || err.to_string().contains("expected"), "{err}");
        assert!(serde_json::from_str::<TraceEvent>("{\"done\":1}").is_err());
    }

    #[test]
    fn memory_sink_buffers_and_drains() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.record(&decision(1));
        sink.record(&decision(2));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.events()[0].latency_ns(), Some(1));
        assert_eq!(sink.take().len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn null_sink_discards() {
        let sink = NullSink;
        sink.record(&decision(1));
        sink.flush();
    }

    #[test]
    fn jsonl_sink_writes_one_parseable_record_per_line() {
        let path = std::env::temp_dir().join("actor_telemetry_jsonl_test.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&decision(11));
        sink.record(&TraceEvent::Progress { name: "sweep".into(), done: 1, expected: 2 });
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first.get("event"), Some(&Value::Str("decision".into())));
        let second: Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(second.get("done"), Some(&Value::UInt(1)));
        drop(sink);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MetricsRegistry::new());
        let fan = FanoutSink::new(vec![a.clone(), b.clone()]);
        fan.record(&decision(5));
        fan.flush();
        assert_eq!(a.len(), 1);
        assert_eq!(b.counter("decision"), 1);
    }

    #[test]
    fn buffered_sink_batches_then_flushes() {
        let inner = Arc::new(MemorySink::new());
        let buffered = BufferedSink::with_capacity(inner.clone(), 3);
        buffered.record(&decision(1));
        buffered.record(&decision(2));
        assert_eq!(inner.len(), 0, "below capacity nothing reaches the inner sink");
        assert_eq!(buffered.buffered(), 2);
        buffered.record(&decision(3));
        assert_eq!(inner.len(), 3, "capacity reached: the batch lands at once");
        assert_eq!(buffered.buffered(), 0);

        buffered.record(&decision(4));
        buffered.flush();
        assert_eq!(inner.len(), 4, "flush drains a partial batch");
        let latencies: Vec<_> = inner.events().iter().map(|e| e.latency_ns().unwrap()).collect();
        assert_eq!(latencies, vec![1, 2, 3, 4], "order is preserved across batches");

        // record_batch feeds the buffer too, and drop flushes the remainder.
        buffered.record_batch(&[decision(5), decision(6)]);
        assert_eq!(inner.len(), 4);
        drop(buffered);
        assert_eq!(inner.len(), 6, "drop flushes buffered events");
    }

    #[test]
    fn record_batch_default_and_overrides_agree() {
        let events = vec![decision(10), decision(20)];
        let reg = MetricsRegistry::new();
        reg.record_batch(&events);
        assert_eq!(reg.counter("decision"), 2);
        assert_eq!(reg.histogram("decision_latency_ns").unwrap().count, 2);

        let mem = Arc::new(MemorySink::new());
        let fan = FanoutSink::new(vec![mem.clone()]);
        fan.record_batch(&events);
        assert_eq!(mem.len(), 2);

        // The default implementation (NullSink has no override) still works.
        NullSink.record_batch(&events);
    }

    #[test]
    fn histogram_quantiles_are_order_of_magnitude_accurate() {
        let mut h = Histogram::default();
        assert_eq!(h.snapshot().count, 0);
        assert_eq!(h.quantile(0.5), 0.0);
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!((snap.min, snap.max), (1, 1000));
        assert!((snap.mean - 500.5).abs() < 1e-9);
        // log2 buckets: the true p50 is 500, the bucket midpoint 1.5·256.
        assert!(snap.p50 >= 250.0 && snap.p50 <= 1000.0, "p50 = {}", snap.p50);
        assert!(snap.p95 >= snap.p50 && snap.p99 >= snap.p95);
        assert!(snap.p99 <= snap.max as f64);

        let mut single = Histogram::default();
        single.observe(42);
        let snap = single.snapshot();
        assert_eq!((snap.min, snap.max), (42, 42));
        assert_eq!(snap.p50, 42.0);
        assert_eq!(snap.p99, 42.0);
        // Zero lands in bucket 0 without panicking.
        single.observe(0);
        assert_eq!(single.snapshot().min, 0);
        single.observe(u64::MAX);
        assert_eq!(single.snapshot().max, u64::MAX);
    }

    #[test]
    fn registry_counts_events_and_buckets_latencies() {
        let reg = MetricsRegistry::new();
        reg.record(&decision(100));
        reg.record(&decision(200));
        reg.record(&TraceEvent::JobArrival {
            time_s: 0.0,
            job: 0,
            benchmark: "IS".into(),
            width: 1,
        });
        assert_eq!(reg.counter("decision"), 2);
        assert_eq!(reg.counter("job_arrival"), 1);
        assert_eq!(reg.counter("nonexistent"), 0);
        let snap = reg.histogram("decision_latency_ns").unwrap();
        assert_eq!(snap.count, 2);
        assert_eq!((snap.min, snap.max), (100, 200));
        assert!(reg.histogram("job_arrival_latency_ns").is_none());
        assert_eq!(reg.counters().len(), 2);
        assert_eq!(reg.histograms().len(), 1);

        reg.incr("custom");
        reg.add("custom", 4);
        assert_eq!(reg.counter("custom"), 5);
        reg.set_gauge("headroom_w", 42.5);
        assert_eq!(reg.gauge("headroom_w"), Some(42.5));
        assert_eq!(reg.gauge("missing"), None);
        reg.observe("manual", 7);
        assert_eq!(reg.histogram("manual").unwrap().count, 1);
    }

    fn span(seq: u64, cell: Option<u64>) -> SpanContext {
        SpanContext { run_id: 42, source: "worker-1".into(), seq, cell }
    }

    #[test]
    fn lifecycle_events_round_trip_through_json() {
        let events = vec![
            TraceEvent::WorkerConnected { worker: "local-0".into() },
            TraceEvent::WorkerDead { worker: "local-0".into(), reason: "heartbeat stall".into() },
            TraceEvent::CellReassigned { index: 7, worker: "local-0".into(), attempt: 2 },
        ];
        assert_eq!(events[0].kind(), "worker_connected");
        assert_eq!(events[1].kind(), "worker_dead");
        assert_eq!(events[2].kind(), "cell_reassigned");
        for event in events {
            let json = serde_json::to_string(&event).unwrap();
            let back: TraceEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, event, "round-trip of {json}");
            assert_eq!(event.latency_ns(), None);
        }
    }

    #[test]
    fn spanned_events_serialize_flat_and_round_trip() {
        let spanned = SpannedEvent { span: Some(span(9, Some(3))), event: decision(123) };
        let v = spanned.to_value();
        // Flat: the event's own keys plus the span keys, one object.
        assert_eq!(v.get("event"), Some(&Value::Str("decision".into())));
        assert_eq!(v.get("run_id"), Some(&Value::UInt(42)));
        assert_eq!(v.get("source"), Some(&Value::Str("worker-1".into())));
        assert_eq!(v.get("seq"), Some(&Value::UInt(9)));
        assert_eq!(v.get("cell"), Some(&Value::UInt(3)));

        let json = serde_json::to_string(&spanned).unwrap();
        let back: SpannedEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spanned);

        // The same line still decodes as a bare TraceEvent (span keys are
        // ignored), so pre-span consumers keep working.
        let bare: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(bare, spanned.event);

        // And an unspanned line decodes with span: None, cell: Null works.
        let unspanned = SpannedEvent::unspanned(decision(5));
        let back: SpannedEvent =
            serde_json::from_str(&serde_json::to_string(&unspanned).unwrap()).unwrap();
        assert_eq!(back.span, None);
        let no_cell = SpannedEvent { span: Some(span(0, None)), event: decision(5) };
        let back: SpannedEvent =
            serde_json::from_str(&serde_json::to_string(&no_cell).unwrap()).unwrap();
        assert_eq!(back, no_cell);
    }

    #[test]
    fn span_sink_stamps_dense_sequences_and_preserves_foreign_spans() {
        let mem = Arc::new(MemorySink::new());
        let sink = SpanSink::new(mem.clone(), 42, "worker-1");
        sink.record(&decision(1));
        sink.set_cell(Some(3));
        sink.record(&decision(2));
        sink.record_batch(&[decision(3), decision(4)]);
        sink.set_cell(None);
        sink.record(&decision(5));
        // A foreign, already-stamped event passes through untouched.
        let foreign = SpannedEvent {
            span: Some(SpanContext { run_id: 7, source: "other".into(), seq: 99, cell: None }),
            event: decision(6),
        };
        sink.record_spanned(std::slice::from_ref(&foreign));
        // A mixed batch stamps only the unstamped member.
        sink.record_spanned(&[foreign.clone(), SpannedEvent::unspanned(decision(7))]);

        let got = mem.spanned_events();
        // 5 stamped singles/batches + 1 foreign + the 2-event mixed batch.
        assert_eq!(got.len(), 8);
        let own: Vec<&SpannedEvent> =
            got.iter().filter(|e| e.span.as_ref().unwrap().source == "worker-1").collect();
        let seqs: Vec<u64> = own.iter().map(|e| e.span.as_ref().unwrap().seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5], "dense per-source sequence");
        let cells: Vec<Option<u64>> = own.iter().map(|e| e.span.as_ref().unwrap().cell).collect();
        assert_eq!(cells, vec![None, Some(3), Some(3), Some(3), None, None]);
        assert_eq!(got[5], foreign);
        assert_eq!(got[6].span.as_ref().unwrap().seq, 99, "foreign span kept in mixed batch");
        assert_eq!(sink.stamped(), 6);
    }

    #[test]
    fn ring_sink_delivers_everything_off_thread_and_flush_waits() {
        let mem = Arc::new(MemorySink::new());
        let ring = RingSink::new(mem.clone());
        for i in 0..2000u64 {
            // 1-based: latency 0 is the unsampled sentinel `latency_ns()`
            // hides.
            ring.record(&decision(i + 1));
        }
        ring.flush();
        assert_eq!(mem.len(), 2000, "flush waits for the drainer");
        assert_eq!(ring.dropped_events(), 0);
        assert_eq!(ring.delivered_events(), 2000);
        let latencies: Vec<u64> = mem.events().iter().map(|e| e.latency_ns().unwrap()).collect();
        assert!(latencies.windows(2).all(|w| w[0] < w[1]), "single-producer order preserved");
    }

    #[test]
    fn deferred_ring_parks_until_flush_and_relieves_pressure() {
        let mem = Arc::new(MemorySink::new());
        let ring = RingSink::deferred(mem.clone(), 64);
        for i in 0..8u64 {
            ring.record(&decision(i + 1));
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(mem.len(), 0, "gate closed: nothing delivered before flush");
        ring.flush();
        assert_eq!(mem.len(), 8, "flush opens the gate and waits for delivery");
        assert_eq!(ring.dropped_events(), 0);
        // Backlog past half the capacity drains without a flush.
        for i in 0..40u64 {
            ring.record(&decision(i + 1));
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while mem.len() < 48 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(mem.len(), 48, "pressure relief drains a deferred ring");
        assert_eq!(ring.dropped_events(), 0);
    }

    #[test]
    fn ring_sink_counts_drops_instead_of_blocking() {
        // An inner sink that wedges until released, so the ring must fill.
        struct Gate(Mutex<()>);
        impl TelemetrySink for Gate {
            fn record(&self, _event: &TraceEvent) {
                let _hold = self.0.lock();
            }
        }
        let gate = Arc::new(Gate(Mutex::new(())));
        let held = gate.0.lock();
        let ring = RingSink::with_capacity(gate.clone(), 64);
        // Capacity rounds to 64; the drainer may pull a few into its batch
        // before wedging on the gate, so overfill generously.
        for i in 0..10_000u64 {
            ring.record(&decision(i));
        }
        assert!(ring.dropped_events() > 0, "overflow must drop, not block");
        drop(held);
        ring.flush();
        let total = ring.delivered_events() + ring.dropped_events();
        assert_eq!(total, 10_000, "every event is either delivered or counted as dropped");
    }

    #[test]
    fn ring_sink_drop_drains_the_remainder() {
        let mem = Arc::new(MemorySink::new());
        let ring = RingSink::new(mem.clone());
        ring.record_batch(&[decision(1), decision(2), decision(3)]);
        drop(ring);
        assert_eq!(mem.len(), 3, "drop delivers buffered events synchronously");
    }

    #[test]
    fn ring_sink_preserves_spans() {
        let mem = Arc::new(MemorySink::new());
        let ring = RingSink::new(mem.clone());
        let spanned = SpannedEvent { span: Some(span(4, Some(1))), event: decision(9) };
        ring.record_spanned(std::slice::from_ref(&spanned));
        ring.flush();
        assert_eq!(mem.spanned_events(), vec![spanned]);
    }

    #[test]
    fn jsonl_sink_counts_write_errors_once_warned() {
        // /dev/full accepts the open but fails every flushed write with
        // ENOSPC — exactly the "disk filled mid-trace" failure mode.
        if !Path::new("/dev/full").exists() {
            return;
        }
        let sink = JsonlSink::create("/dev/full").unwrap();
        assert_eq!(sink.write_errors(), 0);
        sink.record(&decision(1));
        sink.flush();
        let after_first = sink.write_errors();
        assert!(after_first >= 1, "flush surfaces ENOSPC");
        sink.record(&decision(2));
        sink.flush();
        assert!(sink.write_errors() > after_first, "subsequent failures keep counting");
        // Drop flushes again; it must not panic on a persistently full disk.
    }

    #[test]
    fn histogram_quantile_edge_cases() {
        // Empty: every quantile is 0.
        let empty = Histogram::default();
        assert_eq!(empty.quantile(0.0), 0.0);
        assert_eq!(empty.quantile(1.0), 0.0);
        assert_eq!(empty.count(), 0);

        // Single sample: every quantile is that sample.
        let mut one = Histogram::default();
        one.observe(700);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(one.quantile(q), 700.0, "q={q}");
        }

        // q outside [0, 1] clamps rather than panics.
        assert_eq!(one.quantile(-3.0), 700.0);
        assert_eq!(one.quantile(7.0), 700.0);

        // q=0 maps to the first value's bucket, q=1 to the last's; answers
        // are bucket midpoints, within a factor of two of the true value
        // and clamped to [min, max].
        let mut h = Histogram::default();
        h.observe(1);
        h.observe(1 << 20);
        assert!((1.0..=2.0).contains(&h.quantile(0.0)), "q=0 -> {}", h.quantile(0.0));
        assert_eq!(h.quantile(1.0), (1u64 << 20) as f64, "q=1 clamps to the exact max");

        // Values in the overflow (top log2) bucket: bit length 64, bucket
        // index 64 — must not index out of bounds and must clamp to max.
        let mut top = Histogram::default();
        top.observe(u64::MAX);
        top.observe(u64::MAX - 1);
        top.observe(1u64 << 63);
        assert_eq!(top.count(), 3);
        // All three share bucket 64; answers are its midpoint clamped into
        // the exact [min, max] envelope.
        for q in [0.0, 0.5, 1.0] {
            let v = top.quantile(q);
            assert!(v >= (1u64 << 63) as f64 && v <= u64::MAX as f64, "q={q} -> {v}");
        }
        let snap = top.snapshot();
        assert_eq!((snap.min, snap.max), (1u64 << 63, u64::MAX));
    }

    #[test]
    fn registry_renders_deterministic_text() {
        let reg = MetricsRegistry::new();
        reg.incr("cells_completed");
        reg.add("cells_completed", 2);
        reg.set_gauge("workers_live", 2.0);
        reg.record(&decision(100));
        let text = reg.render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.contains(&"cells_completed 3"), "{text}");
        assert!(lines.contains(&"decision 1"), "{text}");
        assert!(lines.contains(&"workers_live 2"), "{text}");
        assert!(lines.contains(&"decision_latency_ns_count 1"), "{text}");
        assert!(lines.contains(&"decision_latency_ns_min 100"), "{text}");
        assert_eq!(text, reg.render_text(), "rendering is deterministic");
    }
}
