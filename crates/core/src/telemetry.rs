//! Structured telemetry: typed trace events, pluggable sinks, and a
//! metrics registry.
//!
//! Every decision loop in the workspace — the [`crate::ControlPlane`]'s
//! observe → decide cycle, the cluster's discrete-event loop, the
//! coordinator's per-event budget redistribution, and the sweep engine's
//! cell fan-out — can emit one typed [`TraceEvent`] per decision or event
//! into a [`TelemetrySink`]. Sinks are strictly opt-in: every instrumented
//! call site is gated on `Option<SharedSink>` being `Some`, so with no sink
//! attached the hot paths take no timestamps, build no records and allocate
//! nothing, and all outputs stay byte-identical to an uninstrumented build.
//!
//! Four sinks ship with the crate:
//!
//! * [`NullSink`] — accepts and discards everything (for byte-identity
//!   testing of the instrumented paths themselves);
//! * [`MemorySink`] — buffers events in memory for test assertions;
//! * [`JsonlSink`] — appends one JSON object per event to a file (the
//!   `--trace PATH` flag of the benchmark binaries);
//! * [`BufferedSink`] — batches events in front of any inner sink and
//!   replays them through [`TelemetrySink::record_batch`], amortising the
//!   inner sink's per-event cost (one lock/write per batch instead of per
//!   event). The distributed cluster workers use it to assemble
//!   `TraceBatch` RPC frames; it is equally the first lever on the
//!   instrumented-hot-path overhead, since a registry or JSONL sink is
//!   locked once per batch.
//!
//! [`TraceEvent`] also implements [`serde::Deserialize`], so a JSONL trace
//! (or an RPC `TraceBatch` frame) round-trips back into typed events.
//!
//! [`MetricsRegistry`] is the aggregating counterpart: counters, gauges and
//! log-bucketed latency histograms with p50/p95/p99 snapshots. It
//! implements [`TelemetrySink`] itself, counting events by kind and feeding
//! decision/redistribution latencies into histograms — which is how the
//! `decision_bench` binary turns a trace stream into decisions-per-second
//! headlines. [`FanoutSink`] broadcasts one stream into several sinks
//! (e.g. a registry *and* a JSONL file).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::Path;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};

/// The shared, thread-safe handle instrumented code stores: sinks cross
/// worker-pool and live-runtime boundaries, so they are reference-counted
/// trait objects rather than borrows.
pub type SharedSink = Arc<dyn TelemetrySink>;

/// One structured record from an instrumented decision loop.
///
/// Serialized (via [`serde::Serialize`]) as a flat JSON object whose
/// `"event"` field names the variant in `snake_case` — the schema the
/// README's Observability section documents.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// One validated [`crate::ControlPlane::decide`] call.
    Decision {
        /// Raw id of the phase being decided.
        phase: u32,
        /// [`crate::controller::PowerPerfController::name`] of the decider.
        controller: &'static str,
        /// Concurrency candidates offered to the controller.
        candidates: usize,
        /// Joint (threads × frequency) menu size (0 = no DVFS axis offered).
        joint_cells: usize,
        /// Threads of the validated binding (the chosen concurrency).
        threads: usize,
        /// Chosen frequency-step index (0 = nominal).
        freq_step: u8,
        /// Variant name of the decision's [`crate::controller::Rationale`].
        rationale: &'static str,
        /// IPC sampled for the phase, when the plane observed one.
        ipc: Option<f64>,
        /// Memory-stall fraction sampled for the phase, when observed.
        stall_fraction: Option<f64>,
        /// The average-power cap offered to the controller (W).
        power_cap_w: Option<f64>,
        /// Wall-clock latency of the decide call (ns).
        latency_ns: u64,
    },
    /// A job joined the cluster queue.
    JobArrival {
        /// Simulation time (s).
        time_s: f64,
        /// Job id.
        job: usize,
        /// Benchmark the job runs.
        benchmark: String,
        /// Gang width (nodes) the job needs.
        width: usize,
    },
    /// A job started on its gang.
    JobStart {
        /// Simulation time (s).
        time_s: f64,
        /// Job id.
        job: usize,
        /// Gang width (nodes).
        width: usize,
        /// Per-node peak draw of the chosen plan (W).
        node_peak_w: f64,
        /// Planned execution time (s).
        exec_time_s: f64,
    },
    /// A gang completed.
    JobCompletion {
        /// Simulation time (s).
        time_s: f64,
        /// Job id.
        job: usize,
        /// Gang width (nodes).
        width: usize,
        /// Energy the gang consumed (J).
        energy_j: f64,
    },
    /// One `CapCoordinator::redistribute` invocation in `cluster-sched`.
    Redistribute {
        /// Simulation time (s).
        time_s: f64,
        /// Jobs whose gang fit the idle nodes (the startable prefix).
        startable: usize,
        /// Jobs actually granted a cap this event.
        admitted: usize,
        /// Power headroom observed before redistribution (W).
        headroom_before_w: f64,
        /// Headroom left after all caps were granted (W).
        headroom_after_w: f64,
        /// Greedy menu upgrades performed across all admitted jobs.
        upgrades: usize,
        /// Wall-clock latency of the redistribution (ns).
        latency_ns: u64,
    },
    /// One completed cell of a sweep grid.
    SweepCell {
        /// Cell position in the deterministic expansion order.
        index: usize,
        /// Cluster size of the cell.
        nodes: usize,
        /// Budget tier label.
        budget: String,
        /// Policy name.
        policy: String,
        /// Workload seed.
        seed: u64,
        /// Simulated makespan (s).
        makespan_s: f64,
        /// Total cluster energy (J).
        total_energy_j: f64,
    },
    /// A progress note from a [`crate::StreamingReporter`].
    Progress {
        /// Table name the reporter streams into.
        name: String,
        /// Rows received so far.
        done: usize,
        /// Rows expected in total.
        expected: usize,
    },
}

impl TraceEvent {
    /// The `snake_case` kind tag of the variant — the `"event"` field of the
    /// serialized record and the counter key in [`MetricsRegistry`].
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Decision { .. } => "decision",
            TraceEvent::JobArrival { .. } => "job_arrival",
            TraceEvent::JobStart { .. } => "job_start",
            TraceEvent::JobCompletion { .. } => "job_completion",
            TraceEvent::Redistribute { .. } => "redistribute",
            TraceEvent::SweepCell { .. } => "sweep_cell",
            TraceEvent::Progress { .. } => "progress",
        }
    }

    /// The latency the event carries, for variants that time a hot path.
    pub fn latency_ns(&self) -> Option<u64> {
        match self {
            TraceEvent::Decision { latency_ns, .. }
            | TraceEvent::Redistribute { latency_ns, .. } => Some(*latency_ns),
            _ => None,
        }
    }
}

impl Serialize for TraceEvent {
    fn to_value(&self) -> Value {
        let opt = |v: &Option<f64>| match v {
            Some(x) => Value::Float(*x),
            None => Value::Null,
        };
        let mut m: Vec<(String, Value)> = vec![("event".into(), Value::Str(self.kind().into()))];
        match self {
            TraceEvent::Decision {
                phase,
                controller,
                candidates,
                joint_cells,
                threads,
                freq_step,
                rationale,
                ipc,
                stall_fraction,
                power_cap_w,
                latency_ns,
            } => {
                m.push(("phase".into(), Value::UInt(u64::from(*phase))));
                m.push(("controller".into(), Value::Str((*controller).into())));
                m.push(("candidates".into(), Value::UInt(*candidates as u64)));
                m.push(("joint_cells".into(), Value::UInt(*joint_cells as u64)));
                m.push(("threads".into(), Value::UInt(*threads as u64)));
                m.push(("freq_step".into(), Value::UInt(u64::from(*freq_step))));
                m.push(("rationale".into(), Value::Str((*rationale).into())));
                m.push(("ipc".into(), opt(ipc)));
                m.push(("stall_fraction".into(), opt(stall_fraction)));
                m.push(("power_cap_w".into(), opt(power_cap_w)));
                m.push(("latency_ns".into(), Value::UInt(*latency_ns)));
            }
            TraceEvent::JobArrival { time_s, job, benchmark, width } => {
                m.push(("time_s".into(), Value::Float(*time_s)));
                m.push(("job".into(), Value::UInt(*job as u64)));
                m.push(("benchmark".into(), Value::Str(benchmark.clone())));
                m.push(("width".into(), Value::UInt(*width as u64)));
            }
            TraceEvent::JobStart { time_s, job, width, node_peak_w, exec_time_s } => {
                m.push(("time_s".into(), Value::Float(*time_s)));
                m.push(("job".into(), Value::UInt(*job as u64)));
                m.push(("width".into(), Value::UInt(*width as u64)));
                m.push(("node_peak_w".into(), Value::Float(*node_peak_w)));
                m.push(("exec_time_s".into(), Value::Float(*exec_time_s)));
            }
            TraceEvent::JobCompletion { time_s, job, width, energy_j } => {
                m.push(("time_s".into(), Value::Float(*time_s)));
                m.push(("job".into(), Value::UInt(*job as u64)));
                m.push(("width".into(), Value::UInt(*width as u64)));
                m.push(("energy_j".into(), Value::Float(*energy_j)));
            }
            TraceEvent::Redistribute {
                time_s,
                startable,
                admitted,
                headroom_before_w,
                headroom_after_w,
                upgrades,
                latency_ns,
            } => {
                m.push(("time_s".into(), Value::Float(*time_s)));
                m.push(("startable".into(), Value::UInt(*startable as u64)));
                m.push(("admitted".into(), Value::UInt(*admitted as u64)));
                m.push(("headroom_before_w".into(), Value::Float(*headroom_before_w)));
                m.push(("headroom_after_w".into(), Value::Float(*headroom_after_w)));
                m.push(("upgrades".into(), Value::UInt(*upgrades as u64)));
                m.push(("latency_ns".into(), Value::UInt(*latency_ns)));
            }
            TraceEvent::SweepCell {
                index,
                nodes,
                budget,
                policy,
                seed,
                makespan_s,
                total_energy_j,
            } => {
                m.push(("index".into(), Value::UInt(*index as u64)));
                m.push(("nodes".into(), Value::UInt(*nodes as u64)));
                m.push(("budget".into(), Value::Str(budget.clone())));
                m.push(("policy".into(), Value::Str(policy.clone())));
                m.push(("seed".into(), Value::UInt(*seed)));
                m.push(("makespan_s".into(), Value::Float(*makespan_s)));
                m.push(("total_energy_j".into(), Value::Float(*total_energy_j)));
            }
            TraceEvent::Progress { name, done, expected } => {
                m.push(("name".into(), Value::Str(name.clone())));
                m.push(("done".into(), Value::UInt(*done as u64)));
                m.push(("expected".into(), Value::UInt(*expected as u64)));
            }
        }
        Value::Map(m)
    }
}

/// Interns a string into a `&'static str`.
///
/// [`TraceEvent::Decision`] carries two `&'static str` fields (controller
/// and rationale names) that are string literals on the serializing side.
/// Deserialization leaks each *distinct* name once and reuses it afterwards
/// — the name space is the closed set of controller/rationale labels, so
/// the leak is bounded and a long-running daemon can decode traces forever.
fn intern(s: &str) -> &'static str {
    static INTERNED: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let mut set = INTERNED.get_or_init(|| Mutex::new(BTreeSet::new())).lock();
    if let Some(existing) = set.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    set.insert(leaked);
    leaked
}

impl Deserialize for TraceEvent {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        fn req<T: Deserialize>(m: &Value, key: &str) -> Result<T, SerdeError> {
            T::from_value(m.get(key).ok_or_else(|| SerdeError::missing_field(key))?)
        }
        let kind: String = req(value, "event")?;
        match kind.as_str() {
            "decision" => Ok(TraceEvent::Decision {
                phase: req(value, "phase")?,
                controller: intern(&req::<String>(value, "controller")?),
                candidates: req(value, "candidates")?,
                joint_cells: req(value, "joint_cells")?,
                threads: req(value, "threads")?,
                freq_step: req(value, "freq_step")?,
                rationale: intern(&req::<String>(value, "rationale")?),
                ipc: req(value, "ipc")?,
                stall_fraction: req(value, "stall_fraction")?,
                power_cap_w: req(value, "power_cap_w")?,
                latency_ns: req(value, "latency_ns")?,
            }),
            "job_arrival" => Ok(TraceEvent::JobArrival {
                time_s: req(value, "time_s")?,
                job: req(value, "job")?,
                benchmark: req(value, "benchmark")?,
                width: req(value, "width")?,
            }),
            "job_start" => Ok(TraceEvent::JobStart {
                time_s: req(value, "time_s")?,
                job: req(value, "job")?,
                width: req(value, "width")?,
                node_peak_w: req(value, "node_peak_w")?,
                exec_time_s: req(value, "exec_time_s")?,
            }),
            "job_completion" => Ok(TraceEvent::JobCompletion {
                time_s: req(value, "time_s")?,
                job: req(value, "job")?,
                width: req(value, "width")?,
                energy_j: req(value, "energy_j")?,
            }),
            "redistribute" => Ok(TraceEvent::Redistribute {
                time_s: req(value, "time_s")?,
                startable: req(value, "startable")?,
                admitted: req(value, "admitted")?,
                headroom_before_w: req(value, "headroom_before_w")?,
                headroom_after_w: req(value, "headroom_after_w")?,
                upgrades: req(value, "upgrades")?,
                latency_ns: req(value, "latency_ns")?,
            }),
            "sweep_cell" => Ok(TraceEvent::SweepCell {
                index: req(value, "index")?,
                nodes: req(value, "nodes")?,
                budget: req(value, "budget")?,
                policy: req(value, "policy")?,
                seed: req(value, "seed")?,
                makespan_s: req(value, "makespan_s")?,
                total_energy_j: req(value, "total_energy_j")?,
            }),
            "progress" => Ok(TraceEvent::Progress {
                name: req(value, "name")?,
                done: req(value, "done")?,
                expected: req(value, "expected")?,
            }),
            other => Err(SerdeError::custom(format!("unknown trace event kind {other:?}"))),
        }
    }
}

/// Receives [`TraceEvent`]s from instrumented decision loops.
///
/// Implementations must be cheap and non-blocking enough to sit on hot
/// paths, and interiorly mutable (`record` takes `&self`): one sink is
/// shared across sweep workers and live-runtime locks via [`SharedSink`].
pub trait TelemetrySink: Send + Sync {
    /// Accepts one event. Called synchronously from the instrumented path.
    fn record(&self, event: &TraceEvent);

    /// Accepts a batch of events in order.
    ///
    /// The default forwards to [`TelemetrySink::record`] per event; sinks
    /// with per-call locking override it to take their lock once per batch.
    /// [`BufferedSink`] replays its buffer through this, and the cluster
    /// daemon ingests worker `TraceBatch` frames with it.
    fn record_batch(&self, events: &[TraceEvent]) {
        for event in events {
            self.record(event);
        }
    }

    /// Flushes any buffered output (no-op by default).
    fn flush(&self) {}
}

/// Accepts and discards every event — the sink to attach when only the
/// *instrumented code path* should be exercised (byte-identity tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn record(&self, _event: &TraceEvent) {}
}

/// Buffers every event in memory, for tests and in-process inspection.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// A snapshot of every recorded event, in arrival order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Drains and returns every recorded event.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock())
    }
}

impl TelemetrySink for MemorySink {
    fn record(&self, event: &TraceEvent) {
        self.events.lock().push(event.clone());
    }

    fn record_batch(&self, events: &[TraceEvent]) {
        self.events.lock().extend_from_slice(events);
    }
}

/// Appends one compact JSON object per event to a file — the sink behind
/// the benchmark binaries' `--trace PATH` flag.
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self { out: Mutex::new(BufWriter::new(file)) })
    }
}

impl fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl TelemetrySink for JsonlSink {
    fn record(&self, event: &TraceEvent) {
        let line = serde_json::to_string(event).expect("trace events always serialize");
        let mut out = self.out.lock();
        // A full disk mid-trace must not panic the simulation it observes.
        let _ = writeln!(out, "{line}");
    }

    fn record_batch(&self, events: &[TraceEvent]) {
        let mut out = self.out.lock();
        for event in events {
            let line = serde_json::to_string(event).expect("trace events always serialize");
            let _ = writeln!(out, "{line}");
        }
    }

    fn flush(&self) {
        let _ = self.out.lock().flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Broadcasts every event to several sinks (e.g. a [`MetricsRegistry`] for
/// aggregation *and* a [`JsonlSink`] for the raw trace).
#[derive(Clone, Default)]
pub struct FanoutSink {
    sinks: Vec<SharedSink>,
}

impl FanoutSink {
    /// Fans out to `sinks`, in order.
    pub fn new(sinks: Vec<SharedSink>) -> Self {
        Self { sinks }
    }
}

impl fmt::Debug for FanoutSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FanoutSink").field("sinks", &self.sinks.len()).finish()
    }
}

impl TelemetrySink for FanoutSink {
    fn record(&self, event: &TraceEvent) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }

    fn record_batch(&self, events: &[TraceEvent]) {
        for sink in &self.sinks {
            sink.record_batch(events);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

/// Number of log₂ buckets a [`Histogram`] keeps: bucket `i` holds values
/// whose bit length is `i`, so 65 buckets cover the full `u64` range.
const HISTOGRAM_BUCKETS: usize = 65;

/// A log₂-bucketed latency histogram: O(1) insertion, 65 fixed buckets,
/// exact count/min/max/mean and approximate quantiles (each bucket spans
/// one power of two, so a quantile is accurate to within ~50 %, plenty for
/// order-of-magnitude latency headlines).
#[derive(Debug, Clone)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: u64,
    max: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self { count: 0, sum: 0.0, min: u64::MAX, max: 0, buckets: [0; HISTOGRAM_BUCKETS] }
    }
}

impl Histogram {
    /// Records one value (typically a latency in ns).
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum += value as f64;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[(u64::BITS - value.leading_zeros()) as usize] += 1;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The approximate `q`-quantile (`0.0 ..= 1.0`): the geometric midpoint
    /// of the bucket holding the `q`-th value, clamped to the exact
    /// observed min/max. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket i covers [2^(i-1), 2^i); represent it by 1.5·2^(i-1).
                let mid = if i == 0 { 0.0 } else { 1.5 * (i as f64 - 1.0).exp2() };
                return mid.clamp(self.min as f64, self.max as f64);
            }
        }
        self.max as f64
    }

    /// An immutable summary of the histogram's current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            mean: if self.count == 0 { 0.0 } else { self.sum / self.count as f64 },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// A point-in-time summary of one [`Histogram`]: exact count/min/max/mean
/// plus approximate p50/p95/p99 (same unit as the recorded values).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    /// Recorded values.
    pub count: u64,
    /// Smallest recorded value.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Exact arithmetic mean.
    pub mean: f64,
    /// Approximate median.
    pub p50: f64,
    /// Approximate 95th percentile.
    pub p95: f64,
    /// Approximate 99th percentile.
    pub p99: f64,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A registry of named counters, gauges and latency [`Histogram`]s.
///
/// As a [`TelemetrySink`] it aggregates instead of storing: every event
/// bumps the counter named after its [`TraceEvent::kind`], and events that
/// carry a latency ([`TraceEvent::latency_ns`]) feed the
/// `"<kind>_latency_ns"` histogram — so attaching a registry to an
/// instrumented loop yields decisions/s and p50/p95/p99 headlines with no
/// per-event storage.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1 to the counter `name` (created at 0 on first use).
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to the counter `name`.
    pub fn add(&self, name: &str, n: u64) {
        *self.inner.lock().counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Current value of the counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.inner.lock().counters.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Sets the gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.inner.lock().gauges.insert(name.to_string(), value);
    }

    /// Current value of the gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.lock().gauges.get(name).copied()
    }

    /// Records one value into the histogram `name` (created on first use).
    pub fn observe(&self, name: &str, value: u64) {
        self.inner.lock().histograms.entry(name.to_string()).or_default().observe(value);
    }

    /// A snapshot of the histogram `name`, if it exists.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.inner.lock().histograms.get(name).map(Histogram::snapshot)
    }

    /// Snapshots of every histogram, sorted by name.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        self.inner.lock().histograms.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect()
    }
}

impl TelemetrySink for MetricsRegistry {
    fn record(&self, event: &TraceEvent) {
        let kind = event.kind();
        let mut inner = self.inner.lock();
        *inner.counters.entry(kind.to_string()).or_insert(0) += 1;
        if let Some(ns) = event.latency_ns() {
            inner.histograms.entry(format!("{kind}_latency_ns")).or_default().observe(ns);
        }
    }

    fn record_batch(&self, events: &[TraceEvent]) {
        let mut inner = self.inner.lock();
        for event in events {
            let kind = event.kind();
            *inner.counters.entry(kind.to_string()).or_insert(0) += 1;
            if let Some(ns) = event.latency_ns() {
                inner.histograms.entry(format!("{kind}_latency_ns")).or_default().observe(ns);
            }
        }
    }
}

/// Batches events in front of any inner sink, flushing them through
/// [`TelemetrySink::record_batch`] whenever `capacity` events accumulate
/// (and on [`TelemetrySink::flush`] / drop).
///
/// Two jobs: it amortises the inner sink's per-event cost — one lock or
/// write per batch instead of per event, the first lever on the
/// instrumented-hot-path overhead — and it is the worker-side assembly
/// buffer for the distributed cluster's `TraceBatch` RPC frames (the inner
/// sink there serializes each flushed batch into one frame).
///
/// Batch boundaries never reorder events: the buffer is drained under the
/// same lock that admits new events, so the inner sink observes the exact
/// record order.
pub struct BufferedSink {
    inner: SharedSink,
    capacity: usize,
    buf: Mutex<Vec<TraceEvent>>,
}

impl BufferedSink {
    /// Default batch size: large enough to amortise a lock/syscall, small
    /// enough that a worker's trace frames stay a few KiB.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// Buffers up to [`Self::DEFAULT_CAPACITY`] events in front of `inner`.
    pub fn new(inner: SharedSink) -> Self {
        Self::with_capacity(inner, Self::DEFAULT_CAPACITY)
    }

    /// Buffers up to `capacity` events in front of `inner` (min 1).
    pub fn with_capacity(inner: SharedSink, capacity: usize) -> Self {
        Self { inner, capacity: capacity.max(1), buf: Mutex::new(Vec::new()) }
    }

    /// Events currently buffered (not yet pushed to the inner sink).
    pub fn buffered(&self) -> usize {
        self.buf.lock().len()
    }
}

impl fmt::Debug for BufferedSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BufferedSink")
            .field("capacity", &self.capacity)
            .field("buffered", &self.buffered())
            .finish_non_exhaustive()
    }
}

impl TelemetrySink for BufferedSink {
    fn record(&self, event: &TraceEvent) {
        let mut buf = self.buf.lock();
        buf.push(event.clone());
        if buf.len() >= self.capacity {
            let batch = std::mem::take(&mut *buf);
            // Deliver while still holding the lock so concurrent recorders
            // cannot interleave a later event ahead of this batch.
            self.inner.record_batch(&batch);
        }
    }

    fn record_batch(&self, events: &[TraceEvent]) {
        let mut buf = self.buf.lock();
        buf.extend_from_slice(events);
        if buf.len() >= self.capacity {
            let batch = std::mem::take(&mut *buf);
            self.inner.record_batch(&batch);
        }
    }

    fn flush(&self) {
        let mut buf = self.buf.lock();
        if !buf.is_empty() {
            let batch = std::mem::take(&mut *buf);
            self.inner.record_batch(&batch);
        }
        drop(buf);
        self.inner.flush();
    }
}

impl Drop for BufferedSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(latency_ns: u64) -> TraceEvent {
        TraceEvent::Decision {
            phase: 7,
            controller: "decision-table",
            candidates: 5,
            joint_cells: 20,
            threads: 2,
            freq_step: 1,
            rationale: "Predicted",
            ipc: Some(1.25),
            stall_fraction: Some(0.4),
            power_cap_w: Some(140.0),
            latency_ns,
        }
    }

    #[test]
    fn kinds_and_latencies_are_exposed() {
        assert_eq!(decision(9).kind(), "decision");
        assert_eq!(decision(9).latency_ns(), Some(9));
        let arrival =
            TraceEvent::JobArrival { time_s: 0.0, job: 1, benchmark: "CG".into(), width: 2 };
        assert_eq!(arrival.kind(), "job_arrival");
        assert_eq!(arrival.latency_ns(), None);
    }

    #[test]
    fn events_serialize_flat_with_an_event_tag() {
        let v = decision(123).to_value();
        assert_eq!(v.get("event"), Some(&Value::Str("decision".into())));
        assert_eq!(v.get("phase"), Some(&Value::UInt(7)));
        assert_eq!(v.get("rationale"), Some(&Value::Str("Predicted".into())));
        assert_eq!(v.get("latency_ns"), Some(&Value::UInt(123)));
        let line = serde_json::to_string(&decision(123)).unwrap();
        assert!(line.starts_with("{\"event\":\"decision\""), "{line}");
        assert!(!line.contains('\n'));

        let mut none = decision(1);
        if let TraceEvent::Decision { ipc, stall_fraction, power_cap_w, .. } = &mut none {
            *ipc = None;
            *stall_fraction = None;
            *power_cap_w = None;
        }
        assert_eq!(none.to_value().get("ipc"), Some(&Value::Null));
    }

    #[test]
    fn every_event_variant_round_trips_through_json() {
        let events = vec![
            decision(123),
            TraceEvent::JobArrival { time_s: 1.5, job: 3, benchmark: "CG".into(), width: 2 },
            TraceEvent::JobStart {
                time_s: 2.0,
                job: 3,
                width: 2,
                node_peak_w: 151.25,
                exec_time_s: 40.5,
            },
            TraceEvent::JobCompletion { time_s: 42.5, job: 3, width: 2, energy_j: 1.25e4 },
            TraceEvent::Redistribute {
                time_s: 42.5,
                startable: 4,
                admitted: 3,
                headroom_before_w: 200.0,
                headroom_after_w: 12.5,
                upgrades: 2,
                latency_ns: 777,
            },
            TraceEvent::SweepCell {
                index: 9,
                nodes: 8,
                budget: "tight".into(),
                policy: "power-aware".into(),
                seed: 2007,
                makespan_s: 512.0,
                total_energy_j: 9.5e5,
            },
            TraceEvent::Progress { name: "sweep".into(), done: 3, expected: 48 },
        ];
        for event in events {
            let json = serde_json::to_string(&event).unwrap();
            let back: TraceEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, event, "round-trip of {json}");
        }

        // Option fields survive as Null.
        let mut none = decision(1);
        if let TraceEvent::Decision { ipc, stall_fraction, power_cap_w, .. } = &mut none {
            *ipc = None;
            *stall_fraction = None;
            *power_cap_w = None;
        }
        let back: TraceEvent =
            serde_json::from_str(&serde_json::to_string(&none).unwrap()).unwrap();
        assert_eq!(back, none);

        // Deserialized &'static str fields intern to the same content, and
        // repeated decodes reuse the same interned pointer.
        if let (
            TraceEvent::Decision { controller: a, .. },
            TraceEvent::Decision { controller: b, .. },
        ) = (
            serde_json::from_str::<TraceEvent>(&serde_json::to_string(&decision(1)).unwrap())
                .unwrap(),
            serde_json::from_str::<TraceEvent>(&serde_json::to_string(&decision(2)).unwrap())
                .unwrap(),
        ) {
            assert!(std::ptr::eq(a, b));
        } else {
            panic!("decisions decode as decisions");
        }
    }

    #[test]
    fn deserialize_rejects_unknown_kinds_and_missing_fields() {
        let err = serde_json::from_str::<TraceEvent>("{\"event\":\"warp_drive\"}").unwrap_err();
        assert!(err.to_string().contains("warp_drive"), "{err}");
        let err =
            serde_json::from_str::<TraceEvent>("{\"event\":\"progress\",\"done\":1}").unwrap_err();
        assert!(err.to_string().contains("name") || err.to_string().contains("expected"), "{err}");
        assert!(serde_json::from_str::<TraceEvent>("{\"done\":1}").is_err());
    }

    #[test]
    fn memory_sink_buffers_and_drains() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.record(&decision(1));
        sink.record(&decision(2));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.events()[0].latency_ns(), Some(1));
        assert_eq!(sink.take().len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn null_sink_discards() {
        let sink = NullSink;
        sink.record(&decision(1));
        sink.flush();
    }

    #[test]
    fn jsonl_sink_writes_one_parseable_record_per_line() {
        let path = std::env::temp_dir().join("actor_telemetry_jsonl_test.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&decision(11));
        sink.record(&TraceEvent::Progress { name: "sweep".into(), done: 1, expected: 2 });
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first.get("event"), Some(&Value::Str("decision".into())));
        let second: Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(second.get("done"), Some(&Value::UInt(1)));
        drop(sink);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MetricsRegistry::new());
        let fan = FanoutSink::new(vec![a.clone(), b.clone()]);
        fan.record(&decision(5));
        fan.flush();
        assert_eq!(a.len(), 1);
        assert_eq!(b.counter("decision"), 1);
    }

    #[test]
    fn buffered_sink_batches_then_flushes() {
        let inner = Arc::new(MemorySink::new());
        let buffered = BufferedSink::with_capacity(inner.clone(), 3);
        buffered.record(&decision(1));
        buffered.record(&decision(2));
        assert_eq!(inner.len(), 0, "below capacity nothing reaches the inner sink");
        assert_eq!(buffered.buffered(), 2);
        buffered.record(&decision(3));
        assert_eq!(inner.len(), 3, "capacity reached: the batch lands at once");
        assert_eq!(buffered.buffered(), 0);

        buffered.record(&decision(4));
        buffered.flush();
        assert_eq!(inner.len(), 4, "flush drains a partial batch");
        let latencies: Vec<_> = inner.events().iter().map(|e| e.latency_ns().unwrap()).collect();
        assert_eq!(latencies, vec![1, 2, 3, 4], "order is preserved across batches");

        // record_batch feeds the buffer too, and drop flushes the remainder.
        buffered.record_batch(&[decision(5), decision(6)]);
        assert_eq!(inner.len(), 4);
        drop(buffered);
        assert_eq!(inner.len(), 6, "drop flushes buffered events");
    }

    #[test]
    fn record_batch_default_and_overrides_agree() {
        let events = vec![decision(10), decision(20)];
        let reg = MetricsRegistry::new();
        reg.record_batch(&events);
        assert_eq!(reg.counter("decision"), 2);
        assert_eq!(reg.histogram("decision_latency_ns").unwrap().count, 2);

        let mem = Arc::new(MemorySink::new());
        let fan = FanoutSink::new(vec![mem.clone()]);
        fan.record_batch(&events);
        assert_eq!(mem.len(), 2);

        // The default implementation (NullSink has no override) still works.
        NullSink.record_batch(&events);
    }

    #[test]
    fn histogram_quantiles_are_order_of_magnitude_accurate() {
        let mut h = Histogram::default();
        assert_eq!(h.snapshot().count, 0);
        assert_eq!(h.quantile(0.5), 0.0);
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!((snap.min, snap.max), (1, 1000));
        assert!((snap.mean - 500.5).abs() < 1e-9);
        // log2 buckets: the true p50 is 500, the bucket midpoint 1.5·256.
        assert!(snap.p50 >= 250.0 && snap.p50 <= 1000.0, "p50 = {}", snap.p50);
        assert!(snap.p95 >= snap.p50 && snap.p99 >= snap.p95);
        assert!(snap.p99 <= snap.max as f64);

        let mut single = Histogram::default();
        single.observe(42);
        let snap = single.snapshot();
        assert_eq!((snap.min, snap.max), (42, 42));
        assert_eq!(snap.p50, 42.0);
        assert_eq!(snap.p99, 42.0);
        // Zero lands in bucket 0 without panicking.
        single.observe(0);
        assert_eq!(single.snapshot().min, 0);
        single.observe(u64::MAX);
        assert_eq!(single.snapshot().max, u64::MAX);
    }

    #[test]
    fn registry_counts_events_and_buckets_latencies() {
        let reg = MetricsRegistry::new();
        reg.record(&decision(100));
        reg.record(&decision(200));
        reg.record(&TraceEvent::JobArrival {
            time_s: 0.0,
            job: 0,
            benchmark: "IS".into(),
            width: 1,
        });
        assert_eq!(reg.counter("decision"), 2);
        assert_eq!(reg.counter("job_arrival"), 1);
        assert_eq!(reg.counter("nonexistent"), 0);
        let snap = reg.histogram("decision_latency_ns").unwrap();
        assert_eq!(snap.count, 2);
        assert_eq!((snap.min, snap.max), (100, 200));
        assert!(reg.histogram("job_arrival_latency_ns").is_none());
        assert_eq!(reg.counters().len(), 2);
        assert_eq!(reg.histograms().len(), 1);

        reg.incr("custom");
        reg.add("custom", 4);
        assert_eq!(reg.counter("custom"), 5);
        reg.set_gauge("headroom_w", 42.5);
        assert_eq!(reg.gauge("headroom_w"), Some(42.5));
        assert_eq!(reg.gauge("missing"), None);
        reg.observe("manual", 7);
        assert_eq!(reg.histogram("manual").unwrap().count, 1);
    }
}
