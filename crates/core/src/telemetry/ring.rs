//! The lock-free hot-path sink: a bounded MPMC ring buffer drained by a
//! background thread.
//!
//! [`RingSink`] exists for one reason: `ControlPlane::decide` must never
//! wait on telemetry. Every other sink in this module ultimately takes a
//! `Mutex` (or a `BufWriter` lock) on the recording thread; under
//! contention, or when the file system stalls, that cost lands in the
//! decide loop — ROADMAP item 3 measured it at ~20 % of decision
//! throughput. `RingSink::record` is instead a single CAS-guarded slot
//! write into a pre-allocated ring: tens of nanoseconds, no allocation, no
//! lock, no syscall. A drainer thread pops events in batches and delivers
//! them to the wrapped inner sink off the hot path.
//!
//! The ring is *lossy by design*: when producers outrun the drainer the
//! overflowing events are counted in [`RingSink::dropped_events`] and
//! discarded, never blocking the producer. Dropped events were never
//! stamped by any downstream `SpanSink`, so they do not create sequence
//! gaps — loss is visible in the counter, not as trace corruption.
//!
//! The queue is the classic Vyukov bounded MPMC design: each slot carries
//! a sequence number that encodes, relative to the enqueue/dequeue
//! positions, whether the slot is free, full, or in transit. Producers and
//! consumers claim positions with a CAS and then operate on their slot
//! without further synchronisation.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use super::span::SpannedEvent;
use super::{SharedSink, TelemetrySink, TraceEvent};

/// Pads (and aligns) a value to its own cache line so producer-written
/// and consumer-written fields never share one. Two positions or counters
/// packed into the same line would otherwise ping-pong between cores on
/// every push/pop — measured as tens of nanoseconds per `record` on the
/// decide hot path. 128 covers the common 64-byte line and the
/// adjacent-line prefetcher.
#[repr(align(128))]
struct CachePadded<T>(T);

/// One ring slot: the Vyukov per-slot sequence plus the (possibly
/// uninitialised) payload.
struct Slot {
    /// Free when `seq == pos`, full when `seq == pos + 1`, from the
    /// perspective of a producer/consumer holding position `pos`.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<SpannedEvent>>,
}

/// Bounded MPMC queue (Vyukov). Capacity is a power of two.
struct RingBuffer {
    slots: Box<[Slot]>,
    mask: usize,
    enqueue_pos: CachePadded<AtomicUsize>,
    dequeue_pos: CachePadded<AtomicUsize>,
}

// SAFETY: slots are only accessed by the thread that won the position CAS
// for that slot, and ownership of the payload is transferred through the
// Release/Acquire pair on `Slot::seq`. `SpannedEvent` is `Send`.
unsafe impl Send for RingBuffer {}
unsafe impl Sync for RingBuffer {}

impl RingBuffer {
    fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(2).next_power_of_two();
        let slots: Box<[Slot]> = (0..capacity)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Self {
            slots,
            mask: capacity - 1,
            enqueue_pos: CachePadded(AtomicUsize::new(0)),
            dequeue_pos: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// Non-blocking push; `Err(())` (the value is dropped) when the ring
    /// is full.
    fn push(&self, value: SpannedEvent) -> Result<(), ()> {
        let mut pos = self.enqueue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                match self.enqueue_pos.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gave this thread exclusive claim
                        // to the slot until the Release store below.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => pos = current,
                }
            } else if dif < 0 {
                // The slot still holds an unconsumed value: ring is full.
                drop(value);
                return Err(());
            } else {
                pos = self.enqueue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Non-blocking pop; `None` when the ring is empty.
    fn pop(&self) -> Option<SpannedEvent> {
        let mut pos = self.dequeue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos.wrapping_add(1) as isize;
            if dif == 0 {
                match self.dequeue_pos.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gave this thread exclusive claim
                        // to the slot; the producer's Release store made
                        // the payload visible.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq
                            .store(pos.wrapping_add(self.mask).wrapping_add(1), Ordering::Release);
                        return Some(value);
                    }
                    Err(current) => pos = current,
                }
            } else if dif < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.0.load(Ordering::Relaxed);
            }
        }
    }
}

impl Drop for RingBuffer {
    fn drop(&mut self) {
        // Defensive: release any payloads never consumed.
        while self.pop().is_some() {}
    }
}

/// State shared between recording threads, the drainer, and `flush`.
struct RingShared {
    buffer: RingBuffer,
    inner: SharedSink,
    /// Producer-written when the ring rejects a push. (There is no
    /// separate "pushed" counter: every successful push advances
    /// `enqueue_pos` by exactly one, and every claimed slot gets written,
    /// so the enqueue position *is* the pushed count — one less atomic RMW
    /// on the hot path.)
    dropped: AtomicU64,
    /// Events the drainer has delivered to the inner sink.
    drained: CachePadded<AtomicU64>,
    /// Producer-side cache of `drained` for the fast push path. Reading
    /// `drained` directly on every push would miss in cache each time
    /// (the drainer rewrites it constantly); this copy is refreshed only
    /// when the cached window is exhausted — every ~`capacity` pushes.
    /// Release/Acquire so the refresher's `drained` Acquire carries the
    /// drainer's happens-before edge to other producers.
    horizon: CachePadded<AtomicUsize>,
    stop: AtomicBool,
    /// `true`: drain continuously (the default). `false`: flight-recorder
    /// mode — the drainer parks until `flush`/drop opens [`RingShared::gate`]
    /// or backlog passes half the capacity, so a burst that fits the ring
    /// costs the recording core nothing beyond the pushes until the
    /// recorder asks for delivery.
    eager: bool,
    /// Deferred-mode drain request (opened by `flush`, closed after).
    gate: AtomicBool,
}

/// How many events the drainer delivers to the inner sink per batch.
const DRAIN_BATCH: usize = 1024;

/// How long the drainer sleeps when the ring is empty.
const DRAIN_IDLE: Duration = Duration::from_micros(50);

/// Slots the fast push path leaves between itself and the oldest
/// undelivered event. Must exceed the maximum number of events a drainer
/// can have popped but not yet published in `drained` (one in-flight
/// [`DRAIN_BATCH`] per concurrently draining thread, of which there are
/// at most a few), so a comfortable multiple of the batch size.
const FAST_PUSH_MARGIN: usize = 4 * DRAIN_BATCH;

impl RingShared {
    /// Whether the drainer should be delivering right now (always, for an
    /// eager ring; on request or backlog pressure for a deferred one).
    fn drain_open(&self) -> bool {
        if self.eager || self.gate.load(Ordering::Acquire) || self.stop.load(Ordering::Acquire) {
            return true;
        }
        let pushed = self.buffer.enqueue_pos.0.load(Ordering::Relaxed) as u64;
        let backlog = pushed.saturating_sub(self.drained.0.load(Ordering::Relaxed));
        backlog as usize * 2 > self.buffer.mask
    }

    /// Pushes an event, preferring a fast path that skips the Vyukov
    /// per-slot sequence check.
    ///
    /// The per-slot `seq` load is an `Acquire` read of a line the drainer
    /// wrote when it freed the slot — a guaranteed cross-core cache miss,
    /// and the single most expensive instruction in a hot-path `record`.
    /// But its only job is detecting full/in-transit slots, and `drained`
    /// (published with `Release` *after* the drainer has read the slots'
    /// payloads out) already bounds how far behind the consumer can be:
    /// while `enqueue_pos − drained < capacity − margin`, the claimed slot
    /// was consumed and released long ago, so the producer can claim it
    /// with the position CAS alone and let its payload stores drain
    /// through the store buffer. Small rings (≤ the margin) always take
    /// the checked path — the fast path needs room to be conservative.
    /// `make` is only called once a slot is claimed (fast path: directly
    /// into the slot, so a `record` clone lands in ring memory instead of
    /// bouncing through the stack) or when falling back to the checked
    /// push. Returns `Err(())` when the ring is full.
    fn push_event(&self, make: impl FnOnce() -> SpannedEvent) -> Result<(), ()> {
        let capacity = self.buffer.mask + 1;
        if capacity > FAST_PUSH_MARGIN {
            let limit = capacity - FAST_PUSH_MARGIN;
            let mut pos = self.buffer.enqueue_pos.0.load(Ordering::Relaxed);
            loop {
                let mut horizon = self.horizon.0.load(Ordering::Acquire);
                if pos.wrapping_sub(horizon) >= limit {
                    // Cached window exhausted; refresh from the real
                    // counter (one cross-core read per ~`capacity`
                    // pushes) and re-check.
                    horizon = self.drained.0.load(Ordering::Acquire) as usize;
                    self.horizon.0.store(horizon, Ordering::Release);
                    if pos.wrapping_sub(horizon) >= limit {
                        break; // genuinely near-full: checked slow path
                    }
                }
                match self.buffer.enqueue_pos.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let slot = &self.buffer.slots[pos & self.buffer.mask];
                        // SAFETY: `pos − drained < capacity − margin`
                        // proves the slot's previous occupant was read and
                        // published (the Acquire chain through `horizon`
                        // pairs with the drainer's Release `drained`
                        // update), and the CAS gave this thread exclusive
                        // claim to the slot.
                        unsafe { (*slot.value.get()).write(make()) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => pos = current,
                }
            }
        }
        self.buffer.push(make())
    }

    /// Pops up to [`DRAIN_BATCH`] events and delivers them; returns how
    /// many were delivered.
    fn drain_once(&self, batch: &mut Vec<SpannedEvent>) -> usize {
        batch.clear();
        while batch.len() < DRAIN_BATCH {
            match self.buffer.pop() {
                Some(event) => batch.push(event),
                None => break,
            }
        }
        if !batch.is_empty() {
            self.inner.record_spanned(batch);
            self.drained.0.fetch_add(batch.len() as u64, Ordering::Release);
        }
        batch.len()
    }
}

/// Lock-free, never-blocking telemetry sink for hot paths.
///
/// Wraps any inner sink; recording threads pay only a ring-buffer push
/// while a dedicated drainer thread forwards events (in batches, in order)
/// to the inner sink. When the ring is full events are *dropped and
/// counted* ([`RingSink::dropped_events`]) rather than blocking the
/// recorder.
///
/// [`TelemetrySink::flush`] waits until everything enqueued so far has
/// been handed to the inner sink, then flushes it — so `record(…); flush()`
/// on the same thread guarantees delivery, and dropping the sink drains
/// the remainder synchronously.
pub struct RingSink {
    shared: Arc<RingShared>,
    drainer: parking_lot::Mutex<Option<JoinHandle<()>>>,
}

impl RingSink {
    /// Default ring capacity (events). At roughly 150 bytes per
    /// `SpannedEvent` this is a few MiB — deep enough to absorb multi-ms
    /// inner-sink stalls at full decide-loop rate.
    pub const DEFAULT_CAPACITY: usize = 16 * 1024;

    /// A ring of [`RingSink::DEFAULT_CAPACITY`] draining into `inner`.
    pub fn new(inner: SharedSink) -> Self {
        Self::with_capacity(inner, Self::DEFAULT_CAPACITY)
    }

    /// A flight-recorder ring: events accumulate in the buffer and are
    /// only delivered to `inner` on [`TelemetrySink::flush`], drop, or
    /// when backlog passes half of `capacity` (pressure relief, so a
    /// misjudged capacity degrades to continuous draining rather than
    /// drops). While the gate is closed a recording burst that fits the
    /// ring pays only the push — no drainer wakeups compete for the
    /// recorder's core — which is what `decision_bench` uses to isolate
    /// the hot-path cost of an attached sink. Size `capacity` to the
    /// largest burst expected between flushes.
    pub fn deferred(inner: SharedSink, capacity: usize) -> Self {
        Self::build(inner, capacity, false)
    }

    /// A ring of at least `capacity` events (rounded up to a power of
    /// two) draining into `inner`.
    pub fn with_capacity(inner: SharedSink, capacity: usize) -> Self {
        Self::build(inner, capacity, true)
    }

    fn build(inner: SharedSink, capacity: usize, eager: bool) -> Self {
        let shared = Arc::new(RingShared {
            buffer: RingBuffer::with_capacity(capacity),
            inner,
            drained: CachePadded(AtomicU64::new(0)),
            horizon: CachePadded(AtomicUsize::new(0)),
            dropped: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            eager,
            gate: AtomicBool::new(false),
        });
        let drainer_shared = Arc::clone(&shared);
        let drainer = std::thread::Builder::new()
            .name("telemetry-ring-drainer".into())
            .spawn(move || {
                let mut batch = Vec::with_capacity(DRAIN_BATCH);
                loop {
                    if drainer_shared.drain_open() && drainer_shared.drain_once(&mut batch) != 0 {
                        continue;
                    }
                    if drainer_shared.stop.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::sleep(DRAIN_IDLE);
                }
            })
            .expect("spawn telemetry ring drainer");
        Self { shared, drainer: parking_lot::Mutex::new(Some(drainer)) }
    }

    /// Events discarded because the ring was full. Loss never corrupts the
    /// trace (dropped events were never stamped downstream); this counter
    /// is the only place it shows.
    pub fn dropped_events(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Events handed to the inner sink so far.
    pub fn delivered_events(&self) -> u64 {
        self.shared.drained.0.load(Ordering::Acquire)
    }

    fn push_with(&self, make: impl FnOnce() -> SpannedEvent) {
        if self.shared.push_event(make).is_err() {
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for RingSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingSink")
            .field("capacity", &(self.shared.buffer.mask + 1))
            .field("dropped", &self.dropped_events())
            .finish_non_exhaustive()
    }
}

impl TelemetrySink for RingSink {
    fn record(&self, event: &TraceEvent) {
        self.push_with(|| SpannedEvent::unspanned(event.clone()));
    }

    fn record_owned(&self, event: TraceEvent) {
        // The by-value path moves the caller's event straight into the
        // claimed ring slot — no clone, one copy fewer than `record`.
        self.push_with(|| SpannedEvent::unspanned(event));
    }

    fn record_batch(&self, events: &[TraceEvent]) {
        for event in events {
            self.push_with(|| SpannedEvent::unspanned(event.clone()));
        }
    }

    fn record_spanned(&self, events: &[SpannedEvent]) {
        for event in events {
            self.push_with(|| event.clone());
        }
    }

    fn flush(&self) {
        // Wait for the drainer to hand everything enqueued so far to the
        // inner sink. The deadline only guards against a wedged inner sink;
        // in normal operation the wait is microseconds. Opening the gate
        // wakes a deferred ring's parked drainer.
        self.shared.gate.store(true, Ordering::Release);
        let deadline = Instant::now() + Duration::from_secs(10);
        let target = self.shared.buffer.enqueue_pos.0.load(Ordering::Relaxed) as u64;
        while self.shared.drained.0.load(Ordering::Acquire) < target {
            if Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_micros(20));
        }
        self.shared.gate.store(false, Ordering::Release);
        self.shared.inner.flush();
    }
}

impl Drop for RingSink {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(handle) = self.drainer.lock().take() {
            let _ = handle.join();
        }
        // The drainer may have exited between a producer's final push and
        // its stop check; deliver any remainder synchronously.
        let mut batch = Vec::with_capacity(DRAIN_BATCH);
        while self.shared.drain_once(&mut batch) != 0 {}
        self.shared.inner.flush();
    }
}
