//! Cross-process causal spans: the [`SpanContext`] stamp, the
//! [`SpannedEvent`] envelope, and the [`SpanSink`] stamper.
//!
//! A span answers the three questions a merged distributed trace needs:
//! *which run* produced an event (`run_id`), *which process* emitted it
//! (`source`), and *where it sits* in that process's emission order
//! (`seq`, dense per source — a hole in the sequence means records were
//! lost). The optional `cell` field ties a worker's hot-path events to the
//! sweep cell they executed, which is how `trace_tool merge` interleaves
//! worker activity into the daemon's timeline.
//!
//! Spans ride *flat* on the serialized record: a spanned JSONL line is the
//! plain [`TraceEvent`] object plus `run_id`/`source`/`seq`/`cell` keys, so
//! every pre-span consumer (which ignores unknown keys) keeps decoding
//! traces unchanged, and span-aware consumers recover the full context.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Error as SerdeError, Serialize, Value};

use super::{SharedSink, TelemetrySink, TraceEvent};

/// The causal coordinates of one traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanContext {
    /// Identifier of the run that produced the event — the daemon picks
    /// one (its pid) and ships it to every worker in the handshake
    /// context, so all sides of a distributed sweep agree.
    pub run_id: u64,
    /// Emitting process identity (`"cluster_daemon"`, a worker's `--name`,
    /// a bench binary's name).
    pub source: String,
    /// Dense per-`source` emission counter; a hole proves records were lost.
    pub seq: u64,
    /// Sweep-cell index the event was emitted under, when the emitter was
    /// executing one — the join key between a worker's hot-path events and
    /// the daemon's `sweep_cell` record for the same cell.
    pub cell: Option<u64>,
}

/// A [`TraceEvent`] with an optional [`SpanContext`] stamp.
///
/// Events are born unstamped at the instrumentation sites (the hot paths
/// know nothing about process identity); a [`SpanSink`] in the sink
/// pipeline stamps them exactly once. Serializes flat: the event's own
/// object with the span keys appended.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedEvent {
    /// The stamp, once a [`SpanSink`] has seen the event.
    pub span: Option<SpanContext>,
    /// The underlying record.
    pub event: TraceEvent,
}

impl SpannedEvent {
    /// Wraps an event with no span (the state in which hot paths emit).
    pub fn unspanned(event: TraceEvent) -> Self {
        Self { span: None, event }
    }
}

impl Serialize for SpannedEvent {
    fn to_value(&self) -> Value {
        let mut value = self.event.to_value();
        if let (Value::Map(m), Some(span)) = (&mut value, &self.span) {
            m.push(("run_id".into(), Value::UInt(span.run_id)));
            m.push(("source".into(), Value::Str(span.source.clone())));
            m.push(("seq".into(), Value::UInt(span.seq)));
            m.push((
                "cell".into(),
                match span.cell {
                    Some(cell) => Value::UInt(cell),
                    None => Value::Null,
                },
            ));
        }
        value
    }
}

impl Deserialize for SpannedEvent {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let event = TraceEvent::from_value(value)?;
        let span = match (value.get("run_id"), value.get("source"), value.get("seq")) {
            (Some(run_id), Some(source), Some(seq)) => Some(SpanContext {
                run_id: u64::from_value(run_id)?,
                source: String::from_value(source)?,
                seq: u64::from_value(seq)?,
                cell: match value.get("cell") {
                    None | Some(Value::Null) => None,
                    Some(cell) => Some(u64::from_value(cell)?),
                },
            }),
            _ => None,
        };
        Ok(Self { span, event })
    }
}

/// Sentinel for "no current cell" in [`SpanSink`]'s atomic cell slot.
const NO_CELL: u64 = u64::MAX;

/// Stamps every passing event with a [`SpanContext`] and forwards it.
///
/// One `SpanSink` per emitting process: the bench harness wraps its
/// `--trace` sink in one (source = the binary name, run id = the pid), and
/// every cluster worker wraps its daemon-forwarding sink in one (source =
/// the worker name, run id = the daemon's wire-carried
/// `SweepContext::run_id`). Sequence numbers are dense per sink — a gap in
/// a recovered trace is proof of loss, which `trace_tool check` turns into
/// a loud error.
///
/// Already-stamped events pass through untouched (see
/// [`TelemetrySink::record_spanned`]): the daemon ingests worker
/// `TraceBatch` frames through its own `SpanSink` without clobbering the
/// workers' spans.
///
/// Concurrent recorders get distinct sequence numbers, but delivery order
/// downstream may differ from sequence order — consumers sort by `seq`.
pub struct SpanSink {
    inner: SharedSink,
    run_id: u64,
    source: String,
    seq: AtomicU64,
    cell: AtomicU64,
}

impl SpanSink {
    /// Stamps with `run_id`/`source`, forwarding to `inner`.
    pub fn new(inner: SharedSink, run_id: u64, source: impl Into<String>) -> Self {
        Self {
            inner,
            run_id,
            source: source.into(),
            seq: AtomicU64::new(0),
            cell: AtomicU64::new(NO_CELL),
        }
    }

    /// Sets (or clears) the sweep-cell index stamped on subsequent events.
    /// Workers call this around each `AssignCell` execution.
    pub fn set_cell(&self, cell: Option<u64>) {
        self.cell.store(cell.unwrap_or(NO_CELL), Ordering::Relaxed);
    }

    /// Events stamped so far (the next sequence number to be issued).
    pub fn stamped(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    fn stamp(&self, event: &TraceEvent) -> SpannedEvent {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let cell = match self.cell.load(Ordering::Relaxed) {
            NO_CELL => None,
            cell => Some(cell),
        };
        SpannedEvent {
            span: Some(SpanContext { run_id: self.run_id, source: self.source.clone(), seq, cell }),
            event: event.clone(),
        }
    }
}

impl std::fmt::Debug for SpanSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanSink")
            .field("run_id", &self.run_id)
            .field("source", &self.source)
            .field("stamped", &self.stamped())
            .finish_non_exhaustive()
    }
}

impl TelemetrySink for SpanSink {
    fn record(&self, event: &TraceEvent) {
        self.inner.record_spanned(std::slice::from_ref(&self.stamp(event)));
    }

    fn record_batch(&self, events: &[TraceEvent]) {
        let batch: Vec<SpannedEvent> = events.iter().map(|e| self.stamp(e)).collect();
        self.inner.record_spanned(&batch);
    }

    fn record_spanned(&self, events: &[SpannedEvent]) {
        if events.iter().all(|e| e.span.is_some()) {
            // Foreign spans (e.g. a worker's) are already complete; do not
            // re-stamp them.
            self.inner.record_spanned(events);
        } else {
            let batch: Vec<SpannedEvent> = events
                .iter()
                .map(|e| if e.span.is_some() { e.clone() } else { self.stamp(&e.event) })
                .collect();
            self.inner.record_spanned(&batch);
        }
    }

    fn flush(&self) {
        self.inner.flush();
    }
}
