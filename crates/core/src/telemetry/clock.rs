//! A cheap monotonic clock for hot-path latency stamps.
//!
//! `Instant::now` costs a `clock_gettime` vDSO call (~20 ns) — two of
//! them bracket every traced `ControlPlane::decide`, which is a
//! meaningful slice of the ≤5 % telemetry overhead budget when a decision
//! itself takes ~400 ns. On x86-64 this module reads the invariant TSC
//! instead (a few ns) and converts ticks to nanoseconds with a
//! once-calibrated scale; everywhere else it falls back to `Instant`.
//!
//! The TSC is read without serialisation (plain `RDTSC`), so a stamp can
//! be reordered by a few pipeline slots relative to neighbouring
//! instructions — fine for latency *telemetry*, not for cycle-exact
//! microbenchmarks. Calibration happens on the first call (≲1 ms spin);
//! [`calibrate`] lets sink-attachment paths pay that cost up front
//! instead of inside the first traced decision.

use std::time::Instant;

/// An opaque moment captured by [`start`]; feed it to [`elapsed_ns`].
#[derive(Debug, Clone, Copy)]
pub struct Stamp(StampRepr);

#[derive(Debug, Clone, Copy)]
enum StampRepr {
    #[cfg(target_arch = "x86_64")]
    Ticks(u64),
    Instant(Instant),
}

#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn ticks() -> u64 {
    // SAFETY: RDTSC has no preconditions; it is available on every
    // x86-64 CPU.
    unsafe { core::arch::x86_64::_rdtsc() }
}

/// Nanoseconds per TSC tick, measured once against `Instant` over a
/// ~200 µs spin. 0.0 (never returned in practice) would mean a TSC that
/// did not advance — [`start`] falls back to `Instant` in that case.
#[cfg(target_arch = "x86_64")]
fn ns_per_tick() -> f64 {
    static SCALE: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
    *SCALE.get_or_init(|| {
        let wall = Instant::now();
        let t0 = ticks();
        while wall.elapsed().as_micros() < 200 {
            std::hint::spin_loop();
        }
        let dt = ticks().wrapping_sub(t0);
        if dt == 0 {
            return 0.0;
        }
        wall.elapsed().as_nanos() as f64 / dt as f64
    })
}

/// Forces clock calibration now (≲1 ms, once per process). Called when a
/// telemetry sink is attached so the first traced decision does not pay
/// for it.
pub fn calibrate() {
    #[cfg(target_arch = "x86_64")]
    {
        let _ = ns_per_tick();
    }
}

/// A calibration-carrying handle for the hottest paths: copies the tick
/// scale out of the `OnceLock` once, so each stamp pair is just the two
/// TSC reads and a multiply — no shared loads. `Copy`, 8 bytes; embed it
/// in the instrumented struct.
#[derive(Debug, Clone, Copy)]
pub struct FastClock {
    /// Nanoseconds per tick; 0.0 means "use `Instant`" (non-x86-64, or a
    /// TSC that failed calibration).
    scale: f64,
}

impl FastClock {
    /// Calibrates (first call only) and captures the scale.
    pub fn new() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            Self { scale: ns_per_tick() }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Self { scale: 0.0 }
        }
    }

    /// An uncalibrated handle that always falls back to `Instant` —
    /// the zero-cost default for planes with no sink attached.
    pub fn unattached() -> Self {
        Self { scale: 0.0 }
    }

    /// Captures the current moment.
    #[inline(always)]
    pub fn start(&self) -> Stamp {
        #[cfg(target_arch = "x86_64")]
        {
            if self.scale > 0.0 {
                return Stamp(StampRepr::Ticks(ticks()));
            }
        }
        Stamp(StampRepr::Instant(Instant::now()))
    }

    /// Nanoseconds elapsed since `stamp` was captured (by this clock).
    #[inline(always)]
    pub fn elapsed_ns(&self, stamp: Stamp) -> u64 {
        match stamp.0 {
            #[cfg(target_arch = "x86_64")]
            StampRepr::Ticks(t0) => (ticks().wrapping_sub(t0) as f64 * self.scale) as u64,
            StampRepr::Instant(t0) => t0.elapsed().as_nanos() as u64,
        }
    }
}

impl Default for FastClock {
    fn default() -> Self {
        Self::unattached()
    }
}

/// Captures the current moment. A few ns on x86-64, `Instant::now`
/// elsewhere.
#[inline(always)]
pub fn start() -> Stamp {
    #[cfg(target_arch = "x86_64")]
    {
        if ns_per_tick() > 0.0 {
            return Stamp(StampRepr::Ticks(ticks()));
        }
    }
    Stamp(StampRepr::Instant(Instant::now()))
}

/// Nanoseconds elapsed since `stamp` was captured.
#[inline(always)]
pub fn elapsed_ns(stamp: Stamp) -> u64 {
    match stamp.0 {
        #[cfg(target_arch = "x86_64")]
        StampRepr::Ticks(t0) => (ticks().wrapping_sub(t0) as f64 * ns_per_tick()) as u64,
        StampRepr::Instant(t0) => t0.elapsed().as_nanos() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_tracks_real_time_within_tolerance() {
        calibrate();
        let stamp = start();
        let wall = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let measured = elapsed_ns(stamp) as f64;
        let actual = wall.elapsed().as_nanos() as f64;
        // Same 5 ms sleep seen by both clocks, within 20 %.
        let ratio = measured / actual;
        assert!((0.8..1.25).contains(&ratio), "clock ratio {ratio:.3} (measured {measured} ns)");
    }

    #[test]
    fn stamps_are_monotonic_and_cheap() {
        calibrate();
        let stamp = start();
        let mut last = 0u64;
        for _ in 0..1000 {
            let now = elapsed_ns(stamp);
            assert!(now >= last, "elapsed_ns went backwards: {now} < {last}");
            last = now;
        }
    }
}
