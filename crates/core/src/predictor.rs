//! ANN-based IPC prediction across threading configurations.
//!
//! Equation (2) of the paper: for each target configuration `T`, a model
//! `F_T` maps the event rates observed on the sampling configuration `S` to
//! the IPC expected on `T`. ACTOR trains one cross-validation ANN ensemble
//! per target configuration and evaluates all of them on the same feature
//! vector at runtime.

use rand::Rng;
use serde::{Deserialize, Serialize};

use annlib::CrossValEnsemble;
use hwcounters::EventSet;
use xeon_sim::Configuration;

use crate::config::PredictorConfig;
use crate::corpus::TrainingCorpus;
use crate::error::ActorError;

/// A predictor of per-configuration IPC from sampled event rates.
pub trait IpcPredictor {
    /// Predicts the IPC of every *target* configuration (everything except
    /// the sampling configuration) for the given feature vector.
    fn predict(&self, features: &[f64]) -> Result<Vec<(Configuration, f64)>, ActorError>;

    /// Predicts a whole batch of feature vectors at once, one prediction
    /// list per input row. The default delegates row-by-row; batched
    /// implementations override it with a single pass per model while
    /// keeping every row bit-identical to [`IpcPredictor::predict`].
    fn predict_batch(
        &self,
        rows: &[Vec<f64>],
    ) -> Result<Vec<Vec<(Configuration, f64)>>, ActorError> {
        rows.iter().map(|row| self.predict(row)).collect()
    }

    /// The event set the predictor expects features for.
    fn event_set(&self) -> &EventSet;

    /// Expected feature dimensionality (`1 + monitored events`).
    fn feature_dim(&self) -> usize {
        self.event_set().len() + 1
    }
}

/// The paper's predictor: one ANN cross-validation ensemble per target
/// configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnPredictor {
    event_set: EventSet,
    models: Vec<(Configuration, CrossValEnsemble)>,
}

impl AnnPredictor {
    /// Trains the predictor on a corpus: one ensemble per entry of
    /// [`Configuration::TARGETS`].
    pub fn train<R: Rng + ?Sized>(
        corpus: &TrainingCorpus,
        config: &PredictorConfig,
        rng: &mut R,
    ) -> Result<Self, ActorError> {
        config.validate()?;
        if corpus.is_empty() {
            return Err(ActorError::EmptyCorpus {
                reason: "cannot train on an empty corpus".into(),
            });
        }
        let ensemble_config = config.ensemble();
        let mut models = Vec::with_capacity(Configuration::TARGETS.len());
        for &target in &Configuration::TARGETS {
            let dataset = corpus.dataset_for_target(target)?;
            let ensemble = CrossValEnsemble::train(&dataset, &ensemble_config, rng)?;
            models.push((target, ensemble));
        }
        Ok(Self { event_set: corpus.event_set.clone(), models })
    }

    /// Mean held-out relative error across the per-target ensembles, a cheap
    /// generalisation estimate from cross validation.
    pub fn mean_holdout_error(&self) -> f64 {
        if self.models.is_empty() {
            return 0.0;
        }
        self.models.iter().map(|(_, m)| m.mean_holdout_relative_error()).sum::<f64>()
            / self.models.len() as f64
    }

    /// The per-target ensembles.
    pub fn models(&self) -> &[(Configuration, CrossValEnsemble)] {
        &self.models
    }

    /// Serialises the trained predictor (all ensembles + event set) to JSON.
    pub fn to_json(&self) -> Result<String, ActorError> {
        serde_json::to_string(self).map_err(|e| ActorError::Serialisation { reason: e.to_string() })
    }

    /// Restores a predictor from JSON.
    pub fn from_json(json: &str) -> Result<Self, ActorError> {
        serde_json::from_str(json).map_err(|e| ActorError::Serialisation { reason: e.to_string() })
    }
}

impl IpcPredictor for AnnPredictor {
    fn predict(&self, features: &[f64]) -> Result<Vec<(Configuration, f64)>, ActorError> {
        let expected = self.feature_dim();
        if features.len() != expected {
            return Err(ActorError::FeatureMismatch { expected, actual: features.len() });
        }
        let mut out = Vec::with_capacity(self.models.len());
        for (config, model) in &self.models {
            let ipc = model.predict(features)?[0];
            // IPC is physically non-negative; clamp tiny negative artefacts.
            out.push((*config, ipc.max(0.0)));
        }
        Ok(out)
    }

    /// One batched forward pass per target ensemble instead of one
    /// per-sample pass per (row, ensemble) pair. Ensemble batch outputs are
    /// bit-identical to per-row prediction (pinned in `annlib`), so the
    /// assembled per-row lists match [`AnnPredictor::predict`] exactly.
    fn predict_batch(
        &self,
        rows: &[Vec<f64>],
    ) -> Result<Vec<Vec<(Configuration, f64)>>, ActorError> {
        let expected = self.feature_dim();
        for row in rows {
            if row.len() != expected {
                return Err(ActorError::FeatureMismatch { expected, actual: row.len() });
            }
        }
        let mut out: Vec<Vec<(Configuration, f64)>> =
            rows.iter().map(|_| Vec::with_capacity(self.models.len())).collect();
        let mut scratch = annlib::EnsembleScratch::default();
        let mut flat = Vec::new();
        for (config, model) in &self.models {
            model.predict_batch_into(rows, &mut scratch, &mut flat)?;
            let width = flat.len() / rows.len().max(1);
            for (row_out, ipc) in out.iter_mut().zip(flat.chunks_exact(width.max(1))) {
                // IPC is physically non-negative; clamp tiny negative
                // artefacts exactly as the per-row path does.
                row_out.push((*config, ipc[0].max(0.0)));
            }
        }
        Ok(out)
    }

    fn event_set(&self) -> &EventSet {
        &self.event_set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ActorConfig;
    use npb_workloads::{suite, BenchmarkId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xeon_sim::Machine;

    fn corpus(benchmarks: &[BenchmarkId]) -> TrainingCorpus {
        let machine = Machine::xeon_qx6600();
        let benches: Vec<_> = benchmarks.iter().map(|&b| suite::benchmark(b)).collect();
        let mut rng = StdRng::seed_from_u64(9);
        TrainingCorpus::build(&machine, &benches, &EventSet::full(), 3, 0.05, &mut rng).unwrap()
    }

    #[test]
    fn training_produces_one_model_per_target() {
        let corpus = corpus(&[BenchmarkId::Cg, BenchmarkId::Is, BenchmarkId::Mg]);
        let mut rng = StdRng::seed_from_u64(11);
        let predictor = AnnPredictor::train(&corpus, &PredictorConfig::fast(), &mut rng).unwrap();
        assert_eq!(predictor.models().len(), Configuration::TARGETS.len());
        assert_eq!(predictor.feature_dim(), 13);
        assert!(predictor.mean_holdout_error() < 1.0);
    }

    #[test]
    fn predictions_have_sane_shape_and_ordering_signal() {
        let config = ActorConfig::fast();
        let train_corpus = corpus(&[BenchmarkId::Cg, BenchmarkId::Mg, BenchmarkId::Sp]);
        let mut rng = StdRng::seed_from_u64(13);
        let predictor = AnnPredictor::train(&train_corpus, &config.predictor, &mut rng).unwrap();

        // Evaluate on a benchmark the model never saw (IS).
        let test_corpus = corpus(&[BenchmarkId::Is]);
        for sample in &test_corpus.samples {
            let preds = predictor.predict(&sample.features).unwrap();
            assert_eq!(preds.len(), 4);
            for (c, ipc) in &preds {
                assert!(Configuration::TARGETS.contains(c));
                assert!(ipc.is_finite() && *ipc >= 0.0);
            }
        }
    }

    #[test]
    fn predict_batch_is_bitwise_predict() {
        let corpus = corpus(&[BenchmarkId::Cg, BenchmarkId::Is, BenchmarkId::Mg]);
        let mut rng = StdRng::seed_from_u64(29);
        let predictor = AnnPredictor::train(&corpus, &PredictorConfig::fast(), &mut rng).unwrap();
        let rows: Vec<Vec<f64>> =
            corpus.samples.iter().take(6).map(|s| s.features.clone()).collect();
        let batched = predictor.predict_batch(&rows).unwrap();
        assert_eq!(batched.len(), rows.len());
        for (row, preds) in rows.iter().zip(&batched) {
            let single = predictor.predict(row).unwrap();
            assert_eq!(preds.len(), single.len());
            for ((ca, ia), (cb, ib)) in preds.iter().zip(&single) {
                assert_eq!(ca, cb);
                assert_eq!(ia.to_bits(), ib.to_bits(), "batched predictor diverged");
            }
        }
        assert!(predictor.predict_batch(&[vec![1.0]]).is_err());
    }

    #[test]
    fn predict_validates_feature_dimension() {
        let corpus = corpus(&[BenchmarkId::Cg, BenchmarkId::Is]);
        let mut rng = StdRng::seed_from_u64(17);
        let predictor = AnnPredictor::train(&corpus, &PredictorConfig::fast(), &mut rng).unwrap();
        assert!(matches!(
            predictor.predict(&[1.0, 2.0]),
            Err(ActorError::FeatureMismatch { expected: 13, actual: 2 })
        ));
    }

    #[test]
    fn training_rejects_empty_corpus_and_bad_config() {
        let c = corpus(&[BenchmarkId::Cg]);
        let empty = c.only(BenchmarkId::Bt);
        let mut rng = StdRng::seed_from_u64(19);
        assert!(AnnPredictor::train(&empty, &PredictorConfig::fast(), &mut rng).is_err());
        let bad = PredictorConfig { folds: 1, ..PredictorConfig::fast() };
        assert!(AnnPredictor::train(&c, &bad, &mut rng).is_err());
    }

    #[test]
    fn json_round_trip_preserves_predictions() {
        let corpus = corpus(&[BenchmarkId::Cg, BenchmarkId::Is]);
        let mut rng = StdRng::seed_from_u64(23);
        let predictor = AnnPredictor::train(&corpus, &PredictorConfig::fast(), &mut rng).unwrap();
        let json = predictor.to_json().unwrap();
        let restored = AnnPredictor::from_json(&json).unwrap();
        let x = &corpus.samples[0].features;
        assert_eq!(predictor.predict(x).unwrap(), restored.predict(x).unwrap());
        assert!(AnnPredictor::from_json("garbage").is_err());
    }
}
