//! Shared leave-one-application-out evaluation driver.
//!
//! "We use each benchmark for evaluation by training as many models as there
//! are applications, each time leaving one particular application out of the
//! training process. In this way, we perform prediction for each application
//! with a model that has never seen data from the target application"
//! (Section V-A). Both the prediction-accuracy study (Figures 6 and 7) and
//! the adaptation study (Figure 8) consume the output of this driver.

use rand::Rng;

use npb_workloads::{suite, BenchmarkId};
use xeon_sim::{Configuration, Machine};

use crate::config::ActorConfig;
use crate::corpus::TrainingCorpus;
use crate::error::ActorError;
use crate::predictor::{AnnPredictor, IpcPredictor};
use crate::sampling::{sample_phase, SamplingPlan};
use crate::throttle::{select_configuration, ThrottleDecision};

/// Everything ACTOR learned and decided about one phase of the left-out
/// benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseEvaluation {
    /// Phase name.
    pub phase_name: String,
    /// The sampled feature vector (Equation 2).
    pub features: Vec<f64>,
    /// The throttling decision derived from the predictions.
    pub decision: ThrottleDecision,
    /// Ground-truth aggregate IPC of the phase on every configuration
    /// (clean, noise-free simulation).
    pub observed_ipc: Vec<(Configuration, f64)>,
}

impl PhaseEvaluation {
    /// Observed IPC on one configuration.
    pub fn observed_on(&self, config: Configuration) -> f64 {
        self.observed_ipc
            .iter()
            .find(|(c, _)| *c == config)
            .map(|(_, v)| *v)
            .expect("all configurations are simulated")
    }

    /// Configurations ranked best-first by observed IPC.
    pub fn true_ranking(&self) -> Vec<Configuration> {
        let mut ranked = self.observed_ipc.clone();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite IPC"));
        ranked.into_iter().map(|(c, _)| c).collect()
    }

    /// 1-based rank of the chosen configuration in the true ranking.
    pub fn chosen_rank(&self) -> usize {
        self.true_ranking()
            .iter()
            .position(|&c| c == self.decision.chosen)
            .map(|p| p + 1)
            .expect("chosen configuration is always one of the five")
    }
}

/// The evaluation of one left-out benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkEvaluation {
    /// Which benchmark was left out (and evaluated).
    pub id: BenchmarkId,
    /// The sampling plan used for it.
    pub plan: SamplingPlan,
    /// Held-out generalisation estimate of the model used for it.
    pub model_holdout_error: f64,
    /// Per-phase evaluations.
    pub phases: Vec<PhaseEvaluation>,
}

/// Runs the full leave-one-out evaluation over the NAS suite.
///
/// Two training corpora are built (full and reduced event set); each left-out
/// benchmark is evaluated with the corpus matching its sampling plan, so the
/// paper's reduced-event handling of FT/IS/MG is honoured.
pub fn leave_one_out_evaluation<R: Rng + ?Sized>(
    machine: &Machine,
    config: &ActorConfig,
    rng: &mut R,
) -> Result<Vec<BenchmarkEvaluation>, ActorError> {
    config.validate()?;
    let benchmarks = suite::nas_suite();
    evaluate_benchmarks(machine, config, &benchmarks, rng)
}

/// Same as [`leave_one_out_evaluation`] but over an explicit benchmark list
/// (used by tests to keep runtimes small).
pub fn evaluate_benchmarks<R: Rng + ?Sized>(
    machine: &Machine,
    config: &ActorConfig,
    benchmarks: &[npb_workloads::BenchmarkProfile],
    rng: &mut R,
) -> Result<Vec<BenchmarkEvaluation>, ActorError> {
    if benchmarks.len() < 2 {
        return Err(ActorError::InvalidConfig {
            reason: "leave-one-out evaluation needs at least two benchmarks".into(),
        });
    }

    // Pre-compute the sampling plans so we know which event sets are needed.
    let plans: Vec<SamplingPlan> = benchmarks
        .iter()
        .map(|b| SamplingPlan::for_benchmark(b, config))
        .collect::<Result<_, _>>()?;

    // Build one corpus per distinct event set over the whole suite.
    let mut corpora: Vec<(hwcounters::EventSet, TrainingCorpus)> = Vec::new();
    for plan in &plans {
        if corpora.iter().any(|(set, _)| *set == plan.event_set) {
            continue;
        }
        let corpus = TrainingCorpus::build(
            machine,
            benchmarks,
            &plan.event_set,
            config.corpus_replicas,
            config.corpus_noise,
            rng,
        )?;
        corpora.push((plan.event_set.clone(), corpus));
    }

    let mut evaluations = Vec::with_capacity(benchmarks.len());
    for (bench, plan) in benchmarks.iter().zip(&plans) {
        let corpus = &corpora
            .iter()
            .find(|(set, _)| *set == plan.event_set)
            .expect("corpus built for every plan's event set")
            .1;
        let training = corpus.excluding(bench.id);
        if training.is_empty() {
            return Err(ActorError::EmptyCorpus {
                reason: format!("no training data remains after excluding {}", bench.id),
            });
        }
        let predictor = AnnPredictor::train(&training, &config.predictor, rng)?;

        // Sample every phase first (preserving the RNG draw order), then
        // predict the whole benchmark's feature block in one batched call —
        // one forward pass per target ensemble instead of one per phase.
        let mut sampled = Vec::with_capacity(bench.phases.len());
        for phase in &bench.phases {
            sampled.push(sample_phase(machine, phase, plan, config.measurement_noise, rng)?);
        }
        let features: Vec<Vec<f64>> = sampled.iter().map(|r| r.features()).collect();
        let all_predictions = predictor.predict_batch(&features)?;

        let mut phases = Vec::with_capacity(bench.phases.len());
        for ((phase, rates), predictions) in bench.phases.iter().zip(&sampled).zip(&all_predictions)
        {
            let decision = select_configuration(rates.ipc(), predictions);
            let observed_ipc: Vec<(Configuration, f64)> = Configuration::ALL
                .iter()
                .map(|&c| (c, machine.simulate_config(phase, c).aggregate_ipc))
                .collect();
            phases.push(PhaseEvaluation {
                phase_name: phase.name.clone(),
                features: rates.features(),
                decision,
                observed_ipc,
            });
        }
        evaluations.push(BenchmarkEvaluation {
            id: bench.id,
            plan: plan.clone(),
            model_holdout_error: predictor.mean_holdout_error(),
            phases,
        });
    }
    Ok(evaluations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_eval() -> Vec<BenchmarkEvaluation> {
        let machine = Machine::xeon_qx6600();
        let config = ActorConfig { corpus_replicas: 2, ..ActorConfig::fast() };
        let benchmarks = vec![
            suite::benchmark(BenchmarkId::Cg),
            suite::benchmark(BenchmarkId::Is),
            suite::benchmark(BenchmarkId::Bt),
        ];
        let mut rng = StdRng::seed_from_u64(7);
        evaluate_benchmarks(&machine, &config, &benchmarks, &mut rng).unwrap()
    }

    #[test]
    fn evaluation_covers_every_phase_of_every_benchmark() {
        let evals = small_eval();
        assert_eq!(evals.len(), 3);
        let phases: usize = evals.iter().map(|e| e.phases.len()).sum();
        assert_eq!(phases, 5 + 3 + 10);
        for e in &evals {
            for p in &e.phases {
                assert_eq!(p.observed_ipc.len(), 5);
                assert!(p.decision.sampled_ipc > 0.0);
                assert_eq!(p.decision.ranked_predictions.len(), 4);
                let rank = p.chosen_rank();
                assert!((1..=5).contains(&rank));
                assert_eq!(p.true_ranking().len(), 5);
            }
        }
    }

    #[test]
    fn decisions_avoid_catastrophic_configurations_for_is() {
        // IS's rank phase is dramatically slower on four cores or on a
        // tightly-coupled pair; a model trained on the other benchmarks
        // should steer it away from the worst configuration.
        let evals = small_eval();
        let is_eval = evals.iter().find(|e| e.id == BenchmarkId::Is).unwrap();
        for p in &is_eval.phases {
            let worst = *p.true_ranking().last().unwrap();
            assert_ne!(
                p.decision.chosen, worst,
                "phase {} chose the worst configuration",
                p.phase_name
            );
        }
    }

    #[test]
    fn needs_at_least_two_benchmarks() {
        let machine = Machine::xeon_qx6600();
        let config = ActorConfig::fast();
        let mut rng = StdRng::seed_from_u64(1);
        let one = vec![suite::benchmark(BenchmarkId::Cg)];
        assert!(evaluate_benchmarks(&machine, &config, &one, &mut rng).is_err());
    }

    #[test]
    fn evaluation_is_deterministic_for_a_seed() {
        let run = || {
            let machine = Machine::xeon_qx6600();
            let config = ActorConfig { corpus_replicas: 2, ..ActorConfig::fast() };
            let benchmarks =
                vec![suite::benchmark(BenchmarkId::Cg), suite::benchmark(BenchmarkId::Mg)];
            let mut rng = StdRng::seed_from_u64(99);
            evaluate_benchmarks(&machine, &config, &benchmarks, &mut rng).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            for (px, py) in x.phases.iter().zip(&y.phases) {
                assert_eq!(px.decision.chosen, py.decision.chosen);
            }
        }
    }
}
