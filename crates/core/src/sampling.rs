//! Online sampling of phase behaviour at maximal concurrency.
//!
//! "The online sample period runs on as many cores as available to represent
//! the greatest possible interference among threads" (Section IV-B). Because
//! only two counter registers exist, the monitored events are rotated across
//! timesteps; and because some applications have very few iterations, ACTOR
//! caps the sampled timesteps at 20 % of the execution, switching to a
//! reduced event set when even that is not enough for a full rotation.

use rand::Rng;
use serde::{Deserialize, Serialize};

use hwcounters::{EventRates, EventSet, MultiplexSchedule, MultiplexedSampler};
use npb_workloads::BenchmarkProfile;
use xeon_sim::{Configuration, Machine, PhaseProfile};

use crate::config::ActorConfig;
use crate::error::ActorError;

/// How a benchmark will be sampled: which events, how many timesteps, and how
/// the events rotate through the counter registers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplingPlan {
    /// The event set actually monitored (full, or reduced when the iteration
    /// budget cannot cover a full rotation of the full set).
    pub event_set: EventSet,
    /// Rotation schedule over the counter registers.
    pub schedule: MultiplexSchedule,
    /// Number of timesteps that will be spent sampling.
    pub sample_timesteps: usize,
    /// Total timesteps of the application (for overhead accounting).
    pub total_timesteps: usize,
}

impl SamplingPlan {
    /// Builds the plan for one benchmark under the given ACTOR configuration.
    ///
    /// The budget is `floor(sampling_budget × timesteps)` (at least one
    /// timestep). If that budget cannot cover a full rotation of the full
    /// event set, the reduced event set is used instead — mirroring the
    /// paper's treatment of FT, IS and MG.
    pub fn for_benchmark(
        bench: &BenchmarkProfile,
        config: &ActorConfig,
    ) -> Result<Self, ActorError> {
        config.validate()?;
        let total = bench.timesteps.max(1);
        let budget = ((config.sampling_budget * total as f64).floor() as usize).max(1);

        let full = EventSet::full();
        let full_schedule = MultiplexSchedule::new(&full, config.counter_registers);
        let (event_set, schedule) = if budget >= full_schedule.num_groups() {
            (full, full_schedule)
        } else {
            let reduced = EventSet::reduced();
            let reduced_schedule = MultiplexSchedule::new(&reduced, config.counter_registers);
            (reduced, reduced_schedule)
        };
        let sample_timesteps = budget.min(schedule.num_groups().max(1)).min(total);
        Ok(Self { event_set, schedule, sample_timesteps, total_timesteps: total })
    }

    /// Fraction of the application's timesteps spent sampling.
    pub fn sampling_fraction(&self) -> f64 {
        self.sample_timesteps as f64 / self.total_timesteps.max(1) as f64
    }

    /// Whether the plan had to fall back to the reduced event set.
    pub fn uses_reduced_set(&self) -> bool {
        self.event_set.len() < EventSet::full().len()
    }
}

/// Samples one phase: simulates `plan.sample_timesteps` instances of the
/// phase on the sampling configuration (with measurement noise), arms the
/// scheduled event group in each timestep, and reconstructs the feature
/// vector of Equation (2).
pub fn sample_phase<R: Rng + ?Sized>(
    machine: &Machine,
    phase: &PhaseProfile,
    plan: &SamplingPlan,
    noise: f64,
    rng: &mut R,
) -> Result<EventRates, ActorError> {
    let placement = Configuration::SAMPLE.placement(machine.topology());
    let mut sampler = MultiplexedSampler::new();
    for step in 0..plan.sample_timesteps.max(1) {
        let exec = machine.simulate_phase_noisy(phase, &placement, noise, rng);
        sampler.record_timestep(&exec.counters, plan.schedule.group(step));
    }
    EventRates::from_counters(&sampler.reconstruct(), &plan.event_set).ok_or_else(|| {
        ActorError::EmptyCorpus {
            reason: format!("sampling phase {} produced no cycles", phase.name),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use npb_workloads::{suite, BenchmarkId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn long_benchmarks_use_the_full_event_set() {
        let config = ActorConfig::default();
        let bt = suite::benchmark(BenchmarkId::Bt); // 200 timesteps
        let plan = SamplingPlan::for_benchmark(&bt, &config).unwrap();
        assert!(!plan.uses_reduced_set());
        assert_eq!(plan.event_set.len(), 12);
        // Full rotation of 12 events over 2 registers needs 6 timesteps.
        assert_eq!(plan.sample_timesteps, 6);
        assert!(plan.sampling_fraction() <= config.sampling_budget + 1e-9);
    }

    #[test]
    fn short_benchmarks_fall_back_to_the_reduced_set() {
        let config = ActorConfig::default();
        for id in [BenchmarkId::Ft, BenchmarkId::Is, BenchmarkId::Mg] {
            let bench = suite::benchmark(id);
            let plan = SamplingPlan::for_benchmark(&bench, &config).unwrap();
            assert!(
                plan.uses_reduced_set(),
                "{id} has few timesteps and should use the reduced event set"
            );
            assert!(
                plan.sampling_fraction() <= config.sampling_budget + 1e-9,
                "{id}: sampling fraction {} exceeds the 20% budget",
                plan.sampling_fraction()
            );
            assert!(plan.sample_timesteps >= 1);
        }
    }

    #[test]
    fn paper_constraint_matches_benchmark_flags() {
        // The benchmarks the paper lists as needing the reduced set are
        // exactly the ones our planner reduces under default settings.
        let config = ActorConfig::default();
        for bench in suite::nas_suite() {
            let plan = SamplingPlan::for_benchmark(&bench, &config).unwrap();
            assert_eq!(
                plan.uses_reduced_set(),
                bench.id.uses_reduced_event_set(),
                "{}: reduced-set decision mismatch",
                bench.id
            );
        }
    }

    #[test]
    fn sampled_features_are_close_to_clean_simulation() {
        let config = ActorConfig::default();
        let machine = Machine::xeon_qx6600();
        let bt = suite::benchmark(BenchmarkId::Bt);
        let plan = SamplingPlan::for_benchmark(&bt, &config).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let phase = &bt.phases[0];
        let rates = sample_phase(&machine, phase, &plan, 0.0, &mut rng).unwrap();
        // Compare against the clean full-visibility simulation.
        let clean = machine.simulate_config(phase, Configuration::Four);
        let clean_rates = EventRates::from_counters(&clean.counters, &plan.event_set).unwrap();
        assert!(
            (rates.ipc() - clean_rates.ipc()).abs() / clean_rates.ipc() < 1e-9,
            "with zero noise the multiplexed IPC matches the clean IPC"
        );
        // Feature vectors have the same dimension and similar magnitudes.
        assert_eq!(rates.features().len(), clean_rates.features().len());
        for (a, b) in rates.features().into_iter().zip(clean_rates.features()) {
            if b > 1e-9 {
                assert!((a - b).abs() / b < 1e-6, "feature mismatch: {a} vs {b}");
            }
        }
    }

    #[test]
    fn sampling_with_noise_is_reproducible_per_seed() {
        let config = ActorConfig::default();
        let machine = Machine::xeon_qx6600();
        let cg = suite::benchmark(BenchmarkId::Cg);
        let plan = SamplingPlan::for_benchmark(&cg, &config).unwrap();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            sample_phase(&machine, &cg.phases[0], &plan, 0.05, &mut rng).unwrap().features()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
