//! The unified power/performance control loop.
//!
//! The paper's central idea is *one* decision loop — observe hardware events
//! per phase, predict power/performance across candidate configurations,
//! actuate the best one — and [`PowerPerfController`] is that loop as a
//! trait. Every decision-maker in the workspace implements it, so the ANN
//! predictor, the oracles and the baselines are drop-in interchangeable from
//! a single node (the Figure-8 adaptation harness,
//! [`crate::adaptation::adaptation_with_controller`]) all the way to the
//! cluster scheduler (`cluster_sched::PowerAwarePolicy` is generic over this
//! trait).
//!
//! The protocol is observe-then-decide:
//!
//! 1. [`observe`](PowerPerfController::observe) feeds the controller one
//!    [`PhaseSample`] — counter-derived event-rate features, achieved IPC and
//!    wall-clock time of one execution (or sampling window) of a phase.
//! 2. [`decide`](PowerPerfController::decide) asks for a typed [`Decision`]
//!    — a thread-to-core [`Binding`] plus a DVFS [`FreqStep`] and the
//!    [`Rationale`] behind the choice — given a [`DecisionCtx`] naming the
//!    machine shape, the candidate configurations (with their power draw, if
//!    known) and an optional power cap.
//!
//! A controller must be deterministic: the decision may depend only on its
//! construction state and the samples observed so far, never on wall-clock
//! time or unseeded randomness. The [`crate::conformance`] harness checks
//! this contract for every implementation.
//!
//! Provided controllers:
//!
//! | Controller | Decision source |
//! |---|---|
//! | [`PredictorController`] (alias [`AnnController`]) | live [`IpcPredictor`] inference on observed features |
//! | [`DecisionTableController`] | pre-computed offline [`ThrottleDecision`]s (the paper's deployment mode) |
//! | [`OracleController`] | ground-truth per-configuration measurements |
//! | [`StaticController`] | a fixed configuration (OS default / global-optimal baselines) |
//! | [`EmpiricalSearchController`] | model-free exploration, as in the authors' earlier work \[17\] |
//! | [`JointSearchController`] | model-free exploration of the joint (threads × frequency) space |
//!
//! The decision space is the joint (threads × frequency) grid: a caller that
//! can actuate DVFS offers the machine's ladder through
//! [`DecisionCtx::dvfs`], and cap-aware controllers extrapolate their IPC
//! predictions along it using the phase's measured stall/compute split
//! ([`frequency_scaled_ipc`]). Callers that cannot (the paper's
//! concurrency-only platform) leave it `None` and every decision carries
//! [`FreqStep::NOMINAL`] — enforced loudly downstream.

use std::collections::HashMap;

use phase_rt::{Binding, FreqStep, MachineShape, PhaseId};
use xeon_sim::{Configuration, FreqLadder, Machine};

use npb_workloads::BenchmarkProfile;

use crate::control_plane::PhaseMap;
use crate::predictor::{AnnPredictor, IpcPredictor};
use crate::throttle::{select_configuration, ThrottleDecision};

/// What a controller observes about one execution of a phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSample {
    /// The configuration the phase ran on while being measured.
    pub config: Configuration,
    /// The DVFS step the phase ran at while being measured
    /// ([`FreqStep::NOMINAL`] for the paper's concurrency-only platform).
    pub freq_step: FreqStep,
    /// Counter-derived event-rate feature vector (Equation 2); empty for
    /// model-free measurements.
    pub features: Vec<f64>,
    /// Achieved IPC during the measurement.
    pub ipc: f64,
    /// Wall-clock time of the measured execution (s).
    pub time_s: f64,
    /// Fraction of cycles spent stalled on memory during the measurement
    /// (`MemStallCycles / Cycles`) — the stall/compute split that lets a
    /// controller predict how IPC shifts across the frequency ladder. Zero
    /// when unknown (DVFS-aware ranking then degenerates to preferring the
    /// nominal step).
    pub stall_fraction: f64,
}

impl PhaseSample {
    /// A sampling-window observation on the maximal-concurrency sampling
    /// configuration (what ACTOR's online sampling produces).
    pub fn sampling(features: Vec<f64>, ipc: f64, time_s: f64) -> Self {
        Self {
            config: Configuration::SAMPLE,
            freq_step: FreqStep::NOMINAL,
            features,
            ipc,
            time_s,
            stall_fraction: 0.0,
        }
    }

    /// A plain wall-clock measurement of one configuration at the nominal
    /// frequency (what empirical search consumes); carries no counter
    /// features.
    pub fn measurement(config: Configuration, time_s: f64) -> Self {
        Self::measurement_at(config, FreqStep::NOMINAL, time_s)
    }

    /// A plain wall-clock measurement of one (configuration, frequency) cell
    /// (what the joint search consumes).
    pub fn measurement_at(config: Configuration, freq_step: FreqStep, time_s: f64) -> Self {
        Self { config, freq_step, features: Vec::new(), ipc: 0.0, time_s, stall_fraction: 0.0 }
    }

    /// Attaches the measured memory-stall fraction (clamped to `[0, 1]`).
    pub fn with_stall_fraction(mut self, stall_fraction: f64) -> Self {
        self.stall_fraction =
            if stall_fraction.is_finite() { stall_fraction.clamp(0.0, 1.0) } else { 0.0 };
        self
    }
}

/// One candidate configuration a controller may decide on, with its average
/// power draw when the caller knows it (the cluster scheduler does, from the
/// machine model; a live runtime may not).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidatePerf {
    /// The configuration.
    pub config: Configuration,
    /// Average power draw of the phase on this configuration (W), if known.
    pub avg_power_w: Option<f64>,
}

impl CandidatePerf {
    /// A candidate with unknown power draw.
    pub fn unknown(config: Configuration) -> Self {
        Self { config, avg_power_w: None }
    }

    /// All five paper configurations with unknown power draw, in the paper's
    /// presentation order.
    pub fn all_unknown() -> Vec<CandidatePerf> {
        Configuration::ALL.iter().map(|&c| CandidatePerf::unknown(c)).collect()
    }
}

/// One cell of the joint (configuration × frequency) decision space, with
/// its average power when the caller knows it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JointPerf {
    /// The thread configuration.
    pub config: Configuration,
    /// The DVFS step.
    pub step: FreqStep,
    /// Average power draw of the phase in this cell (W), if known.
    pub avg_power_w: Option<f64>,
    /// The cell's own converged memory-stall fraction (`MemStallCycles /
    /// Cycles` from the contention solve behind this cell), if known. The
    /// nominal cell's value is *this configuration's* stall/compute split,
    /// which the selection rule prefers over the single sampled split — the
    /// sampling configuration's μ systematically mispredicts how narrow
    /// configurations tolerate downclocking (they contend less for the bus,
    /// so their stall share shrinks).
    pub stall_fraction: Option<f64>,
}

impl JointPerf {
    /// A cell with a known power but no per-cell stall split (callers that
    /// cannot run the contention model, e.g. live search contexts).
    pub fn with_power(config: Configuration, step: FreqStep, avg_power_w: f64) -> Self {
        Self { config, step, avg_power_w: Some(avg_power_w), stall_fraction: None }
    }
}

/// The frequency axis of a decision: the machine's DVFS ladder, plus any
/// known per-cell powers of the joint space. Offered through
/// [`DecisionCtx::dvfs`] by callers that can actuate frequency; its absence
/// means the decision space is the paper's nominal-only (configuration ×
/// {[`FreqStep::NOMINAL`]}) space and every decision must carry the nominal
/// step.
#[derive(Debug, Clone, Copy)]
pub struct DvfsSpace<'a> {
    /// The machine's voltage/frequency ladder (step 0 = nominal).
    pub ladder: &'a FreqLadder,
    /// Known per-cell powers of the joint space; may be empty when the
    /// caller cannot pre-compute them (cells are then always admitted).
    pub joint: &'a [JointPerf],
}

impl DvfsSpace<'_> {
    /// The known average power of one cell, if any.
    pub fn power_of(&self, config: Configuration, step: FreqStep) -> Option<f64> {
        self.joint.iter().find(|c| c.config == config && c.step == step).and_then(|c| c.avg_power_w)
    }

    /// The configuration's own converged stall fraction — the nominal cell's
    /// [`JointPerf::stall_fraction`], if the caller supplied one. This is the
    /// μ the frequency extrapolation should use for `config`; absent, the
    /// selection rule falls back to the single sampled split.
    pub fn stall_of(&self, config: Configuration) -> Option<f64> {
        self.joint
            .iter()
            .find(|c| c.config == config && c.step.is_nominal())
            .and_then(|c| c.stall_fraction)
    }

    /// The deepest (lowest-power) step of the ladder.
    pub fn deepest_step(&self) -> FreqStep {
        FreqStep::new((self.ladder.len() - 1).min(u8::MAX as usize) as u8)
    }
}

/// Everything a controller may look at when deciding a phase's configuration.
#[derive(Debug, Clone)]
pub struct DecisionCtx<'a> {
    /// The phase being decided.
    pub phase: PhaseId,
    /// Shape of the machine the decision actuates on.
    pub shape: &'a MachineShape,
    /// Candidate configurations, in preference-scan order.
    pub candidates: &'a [CandidatePerf],
    /// Average-power cap the chosen configuration should respect (W), if the
    /// caller is operating under a power budget.
    pub power_cap_w: Option<f64>,
    /// The frequency axis, when the caller can actuate DVFS. `None` keeps
    /// the decision space nominal-only and requires nominal-step decisions.
    pub dvfs: Option<DvfsSpace<'a>>,
}

impl<'a> DecisionCtx<'a> {
    /// A context with no power constraint (and no frequency axis).
    pub fn unconstrained(
        phase: PhaseId,
        shape: &'a MachineShape,
        candidates: &'a [CandidatePerf],
    ) -> Self {
        Self { phase, shape, candidates, power_cap_w: None, dvfs: None }
    }

    /// Whether a candidate fits under the power cap. Candidates with unknown
    /// power are always admitted (the caller enforces the budget downstream).
    pub fn admits(&self, candidate: &CandidatePerf) -> bool {
        match (self.power_cap_w, candidate.avg_power_w) {
            (Some(cap), Some(w)) => w <= cap,
            _ => true,
        }
    }
}

/// Why a [`Decision`] chose its configuration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Rationale {
    /// A fixed policy that uses no feedback (OS default, global-optimal
    /// static choice, fallback paths).
    Static {
        /// Which fixed policy.
        label: &'static str,
    },
    /// A model predicted this configuration to perform best.
    Predicted {
        /// Predicted (or, for the sampling configuration, observed) IPC of
        /// the chosen configuration.
        expected_ipc: f64,
    },
    /// Ground truth says this configuration is best.
    Oracle {
        /// True IPC of the chosen configuration.
        expected_ipc: f64,
    },
    /// Model-free search is still exploring candidates.
    Exploring {
        /// Candidates measured so far.
        tried: usize,
        /// Total candidates to measure.
        total: usize,
    },
    /// Model-free search finished and locked the fastest measured candidate.
    Measured {
        /// Measured time of the locked candidate (s).
        time_s: f64,
    },
    /// No candidate fits the power cap; the binding is the lowest-power
    /// fallback and the caller must keep the phase waiting.
    Infeasible {
        /// The cap nothing fitted under (W).
        cap_w: f64,
    },
}

impl Rationale {
    /// The variant name as a stable label, for trace records and metrics
    /// keyed by decision kind.
    pub fn label(&self) -> &'static str {
        match self {
            Rationale::Static { .. } => "static",
            Rationale::Predicted { .. } => "predicted",
            Rationale::Oracle { .. } => "oracle",
            Rationale::Exploring { .. } => "exploring",
            Rationale::Measured { .. } => "measured",
            Rationale::Infeasible { .. } => "infeasible",
        }
    }
}

/// A typed actuation decision: where threads run and how fast they clock.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Thread-to-core binding to enforce for the phase.
    pub binding: Binding,
    /// DVFS step to enforce. Must be [`FreqStep::NOMINAL`] when the decision
    /// context carried no [`DvfsSpace`], and must index an existing rung of
    /// the offered ladder otherwise — both are enforced loudly downstream.
    pub freq_step: FreqStep,
    /// Why this configuration was chosen.
    pub rationale: Rationale,
}

impl Decision {
    /// A nominal-frequency decision for a paper configuration on `shape`.
    pub fn from_config(config: Configuration, shape: &MachineShape, rationale: Rationale) -> Self {
        Self::joint(config, FreqStep::NOMINAL, shape, rationale)
    }

    /// A decision in the joint (configuration × frequency) space.
    pub fn joint(
        config: Configuration,
        freq_step: FreqStep,
        shape: &MachineShape,
        rationale: Rationale,
    ) -> Self {
        Self { binding: binding_for(config, shape), freq_step, rationale }
    }

    /// The paper configuration this decision's binding corresponds to on
    /// `shape`, if it is one of the five.
    pub fn configuration(&self, shape: &MachineShape) -> Option<Configuration> {
        configuration_of(&self.binding, shape)
    }
}

/// Maps a paper configuration onto a concrete binding for `shape` (the
/// canonical placement used across the workspace: packed for 1/2a/4, spread
/// for 2b/3).
pub fn binding_for(config: Configuration, shape: &MachineShape) -> Binding {
    match config {
        Configuration::One => Binding::packed(1, shape),
        Configuration::TwoTight => Binding::packed(2, shape),
        Configuration::TwoLoose => Binding::spread(2, shape),
        Configuration::Three => Binding::spread(3, shape),
        Configuration::Four => Binding::packed(shape.num_cores, shape),
    }
}

/// Inverse of [`binding_for`]: which paper configuration a binding realises
/// on `shape`, if any.
pub fn configuration_of(binding: &Binding, shape: &MachineShape) -> Option<Configuration> {
    Configuration::ALL.iter().copied().find(|&c| binding_for(c, shape) == *binding)
}

/// The five paper bindings for one machine shape, precomputed so binding →
/// configuration lookups are slice compares instead of five fresh binding
/// constructions (each a heap allocation). [`ControlPlane`] builds one per
/// plane and validates every decision through it — on the decide hot path
/// the construction cost dominated the decision itself.
///
/// [`ControlPlane`]: crate::control_plane::ControlPlane
#[derive(Debug, Clone)]
pub struct ConfigurationMap {
    entries: [(Binding, Configuration); Configuration::ALL.len()],
}

impl ConfigurationMap {
    /// Precomputes the canonical binding of every paper configuration on
    /// `shape`.
    pub fn new(shape: &MachineShape) -> Self {
        Self { entries: Configuration::ALL.map(|c| (binding_for(c, shape), c)) }
    }

    /// Which paper configuration `binding` realises, if any. Scans in
    /// [`Configuration::ALL`] order — exactly [`configuration_of`]'s
    /// semantics (clamped shapes can map one binding to two configurations;
    /// the first wins in both).
    pub fn lookup(&self, binding: &Binding) -> Option<Configuration> {
        self.entries.iter().find(|(b, _)| b == binding).map(|(_, c)| *c)
    }
}

/// The logical shape of a simulated machine, for actuating decisions on it.
pub fn shape_of(machine: &Machine) -> MachineShape {
    let topo = machine.topology();
    MachineShape { num_cores: topo.num_cores, cores_per_l2: topo.cores_per_l2 }
}

/// Validates a controller decision against the machine's actuation space —
/// the single definition of the decision contract every enforcement layer
/// shares (the adaptation harness returns the message as an error, the
/// cluster policy panics with it):
///
/// * the binding realises one of the paper's five configurations on `shape`;
/// * the frequency step is [`FreqStep::NOMINAL`] when no ladder was offered
///   (`dvfs_offered == false`);
/// * the frequency step indexes an existing rung of the machine's
///   `ladder_len`-step ladder.
///
/// Returns the realised configuration, or a human-readable description of
/// the violation.
pub fn validate_decision(
    decision: &Decision,
    shape: &MachineShape,
    ladder_len: usize,
    dvfs_offered: bool,
) -> Result<Configuration, String> {
    validate_decision_with(decision, &ConfigurationMap::new(shape), ladder_len, dvfs_offered)
}

/// [`validate_decision`] against a precomputed [`ConfigurationMap`] —
/// allocation-free, for callers validating many decisions on one shape.
pub fn validate_decision_with(
    decision: &Decision,
    configs: &ConfigurationMap,
    ladder_len: usize,
    dvfs_offered: bool,
) -> Result<Configuration, String> {
    let Some(config) = configs.lookup(&decision.binding) else {
        return Err(format!(
            "binding {:?} is not one of the paper's five configurations",
            decision.binding.cores()
        ));
    };
    if !dvfs_offered && !decision.freq_step.is_nominal() {
        return Err(format!(
            "frequency step {} was decided without being offered a ladder — decisions must \
             stay at FreqStep::NOMINAL",
            decision.freq_step.index()
        ));
    }
    FreqStep::for_ladder(decision.freq_step.index(), ladder_len).map_err(|e| e.to_string())?;
    Ok(config)
}

/// One decision loop: observe per-phase hardware samples, decide per-phase
/// actuations.
///
/// Implementations must be deterministic functions of their construction
/// state and observation history (see the [`crate::conformance`] harness),
/// and `decide` must not consume exploration budget — only `observe` may
/// advance internal search state.
pub trait PowerPerfController {
    /// Short identifier used in reports and conformance messages.
    fn name(&self) -> &'static str;

    /// Feeds one observation of `phase` to the controller.
    fn observe(&mut self, phase: PhaseId, sample: &PhaseSample);

    /// Decides the actuation for `ctx.phase` given everything observed so
    /// far. Must always return a decision; if nothing fits the power cap the
    /// rationale is [`Rationale::Infeasible`] and the caller decides whether
    /// to wait.
    fn decide(&mut self, ctx: &DecisionCtx<'_>) -> Decision;
}

impl<T: PowerPerfController + ?Sized> PowerPerfController for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn observe(&mut self, phase: PhaseId, sample: &PhaseSample) {
        (**self).observe(phase, sample)
    }

    fn decide(&mut self, ctx: &DecisionCtx<'_>) -> Decision {
        (**self).decide(ctx)
    }
}

impl<T: PowerPerfController + ?Sized> PowerPerfController for &mut T {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn observe(&mut self, phase: PhaseId, sample: &PhaseSample) {
        (**self).observe(phase, sample)
    }

    fn decide(&mut self, ctx: &DecisionCtx<'_>) -> Decision {
        (**self).decide(ctx)
    }
}

/// Scans candidates in order for the configuration with the highest
/// `ipc_of` whose power — when known — fits under the cap, breaking ties
/// towards fewer threads. This is *the* selection rule of the paper's
/// throttling step and of the cluster's power-capped planner; every
/// power-aware chooser in the workspace delegates here so the rule has one
/// definition.
pub fn best_config_by_ipc(
    candidates: impl IntoIterator<Item = CandidatePerf>,
    power_cap_w: Option<f64>,
    mut ipc_of: impl FnMut(Configuration) -> f64,
) -> Option<(Configuration, f64)> {
    let mut best: Option<(Configuration, f64)> = None;
    for cand in candidates {
        if let (Some(cap), Some(w)) = (power_cap_w, cand.avg_power_w) {
            if w > cap {
                continue;
            }
        }
        let ipc = ipc_of(cand.config);
        let wins = match best {
            None => true,
            Some((bc, bipc)) => {
                ipc > bipc || (ipc == bipc && cand.config.num_threads() < bc.num_threads())
            }
        };
        if wins {
            best = Some((cand.config, ipc));
        }
    }
    best
}

/// [`best_config_by_ipc`] over a decision context.
fn best_admissible_by_ipc(
    ctx: &DecisionCtx<'_>,
    ipc_of: impl FnMut(Configuration) -> f64,
) -> Option<(Configuration, f64)> {
    best_config_by_ipc(ctx.candidates.iter().copied(), ctx.power_cap_w, ipc_of)
}

/// Predicted aggregate IPC of a phase at a relative frequency `freq_scale`,
/// given its nominal IPC and memory-stall fraction (the stall/compute split
/// the counters expose: `MemStallCycles / Cycles`).
///
/// Compute cycles are clock-bound (their count per instruction is constant),
/// memory-stall time is wall-bound (its *cycle* count shrinks with the
/// clock), so per-cycle IPC at scale `s` is `ipc / (1 − μ + μ·s)`: a pure
/// compute phase (μ = 0) keeps its IPC while a pure stall phase (μ = 1) sees
/// IPC rise as `1/s` — fewer (slower) cycles cover the same stall time.
pub fn frequency_scaled_ipc(nominal_ipc: f64, stall_fraction: f64, freq_scale: f64) -> f64 {
    let mu = stall_fraction.clamp(0.0, 1.0);
    nominal_ipc / (1.0 - mu + mu * freq_scale)
}

/// Relative instruction throughput (performance) of a phase at frequency
/// scale `s`: `s / (1 − μ + μ·s)`. Equals 1 at nominal; a pure compute
/// phase slows as `s`, a pure stall phase not at all.
pub fn frequency_throughput_scale(stall_fraction: f64, freq_scale: f64) -> f64 {
    let mu = stall_fraction.clamp(0.0, 1.0);
    freq_scale / (1.0 - mu + mu * freq_scale)
}

/// Scans the joint (configuration × frequency) space for the cell with the
/// highest predicted throughput whose power — when known — fits under the
/// cap. Ties break towards fewer threads, then towards the deeper (lower
/// power) step, so equal-performance cells resolve to the cheapest one.
/// This is the joint-space generalisation of [`best_config_by_ipc`] and the
/// single definition of the DVFS+DCT selection rule.
///
/// `nominal_ipc_of` supplies each configuration's predicted IPC at the
/// nominal frequency; `stall_fraction` is the phase's measured
/// stall/compute split on the *sampling* configuration. When the joint
/// space carries per-cell stall fractions ([`JointPerf::stall_fraction`]),
/// each configuration extrapolates with its **own** converged split
/// ([`DvfsSpace::stall_of`]) — the per-configuration stall model; the single
/// sampled μ is only the fallback for callers that cannot supply per-cell
/// stalls. Returns the chosen cell and its predicted (frequency-scaled)
/// IPC.
pub fn best_joint_by_throughput(
    candidates: &[CandidatePerf],
    space: &DvfsSpace<'_>,
    power_cap_w: Option<f64>,
    stall_fraction: f64,
    mut nominal_ipc_of: impl FnMut(Configuration) -> f64,
) -> Option<(Configuration, FreqStep, f64)> {
    let mut best: Option<(Configuration, FreqStep, f64, f64)> = None; // +throughput
    for cand in candidates {
        let base_ipc = nominal_ipc_of(cand.config);
        let mu = space.stall_of(cand.config).unwrap_or(stall_fraction);
        for step_idx in 0..space.ladder.len() {
            let step = FreqStep::new(step_idx.min(u8::MAX as usize) as u8);
            let power = if step.is_nominal() {
                space.power_of(cand.config, step).or(cand.avg_power_w)
            } else {
                space.power_of(cand.config, step)
            };
            if let (Some(cap), Some(w)) = (power_cap_w, power) {
                if w > cap {
                    continue;
                }
            }
            let fs = space.ladder.freq_scale(step_idx).expect("step in range");
            let throughput = base_ipc * frequency_throughput_scale(mu, fs);
            let wins = match &best {
                None => true,
                Some((bc, bs, _, bt)) => {
                    throughput > *bt
                        || (throughput == *bt
                            && (cand.config.num_threads() < bc.num_threads()
                                || (cand.config.num_threads() == bc.num_threads() && step > *bs)))
                }
            };
            if wins {
                let expected_ipc = frequency_scaled_ipc(base_ipc, mu, fs);
                best = Some((cand.config, step, expected_ipc, throughput));
            }
        }
    }
    best.map(|(config, step, ipc, _)| (config, step, ipc))
}

/// Interned winners of [`best_joint_by_throughput`] over the power-cap axis
/// for one fixed (candidates, joint space, stall, IPC) menu.
///
/// The selection rule is piecewise-constant in the cap: every per-cell
/// quantity (throughput, expected IPC) is cap-independent, and the cap
/// enters only through the admissibility test `power <= cap`, so the winner
/// can change only where the cap crosses one of the menu's known cell
/// powers. Building the table runs the live ranking once per distinct power
/// threshold — the interned winners are the ranking function's own outputs,
/// byte-identical by construction — and a steady-state lookup is a binary
/// search over the thresholds plus a table read instead of a full re-rank
/// of the joint grid.
#[derive(Debug, Clone, PartialEq)]
pub struct InternedJointPolicy {
    /// Distinct known cell powers, sorted ascending: the caps at which the
    /// admissible set (and therefore the winner) can change.
    thresholds: Vec<f64>,
    /// `winners[i]` is the ranking result for any cap with exactly `i`
    /// thresholds at or below it; `winners[thresholds.len()]` admits every
    /// known-power cell and doubles as the uncapped winner. `None` means
    /// nothing is admissible ([`Rationale::Infeasible`] downstream).
    winners: Vec<Option<(Configuration, FreqStep, f64)>>,
}

impl InternedJointPolicy {
    /// Interns the winner per cap bucket by running
    /// [`best_joint_by_throughput`] once per distinct cell power (plus one
    /// bucket for caps below all of them).
    pub fn build(
        candidates: &[CandidatePerf],
        space: &DvfsSpace<'_>,
        stall_fraction: f64,
        mut nominal_ipc_of: impl FnMut(Configuration) -> f64,
    ) -> Self {
        // Collect every power the admissibility test can observe: per-cell
        // powers, with the candidate's nominal power as the nominal-step
        // fallback — the exact lookup the live ranking performs.
        let mut thresholds = Vec::with_capacity(candidates.len() * space.ladder.len());
        for cand in candidates {
            for step_idx in 0..space.ladder.len() {
                let step = FreqStep::new(step_idx.min(u8::MAX as usize) as u8);
                let power = if step.is_nominal() {
                    space.power_of(cand.config, step).or(cand.avg_power_w)
                } else {
                    space.power_of(cand.config, step)
                };
                if let Some(w) = power {
                    thresholds.push(w);
                }
            }
        }
        thresholds.sort_by(f64::total_cmp);
        thresholds.dedup_by(|a, b| a == b);
        let winners = (0..=thresholds.len())
            .map(|i| {
                // Bucket 0 admits only unknown-power cells; bucket i ≥ 1 is
                // represented by its lowest admitted threshold (every cap in
                // the bucket admits the same cell set, so the winner — and
                // its cap-independent expected IPC — is identical).
                let cap = match i.checked_sub(1) {
                    None => f64::NEG_INFINITY,
                    Some(t) => thresholds[t],
                };
                best_joint_by_throughput(
                    candidates,
                    space,
                    Some(cap),
                    stall_fraction,
                    &mut nominal_ipc_of,
                )
            })
            .collect();
        Self { thresholds, winners }
    }

    /// The interned ranking result for `power_cap_w` — bit-identical to
    /// calling [`best_joint_by_throughput`] with the same menu, for every
    /// non-NaN cap. (A NaN cap admits every cell under the live rule but
    /// defeats the threshold search; callers rank it live.)
    pub fn lookup(&self, power_cap_w: Option<f64>) -> Option<(Configuration, FreqStep, f64)> {
        let bucket = match power_cap_w {
            None => self.thresholds.len(),
            Some(cap) => self.thresholds.partition_point(|&t| t <= cap),
        };
        self.winners[bucket]
    }

    /// Number of cap buckets (distinct thresholds + 1).
    pub fn buckets(&self) -> usize {
        self.winners.len()
    }
}

/// One phase's interned table plus the exact inputs it was built from. A
/// decide whose context differs in any input — menu, ladder, or observed
/// stall — rebuilds instead of serving a stale answer, so the caching is
/// invisible to callers: validation is a handful of slice equality checks,
/// far cheaper than the full joint re-rank it replaces.
#[derive(Debug, Clone)]
struct InternedEntry {
    policy: InternedJointPolicy,
    stall_bits: u64,
    candidates: Vec<CandidatePerf>,
    joint: Vec<JointPerf>,
    ladder: FreqLadder,
}

impl InternedEntry {
    fn build(
        candidates: &[CandidatePerf],
        space: &DvfsSpace<'_>,
        stall: f64,
        nominal_ipc_of: impl FnMut(Configuration) -> f64,
    ) -> Self {
        Self {
            policy: InternedJointPolicy::build(candidates, space, stall, nominal_ipc_of),
            stall_bits: stall.to_bits(),
            candidates: candidates.to_vec(),
            joint: space.joint.to_vec(),
            ladder: space.ladder.clone(),
        }
    }

    fn matches(&self, candidates: &[CandidatePerf], space: &DvfsSpace<'_>, stall: f64) -> bool {
        self.stall_bits == stall.to_bits()
            && self.candidates == candidates
            && self.joint == space.joint
            && self.ladder == *space.ladder
    }
}

/// The fallback decision when nothing fits the cap: the lowest-power
/// candidate, at the ladder bottom when a frequency axis is offered.
fn infeasible_decision(ctx: &DecisionCtx<'_>) -> Decision {
    let step = ctx.dvfs.map(|space| space.deepest_step()).unwrap_or(FreqStep::NOMINAL);
    Decision::joint(
        lowest_power_candidate(ctx.candidates),
        step,
        ctx.shape,
        Rationale::Infeasible { cap_w: ctx.power_cap_w.unwrap_or(f64::INFINITY) },
    )
}

/// The lowest-power candidate (fewest threads when powers are unknown), used
/// as the fallback binding of an [`Rationale::Infeasible`] decision.
fn lowest_power_candidate(candidates: &[CandidatePerf]) -> Configuration {
    candidates
        .iter()
        .min_by(|a, b| match (a.avg_power_w, b.avg_power_w) {
            (Some(x), Some(y)) => x.total_cmp(&y),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => a.config.num_threads().cmp(&b.config.num_threads()),
        })
        .map(|c| c.config)
        .unwrap_or(Configuration::One)
}

/// Live prediction-based controller: observes counter features on the
/// sampling configuration and ranks the alternatives with an
/// [`IpcPredictor`] at decision time.
///
/// This is ACTOR's online loop with the model pluggable — the ANN ensembles
/// ([`AnnController`]) and the multiple-linear-regression baseline share the
/// exact same control path.
///
/// `decide` never panics: with no sample observed yet, or when the
/// predictor rejects the observed features (e.g. a feature-dimension
/// mismatch against the training event set), it falls back to the sampling
/// configuration with a [`Rationale::Static`] label (`"unsampled"` /
/// `"prediction-failed"`). Callers that require a genuine prediction should
/// check the decision's rationale.
#[derive(Debug, Clone)]
pub struct PredictorController<P: IpcPredictor> {
    predictor: P,
    name: &'static str,
    samples: HashMap<PhaseId, PhaseSample>,
}

/// The paper's controller: ANN-ensemble prediction over sampled event rates.
pub type AnnController = PredictorController<AnnPredictor>;

impl<P: IpcPredictor> PredictorController<P> {
    /// Wraps a trained predictor.
    pub fn new(predictor: P, name: &'static str) -> Self {
        Self { predictor, name, samples: HashMap::new() }
    }

    /// The wrapped predictor.
    pub fn predictor(&self) -> &P {
        &self.predictor
    }
}

impl AnnController {
    /// Wraps a trained ANN ensemble predictor.
    pub fn ann(predictor: AnnPredictor) -> Self {
        Self::new(predictor, "ann")
    }
}

impl<P: IpcPredictor> PowerPerfController for PredictorController<P> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn observe(&mut self, phase: PhaseId, sample: &PhaseSample) {
        // Only sampling-configuration observations carry the features the
        // model was trained on; plain measurements are ignored.
        if sample.config == Configuration::SAMPLE && !sample.features.is_empty() {
            self.samples.insert(phase, sample.clone());
        }
    }

    fn decide(&mut self, ctx: &DecisionCtx<'_>) -> Decision {
        let Some(sample) = self.samples.get(&ctx.phase) else {
            // Nothing observed yet: run the sampling configuration so the
            // next observation can feed the model.
            return Decision::from_config(
                Configuration::SAMPLE,
                ctx.shape,
                Rationale::Static { label: "unsampled" },
            );
        };
        let Ok(predictions) = self.predictor.predict(&sample.features) else {
            return Decision::from_config(
                Configuration::SAMPLE,
                ctx.shape,
                Rationale::Static { label: "prediction-failed" },
            );
        };
        let ipc_of = |config: Configuration| {
            if config == Configuration::SAMPLE {
                sample.ipc
            } else {
                predictions
                    .iter()
                    .find(|(c, _)| *c == config)
                    .map(|(_, ipc)| *ipc)
                    .unwrap_or(sample.ipc)
            }
        };
        if let Some(space) = ctx.dvfs {
            // The joint (threads × frequency) space: extrapolate each
            // configuration's predicted IPC along the ladder via the phase's
            // stall/compute split and take the best admissible cell.
            return match best_joint_by_throughput(
                ctx.candidates,
                &space,
                ctx.power_cap_w,
                sample.stall_fraction,
                ipc_of,
            ) {
                Some((config, step, expected_ipc)) => {
                    Decision::joint(config, step, ctx.shape, Rationale::Predicted { expected_ipc })
                }
                None => infeasible_decision(ctx),
            };
        }
        if ctx.power_cap_w.is_none() {
            // The paper's unconstrained selection rule, bit-for-bit.
            let chosen = select_configuration(sample.ipc, &predictions);
            let expected_ipc = chosen.chosen_ipc();
            return Decision::from_config(
                chosen.chosen,
                ctx.shape,
                Rationale::Predicted { expected_ipc },
            );
        }
        match best_admissible_by_ipc(ctx, ipc_of) {
            Some((config, expected_ipc)) => {
                Decision::from_config(config, ctx.shape, Rationale::Predicted { expected_ipc })
            }
            None => infeasible_decision(ctx),
        }
    }
}

/// Controller replaying pre-computed [`ThrottleDecision`]s — the paper's
/// deployment mode, where the ANN ensembles ran offline and the runtime only
/// enforces the chosen configurations (re-ranking them when a power cap
/// demands it).
///
/// When the decision context offers a [`DvfsSpace`], the stored predictions
/// are extrapolated along the frequency ladder using the phase's observed
/// stall/compute split (recorded from the sampling window through
/// [`observe`](PowerPerfController::observe)), and the best admissible joint
/// cell wins — this is the joint DVFS+DCT deployment mode.
#[derive(Debug, Clone, Default)]
pub struct DecisionTableController {
    table: PhaseMap<ThrottleDecision>,
    /// Memory-stall fraction per phase, observed from the sampling window;
    /// only consulted when a frequency axis is offered.
    stall: PhaseMap<f64>,
    /// Interned joint winners per phase ([`InternedJointPolicy`]), built on
    /// first joint decide and revalidated against the context's exact menu
    /// on every use — the steady-state joint decide is a threshold binary
    /// search instead of a full grid re-rank.
    interned: PhaseMap<InternedEntry>,
}

impl DecisionTableController {
    /// Builds the controller from per-phase decisions.
    pub fn new(entries: impl IntoIterator<Item = (PhaseId, ThrottleDecision)>) -> Self {
        Self {
            table: entries.into_iter().collect(),
            stall: PhaseMap::default(),
            interned: PhaseMap::default(),
        }
    }
}

impl PowerPerfController for DecisionTableController {
    fn name(&self) -> &'static str {
        "ann-table"
    }

    fn observe(&mut self, phase: PhaseId, sample: &PhaseSample) {
        // Decisions were computed offline; the only live signal consumed is
        // the sampling window's stall/compute split, which prices the
        // frequency ladder when a caller offers one.
        if sample.config == Configuration::SAMPLE && sample.freq_step.is_nominal() {
            self.stall.insert(phase, sample.stall_fraction);
        }
    }

    fn decide(&mut self, ctx: &DecisionCtx<'_>) -> Decision {
        let Some(decision) = self.table.get(&ctx.phase) else {
            return Decision::from_config(
                Configuration::SAMPLE,
                ctx.shape,
                Rationale::Static { label: "no-decision" },
            );
        };
        if let Some(space) = ctx.dvfs {
            let stall = self.stall.get(&ctx.phase).copied().unwrap_or(0.0);
            // A NaN cap admits every cell under the live rule but defeats
            // the interned threshold search: rank it live (it cannot arise
            // from sane callers).
            if ctx.power_cap_w.is_some_and(f64::is_nan) {
                return match best_joint_by_throughput(
                    ctx.candidates,
                    &space,
                    ctx.power_cap_w,
                    stall,
                    |c| decision.predicted_ipc(c),
                ) {
                    Some((config, step, expected_ipc)) => Decision::joint(
                        config,
                        step,
                        ctx.shape,
                        Rationale::Predicted { expected_ipc },
                    ),
                    None => infeasible_decision(ctx),
                };
            }
            let entry = self
                .interned
                .entry(ctx.phase)
                .and_modify(|e| {
                    if !e.matches(ctx.candidates, &space, stall) {
                        *e = InternedEntry::build(ctx.candidates, &space, stall, |c| {
                            decision.predicted_ipc(c)
                        });
                    }
                })
                .or_insert_with(|| {
                    InternedEntry::build(ctx.candidates, &space, stall, |c| {
                        decision.predicted_ipc(c)
                    })
                });
            return match entry.policy.lookup(ctx.power_cap_w) {
                Some((config, step, expected_ipc)) => {
                    Decision::joint(config, step, ctx.shape, Rationale::Predicted { expected_ipc })
                }
                None => infeasible_decision(ctx),
            };
        }
        match ctx.power_cap_w {
            None => Decision::from_config(
                decision.chosen,
                ctx.shape,
                Rationale::Predicted { expected_ipc: decision.chosen_ipc() },
            ),
            Some(_) => match best_admissible_by_ipc(ctx, |c| decision.predicted_ipc(c)) {
                Some((config, expected_ipc)) => {
                    Decision::from_config(config, ctx.shape, Rationale::Predicted { expected_ipc })
                }
                None => infeasible_decision(ctx),
            },
        }
    }
}

/// Ground truth of one phase on one configuration, for [`OracleController`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleEntry {
    /// The configuration.
    pub config: Configuration,
    /// True execution time (s).
    pub time_s: f64,
    /// True aggregate IPC.
    pub ipc: f64,
    /// True average power (W).
    pub avg_power_w: f64,
}

/// Oracle controller: knows the true per-configuration performance of every
/// phase and picks the fastest admissible configuration (the paper's
/// phase-optimal comparison point).
#[derive(Debug, Clone, Default)]
pub struct OracleController {
    truth: HashMap<PhaseId, Vec<OracleEntry>>,
}

impl OracleController {
    /// Builds an oracle from explicit ground truth.
    pub fn new(truth: impl IntoIterator<Item = (PhaseId, Vec<OracleEntry>)>) -> Self {
        Self { truth: truth.into_iter().collect() }
    }

    /// Builds the oracle for one benchmark by simulating every phase on
    /// every configuration; phase `i` is keyed by `PhaseId::new(i)`.
    pub fn for_benchmark(machine: &Machine, bench: &BenchmarkProfile) -> Self {
        let truth = bench
            .phases
            .iter()
            .enumerate()
            .map(|(i, phase)| {
                let entries = Configuration::ALL
                    .iter()
                    .map(|&config| {
                        let exec = machine.simulate_config(phase, config);
                        OracleEntry {
                            config,
                            time_s: exec.time_s,
                            ipc: exec.aggregate_ipc,
                            avg_power_w: exec.avg_power_w,
                        }
                    })
                    .collect();
                (PhaseId::new(i as u32), entries)
            })
            .collect();
        Self { truth }
    }
}

impl PowerPerfController for OracleController {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn observe(&mut self, _phase: PhaseId, _sample: &PhaseSample) {
        // The oracle already knows the truth.
    }

    fn decide(&mut self, ctx: &DecisionCtx<'_>) -> Decision {
        let Some(entries) = self.truth.get(&ctx.phase) else {
            return Decision::from_config(
                Configuration::SAMPLE,
                ctx.shape,
                Rationale::Static { label: "no-oracle" },
            );
        };
        // Fastest admissible candidate; ties keep the earliest candidate,
        // matching `Iterator::min_by` in the free-standing oracle helpers.
        let mut best: Option<&OracleEntry> = None;
        for cand in ctx.candidates {
            let Some(entry) = entries.iter().find(|e| e.config == cand.config) else {
                continue;
            };
            if let Some(cap) = ctx.power_cap_w {
                let power = cand.avg_power_w.unwrap_or(entry.avg_power_w);
                if power > cap {
                    continue;
                }
            }
            if best.is_none_or(|b| entry.time_s < b.time_s) {
                best = Some(entry);
            }
        }
        match best {
            Some(entry) => Decision::from_config(
                entry.config,
                ctx.shape,
                Rationale::Oracle { expected_ipc: entry.ipc },
            ),
            None => infeasible_decision(ctx),
        }
    }
}

/// A controller that always picks the same configuration — the OS-default
/// and global-optimal-static baselines of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticController {
    config: Configuration,
    label: &'static str,
}

impl StaticController {
    /// A fixed configuration with a report label.
    pub fn new(config: Configuration, label: &'static str) -> Self {
        Self { config, label }
    }

    /// The OS default: every phase on all cores.
    pub fn os_default() -> Self {
        Self::new(Configuration::Four, "os-default")
    }

    /// The fixed configuration.
    pub fn config(&self) -> Configuration {
        self.config
    }
}

impl PowerPerfController for StaticController {
    fn name(&self) -> &'static str {
        self.label
    }

    fn observe(&mut self, _phase: PhaseId, _sample: &PhaseSample) {
        // Static policies use no feedback.
    }

    fn decide(&mut self, ctx: &DecisionCtx<'_>) -> Decision {
        Decision::from_config(self.config, ctx.shape, Rationale::Static { label: self.label })
    }
}

/// Model-free controller: the online empirical search of the authors'
/// earlier work \[17\]. Each phase measures every candidate once and then
/// locks the fastest.
///
/// Unlike the raw [`crate::baselines::EmpiricalSearchPolicy`] (which counts
/// observations and assumes the caller feeds exactly one per candidate), this
/// controller
/// tracks coverage *by configuration*: duplicate measurements of a
/// candidate — common in generic harnesses that replay the sampling window
/// alongside decided configurations — are dropped (the first measurement
/// wins) rather than consuming another exploration slot, so the search
/// never locks before every candidate has actually been measured.
#[derive(Debug, Clone)]
pub struct EmpiricalSearchController {
    candidates: Vec<Configuration>,
    /// First measured time per (phase, candidate).
    measured: HashMap<PhaseId, Vec<(Configuration, f64)>>,
}

impl Default for EmpiricalSearchController {
    fn default() -> Self {
        Self::new(Configuration::ALL.to_vec())
    }
}

impl EmpiricalSearchController {
    /// Searches over the given candidates, in exploration order.
    pub fn new(candidates: Vec<Configuration>) -> Self {
        Self { candidates, measured: HashMap::new() }
    }
}

impl PowerPerfController for EmpiricalSearchController {
    fn name(&self) -> &'static str {
        "empirical-search"
    }

    fn observe(&mut self, phase: PhaseId, sample: &PhaseSample) {
        if !self.candidates.contains(&sample.config) {
            return;
        }
        let measured = self.measured.entry(phase).or_default();
        if measured.iter().all(|(c, _)| *c != sample.config) {
            measured.push((sample.config, sample.time_s));
        }
    }

    fn decide(&mut self, ctx: &DecisionCtx<'_>) -> Decision {
        let total = self.candidates.len();
        let measured = self.measured.get(&ctx.phase).map(Vec::as_slice).unwrap_or(&[]);
        // Still exploring: run the first candidate without a measurement.
        if let Some(next) =
            self.candidates.iter().find(|c| measured.iter().all(|(m, _)| *m != **c)).copied()
        {
            return Decision::from_config(
                next,
                ctx.shape,
                Rationale::Exploring { tried: measured.len(), total },
            );
        }
        // Every candidate measured: lock the fastest (ties keep the
        // earlier-measured candidate).
        match measured.iter().min_by(|a, b| a.1.total_cmp(&b.1)) {
            Some(&(config, time_s)) => {
                Decision::from_config(config, ctx.shape, Rationale::Measured { time_s })
            }
            None => Decision::from_config(
                Configuration::SAMPLE,
                ctx.shape,
                Rationale::Static { label: "no-candidates" },
            ),
        }
    }
}

/// Model-free exploration of the *joint* (configuration × frequency) space:
/// the DVFS+DCT generalisation of [`EmpiricalSearchController`]. Each phase
/// measures every admissible cell once (coverage tracked per cell; duplicate
/// observations are dropped — first measurement wins — rather than
/// consuming exploration slots) and then locks the fastest measured cell.
///
/// The ladder depth comes from the decision context: with no
/// [`DvfsSpace`] offered the search degenerates to the nominal-only
/// candidate list, exactly like the concurrency-only search. Cells whose
/// known power exceeds the context's cap are excluded from both exploration
/// and locking; if no cell is admissible the decision is
/// [`Rationale::Infeasible`].
#[derive(Debug, Clone)]
pub struct JointSearchController {
    candidates: Vec<Configuration>,
    /// First measured time per (phase, configuration, step) cell.
    measured: HashMap<PhaseId, Vec<(JointCell, f64)>>,
}

/// One cell of the joint search grid.
type JointCell = (Configuration, FreqStep);

impl Default for JointSearchController {
    fn default() -> Self {
        Self::new(Configuration::ALL.to_vec())
    }
}

impl JointSearchController {
    /// Searches over `candidates` × the offered ladder, configuration-major
    /// (all steps of one configuration before the next).
    pub fn new(candidates: Vec<Configuration>) -> Self {
        Self { candidates, measured: HashMap::new() }
    }

    /// The joint cells the context admits, in exploration order.
    fn admissible_cells(&self, ctx: &DecisionCtx<'_>) -> Vec<(Configuration, FreqStep)> {
        let steps = ctx.dvfs.map(|space| space.ladder.len()).unwrap_or(1);
        let mut cells = Vec::with_capacity(self.candidates.len() * steps);
        for &config in &self.candidates {
            for step_idx in 0..steps {
                let step = FreqStep::new(step_idx.min(u8::MAX as usize) as u8);
                let power = match ctx.dvfs {
                    Some(space) if !step.is_nominal() => space.power_of(config, step),
                    Some(space) => space.power_of(config, step).or_else(|| {
                        ctx.candidates
                            .iter()
                            .find(|c| c.config == config)
                            .and_then(|c| c.avg_power_w)
                    }),
                    None => ctx
                        .candidates
                        .iter()
                        .find(|c| c.config == config)
                        .and_then(|c| c.avg_power_w),
                };
                if let (Some(cap), Some(w)) = (ctx.power_cap_w, power) {
                    if w > cap {
                        continue;
                    }
                }
                cells.push((config, step));
            }
        }
        cells
    }
}

impl PowerPerfController for JointSearchController {
    fn name(&self) -> &'static str {
        "joint-search"
    }

    fn observe(&mut self, phase: PhaseId, sample: &PhaseSample) {
        if !self.candidates.contains(&sample.config) {
            return;
        }
        let cell = (sample.config, sample.freq_step);
        let measured = self.measured.entry(phase).or_default();
        if measured.iter().all(|(c, _)| *c != cell) {
            measured.push((cell, sample.time_s));
        }
    }

    fn decide(&mut self, ctx: &DecisionCtx<'_>) -> Decision {
        let cells = self.admissible_cells(ctx);
        if cells.is_empty() {
            return infeasible_decision(ctx);
        }
        let measured = self.measured.get(&ctx.phase).map(Vec::as_slice).unwrap_or(&[]);
        let measured_of = |cell: &(Configuration, FreqStep)| {
            measured.iter().find(|(c, _)| c == cell).map(|(_, t)| *t)
        };
        // Still exploring: run the first admissible cell without a
        // measurement.
        if let Some(&(config, step)) = cells.iter().find(|cell| measured_of(cell).is_none()) {
            let tried = cells.iter().filter(|cell| measured_of(cell).is_some()).count();
            return Decision::joint(
                config,
                step,
                ctx.shape,
                Rationale::Exploring { tried, total: cells.len() },
            );
        }
        // Every admissible cell measured: lock the fastest (ties keep the
        // earlier cell in exploration order).
        let best = cells
            .iter()
            .filter_map(|&cell| measured_of(&cell).map(|t| (cell, t)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("cells is non-empty and fully measured");
        let ((config, step), time_s) = best;
        Decision::joint(config, step, ctx.shape, Rationale::Measured { time_s })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npb_workloads::{suite, BenchmarkId};

    fn quad() -> MachineShape {
        MachineShape::quad_core()
    }

    #[test]
    fn binding_mapping_roundtrips_every_configuration() {
        let shape = quad();
        for &config in &Configuration::ALL {
            let binding = binding_for(config, &shape);
            assert_eq!(binding.num_threads(), config.num_threads());
            assert_eq!(configuration_of(&binding, &shape), Some(config));
        }
        // A binding that is none of the five maps to nothing.
        let odd = Binding::new(vec![1, 3], &shape).unwrap();
        assert_eq!(configuration_of(&odd, &shape), None);
    }

    #[test]
    fn shape_matches_the_paper_machine() {
        let machine = Machine::xeon_qx6600();
        let shape = shape_of(&machine);
        assert_eq!(shape, quad());
    }

    #[test]
    fn static_controller_ignores_everything() {
        let shape = quad();
        let candidates = CandidatePerf::all_unknown();
        let mut c = StaticController::os_default();
        c.observe(PhaseId::new(0), &PhaseSample::measurement(Configuration::One, 1.0));
        let d = c.decide(&DecisionCtx::unconstrained(PhaseId::new(0), &shape, &candidates));
        assert_eq!(d.configuration(&shape), Some(Configuration::Four));
        assert_eq!(d.freq_step, FreqStep::NOMINAL);
        assert!(matches!(d.rationale, Rationale::Static { label: "os-default" }));
    }

    #[test]
    fn table_controller_replays_chosen_configs_and_respects_caps() {
        let shape = quad();
        let phase = PhaseId::new(3);
        let decision = select_configuration(
            1.0,
            &[
                (Configuration::One, 0.9),
                (Configuration::TwoTight, 1.1),
                (Configuration::TwoLoose, 1.6),
                (Configuration::Three, 1.2),
            ],
        );
        assert_eq!(decision.chosen, Configuration::TwoLoose);
        let mut c = DecisionTableController::new([(phase, decision)]);

        // Unconstrained: the stored decision verbatim.
        let candidates = CandidatePerf::all_unknown();
        let d = c.decide(&DecisionCtx::unconstrained(phase, &shape, &candidates));
        assert_eq!(d.configuration(&shape), Some(Configuration::TwoLoose));

        // Capped so that only One and TwoTight fit: the best admissible wins.
        let powers = [95.0, 120.0, 125.0, 140.0, 160.0];
        let candidates: Vec<CandidatePerf> = Configuration::ALL
            .iter()
            .zip(powers)
            .map(|(&config, w)| CandidatePerf { config, avg_power_w: Some(w) })
            .collect();
        let ctx = DecisionCtx {
            phase,
            shape: &shape,
            candidates: &candidates,
            power_cap_w: Some(121.0),
            dvfs: None,
        };
        let d = c.decide(&ctx);
        assert_eq!(d.configuration(&shape), Some(Configuration::TwoTight));
        assert!(matches!(d.rationale, Rationale::Predicted { .. }));

        // Impossible cap: infeasible, lowest-power fallback.
        let ctx = DecisionCtx {
            phase,
            shape: &shape,
            candidates: &candidates,
            power_cap_w: Some(10.0),
            dvfs: None,
        };
        let d = c.decide(&ctx);
        assert!(matches!(d.rationale, Rationale::Infeasible { .. }));
        assert_eq!(d.configuration(&shape), Some(Configuration::One));

        // An unknown phase falls back to the sampling configuration.
        let candidates = CandidatePerf::all_unknown();
        let d = c.decide(&DecisionCtx::unconstrained(PhaseId::new(99), &shape, &candidates));
        assert_eq!(d.configuration(&shape), Some(Configuration::Four));
    }

    #[test]
    fn oracle_controller_matches_the_free_standing_oracle() {
        let machine = Machine::xeon_qx6600();
        let shape = shape_of(&machine);
        let bench = suite::benchmark(BenchmarkId::Sp);
        let mut oracle = OracleController::for_benchmark(&machine, &bench);
        let candidates = CandidatePerf::all_unknown();
        let expected = crate::oracle::phase_optimal(&machine, &bench);
        for (i, want) in expected.iter().enumerate() {
            let ctx = DecisionCtx::unconstrained(PhaseId::new(i as u32), &shape, &candidates);
            let d = oracle.decide(&ctx);
            assert_eq!(d.configuration(&shape), Some(*want), "phase {i}");
            assert!(matches!(d.rationale, Rationale::Oracle { .. }));
        }
    }

    #[test]
    fn empirical_search_controller_explores_then_locks() {
        let shape = quad();
        let phase = PhaseId::new(0);
        let candidates = CandidatePerf::all_unknown();
        let mut c = EmpiricalSearchController::default();
        // Time per configuration: TwoLoose is fastest.
        let times = [10.0, 8.0, 4.0, 6.0, 7.0];
        for (i, (&config, time)) in Configuration::ALL.iter().zip(times).enumerate() {
            let ctx = DecisionCtx::unconstrained(phase, &shape, &candidates);
            let d = c.decide(&ctx);
            assert_eq!(d.configuration(&shape), Some(config), "step {i} explores in order");
            assert!(matches!(d.rationale, Rationale::Exploring { .. }));
            c.observe(phase, &PhaseSample::measurement(config, time));
        }
        let d = c.decide(&DecisionCtx::unconstrained(phase, &shape, &candidates));
        assert_eq!(d.configuration(&shape), Some(Configuration::TwoLoose));
        assert!(matches!(d.rationale, Rationale::Measured { .. }));
        // Deciding repeatedly does not advance the search.
        let again = c.decide(&DecisionCtx::unconstrained(phase, &shape, &candidates));
        assert_eq!(again, d);
    }

    #[test]
    fn frequency_scaling_helpers_match_the_stall_compute_split() {
        // Pure compute: IPC constant, throughput falls with the clock.
        assert!((frequency_scaled_ipc(2.0, 0.0, 0.5) - 2.0).abs() < 1e-12);
        assert!((frequency_throughput_scale(0.0, 0.5) - 0.5).abs() < 1e-12);
        // Pure stall: IPC rises as 1/s, throughput unchanged.
        assert!((frequency_scaled_ipc(2.0, 1.0, 0.5) - 4.0).abs() < 1e-12);
        assert!((frequency_throughput_scale(1.0, 0.5) - 1.0).abs() < 1e-12);
        // Nominal is always the identity.
        assert_eq!(frequency_scaled_ipc(2.0, 0.3, 1.0), 2.0);
        assert_eq!(frequency_throughput_scale(0.3, 1.0), 1.0);
        // Out-of-range stall fractions are clamped, not trusted.
        assert!((frequency_scaled_ipc(2.0, 7.0, 0.5) - 4.0).abs() < 1e-12);
        assert!((frequency_scaled_ipc(2.0, -3.0, 0.5) - 2.0).abs() < 1e-12);
    }

    /// A 2-step script ladder (nominal + a half-speed step) plus per-cell
    /// powers where only deep cells fit a tight cap.
    fn joint_fixture(ladder: &FreqLadder) -> Vec<JointPerf> {
        let mut joint = Vec::new();
        for &config in &Configuration::ALL {
            for step_idx in 0..ladder.len() {
                let dyn_scale = ladder.dynamic_power_scale(step_idx).unwrap();
                joint.push(JointPerf::with_power(
                    config,
                    FreqStep::new(step_idx as u8),
                    100.0 + 15.0 * config.num_threads() as f64 * dyn_scale,
                ));
            }
        }
        joint
    }

    #[test]
    fn joint_selection_downclocks_memory_bound_phases_under_a_cap() {
        let ladder = FreqLadder::new(vec![
            xeon_sim::FreqPoint { ghz: 2.0, vdd: 1.2 },
            xeon_sim::FreqPoint { ghz: 1.0, vdd: 1.0 },
        ])
        .unwrap();
        let joint = joint_fixture(&ladder);
        let space = DvfsSpace { ladder: &ladder, joint: &joint };
        let candidates = CandidatePerf::all_unknown();

        // A memory-bound phase (stall 0.9) whose IPC saturates beyond two
        // threads. Cap admits Four only at the deep step
        // (100 + 60·(0.5·(1/1.2)²·…)) but not at nominal.
        let ipc_of = |c: Configuration| match c {
            Configuration::One => 0.9,
            Configuration::TwoTight => 1.3,
            Configuration::TwoLoose => 1.45,
            Configuration::Three => 1.5,
            Configuration::Four => 1.55,
        };
        let four_nominal = space.power_of(Configuration::Four, FreqStep::NOMINAL).unwrap();
        let four_deep = space.power_of(Configuration::Four, FreqStep::new(1)).unwrap();
        assert!(four_deep < four_nominal);
        let cap = four_deep + 1.0;

        let (config, step, expected_ipc) =
            best_joint_by_throughput(&candidates, &space, Some(cap), 0.9, ipc_of).unwrap();
        assert_eq!(config, Configuration::Four, "memory-bound: keep the threads");
        assert_eq!(step, FreqStep::new(1), "…and downclock to fit the cap");
        assert!(expected_ipc > ipc_of(Configuration::Four), "per-cycle IPC rises at low clock");

        // The same cap on a compute-bound phase (stall 0): downclocking costs
        // full throughput, so fewer threads at nominal speed win.
        let (config, step, _) =
            best_joint_by_throughput(&candidates, &space, Some(cap), 0.0, ipc_of).unwrap();
        assert!(
            step.is_nominal() || config.num_threads() < 4,
            "compute-bound phases should not blindly keep max width at the ladder bottom"
        );

        // No cap: nominal wins outright for any stall fraction below 1.
        let (config, step, _) =
            best_joint_by_throughput(&candidates, &space, None, 0.9, ipc_of).unwrap();
        assert_eq!((config, step), (Configuration::Four, FreqStep::NOMINAL));

        // An impossible cap admits nothing.
        assert!(best_joint_by_throughput(&candidates, &space, Some(10.0), 0.9, ipc_of).is_none());
    }

    #[test]
    fn per_configuration_stall_model_corrects_narrow_config_extrapolation() {
        // The sampling configuration (4 threads) is heavily memory-bound
        // (μ = 0.9) because four threads fight for the bus — but a single
        // thread contends far less (μ = 0.2). Extrapolating One's ladder
        // with the *sampled* μ overstates how well it tolerates
        // downclocking; the per-configuration stall model corrects it.
        let ladder = FreqLadder::new(vec![
            xeon_sim::FreqPoint { ghz: 2.0, vdd: 1.2 },
            xeon_sim::FreqPoint { ghz: 1.0, vdd: 1.0 },
        ])
        .unwrap();
        let candidates = CandidatePerf::all_unknown();
        let ipc_of = |c: Configuration| match c {
            Configuration::One => 2.0,
            Configuration::TwoTight => 1.5,
            _ => 0.1,
        };
        // Powers: cap admits One only at the deep step, TwoTight at nominal.
        let power = |config: Configuration, step: FreqStep| match (config, step.index()) {
            (Configuration::One, 0) => 140.0,
            (Configuration::One, 1) => 110.0,
            (Configuration::TwoTight, _) => 120.0,
            _ => 200.0,
        };
        let cells = |stall_one: Option<f64>| -> Vec<JointPerf> {
            Configuration::ALL
                .iter()
                .flat_map(|&config| {
                    (0..ladder.len()).map(move |s| {
                        let step = FreqStep::new(s as u8);
                        JointPerf {
                            config,
                            step,
                            avg_power_w: Some(power(config, step)),
                            stall_fraction: if config == Configuration::One {
                                stall_one
                            } else {
                                Some(0.9)
                            },
                        }
                    })
                })
                .collect()
        };
        let cap = Some(125.0);

        // Without per-cell stalls the sampled μ = 0.9 rules: One at the
        // ladder bottom looks almost free (predicted throughput
        // 2.0 × 0.91 ≈ 1.82 > 1.5) — the narrow-configuration
        // misprediction.
        let joint = cells(None);
        let space = DvfsSpace { ladder: &ladder, joint: &joint };
        let (config, step, _) =
            best_joint_by_throughput(&candidates, &space, cap, 0.9, ipc_of).unwrap();
        assert_eq!((config, step), (Configuration::One, FreqStep::new(1)));

        // With One's own converged μ = 0.2 the rule knows the truth: the
        // downclocked single thread loses nearly half its throughput
        // (2.0 × 0.56 ≈ 1.11 < 1.5), so two tight threads at nominal win.
        let joint = cells(Some(0.2));
        let space = DvfsSpace { ladder: &ladder, joint: &joint };
        let (config, step, _) =
            best_joint_by_throughput(&candidates, &space, cap, 0.9, ipc_of).unwrap();
        assert_eq!((config, step), (Configuration::TwoTight, FreqStep::NOMINAL));
    }

    #[test]
    fn table_controller_ranks_the_joint_space_when_offered_a_ladder() {
        let ladder = FreqLadder::new(vec![
            xeon_sim::FreqPoint { ghz: 2.0, vdd: 1.2 },
            xeon_sim::FreqPoint { ghz: 1.0, vdd: 1.0 },
        ])
        .unwrap();
        let joint = joint_fixture(&ladder);
        let space = DvfsSpace { ladder: &ladder, joint: &joint };
        let shape = quad();
        let phase = PhaseId::new(0);
        // Saturated memory-bound phase: sampling config wins at nominal.
        let decision = select_configuration(
            1.55,
            &[
                (Configuration::One, 0.9),
                (Configuration::TwoTight, 1.3),
                (Configuration::TwoLoose, 1.45),
                (Configuration::Three, 1.5),
            ],
        );
        let mut c = DecisionTableController::new([(phase, decision)]);
        c.observe(phase, &PhaseSample::sampling(vec![1.0], 1.55, 1.0).with_stall_fraction(0.9));

        let candidates = CandidatePerf::all_unknown();
        let cap = space.power_of(Configuration::Four, FreqStep::new(1)).unwrap() + 1.0;
        let ctx = DecisionCtx {
            phase,
            shape: &shape,
            candidates: &candidates,
            power_cap_w: Some(cap),
            dvfs: Some(space),
        };
        let d = c.decide(&ctx);
        assert_eq!(d.configuration(&shape), Some(Configuration::Four));
        assert_eq!(
            d.freq_step,
            FreqStep::new(1),
            "joint mode downclocks instead of dropping threads"
        );

        // Without the ladder the same cap forces a thread drop — DCT-only.
        let powers: Vec<CandidatePerf> = Configuration::ALL
            .iter()
            .map(|&config| CandidatePerf {
                config,
                avg_power_w: space.power_of(config, FreqStep::NOMINAL),
            })
            .collect();
        let ctx = DecisionCtx {
            phase,
            shape: &shape,
            candidates: &powers,
            power_cap_w: Some(cap),
            dvfs: None,
        };
        let d = c.decide(&ctx);
        assert!(d.freq_step.is_nominal(), "no ladder offered ⇒ nominal decisions only");
        assert!(d.configuration(&shape).unwrap().num_threads() < 4);
    }

    #[test]
    fn joint_search_explores_the_grid_and_locks_the_fastest_cell() {
        let ladder = FreqLadder::new(vec![
            xeon_sim::FreqPoint { ghz: 2.0, vdd: 1.2 },
            xeon_sim::FreqPoint { ghz: 1.0, vdd: 1.0 },
        ])
        .unwrap();
        let joint = joint_fixture(&ladder);
        let space = DvfsSpace { ladder: &ladder, joint: &joint };
        let shape = quad();
        let phase = PhaseId::new(0);
        let candidates = CandidatePerf::all_unknown();
        let ctx = DecisionCtx {
            phase,
            shape: &shape,
            candidates: &candidates,
            power_cap_w: None,
            dvfs: Some(space),
        };

        let mut c = JointSearchController::default();
        // 5 configurations × 2 steps = 10 cells, configuration-major.
        let mut explored = Vec::new();
        for i in 0..10 {
            let d = c.decide(&ctx);
            assert!(
                matches!(d.rationale, Rationale::Exploring { tried, total: 10 } if tried == i),
                "step {i}: {:?}",
                d.rationale
            );
            let cell = (d.configuration(&shape).unwrap(), d.freq_step);
            explored.push(cell);
            // TwoLoose at the deep step is fastest; everything else slower.
            let time = if cell == (Configuration::TwoLoose, FreqStep::new(1)) {
                2.0
            } else {
                5.0 + i as f64
            };
            c.observe(phase, &PhaseSample::measurement_at(cell.0, cell.1, time));
        }
        assert_eq!(explored.len(), 10);
        assert_eq!(explored[0], (Configuration::One, FreqStep::NOMINAL));
        assert_eq!(explored[1], (Configuration::One, FreqStep::new(1)));
        let d = c.decide(&ctx);
        assert_eq!(d.configuration(&shape), Some(Configuration::TwoLoose));
        assert_eq!(d.freq_step, FreqStep::new(1));
        assert!(matches!(d.rationale, Rationale::Measured { time_s } if time_s == 2.0));
        // Deciding again changes nothing.
        assert_eq!(c.decide(&ctx), d);

        // Same script on a fresh controller: bit-identical decisions.
        let mut fresh = JointSearchController::default();
        for &(config, step) in &explored {
            let time = if (config, step) == (Configuration::TwoLoose, FreqStep::new(1)) {
                2.0
            } else {
                5.0 + explored.iter().position(|c| *c == (config, step)).unwrap() as f64
            };
            fresh.observe(phase, &PhaseSample::measurement_at(config, step, time));
        }
        assert_eq!(fresh.decide(&ctx), d, "same observations, same locked cell");
    }

    #[test]
    fn joint_search_without_a_ladder_matches_the_nominal_search_space() {
        let shape = quad();
        let phase = PhaseId::new(0);
        let candidates = CandidatePerf::all_unknown();
        let mut c = JointSearchController::default();
        let times = [10.0, 8.0, 4.0, 6.0, 7.0];
        for (&config, time) in Configuration::ALL.iter().zip(times) {
            let ctx = DecisionCtx::unconstrained(phase, &shape, &candidates);
            let d = c.decide(&ctx);
            assert_eq!(d.configuration(&shape), Some(config));
            assert!(d.freq_step.is_nominal(), "no ladder ⇒ nominal-only exploration");
            c.observe(phase, &PhaseSample::measurement(config, time));
        }
        let d = c.decide(&DecisionCtx::unconstrained(phase, &shape, &candidates));
        assert_eq!(d.configuration(&shape), Some(Configuration::TwoLoose));
        assert!(d.freq_step.is_nominal());
    }

    #[test]
    fn joint_search_skips_cells_over_the_cap_and_reports_infeasibility() {
        let ladder = FreqLadder::new(vec![
            xeon_sim::FreqPoint { ghz: 2.0, vdd: 1.2 },
            xeon_sim::FreqPoint { ghz: 1.0, vdd: 1.0 },
        ])
        .unwrap();
        let joint = joint_fixture(&ladder);
        let space = DvfsSpace { ladder: &ladder, joint: &joint };
        let shape = quad();
        let phase = PhaseId::new(0);
        let candidates = CandidatePerf::all_unknown();

        // Cap below every cell: infeasible, deepest-step fallback.
        let ctx = DecisionCtx {
            phase,
            shape: &shape,
            candidates: &candidates,
            power_cap_w: Some(10.0),
            dvfs: Some(space),
        };
        let mut c = JointSearchController::default();
        let d = c.decide(&ctx);
        assert!(matches!(d.rationale, Rationale::Infeasible { .. }));
        assert_eq!(d.freq_step, FreqStep::new(1), "fallback sits at the ladder bottom");

        // Cap admitting only single-thread cells: exploration never leaves
        // them.
        let one_deep = space.power_of(Configuration::One, FreqStep::new(1)).unwrap();
        let ctx = DecisionCtx {
            phase,
            shape: &shape,
            candidates: &candidates,
            power_cap_w: Some(one_deep + 0.1),
            dvfs: Some(space),
        };
        for _ in 0..4 {
            let d = c.decide(&ctx);
            if matches!(d.rationale, Rationale::Exploring { .. } | Rationale::Measured { .. }) {
                assert_eq!(d.configuration(&shape), Some(Configuration::One));
            }
            let cell = (d.configuration(&shape).unwrap(), d.freq_step);
            c.observe(phase, &PhaseSample::measurement_at(cell.0, cell.1, 3.0));
        }
    }

    #[test]
    fn interned_policy_matches_live_ranking_bitwise_across_the_cap_axis() {
        let ladder = FreqLadder::new(vec![
            xeon_sim::FreqPoint { ghz: 2.0, vdd: 1.2 },
            xeon_sim::FreqPoint { ghz: 1.5, vdd: 1.1 },
            xeon_sim::FreqPoint { ghz: 1.0, vdd: 1.0 },
        ])
        .unwrap();
        let joint = joint_fixture(&ladder);
        let space = DvfsSpace { ladder: &ladder, joint: &joint };
        let powers = [95.0, 120.0, 125.0, 140.0, 160.0];
        let candidates: Vec<CandidatePerf> = Configuration::ALL
            .iter()
            .zip(powers)
            .map(|(&config, w)| CandidatePerf { config, avg_power_w: Some(w) })
            .collect();
        let ipc_of = |c: Configuration| match c {
            Configuration::One => 0.9,
            Configuration::TwoTight => 1.3,
            Configuration::TwoLoose => 1.45,
            Configuration::Three => 1.5,
            Configuration::Four => 1.55,
        };
        for stall in [0.0, 0.35, 0.9] {
            let interned = InternedJointPolicy::build(&candidates, &space, stall, ipc_of);
            // Probe every threshold exactly, just under, just over, far
            // below everything, far above everything, and the uncapped case.
            let mut caps: Vec<Option<f64>> = vec![None, Some(1.0), Some(1e6)];
            for cell in &joint {
                let w = cell.avg_power_w.unwrap();
                caps.extend([Some(w), Some(w - 1e-9), Some(w + 1e-9)]);
            }
            for cap in caps {
                let live = best_joint_by_throughput(&candidates, &space, cap, stall, ipc_of);
                let fast = interned.lookup(cap);
                match (live, fast) {
                    (None, None) => {}
                    (Some((lc, ls, li)), Some((fc, fs, fi))) => {
                        assert_eq!((lc, ls), (fc, fs), "cap {cap:?} stall {stall}");
                        assert_eq!(
                            li.to_bits(),
                            fi.to_bits(),
                            "expected IPC diverged at cap {cap:?} stall {stall}"
                        );
                    }
                    (live, fast) => panic!("cap {cap:?}: live {live:?} vs interned {fast:?}"),
                }
            }
            assert_eq!(interned.buckets(), interned.thresholds.len() + 1);
        }
    }

    #[test]
    fn table_controller_interning_is_invisible_and_tracks_stall_updates() {
        let ladder = FreqLadder::new(vec![
            xeon_sim::FreqPoint { ghz: 2.0, vdd: 1.2 },
            xeon_sim::FreqPoint { ghz: 1.0, vdd: 1.0 },
        ])
        .unwrap();
        let joint = joint_fixture(&ladder);
        let shape = quad();
        let phase = PhaseId::new(0);
        let decision = select_configuration(
            1.55,
            &[
                (Configuration::One, 0.9),
                (Configuration::TwoTight, 1.3),
                (Configuration::TwoLoose, 1.45),
                (Configuration::Three, 1.5),
            ],
        );
        let candidates = CandidatePerf::all_unknown();
        let caps: Vec<Option<f64>> = std::iter::once(None)
            .chain(joint.iter().map(|c| Some(c.avg_power_w.unwrap() + 0.5)))
            .collect();
        let mut cached = DecisionTableController::new([(phase, decision.clone())]);
        for stall in [0.9, 0.1] {
            // Re-observing with a new stall split must invalidate the
            // interned table, not serve answers priced with the old μ.
            cached.observe(
                phase,
                &PhaseSample::sampling(vec![1.0], 1.55, 1.0).with_stall_fraction(stall),
            );
            for &cap in &caps {
                // A fresh controller re-ranks live every time (its interned
                // table is built and used exactly once per decide).
                let mut live = DecisionTableController::new([(phase, decision.clone())]);
                live.observe(
                    phase,
                    &PhaseSample::sampling(vec![1.0], 1.55, 1.0).with_stall_fraction(stall),
                );
                let space = DvfsSpace { ladder: &ladder, joint: &joint };
                let ctx = DecisionCtx {
                    phase,
                    shape: &shape,
                    candidates: &candidates,
                    power_cap_w: cap,
                    dvfs: Some(space),
                };
                // Decide twice on the cached controller: the second decide
                // is the pure table-lookup steady state.
                let first = cached.decide(&ctx);
                let second = cached.decide(&ctx);
                let want = live.decide(&ctx);
                assert_eq!(first, want, "cap {cap:?} stall {stall}");
                assert_eq!(second, want, "steady-state lookup diverged at cap {cap:?}");
            }
        }
        // A changed menu (different joint powers) also invalidates.
        let mut shifted = joint.clone();
        for cell in &mut shifted {
            cell.avg_power_w = cell.avg_power_w.map(|w| w + 7.0);
        }
        let space = DvfsSpace { ladder: &ladder, joint: &shifted };
        let ctx = DecisionCtx {
            phase,
            shape: &shape,
            candidates: &candidates,
            power_cap_w: Some(shifted[0].avg_power_w.unwrap() + 0.5),
            dvfs: Some(space),
        };
        let got = cached.decide(&ctx);
        let mut live = DecisionTableController::new([(phase, decision)]);
        live.observe(phase, &PhaseSample::sampling(vec![1.0], 1.55, 1.0).with_stall_fraction(0.1));
        assert_eq!(got, live.decide(&ctx), "menu change must rebuild the interned table");
    }

    #[test]
    fn empirical_search_tracks_coverage_by_configuration_not_by_count() {
        // Generic harnesses replay the sampling window (config 4) alongside
        // decided configurations; duplicates must not consume exploration
        // slots or let the search lock before every candidate is measured.
        let shape = quad();
        let phase = PhaseId::new(1);
        let candidates = CandidatePerf::all_unknown();
        let mut c = EmpiricalSearchController::default();
        for _ in 0..10 {
            c.observe(phase, &PhaseSample::measurement(Configuration::Four, 7.0));
        }
        let d = c.decide(&DecisionCtx::unconstrained(phase, &shape, &candidates));
        assert_eq!(
            d.configuration(&shape),
            Some(Configuration::One),
            "ten duplicate measurements of config 4 leave four candidates unexplored"
        );
        assert!(matches!(d.rationale, Rationale::Exploring { tried: 1, total: 5 }));

        // Measure the rest; TwoLoose is fastest and must win despite the
        // noisy duplicates.
        for (config, time) in [
            (Configuration::One, 10.0),
            (Configuration::TwoTight, 8.0),
            (Configuration::TwoLoose, 4.0),
            (Configuration::Three, 6.0),
        ] {
            c.observe(phase, &PhaseSample::measurement(config, time));
            c.observe(phase, &PhaseSample::measurement(Configuration::Four, 7.0));
        }
        let d = c.decide(&DecisionCtx::unconstrained(phase, &shape, &candidates));
        assert_eq!(d.configuration(&shape), Some(Configuration::TwoLoose));
        assert!(matches!(d.rationale, Rationale::Measured { .. }));
    }
}
