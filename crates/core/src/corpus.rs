//! Offline training corpus.
//!
//! "The ANNs are trained offline to model the relationship between
//! performance counter event rates observed while sampling short periods of
//! program execution and the resulting performance with various levels of
//! concurrency" (Section I). A [`TrainingSample`] pairs the event-rate
//! feature vector observed on the *sampling configuration* (all four cores)
//! with the IPC achieved by the same phase on every configuration; a
//! [`TrainingCorpus`] is a set of such samples plus the event set they were
//! collected with, and supports the leave-one-application-out splits used in
//! the paper's evaluation.

use rand::Rng;
use serde::{Deserialize, Serialize};

use annlib::Dataset;
use hwcounters::{EventRates, EventSet};
use npb_workloads::{BenchmarkId, BenchmarkProfile};
use xeon_sim::{Configuration, Machine};

use crate::error::ActorError;

/// One training sample: one (possibly noisy) observation of one phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingSample {
    /// Benchmark the phase belongs to (used for leave-one-out splits).
    pub benchmark: BenchmarkId,
    /// Name of the phase.
    pub phase_name: String,
    /// Feature vector per Equation (2): sampled IPC followed by the monitored
    /// event rates, all observed on the sampling configuration.
    pub features: Vec<f64>,
    /// Aggregate IPC observed on every configuration (targets and sample).
    pub observed_ipc: Vec<(Configuration, f64)>,
}

impl TrainingSample {
    /// Observed IPC on a specific configuration.
    pub fn ipc_on(&self, config: Configuration) -> Option<f64> {
        self.observed_ipc.iter().find(|(c, _)| *c == config).map(|(_, v)| *v)
    }
}

/// A corpus of training samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingCorpus {
    /// The samples.
    pub samples: Vec<TrainingSample>,
    /// The event set the features were built from.
    pub event_set: EventSet,
}

impl TrainingCorpus {
    /// Builds a corpus by running every phase of every supplied benchmark on
    /// the machine model: `replicas` noisy observations per phase, each
    /// observed on the sampling configuration (features) and on every
    /// configuration (targets).
    pub fn build<R: Rng + ?Sized>(
        machine: &Machine,
        benchmarks: &[BenchmarkProfile],
        event_set: &EventSet,
        replicas: usize,
        noise: f64,
        rng: &mut R,
    ) -> Result<Self, ActorError> {
        if benchmarks.is_empty() {
            return Err(ActorError::EmptyCorpus { reason: "no benchmarks supplied".into() });
        }
        let replicas = replicas.max(1);
        let mut samples = Vec::new();
        for bench in benchmarks {
            for phase in &bench.phases {
                for _ in 0..replicas {
                    let sample_exec = machine.simulate_phase_noisy(
                        phase,
                        &Configuration::SAMPLE.placement(machine.topology()),
                        noise,
                        rng,
                    );
                    let rates = EventRates::from_counters(&sample_exec.counters, event_set)
                        .ok_or_else(|| ActorError::EmptyCorpus {
                            reason: format!("phase {} produced no cycles", phase.name),
                        })?;

                    let mut observed = Vec::with_capacity(Configuration::ALL.len());
                    for &config in &Configuration::ALL {
                        let exec = machine.simulate_phase_noisy(
                            phase,
                            &config.placement(machine.topology()),
                            noise,
                            rng,
                        );
                        observed.push((config, exec.aggregate_ipc));
                    }
                    // Keep the sampling-configuration IPC consistent with the
                    // feature vector (they describe the same observation).
                    if let Some(entry) =
                        observed.iter_mut().find(|(c, _)| *c == Configuration::SAMPLE)
                    {
                        entry.1 = rates.ipc();
                    }
                    samples.push(TrainingSample {
                        benchmark: bench.id,
                        phase_name: phase.name.clone(),
                        features: rates.features(),
                        observed_ipc: observed,
                    });
                }
            }
        }
        Ok(Self { samples, event_set: event_set.clone() })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Benchmarks present in the corpus.
    pub fn benchmarks(&self) -> Vec<BenchmarkId> {
        let mut ids: Vec<BenchmarkId> = self.samples.iter().map(|s| s.benchmark).collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Leave-one-application-out: everything except `excluded`.
    pub fn excluding(&self, excluded: BenchmarkId) -> TrainingCorpus {
        TrainingCorpus {
            samples: self.samples.iter().filter(|s| s.benchmark != excluded).cloned().collect(),
            event_set: self.event_set.clone(),
        }
    }

    /// Only the samples of one benchmark.
    pub fn only(&self, benchmark: BenchmarkId) -> TrainingCorpus {
        TrainingCorpus {
            samples: self.samples.iter().filter(|s| s.benchmark == benchmark).cloned().collect(),
            event_set: self.event_set.clone(),
        }
    }

    /// Builds the supervised dataset for one target configuration:
    /// features → observed IPC on that configuration.
    pub fn dataset_for_target(&self, target: Configuration) -> Result<Dataset, ActorError> {
        if self.samples.is_empty() {
            return Err(ActorError::EmptyCorpus { reason: "corpus has no samples".into() });
        }
        let mut xs = Vec::with_capacity(self.samples.len());
        let mut ys = Vec::with_capacity(self.samples.len());
        for s in &self.samples {
            let ipc = s.ipc_on(target).ok_or_else(|| ActorError::EmptyCorpus {
                reason: format!("sample {} lacks an observation for {}", s.phase_name, target),
            })?;
            xs.push(s.features.clone());
            ys.push(vec![ipc]);
        }
        Dataset::new(xs, ys).map_err(ActorError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npb_workloads::suite;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_corpus() -> TrainingCorpus {
        let machine = Machine::xeon_qx6600();
        let benches = vec![suite::benchmark(BenchmarkId::Cg), suite::benchmark(BenchmarkId::Is)];
        let mut rng = StdRng::seed_from_u64(5);
        TrainingCorpus::build(&machine, &benches, &EventSet::full(), 2, 0.05, &mut rng).unwrap()
    }

    #[test]
    fn corpus_covers_all_phases_and_replicas() {
        let corpus = small_corpus();
        // CG has 5 phases, IS has 3; 2 replicas each.
        assert_eq!(corpus.len(), (5 + 3) * 2);
        assert!(!corpus.is_empty());
        assert_eq!(corpus.benchmarks(), vec![BenchmarkId::Cg, BenchmarkId::Is]);
        for s in &corpus.samples {
            assert_eq!(s.features.len(), 13, "12 event rates + sampled IPC");
            assert_eq!(s.observed_ipc.len(), 5);
            assert!(s.features[0] > 0.0, "sampled IPC must be positive");
            assert!(s.ipc_on(Configuration::One).unwrap() > 0.0);
        }
    }

    #[test]
    fn empty_inputs_are_rejected() {
        let machine = Machine::xeon_qx6600();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            TrainingCorpus::build(&machine, &[], &EventSet::full(), 1, 0.0, &mut rng),
            Err(ActorError::EmptyCorpus { .. })
        ));
    }

    #[test]
    fn leave_one_out_split_is_disjoint_and_complete() {
        let corpus = small_corpus();
        let without_cg = corpus.excluding(BenchmarkId::Cg);
        let only_cg = corpus.only(BenchmarkId::Cg);
        assert_eq!(without_cg.len() + only_cg.len(), corpus.len());
        assert!(without_cg.samples.iter().all(|s| s.benchmark != BenchmarkId::Cg));
        assert!(only_cg.samples.iter().all(|s| s.benchmark == BenchmarkId::Cg));
        // Excluding a benchmark not present is a no-op.
        assert_eq!(corpus.excluding(BenchmarkId::Bt).len(), corpus.len());
    }

    #[test]
    fn dataset_for_target_has_matching_dimensions() {
        let corpus = small_corpus();
        let ds = corpus.dataset_for_target(Configuration::TwoLoose).unwrap();
        assert_eq!(ds.len(), corpus.len());
        assert_eq!(ds.input_dim(), 13);
        assert_eq!(ds.output_dim(), 1);
        // Empty corpus errors.
        let empty = corpus.only(BenchmarkId::Bt);
        assert!(empty.dataset_for_target(Configuration::One).is_err());
    }

    #[test]
    fn noisy_replicas_differ_but_describe_the_same_phase() {
        let corpus = small_corpus();
        // Find the two replicas of cg.spmv: same name, different features.
        let spmv: Vec<&TrainingSample> =
            corpus.samples.iter().filter(|s| s.phase_name == "cg.spmv").collect();
        assert_eq!(spmv.len(), 2);
        assert_ne!(spmv[0].features, spmv[1].features);
        // But they are close (5% jitter).
        let rel = (spmv[0].features[0] - spmv[1].features[0]).abs() / spmv[0].features[0];
        assert!(rel < 0.5);
    }

    #[test]
    fn scaling_phases_show_higher_target_ipc_than_sampled_contention() {
        // For a poorly-scaling benchmark like IS, the observed IPC on 2b
        // should exceed the IPC on the saturated 4-core sample configuration.
        let corpus = small_corpus();
        let rank = corpus.samples.iter().find(|s| s.phase_name == "is.rank").unwrap();
        let ipc_2b = rank.ipc_on(Configuration::TwoLoose).unwrap();
        let ipc_4 = rank.ipc_on(Configuration::Four).unwrap();
        assert!(
            ipc_2b > ipc_4,
            "IS rank phase should achieve higher IPC on 2b ({ipc_2b}) than on 4 ({ipc_4})"
        );
    }
}
