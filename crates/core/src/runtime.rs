//! Live ACTOR runtime: a [`phase_rt::RegionListener`] that throttles real
//! parallel regions.
//!
//! Three throttling modes are provided for the live path (where phases are
//! real code running on real threads rather than machine-model profiles):
//!
//! * [`ThrottleMode::Search`] — the online empirical-search strategy of the
//!   authors' earlier work \[17\]: the first executions of each phase try every
//!   candidate binding once, measuring wall-clock time; the fastest binding
//!   is then locked in for all subsequent executions. This is the strategy
//!   ACTOR's prediction approach is designed to out-scale (its exploration
//!   cost grows with the number of configurations), but it is fully
//!   model-free and therefore ideal for live demonstrations.
//! * [`ThrottleMode::Fixed`] — apply a pre-computed plan (e.g. decisions
//!   produced by the ANN predictor offline) to the phases of a live program.
//! * [`ThrottleMode::Controller`] — the closed loop: any
//!   [`PowerPerfController`] sits behind the shared
//!   [`crate::control_plane::ControlPlane`] and is driven online. Every
//!   region execution is observed (wall-clock measurement, plus
//!   counter-derived feature windows when a [`CounterSampler`] is attached),
//!   and every upcoming execution asks the controller for its binding — the
//!   ANN predictor, the decision table, empirical/joint search, or any
//!   custom controller drives live `phase-rt` kernels end to end through
//!   the exact same decision cycle the adaptation harness and the cluster
//!   scheduler use.
//!
//! The `Search` and `Fixed` modes predate the controller trait and are kept
//! bit-for-bit: `Search` *is* [`crate::EmpiricalSearchController`]'s
//! strategy specialised to wall-clock candidates, and `Fixed` is a
//! degenerate decision table — but their decision state lives in this
//! listener so existing plans and traces stay byte-identical.

use std::collections::HashMap;
use std::fmt;

use parking_lot::Mutex;

use hwcounters::{CounterBackend, EventRates, EventSet};
use phase_rt::{Binding, PhaseId, RegionEvent, RegionListener};
use xeon_sim::{Configuration, HwEvent};

use crate::control_plane::ControlPlane;
use crate::controller::{configuration_of, CandidatePerf, PhaseSample, PowerPerfController};

/// How the live runtime decides per-phase bindings.
///
/// Marked `#[non_exhaustive]`: match with a wildcard arm downstream.
#[non_exhaustive]
pub enum ThrottleMode {
    /// Measure every candidate binding once per phase, then lock the fastest.
    Search {
        /// Candidate bindings to explore, in exploration order.
        candidates: Vec<Binding>,
    },
    /// Apply a fixed phase → binding plan; phases not in the plan run with
    /// whatever the application requested.
    Fixed {
        /// The plan.
        plan: HashMap<PhaseId, Binding>,
    },
    /// Ask a [`PowerPerfController`] before every execution, observing every
    /// completed execution — the live closed loop. The controller actuates
    /// on the host machine's shape ([`phase_rt::MachineShape::host`]); use
    /// [`ActorRuntime::controller_driven`] to pick the shape explicitly.
    Controller(Box<dyn PowerPerfController + Send>),
}

impl fmt::Debug for ThrottleMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThrottleMode::Search { candidates } => {
                f.debug_struct("Search").field("candidates", candidates).finish()
            }
            ThrottleMode::Fixed { plan } => f.debug_struct("Fixed").field("plan", plan).finish(),
            ThrottleMode::Controller(c) => f.debug_tuple("Controller").field(&c.name()).finish(),
        }
    }
}

/// One live counter window, as a [`CounterSampler`] reports it: the
/// Equation-2 feature vector plus the IPC observed over one region
/// execution (and the memory-stall split when the backend exposes it).
#[derive(Debug, Clone, PartialEq)]
pub struct CounterWindow {
    /// The ordered feature vector `[IPC, rate_1, …, rate_n]`.
    pub features: Vec<f64>,
    /// IPC observed during the window.
    pub ipc: f64,
    /// Memory-stall fraction observed during the window, if the counter
    /// source records stall cycles.
    pub stall_fraction: Option<f64>,
}

/// Online counter sampling for the live controller loop.
///
/// The runtime opens a window right before a region executes
/// ([`begin`](CounterSampler::begin)) and reads it back when the region
/// completes ([`sample`](CounterSampler::sample)); the resulting window
/// turns the wall-clock observation into a full sampling-configuration
/// [`PhaseSample`] so predictor-backed controllers (the ANN ensembles) can
/// re-predict from live event rates. Without a sampler attached, the loop
/// still runs — controllers then see plain wall-clock measurements, which
/// is all the model-free search strategies need.
pub trait CounterSampler: Send {
    /// Opens the counter window for the upcoming execution of `phase`.
    fn begin(&mut self, phase: PhaseId, instance: u64);

    /// Closes the window for the completed execution and reports it;
    /// `None` when nothing was recorded.
    fn sample(&mut self, event: &RegionEvent) -> Option<CounterWindow>;
}

/// [`CounterSampler`] over any [`hwcounters::CounterBackend`] — the bridge
/// from instrumented live kernels ([`hwcounters::SoftwareCounters`]) or the
/// virtual PMU ([`hwcounters::SimBackend`]) to the live controller loop.
pub struct BackendSampler<B: CounterBackend + Send> {
    backend: B,
    events: EventSet,
}

impl<B: CounterBackend + Send> BackendSampler<B> {
    /// Samples `events` from `backend`.
    pub fn new(backend: B, events: EventSet) -> Self {
        Self { backend, events }
    }

    /// The wrapped backend (e.g. to hand to instrumented kernels).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The wrapped backend, mutably (e.g. to feed a
    /// [`hwcounters::SimBackend`] from simulated timesteps).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }
}

impl<B: CounterBackend + Send> CounterSampler for BackendSampler<B> {
    fn begin(&mut self, _phase: PhaseId, _instance: u64) {
        // Reset the accumulation window so the next read covers exactly the
        // region body.
        let _ = self.backend.read();
    }

    fn sample(&mut self, _event: &RegionEvent) -> Option<CounterWindow> {
        let counters = self.backend.read();
        let rates = EventRates::from_counters(&counters, &self.events)?;
        let cycles = counters.get(HwEvent::Cycles);
        let stall_fraction = (cycles > 0.0)
            .then(|| (counters.get(HwEvent::MemStallCycles) / cycles).clamp(0.0, 1.0));
        Some(CounterWindow { features: rates.features(), ipc: rates.ipc(), stall_fraction })
    }
}

#[derive(Debug, Clone, Default)]
struct SearchState {
    /// Total observed time (s) per candidate index.
    observed: Vec<(usize, f64)>,
    /// Locked decision, once every candidate has been measured.
    decision: Option<usize>,
    /// Candidate that the most recent execution was asked to use.
    in_flight: Option<usize>,
}

/// The live controller loop's state (the `Controller` mode).
struct LiveLoop {
    plane: ControlPlane<Box<dyn PowerPerfController + Send>>,
    candidates: Vec<CandidatePerf>,
    power_cap_w: Option<f64>,
    sampler: Option<Box<dyn CounterSampler>>,
    /// Last validated binding per phase, for [`ActorRuntime::decision_for`].
    decisions: HashMap<PhaseId, Binding>,
}

impl fmt::Debug for LiveLoop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LiveLoop")
            .field("controller", &self.plane.controller().name())
            .field("power_cap_w", &self.power_cap_w)
            .field("decisions", &self.decisions.len())
            .finish()
    }
}

#[derive(Debug)]
enum Mode {
    Search { candidates: Vec<Binding>, state: Mutex<HashMap<PhaseId, SearchState>> },
    Fixed { plan: HashMap<PhaseId, Binding> },
    Controller(Box<Mutex<LiveLoop>>),
}

/// The live ACTOR runtime.
#[derive(Debug)]
pub struct ActorRuntime {
    mode: Mode,
}

impl ActorRuntime {
    /// Creates a runtime in the given mode. A [`ThrottleMode::Controller`]
    /// actuates on the host machine's shape; use
    /// [`ActorRuntime::controller_driven`] to choose the shape.
    pub fn new(mode: ThrottleMode) -> Self {
        match mode {
            ThrottleMode::Search { candidates } => {
                Self { mode: Mode::Search { candidates, state: Mutex::new(HashMap::new()) } }
            }
            ThrottleMode::Fixed { plan } => Self { mode: Mode::Fixed { plan } },
            ThrottleMode::Controller(controller) => {
                Self::controller_driven(controller, &phase_rt::MachineShape::host())
            }
        }
    }

    /// Creates a live controller loop actuating on `shape`: every region
    /// execution is observed, every upcoming execution asks `controller`
    /// for its binding through the shared control plane.
    pub fn controller_driven(
        controller: Box<dyn PowerPerfController + Send>,
        shape: &phase_rt::MachineShape,
    ) -> Self {
        Self {
            mode: Mode::Controller(Box::new(Mutex::new(LiveLoop {
                plane: ControlPlane::new(controller, *shape),
                candidates: CandidatePerf::all_unknown(),
                power_cap_w: None,
                sampler: None,
                decisions: HashMap::new(),
            }))),
        }
    }

    /// Sets the average-power cap offered to a controller-driven runtime
    /// (no-op in the other modes, which cannot interpret one).
    pub fn with_power_cap(self, power_cap_w: f64) -> Self {
        if let Mode::Controller(live) = &self.mode {
            live.lock().power_cap_w = Some(power_cap_w);
        }
        self
    }

    /// Attaches a telemetry sink to a controller-driven runtime (no-op in
    /// the other modes): every validated live decision then emits one
    /// [`crate::telemetry::TraceEvent::Decision`] through the shared
    /// control plane.
    #[must_use]
    pub fn with_telemetry(self, sink: crate::telemetry::SharedSink) -> Self {
        if let Mode::Controller(live) = &self.mode {
            live.lock().plane.set_telemetry(Some(sink));
        }
        self
    }

    /// Attaches an online counter sampler to a controller-driven runtime
    /// (no-op in the other modes): completed sampling-configuration
    /// executions then feed full feature windows to the controller instead
    /// of plain wall-clock measurements.
    pub fn with_counter_sampler(self, sampler: Box<dyn CounterSampler>) -> Self {
        if let Mode::Controller(live) = &self.mode {
            live.lock().sampler = Some(sampler);
        }
        self
    }

    /// Creates a search-mode runtime over the standard five configurations
    /// mapped onto the given machine shape.
    pub fn search_over_standard_configs(shape: &phase_rt::MachineShape) -> Self {
        let candidates = vec![
            Binding::packed(1, shape),
            Binding::packed(2, shape),
            Binding::spread(2, shape),
            Binding::spread(3, shape),
            Binding::packed(shape.num_cores, shape),
        ];
        Self::new(ThrottleMode::Search { candidates })
    }

    /// The decision currently in force for a phase: the planned binding
    /// (fixed mode), the locked binding (search mode; `None` while still
    /// exploring) or the most recent validated controller decision
    /// (controller mode; `None` before the phase first executed).
    pub fn decision_for(&self, phase: PhaseId) -> Option<Binding> {
        match &self.mode {
            Mode::Fixed { plan } => plan.get(&phase).cloned(),
            Mode::Search { candidates, state } => {
                let search = state.lock();
                search
                    .get(&phase)
                    .and_then(|s| s.decision)
                    .and_then(|idx| candidates.get(idx).cloned())
            }
            Mode::Controller(live) => live.lock().decisions.get(&phase).cloned(),
        }
    }

    /// All decisions currently in force, sorted by phase.
    pub fn decisions(&self) -> Vec<(PhaseId, Binding)> {
        let mut out: Vec<(PhaseId, Binding)> = match &self.mode {
            Mode::Fixed { plan } => plan.iter().map(|(p, b)| (*p, b.clone())).collect(),
            Mode::Search { candidates, state } => {
                let search = state.lock();
                search
                    .iter()
                    .filter_map(|(p, s)| s.decision.map(|i| (*p, candidates[i].clone())))
                    .collect()
            }
            Mode::Controller(live) => {
                live.lock().decisions.iter().map(|(p, b)| (*p, b.clone())).collect()
            }
        };
        out.sort_by_key(|(p, _)| *p);
        out
    }
}

impl RegionListener for ActorRuntime {
    fn before_region(
        &self,
        phase: PhaseId,
        _requested: &Binding,
        instance: u64,
    ) -> Option<Binding> {
        match &self.mode {
            Mode::Fixed { plan } => plan.get(&phase).cloned(),
            Mode::Search { candidates, state } => {
                if candidates.is_empty() {
                    return None;
                }
                let mut search = state.lock();
                let state = search.entry(phase).or_default();
                let idx = match state.decision {
                    Some(idx) => idx,
                    None => {
                        let next = state.observed.len().min(candidates.len() - 1);
                        state.in_flight = Some(next);
                        next
                    }
                };
                Some(candidates[idx].clone())
            }
            Mode::Controller(live) => {
                let live = &mut *live.lock();
                if let Some(sampler) = live.sampler.as_mut() {
                    sampler.begin(phase, instance);
                }
                // A controller contract violation in the live path is a
                // defective controller, not a runnable binding — fail loudly
                // (the same convention as the cluster policies).
                let pd = live
                    .plane
                    .decide(phase, &live.candidates, None, live.power_cap_w)
                    .unwrap_or_else(|v| panic!("live control plane: {v}"));
                live.decisions.insert(phase, pd.decision.binding.clone());
                Some(pd.decision.binding)
            }
        }
    }

    fn after_region(&self, event: &RegionEvent) {
        match &self.mode {
            Mode::Fixed { .. } => {}
            Mode::Search { candidates, state } => {
                let mut search = state.lock();
                let Some(state) = search.get_mut(&event.phase) else { return };
                if state.decision.is_some() {
                    return;
                }
                if let Some(idx) = state.in_flight.take() {
                    state.observed.push((idx, event.duration.as_secs_f64()));
                    if state.observed.len() >= candidates.len() {
                        let best = state
                            .observed
                            .iter()
                            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite durations"))
                            .map(|(idx, _)| *idx);
                        state.decision = best;
                    }
                }
            }
            Mode::Controller(live) => {
                let live = &mut *live.lock();
                // A binding outside the paper's five configurations (the
                // application requested something exotic and no override was
                // possible) carries no observable the controllers understand.
                let Some(config) = configuration_of(&event.binding, live.plane.shape()) else {
                    return;
                };
                let time_s = event.duration.as_secs_f64();
                let window = live.sampler.as_mut().and_then(|s| s.sample(event));
                let sample = match window {
                    // Counter features are only meaningful on the sampling
                    // configuration — the protocol the predictors were
                    // trained on.
                    Some(w) if config == Configuration::SAMPLE => {
                        let sample = PhaseSample::sampling(w.features, w.ipc, time_s);
                        match w.stall_fraction {
                            Some(mu) => sample.with_stall_fraction(mu),
                            None => sample,
                        }
                    }
                    _ => PhaseSample::measurement(config, time_s),
                };
                live.plane.observe(event.phase, &sample);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{EmpiricalSearchController, StaticController};
    use crate::throttle::select_configuration;
    use crate::DecisionTableController;
    use phase_rt::{MachineShape, Team};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fixed_mode_applies_the_plan() {
        let shape = MachineShape::quad_core();
        let mut plan = HashMap::new();
        plan.insert(PhaseId::new(1), Binding::packed(1, &shape));
        let runtime = ActorRuntime::new(ThrottleMode::Fixed { plan });
        let requested = Binding::packed(4, &shape);
        let throttled = runtime.before_region(PhaseId::new(1), &requested, 0).unwrap();
        assert_eq!(throttled.num_threads(), 1);
        assert!(runtime.before_region(PhaseId::new(2), &requested, 0).is_none());
        assert_eq!(runtime.decisions().len(), 1);
        assert_eq!(runtime.decision_for(PhaseId::new(1)).unwrap().num_threads(), 1);
    }

    #[test]
    fn search_mode_explores_then_locks_the_fastest_binding() {
        let shape = MachineShape::quad_core();
        let candidates = vec![
            Binding::packed(1, &shape),
            Binding::spread(2, &shape),
            Binding::packed(4, &shape),
        ];
        let runtime = ActorRuntime::new(ThrottleMode::Search { candidates: candidates.clone() });
        let phase = PhaseId::new(7);
        let requested = Binding::packed(4, &shape);

        // Simulate three executions with known durations: the 2-thread
        // binding is fastest.
        let durations = [30, 10, 20];
        for (i, ms) in durations.iter().enumerate() {
            let binding = runtime.before_region(phase, &requested, i as u64).unwrap();
            assert_eq!(binding, candidates[i], "exploration proceeds in candidate order");
            runtime.after_region(&RegionEvent {
                phase,
                binding,
                duration: Duration::from_millis(*ms),
                instance: i as u64,
            });
        }
        let decided = runtime.decision_for(phase).unwrap();
        assert_eq!(decided, candidates[1]);
        // Subsequent executions keep the decision.
        let again = runtime.before_region(phase, &requested, 3).unwrap();
        assert_eq!(again, candidates[1]);
        assert_eq!(runtime.decisions(), vec![(phase, candidates[1].clone())]);
    }

    #[test]
    fn search_runtime_drives_a_live_team() {
        let team = Team::new(4).unwrap();
        let shape = *team.shape();
        let runtime = Arc::new(ActorRuntime::search_over_standard_configs(&shape));
        team.set_listener(runtime.clone());
        let phase = PhaseId::new(42);
        let requested = Binding::packed(4, &shape);
        // Run enough instances to finish the 5-candidate exploration.
        for _ in 0..8 {
            team.run_region(phase, &requested, |_ctx| {
                // A tiny amount of work.
                std::hint::black_box((0..1000).sum::<u64>());
            });
        }
        assert!(
            runtime.decision_for(phase).is_some(),
            "after exploring all candidates the runtime must lock a decision"
        );
    }

    #[test]
    fn empty_candidate_list_never_overrides() {
        let shape = MachineShape::quad_core();
        let runtime = ActorRuntime::new(ThrottleMode::Search { candidates: vec![] });
        assert!(runtime.before_region(PhaseId::new(0), &Binding::packed(2, &shape), 0).is_none());
        assert!(runtime.decisions().is_empty());
    }

    /// Drives one phase through a scripted sequence of region executions.
    fn drive(runtime: &ActorRuntime, phase: PhaseId, shape: &MachineShape, times_ms: &[u64]) {
        let requested = Binding::packed(shape.num_cores, shape);
        for (i, ms) in times_ms.iter().enumerate() {
            let binding =
                runtime.before_region(phase, &requested, i as u64).unwrap_or(requested.clone());
            runtime.after_region(&RegionEvent {
                phase,
                binding,
                duration: Duration::from_millis(*ms),
                instance: i as u64,
            });
        }
    }

    #[test]
    fn controller_mode_replays_a_decision_table() {
        let shape = MachineShape::quad_core();
        let phase = PhaseId::new(0);
        let decision = select_configuration(
            1.0,
            &[
                (Configuration::One, 0.9),
                (Configuration::TwoTight, 1.1),
                (Configuration::TwoLoose, 1.6),
                (Configuration::Three, 1.2),
            ],
        );
        let runtime = ActorRuntime::controller_driven(
            Box::new(DecisionTableController::new([(phase, decision)])),
            &shape,
        );
        drive(&runtime, phase, &shape, &[10, 10, 10]);
        let binding = runtime.decision_for(phase).unwrap();
        assert_eq!(binding.num_threads(), 2, "the table's 2b decision is enforced live");
        assert_eq!(runtime.decisions().len(), 1);
    }

    #[test]
    fn controller_mode_closes_the_loop_with_empirical_search() {
        let shape = MachineShape::quad_core();
        let phase = PhaseId::new(3);
        let runtime =
            ActorRuntime::controller_driven(Box::new(EmpiricalSearchController::default()), &shape);
        // Five explorations (TwoLoose fastest), then the lock-in.
        drive(&runtime, phase, &shape, &[50, 40, 10, 30, 20, 25, 25]);
        let binding = runtime.decision_for(phase).unwrap();
        assert_eq!(
            binding,
            crate::controller::binding_for(Configuration::TwoLoose, &shape),
            "the live loop must lock the fastest measured configuration"
        );
    }

    #[test]
    fn controller_mode_drives_a_live_team() {
        let team = Team::new(4).unwrap();
        let shape = *team.shape();
        let runtime = Arc::new(ActorRuntime::controller_driven(
            Box::new(EmpiricalSearchController::default()),
            &shape,
        ));
        team.set_listener(runtime.clone());
        let phase = PhaseId::new(11);
        let requested = Binding::packed(4, &shape);
        for _ in 0..8 {
            team.run_region(phase, &requested, |_ctx| {
                std::hint::black_box((0..1000).sum::<u64>());
            });
        }
        team.clear_listener();
        assert!(
            runtime.decision_for(phase).is_some(),
            "after exploring every configuration the controller locks a decision"
        );
    }

    #[test]
    fn controller_mode_feeds_counter_windows_on_the_sampling_configuration() {
        use hwcounters::SimBackend;
        use xeon_sim::CounterVector;

        // A sampler whose windows carry a fixed feature vector.
        let mut backend = SimBackend::new();
        let mut cv = CounterVector::zero();
        cv.set(HwEvent::Cycles, 1000.0);
        cv.set(HwEvent::Instructions, 1500.0);
        cv.set(HwEvent::MemStallCycles, 400.0);
        backend.push_timestep(cv.clone());

        let mut sampler = BackendSampler::new(backend, EventSet::reduced());
        sampler.begin(PhaseId::new(0), 0);
        // begin() drained the pending window, so the post-region read sees
        // an empty window and reports nothing.
        let event = RegionEvent {
            phase: PhaseId::new(0),
            binding: Binding::packed(4, &MachineShape::quad_core()),
            duration: Duration::from_millis(5),
            instance: 0,
        };
        let window = sampler.sample(&event);
        assert!(window.is_none(), "an empty window reports nothing");

        // A recorded window converts into features + IPC + stall split.
        sampler.backend_mut().push_timestep(cv);
        let window = sampler.sample(&event).expect("a recorded window yields rates");
        assert!((window.ipc - 1.5).abs() < 1e-12);
        assert_eq!(window.stall_fraction, Some(0.4));
        assert_eq!(window.features[0], window.ipc, "feature 0 is the sampled IPC");

        // The static controller ignores the features, but the loop must
        // still deliver them without panicking.
        let shape = MachineShape::quad_core();
        let runtime =
            ActorRuntime::controller_driven(Box::new(StaticController::os_default()), &shape)
                .with_counter_sampler(Box::new(BackendSampler::new(
                    SimBackend::new(),
                    EventSet::reduced(),
                )));
        drive(&runtime, PhaseId::new(9), &shape, &[5, 5]);
        assert_eq!(runtime.decision_for(PhaseId::new(9)).unwrap().num_threads(), 4);
    }

    #[test]
    fn throttle_mode_debug_names_the_controller() {
        let mode = ThrottleMode::Controller(Box::new(StaticController::os_default()));
        assert!(format!("{mode:?}").contains("os-default"));
        let runtime = ActorRuntime::new(mode);
        assert!(runtime.decisions().is_empty());
    }
}
