//! Live ACTOR runtime: a [`phase_rt::RegionListener`] that throttles real
//! parallel regions.
//!
//! Two throttling modes are provided for the live path (where phases are real
//! code running on real threads rather than machine-model profiles):
//!
//! * [`ThrottleMode::Search`] — the online empirical-search strategy of the
//!   authors' earlier work \[17\]: the first executions of each phase try every
//!   candidate binding once, measuring wall-clock time; the fastest binding
//!   is then locked in for all subsequent executions. This is the strategy
//!   ACTOR's prediction approach is designed to out-scale (its exploration
//!   cost grows with the number of configurations), but it is fully
//!   model-free and therefore ideal for live demonstrations.
//! * [`ThrottleMode::Fixed`] — apply a pre-computed plan (e.g. decisions
//!   produced by the ANN predictor offline) to the phases of a live program.

use std::collections::HashMap;

use parking_lot::Mutex;

use phase_rt::{Binding, PhaseId, RegionEvent, RegionListener};

/// How the live runtime decides per-phase bindings.
///
/// Marked `#[non_exhaustive]`: a controller-driven mode (wrapping any
/// [`crate::controller::PowerPerfController`]) is the next planned variant;
/// match with a wildcard arm downstream.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ThrottleMode {
    /// Measure every candidate binding once per phase, then lock the fastest.
    Search {
        /// Candidate bindings to explore, in exploration order.
        candidates: Vec<Binding>,
    },
    /// Apply a fixed phase → binding plan; phases not in the plan run with
    /// whatever the application requested.
    Fixed {
        /// The plan.
        plan: HashMap<PhaseId, Binding>,
    },
}

#[derive(Debug, Clone, Default)]
struct SearchState {
    /// Total observed time (s) per candidate index.
    observed: Vec<(usize, f64)>,
    /// Locked decision, once every candidate has been measured.
    decision: Option<usize>,
    /// Candidate that the most recent execution was asked to use.
    in_flight: Option<usize>,
}

/// The live ACTOR runtime.
#[derive(Debug)]
pub struct ActorRuntime {
    mode: ThrottleMode,
    search: Mutex<HashMap<PhaseId, SearchState>>,
}

impl ActorRuntime {
    /// Creates a runtime in the given mode.
    pub fn new(mode: ThrottleMode) -> Self {
        Self { mode, search: Mutex::new(HashMap::new()) }
    }

    /// Creates a search-mode runtime over the standard five configurations
    /// mapped onto the given machine shape.
    pub fn search_over_standard_configs(shape: &phase_rt::MachineShape) -> Self {
        let candidates = vec![
            Binding::packed(1, shape),
            Binding::packed(2, shape),
            Binding::spread(2, shape),
            Binding::spread(3, shape),
            Binding::packed(shape.num_cores, shape),
        ];
        Self::new(ThrottleMode::Search { candidates })
    }

    /// The decision currently in force for a phase (search mode only):
    /// `None` while still exploring.
    pub fn decision_for(&self, phase: PhaseId) -> Option<Binding> {
        match &self.mode {
            ThrottleMode::Fixed { plan } => plan.get(&phase).cloned(),
            ThrottleMode::Search { candidates } => {
                let search = self.search.lock();
                search
                    .get(&phase)
                    .and_then(|s| s.decision)
                    .and_then(|idx| candidates.get(idx).cloned())
            }
        }
    }

    /// All locked decisions (search mode).
    pub fn decisions(&self) -> Vec<(PhaseId, Binding)> {
        match &self.mode {
            ThrottleMode::Fixed { plan } => plan.iter().map(|(p, b)| (*p, b.clone())).collect(),
            ThrottleMode::Search { candidates } => {
                let search = self.search.lock();
                let mut out: Vec<(PhaseId, Binding)> = search
                    .iter()
                    .filter_map(|(p, s)| s.decision.map(|i| (*p, candidates[i].clone())))
                    .collect();
                out.sort_by_key(|(p, _)| *p);
                out
            }
        }
    }
}

impl RegionListener for ActorRuntime {
    fn before_region(
        &self,
        phase: PhaseId,
        _requested: &Binding,
        _instance: u64,
    ) -> Option<Binding> {
        match &self.mode {
            ThrottleMode::Fixed { plan } => plan.get(&phase).cloned(),
            ThrottleMode::Search { candidates } => {
                if candidates.is_empty() {
                    return None;
                }
                let mut search = self.search.lock();
                let state = search.entry(phase).or_default();
                let idx = match state.decision {
                    Some(idx) => idx,
                    None => {
                        let next = state.observed.len().min(candidates.len() - 1);
                        state.in_flight = Some(next);
                        next
                    }
                };
                Some(candidates[idx].clone())
            }
        }
    }

    fn after_region(&self, event: &RegionEvent) {
        if let ThrottleMode::Search { candidates } = &self.mode {
            let mut search = self.search.lock();
            let Some(state) = search.get_mut(&event.phase) else { return };
            if state.decision.is_some() {
                return;
            }
            if let Some(idx) = state.in_flight.take() {
                state.observed.push((idx, event.duration.as_secs_f64()));
                if state.observed.len() >= candidates.len() {
                    let best = state
                        .observed
                        .iter()
                        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite durations"))
                        .map(|(idx, _)| *idx);
                    state.decision = best;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phase_rt::{MachineShape, Team};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fixed_mode_applies_the_plan() {
        let shape = MachineShape::quad_core();
        let mut plan = HashMap::new();
        plan.insert(PhaseId::new(1), Binding::packed(1, &shape));
        let runtime = ActorRuntime::new(ThrottleMode::Fixed { plan });
        let requested = Binding::packed(4, &shape);
        let throttled = runtime.before_region(PhaseId::new(1), &requested, 0).unwrap();
        assert_eq!(throttled.num_threads(), 1);
        assert!(runtime.before_region(PhaseId::new(2), &requested, 0).is_none());
        assert_eq!(runtime.decisions().len(), 1);
        assert_eq!(runtime.decision_for(PhaseId::new(1)).unwrap().num_threads(), 1);
    }

    #[test]
    fn search_mode_explores_then_locks_the_fastest_binding() {
        let shape = MachineShape::quad_core();
        let candidates = vec![
            Binding::packed(1, &shape),
            Binding::spread(2, &shape),
            Binding::packed(4, &shape),
        ];
        let runtime = ActorRuntime::new(ThrottleMode::Search { candidates: candidates.clone() });
        let phase = PhaseId::new(7);
        let requested = Binding::packed(4, &shape);

        // Simulate three executions with known durations: the 2-thread
        // binding is fastest.
        let durations = [30, 10, 20];
        for (i, ms) in durations.iter().enumerate() {
            let binding = runtime.before_region(phase, &requested, i as u64).unwrap();
            assert_eq!(binding, candidates[i], "exploration proceeds in candidate order");
            runtime.after_region(&RegionEvent {
                phase,
                binding,
                duration: Duration::from_millis(*ms),
                instance: i as u64,
            });
        }
        let decided = runtime.decision_for(phase).unwrap();
        assert_eq!(decided, candidates[1]);
        // Subsequent executions keep the decision.
        let again = runtime.before_region(phase, &requested, 3).unwrap();
        assert_eq!(again, candidates[1]);
        assert_eq!(runtime.decisions(), vec![(phase, candidates[1].clone())]);
    }

    #[test]
    fn search_runtime_drives_a_live_team() {
        let team = Team::new(4).unwrap();
        let shape = *team.shape();
        let runtime = Arc::new(ActorRuntime::search_over_standard_configs(&shape));
        team.set_listener(runtime.clone());
        let phase = PhaseId::new(42);
        let requested = Binding::packed(4, &shape);
        // Run enough instances to finish the 5-candidate exploration.
        for _ in 0..8 {
            team.run_region(phase, &requested, |_ctx| {
                // A tiny amount of work.
                std::hint::black_box((0..1000).sum::<u64>());
            });
        }
        assert!(
            runtime.decision_for(phase).is_some(),
            "after exploring all candidates the runtime must lock a decision"
        );
    }

    #[test]
    fn empty_candidate_list_never_overrides() {
        let shape = MachineShape::quad_core();
        let runtime = ActorRuntime::new(ThrottleMode::Search { candidates: vec![] });
        assert!(runtime.before_region(PhaseId::new(0), &Binding::packed(2, &shape), 0).is_none());
        assert!(runtime.decisions().is_empty());
    }
}
