//! Headline paper-vs-reproduction comparison.
//!
//! Collects the quantitative claims scattered through the paper's text
//! (Sections III and V) and pairs each with the value measured by this
//! reproduction, for EXPERIMENTS.md and the `summary_stats` binary.

use serde::{Deserialize, Serialize};

use npb_workloads::BenchmarkId;
use xeon_sim::Configuration;

use crate::accuracy::AccuracyStudy;
use crate::adaptation::{AdaptationStudy, Metric, Strategy};
use crate::scalability::ScalabilityReport;

/// One headline number: the paper's value and ours.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadlineEntry {
    /// Short description of the claim.
    pub name: String,
    /// Value reported by the paper.
    pub paper: f64,
    /// Value measured by this reproduction.
    pub measured: f64,
    /// Unit / interpretation of both values.
    pub unit: String,
}

impl HeadlineEntry {
    fn new(name: &str, paper: f64, measured: f64, unit: &str) -> Self {
        Self { name: name.into(), paper, measured, unit: unit.into() }
    }

    /// Whether the measured value agrees with the paper in *direction*
    /// (same sign of effect relative to the neutral value 0 or 1 implied by
    /// the unit).
    pub fn same_direction(&self) -> bool {
        let neutral = if self.unit.contains('×') { 1.0 } else { 0.0 };
        (self.paper - neutral).signum() == (self.measured - neutral).signum()
            || (self.paper - neutral).abs() < 1e-9
            || (self.measured - neutral).abs() < 1e-9
    }
}

/// The full set of headline comparisons.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HeadlineNumbers {
    /// The entries, in paper order.
    pub entries: Vec<HeadlineEntry>,
}

impl HeadlineNumbers {
    /// Entries as a markdown table (used by EXPERIMENTS.md generation).
    pub fn to_markdown(&self) -> String {
        let mut out =
            String::from("| Claim | Paper | Reproduction | Unit |\n|---|---:|---:|---|\n");
        for e in &self.entries {
            out.push_str(&format!(
                "| {} | {:.3} | {:.3} | {} |\n",
                e.name, e.paper, e.measured, e.unit
            ));
        }
        out
    }

    /// Fraction of entries whose direction matches the paper.
    pub fn direction_agreement(&self) -> f64 {
        if self.entries.is_empty() {
            return 1.0;
        }
        self.entries.iter().filter(|e| e.same_direction()).count() as f64
            / self.entries.len() as f64
    }
}

/// Builds the headline comparison from whichever studies are available.
pub fn paper_comparison(
    scalability: &ScalabilityReport,
    accuracy: Option<&AccuracyStudy>,
    adaptation: Option<&AdaptationStudy>,
) -> HeadlineNumbers {
    let mut entries = Vec::new();

    // --- Section III ---------------------------------------------------
    entries.push(HeadlineEntry::new(
        "Scaling-class mean speedup on 4 cores (BT, FT, LU-HP)",
        2.37,
        scalability.scaling_class_speedup(),
        "× vs 1 core",
    ));
    if let Some(bt) = scalability.benchmark(BenchmarkId::Bt) {
        entries.push(HeadlineEntry::new(
            "BT speedup on 4 cores",
            2.69,
            bt.speedup(Configuration::Four),
            "× vs 1 core",
        ));
        entries.push(HeadlineEntry::new(
            "BT power increase on 4 cores",
            1.31,
            bt.power_ratio(Configuration::Four),
            "× vs 1 core",
        ));
    }
    if let Some(is) = scalability.benchmark(BenchmarkId::Is) {
        entries.push(HeadlineEntry::new(
            "IS slowdown: tightly vs loosely coupled pair",
            2.04,
            is.get(Configuration::TwoTight).time_s / is.get(Configuration::TwoLoose).time_s,
            "× (2a / 2b)",
        ));
        entries.push(HeadlineEntry::new(
            "IS slowdown on 4 cores vs 1 core",
            1.40,
            is.get(Configuration::Four).time_s / is.get(Configuration::One).time_s,
            "× (4 / 1)",
        ));
    }
    entries.push(HeadlineEntry::new(
        "Mean system-power growth, 1 -> 4 cores",
        0.142,
        scalability.mean_power_growth(),
        "fraction",
    ));
    entries.push(HeadlineEntry::new(
        "Mean energy change, 1 -> 4 cores",
        -0.007,
        scalability.mean_energy_change(),
        "fraction",
    ));

    // --- Section V-A ------------------------------------------------------
    if let Some(acc) = accuracy {
        entries.push(HeadlineEntry::new(
            "Median IPC prediction error",
            0.091,
            acc.median_error(),
            "fraction",
        ));
        entries.push(HeadlineEntry::new(
            "Predictions with <5% error",
            0.292,
            acc.fraction_below(0.05),
            "fraction",
        ));
        entries.push(HeadlineEntry::new(
            "Phases where the best configuration is selected",
            0.593,
            acc.best_selection_rate(),
            "fraction",
        ));
        entries.push(HeadlineEntry::new(
            "Phases where the worst configuration is selected",
            0.0,
            acc.worst_selection_rate(),
            "fraction",
        ));
    }

    // --- Section V-B ------------------------------------------------------
    if let Some(adapt) = adaptation {
        let pred_time = adapt.average_normalised(Strategy::Prediction, Metric::Time);
        let pred_power = adapt.average_normalised(Strategy::Prediction, Metric::Power);
        let pred_energy = adapt.average_normalised(Strategy::Prediction, Metric::Energy);
        let pred_ed2 = adapt.average_normalised(Strategy::Prediction, Metric::Ed2);
        entries.push(HeadlineEntry::new(
            "Prediction: execution-time reduction vs 4 cores",
            0.065,
            1.0 - pred_time,
            "fraction",
        ));
        entries.push(HeadlineEntry::new(
            "Prediction: power change vs 4 cores",
            0.015,
            pred_power - 1.0,
            "fraction",
        ));
        entries.push(HeadlineEntry::new(
            "Prediction: energy reduction vs 4 cores",
            0.052,
            1.0 - pred_energy,
            "fraction",
        ));
        entries.push(HeadlineEntry::new(
            "Prediction: ED2 reduction vs 4 cores",
            0.172,
            1.0 - pred_ed2,
            "fraction",
        ));
        entries.push(HeadlineEntry::new(
            "Phase-optimal oracle: ED2 reduction vs 4 cores",
            0.29,
            1.0 - adapt.average_normalised(Strategy::PhaseOptimal, Metric::Ed2),
            "fraction",
        ));
        if let Some(is) = adapt.benchmark(BenchmarkId::Is) {
            entries.push(HeadlineEntry::new(
                "IS: ED2 reduction through prediction",
                0.716,
                1.0 - is.normalised(Strategy::Prediction, Metric::Ed2),
                "fraction",
            ));
        }
    }

    HeadlineNumbers { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalability::scalability_report;
    use xeon_sim::Machine;

    #[test]
    fn scalability_only_comparison_has_section_iii_entries() {
        let report = scalability_report(&Machine::xeon_qx6600());
        let headline = paper_comparison(&report, None, None);
        assert!(headline.entries.len() >= 7);
        assert!(headline.entries.iter().all(|e| e.measured.is_finite()));
        // Most Section III directions should agree with the paper.
        assert!(
            headline.direction_agreement() > 0.7,
            "direction agreement {:.2} too low",
            headline.direction_agreement()
        );
        let md = headline.to_markdown();
        assert!(md.contains("| Claim |"));
        assert!(md.lines().count() >= headline.entries.len() + 2);
    }

    #[test]
    fn same_direction_logic() {
        let improving = HeadlineEntry::new("x", 0.1, 0.2, "fraction");
        assert!(improving.same_direction());
        let opposite = HeadlineEntry::new("x", 0.1, -0.2, "fraction");
        assert!(!opposite.same_direction());
        let ratio = HeadlineEntry::new("x", 1.3, 1.1, "× vs 1 core");
        assert!(ratio.same_direction());
        let ratio_bad = HeadlineEntry::new("x", 1.3, 0.9, "× vs 1 core");
        assert!(!ratio_bad.same_direction());
        let neutral = HeadlineEntry::new("x", 0.0, 0.5, "fraction");
        assert!(neutral.same_direction());
    }

    #[test]
    fn empty_headline_is_well_defined() {
        let h = HeadlineNumbers::default();
        assert_eq!(h.direction_agreement(), 1.0);
        assert!(h.to_markdown().contains("Claim"));
    }
}
