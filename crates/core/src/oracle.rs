//! Oracle strategies used as comparison points in Figure 8.
//!
//! "We present results for two approaches based on the use of oracle-derived
//! configurations. The one that we call the global optimal uses the best
//! static configuration for an entire application. The second, the phase
//! optimal, uses the best configuration for each phase."

use npb_workloads::BenchmarkProfile;
use xeon_sim::{Configuration, Machine};

/// The best *static* configuration for the whole application (minimum total
/// execution time over all configurations).
pub fn global_optimal(machine: &Machine, bench: &BenchmarkProfile) -> Configuration {
    Configuration::ALL
        .iter()
        .copied()
        .min_by(|&a, &b| {
            let ta = bench.simulate(machine, a).time_s;
            let tb = bench.simulate(machine, b).time_s;
            ta.partial_cmp(&tb).expect("finite execution times")
        })
        .expect("at least one configuration")
}

/// The best configuration for each individual phase (minimum phase execution
/// time), in phase order.
pub fn phase_optimal(machine: &Machine, bench: &BenchmarkProfile) -> Vec<Configuration> {
    bench
        .phases
        .iter()
        .map(|phase| {
            Configuration::ALL
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let ta = machine.simulate_config(phase, a).time_s;
                    let tb = machine.simulate_config(phase, b).time_s;
                    ta.partial_cmp(&tb).expect("finite execution times")
                })
                .expect("at least one configuration")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use npb_workloads::{suite, BenchmarkId};

    #[test]
    fn global_optimal_matches_the_scalability_classes() {
        let machine = Machine::xeon_qx6600();
        // Scaling class: four cores are globally optimal.
        assert_eq!(
            global_optimal(&machine, &suite::benchmark(BenchmarkId::Bt)),
            Configuration::Four
        );
        // Pathological class: two loosely-coupled cores win.
        assert_eq!(
            global_optimal(&machine, &suite::benchmark(BenchmarkId::Is)),
            Configuration::TwoLoose
        );
        assert_eq!(
            global_optimal(&machine, &suite::benchmark(BenchmarkId::Mg)),
            Configuration::TwoLoose
        );
    }

    #[test]
    fn phase_optimal_is_at_least_as_good_as_global_optimal() {
        let machine = Machine::xeon_qx6600();
        for id in [BenchmarkId::Sp, BenchmarkId::Cg, BenchmarkId::Is] {
            let bench = suite::benchmark(id);
            let global = bench.simulate(&machine, global_optimal(&machine, &bench));
            let per_phase = bench.simulate_per_phase(&machine, &phase_optimal(&machine, &bench));
            assert!(
                per_phase.time_s <= global.time_s * (1.0 + 1e-9),
                "{id}: phase-optimal ({}) must not be slower than global optimal ({})",
                per_phase.time_s,
                global.time_s
            );
        }
    }

    #[test]
    fn phase_optimal_has_one_choice_per_phase() {
        let machine = Machine::xeon_qx6600();
        let sp = suite::benchmark(BenchmarkId::Sp);
        let choices = phase_optimal(&machine, &sp);
        assert_eq!(choices.len(), sp.num_phases());
        // SP's phase diversity means not every phase picks the same config.
        let distinct: std::collections::HashSet<_> = choices.iter().collect();
        assert!(distinct.len() > 1, "SP's phases should not all prefer the same configuration");
    }
}
