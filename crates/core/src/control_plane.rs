//! The control plane: the one observe → decide → act cycle.
//!
//! The paper's runtime is a single loop — sample hardware counters for a
//! phase, ask the decision-maker for an actuation, validate and enforce it —
//! yet that loop used to be written three times: once in the Figure-8
//! adaptation harness, once in the live [`crate::runtime::ActorRuntime`],
//! and once inside the cluster scheduler's power-aware policy.
//! [`ControlPlane`] is that cycle extracted: it owns the controller, the
//! machine shape decisions actuate on, the *observe-once* bookkeeping (a
//! phase's sampling window must be fed to the controller exactly once, no
//! matter how many scheduling events replay it), and the loud validation of
//! every decision against the actuation space
//! ([`crate::controller::validate_decision`] is the single definition of
//! that contract).
//!
//! Callers differ only in where samples and candidate powers come from:
//!
//! * the adaptation harness simulates them with the machine model;
//! * the cluster policies read them from the pre-simulated
//!   `WorkloadModel`;
//! * the live runtime measures wall-clock time (and, with a counter
//!   sampler attached, live event rates) from real `phase-rt` regions.
//!
//! All three now hand those inputs to the same plane and get back a
//! validated [`PlaneDecision`].

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

use phase_rt::{FreqStep, MachineShape, PhaseId};
use xeon_sim::Configuration;

use crate::controller::{
    validate_decision_with, CandidatePerf, ConfigurationMap, Decision, DecisionCtx, DvfsSpace,
    PhaseSample, PowerPerfController,
};
use crate::telemetry::{clock, SharedSink, TraceEvent};

/// One traced decision in this many gets a latency stamp (power of two).
/// Sampling keeps the per-record hot-path cost to the event build + ring
/// push while still feeding the latency histogram thousands of points per
/// second at realistic decide rates.
const LATENCY_SAMPLE_EVERY: u64 = 16;

/// A multiplicative hasher for the small integer keys of
/// `observed_stats`. SipHash (the `HashMap` default) costs ~20 ns per
/// lookup — on the traced decide path that alone is a few percent of a
/// ~400 ns decision. Fibonacci hashing on the raw phase id is one
/// multiply and mixes well enough for a table keyed by dense-ish ids.
#[derive(Default)]
pub(crate) struct PhaseIdHasher(u64);

/// A `PhaseId`-keyed map using [`PhaseIdHasher`] — the map type for every
/// per-phase table on the decide hot path (here and in
/// [`crate::controller::DecisionTableController`]).
pub(crate) type PhaseMap<V> = HashMap<PhaseId, V, BuildHasherDefault<PhaseIdHasher>>;

impl Hasher for PhaseIdHasher {
    fn write(&mut self, bytes: &[u8]) {
        // PhaseId hashes as one fixed-width integer write; this arm only
        // exists to satisfy the trait.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u32(&mut self, i: u32) {
        self.0 = u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn write_u64(&mut self, i: u64) {
        self.0 = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// A controller decision that violated the actuation contract (a binding
/// outside the paper's five configurations, or a frequency step the caller
/// did not offer). The adaptation harness converts this into an
/// [`crate::error::ActorError`]; the cluster policies panic with it (a
/// defective controller must fail loudly, not starve a job behind what
/// would be misreported as a power-budget problem).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlViolation {
    /// The offending controller's [`PowerPerfController::name`].
    pub controller: &'static str,
    /// The phase being decided.
    pub phase: PhaseId,
    /// Human-readable description of the violation.
    pub violation: String,
}

impl std::fmt::Display for ControlViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "controller {:?} deciding {}: {}", self.controller, self.phase, self.violation)
    }
}

impl std::error::Error for ControlViolation {}

/// A validated actuation: what the control plane tells its caller to
/// enforce for one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaneDecision {
    /// The paper configuration the decision's binding realises.
    pub config: Configuration,
    /// The DVFS step to actuate ([`FreqStep::NOMINAL`] unless the caller
    /// offered a ladder).
    pub step: FreqStep,
    /// The controller's full decision (binding + rationale).
    pub decision: Decision,
}

/// One observe → decide cycle around a [`PowerPerfController`].
///
/// Generic over the controller so monomorphised callers (the cluster
/// policies) pay no dispatch cost; boxed trait objects drop in unchanged
/// (`ControlPlane<Box<dyn PowerPerfController + Send>>` is what the live
/// runtime uses).
pub struct ControlPlane<C: PowerPerfController> {
    controller: C,
    shape: MachineShape,
    observed: HashSet<PhaseId>,
    telemetry: Option<SharedSink>,
    // Per-phase (ipc, stall_fraction) from the sampling window, kept only
    // while a sink is attached so decision records can carry the counters
    // that informed them. Empty (never touched) when telemetry is off.
    observed_stats: PhaseMap<(f64, f64)>,
    // Calibrated TSC scale, captured when a sink attaches; `unattached`
    // (Instant fallback) otherwise. Only read on the traced path.
    clock: clock::FastClock,
    /// Traced decisions so far — drives latency sampling.
    decides: u64,
    // Binding → configuration lookup precomputed for `shape`, so per-decide
    // validation is five slice compares instead of five binding
    // constructions (each a heap allocation).
    configs: ConfigurationMap,
}

impl<C: PowerPerfController + fmt::Debug> fmt::Debug for ControlPlane<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ControlPlane")
            .field("controller", &self.controller)
            .field("shape", &self.shape)
            .field("observed", &self.observed)
            .field("telemetry", &self.telemetry.is_some())
            .finish()
    }
}

impl<C: PowerPerfController> ControlPlane<C> {
    /// Wraps a controller actuating on `shape`.
    pub fn new(controller: C, shape: MachineShape) -> Self {
        Self {
            controller,
            configs: ConfigurationMap::new(&shape),
            shape,
            observed: HashSet::new(),
            telemetry: None,
            observed_stats: HashMap::default(),
            clock: clock::FastClock::unattached(),
            decides: 0,
        }
    }

    /// Attaches a telemetry sink: every validated [`ControlPlane::decide`]
    /// from here on emits one [`TraceEvent::Decision`] (with decide latency
    /// in ns). Builder-style variant of [`ControlPlane::set_telemetry`].
    #[must_use]
    pub fn with_telemetry(mut self, sink: SharedSink) -> Self {
        self.clock = clock::FastClock::new();
        self.telemetry = Some(sink);
        self
    }

    /// Attaches (`Some`) or detaches (`None`) a telemetry sink in place.
    pub fn set_telemetry(&mut self, sink: Option<SharedSink>) {
        if sink.is_some() {
            self.clock = clock::FastClock::new();
        }
        self.telemetry = sink;
    }

    /// The attached telemetry sink, if any.
    pub fn telemetry(&self) -> Option<&SharedSink> {
        self.telemetry.as_ref()
    }

    /// The machine shape decisions actuate on.
    pub fn shape(&self) -> &MachineShape {
        &self.shape
    }

    /// The wrapped controller.
    pub fn controller(&self) -> &C {
        &self.controller
    }

    /// The wrapped controller, mutably (for callers that feed observations
    /// outside the observe-once protocol, e.g. per-execution measurements).
    pub fn controller_mut(&mut self) -> &mut C {
        &mut self.controller
    }

    /// Unwraps the plane back into its controller.
    pub fn into_controller(self) -> C {
        self.controller
    }

    /// Feeds one observation of `phase` unconditionally (live measurement
    /// loops observe every execution).
    pub fn observe(&mut self, phase: PhaseId, sample: &PhaseSample) {
        self.observed.insert(phase);
        if self.telemetry.is_some() {
            self.observed_stats.insert(phase, (sample.ipc, sample.stall_fraction));
        }
        self.controller.observe(phase, sample);
    }

    /// Feeds `phase`'s sampling window to the controller the *first* time
    /// this plane sees the phase, and never again: scheduling loops revisit
    /// phases at every event, and replaying the one sampling window would
    /// corrupt exploration-counting controllers. Returns whether the sample
    /// was consumed (and only builds it then).
    pub fn observe_once(&mut self, phase: PhaseId, sample: impl FnOnce() -> PhaseSample) -> bool {
        if self.observed.insert(phase) {
            let sample = sample();
            if self.telemetry.is_some() {
                self.observed_stats.insert(phase, (sample.ipc, sample.stall_fraction));
            }
            self.controller.observe(phase, &sample);
            true
        } else {
            false
        }
    }

    /// Whether `phase`'s sampling window has been fed already.
    pub fn has_observed(&self, phase: PhaseId) -> bool {
        self.observed.contains(&phase)
    }

    /// Forgets which phases were observed (the controller's own state is
    /// untouched — use this only when the controller is also rebuilt).
    pub fn reset_observations(&mut self) {
        self.observed.clear();
        self.observed_stats.clear();
    }

    /// Asks the controller to decide `phase` and validates the decision
    /// against the actuation space: `candidates` are the configurations the
    /// caller can actuate (with powers when known), `dvfs` is the frequency
    /// axis when the caller can actuate DVFS (its absence requires
    /// nominal-step decisions), and `power_cap_w` the average-power cap the
    /// decision should respect.
    pub fn decide(
        &mut self,
        phase: PhaseId,
        candidates: &[CandidatePerf],
        dvfs: Option<DvfsSpace<'_>>,
        power_cap_w: Option<f64>,
    ) -> Result<PlaneDecision, ControlViolation> {
        let ctx = DecisionCtx { phase, shape: &self.shape, candidates, power_cap_w, dvfs };
        // Timestamps only exist when a sink is attached: the disabled path
        // is the exact pre-telemetry decide loop. Even then only one
        // decision in [`LATENCY_SAMPLE_EVERY`] is stamped — the stamp pair
        // is the single largest per-record cost (two TSC reads, see
        // `telemetry::clock`), and the sampled subset estimates the
        // latency distribution just as well. Unsampled decisions carry
        // `latency_ns: 0`, which [`TraceEvent::latency_ns`] reports as
        // `None`.
        let started = match &self.telemetry {
            Some(_) => {
                let sampled = self.decides & (LATENCY_SAMPLE_EVERY - 1) == 0;
                self.decides = self.decides.wrapping_add(1);
                sampled.then(|| self.clock.start())
            }
            None => None,
        };
        let decision = self.controller.decide(&ctx);
        let ladder_len = dvfs.map_or(1, |space| space.ladder.len());
        match validate_decision_with(&decision, &self.configs, ladder_len, dvfs.is_some()) {
            Ok(config) => {
                if let Some(sink) = &self.telemetry {
                    let stats = self.observed_stats.get(&phase);
                    sink.record_owned(TraceEvent::Decision {
                        phase: phase.raw(),
                        controller: self.controller.name(),
                        candidates: candidates.len(),
                        joint_cells: dvfs.map_or(0, |space| space.joint.len()),
                        threads: config.num_threads(),
                        freq_step: decision.freq_step.index(),
                        rationale: decision.rationale.label(),
                        ipc: stats.map(|&(ipc, _)| ipc),
                        stall_fraction: stats.map(|&(_, stall)| stall),
                        power_cap_w,
                        latency_ns: started.map_or(0, |stamp| self.clock.elapsed_ns(stamp)),
                    });
                }
                Ok(PlaneDecision { config, step: decision.freq_step, decision })
            }
            Err(violation) => {
                Err(ControlViolation { controller: self.controller.name(), phase, violation })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{Rationale, StaticController};
    use crate::throttle::select_configuration;
    use crate::DecisionTableController;

    #[test]
    fn observe_once_feeds_each_phase_exactly_once() {
        let mut plane =
            ControlPlane::new(DecisionTableController::default(), MachineShape::quad_core());
        let phase = PhaseId::new(5);
        let mut built = 0usize;
        for _ in 0..3 {
            plane.observe_once(phase, || {
                built += 1;
                PhaseSample::sampling(vec![1.0], 1.2, 0.5)
            });
        }
        assert_eq!(built, 1, "the sampling window must be built and fed exactly once");
        assert!(plane.has_observed(phase));
        assert!(!plane.has_observed(PhaseId::new(6)));
        plane.reset_observations();
        assert!(!plane.has_observed(phase));
    }

    #[test]
    fn decide_validates_against_the_actuation_space() {
        let shape = MachineShape::quad_core();
        let candidates = CandidatePerf::all_unknown();
        let mut plane = ControlPlane::new(StaticController::os_default(), shape);
        let pd = plane.decide(PhaseId::new(0), &candidates, None, None).unwrap();
        assert_eq!(pd.config, Configuration::Four);
        assert!(pd.step.is_nominal());
        assert!(matches!(pd.decision.rationale, Rationale::Static { .. }));
    }

    #[test]
    fn contract_violations_surface_as_typed_errors() {
        struct Overclocker;
        impl PowerPerfController for Overclocker {
            fn name(&self) -> &'static str {
                "overclocker"
            }
            fn observe(&mut self, _p: PhaseId, _s: &PhaseSample) {}
            fn decide(&mut self, ctx: &DecisionCtx<'_>) -> Decision {
                Decision::joint(
                    Configuration::One,
                    FreqStep::new(1),
                    ctx.shape,
                    Rationale::Static { label: "overclocker" },
                )
            }
        }
        let mut plane = ControlPlane::new(Overclocker, MachineShape::quad_core());
        let candidates = CandidatePerf::all_unknown();
        let err = plane.decide(PhaseId::new(2), &candidates, None, None).unwrap_err();
        assert_eq!(err.controller, "overclocker");
        assert_eq!(err.phase, PhaseId::new(2));
        assert!(err.to_string().contains("without being offered a ladder"), "{err}");
    }

    #[test]
    fn attached_sink_receives_one_record_per_validated_decision() {
        use crate::telemetry::{MemorySink, TraceEvent};
        use std::sync::Arc;

        let sink = Arc::new(MemorySink::new());
        let mut plane =
            ControlPlane::new(StaticController::os_default(), MachineShape::quad_core())
                .with_telemetry(sink.clone());
        assert!(plane.telemetry().is_some());
        let phase = PhaseId::new(3);
        plane.observe_once(phase, || {
            PhaseSample::sampling(vec![1.0], 1.4, 0.5).with_stall_fraction(0.25)
        });
        let candidates = CandidatePerf::all_unknown();
        plane.decide(phase, &candidates, None, Some(120.0)).unwrap();
        plane.decide(PhaseId::new(9), &candidates, None, None).unwrap();

        let events = sink.events();
        assert_eq!(events.len(), 2, "one record per decide call");
        match &events[0] {
            TraceEvent::Decision {
                phase: p,
                controller,
                candidates: n,
                threads,
                rationale,
                ipc,
                stall_fraction,
                power_cap_w,
                ..
            } => {
                assert_eq!(*p, 3);
                assert_eq!(*controller, "os-default");
                assert_eq!(*n, 5);
                assert_eq!(*threads, 4);
                assert_eq!(*rationale, "static");
                assert_eq!(*ipc, Some(1.4));
                assert_eq!(*stall_fraction, Some(0.25));
                assert_eq!(*power_cap_w, Some(120.0));
            }
            other => panic!("expected a decision record, got {other:?}"),
        }
        // The second phase was never observed: its record carries no sample.
        match &events[1] {
            TraceEvent::Decision { ipc, stall_fraction, .. } => {
                assert_eq!(*ipc, None);
                assert_eq!(*stall_fraction, None);
            }
            other => panic!("expected a decision record, got {other:?}"),
        }
    }

    #[test]
    fn plane_matches_direct_controller_driving() {
        // Driving a controller through the plane must not change what it
        // decides — the refactor's no-behavior-change guarantee in miniature.
        let shape = MachineShape::quad_core();
        let phase = PhaseId::new(0);
        let decision = select_configuration(
            1.0,
            &[
                (Configuration::One, 0.9),
                (Configuration::TwoTight, 1.1),
                (Configuration::TwoLoose, 1.6),
                (Configuration::Three, 1.2),
            ],
        );
        let candidates = CandidatePerf::all_unknown();
        let sample = PhaseSample::sampling(vec![1.0], 1.0, 0.5);

        let mut direct = DecisionTableController::new([(phase, decision.clone())]);
        direct.observe(phase, &sample);
        let want = direct.decide(&DecisionCtx::unconstrained(phase, &shape, &candidates));

        let mut plane = ControlPlane::new(DecisionTableController::new([(phase, decision)]), shape);
        plane.observe_once(phase, || sample.clone());
        let got = plane.decide(phase, &candidates, None, None).unwrap();
        assert_eq!(got.decision, want);
        assert_eq!(got.config, Configuration::TwoLoose);
    }
}
