//! The adaptation study (Figure 8).
//!
//! Compares four execution strategies for every benchmark, normalised to the
//! default four-core execution:
//!
//! * **4 Cores** — the performance-oriented default: every phase uses all
//!   cores;
//! * **Global Optimal** — oracle: the best single static configuration for
//!   the whole application;
//! * **Phase Optimal** — oracle: the best configuration for every phase;
//! * **Prediction** — ACTOR: sample at maximal concurrency for at most 20 %
//!   of the timesteps, predict per-phase IPC with the leave-one-out ANN
//!   ensembles, then enforce the chosen configuration for the remaining
//!   timesteps. Throttled phases are charged a small extra power term for
//!   the cache-warmth lost when threads are re-bound (the paper's explanation
//!   for why average power is not reduced).

use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use npb_workloads::{suite, BenchmarkId, BenchmarkProfile};
use phase_rt::{FreqStep, PhaseId};
use xeon_sim::{AggregateExecution, Configuration, Machine};

use crate::config::ActorConfig;
use crate::control_plane::ControlPlane;
use crate::controller::{
    shape_of, CandidatePerf, DecisionTableController, DvfsSpace, JointPerf, OracleController,
    PhaseSample, PowerPerfController, StaticController,
};
use crate::error::ActorError;
use crate::evaluation::{evaluate_benchmarks, BenchmarkEvaluation};
use crate::oracle::global_optimal;

/// The execution strategies of Figure 8.
///
/// Marked `#[non_exhaustive]`: future strategies (e.g. combined DVFS + DCT
/// control) will be added without a breaking release; match with a wildcard
/// arm downstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Strategy {
    /// All phases on all four cores (the normalisation baseline).
    FourCores,
    /// Best static configuration for the whole application (oracle).
    GlobalOptimal,
    /// Best configuration per phase (oracle).
    PhaseOptimal,
    /// ACTOR's prediction-based adaptation.
    Prediction,
}

impl Strategy {
    /// All strategies in the figure's order.
    pub const ALL: [Strategy; 4] = [
        Strategy::FourCores,
        Strategy::GlobalOptimal,
        Strategy::PhaseOptimal,
        Strategy::Prediction,
    ];

    /// Label used in the figure legend.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::FourCores => "4 Cores",
            Strategy::GlobalOptimal => "Global Optimal",
            Strategy::PhaseOptimal => "Phase Optimal",
            Strategy::Prediction => "Prediction",
        }
    }

    /// Builds the [`PowerPerfController`] realising this strategy for one
    /// benchmark — every Figure-8 bar is one controller behind the same
    /// trait, so any of them (or a new controller entirely) can take the
    /// adaptive slot of [`adaptation_with_controller`].
    pub fn controller(
        &self,
        machine: &Machine,
        bench: &BenchmarkProfile,
        eval: &BenchmarkEvaluation,
    ) -> Box<dyn PowerPerfController + Send> {
        match self {
            Strategy::FourCores => Box::new(StaticController::os_default()),
            Strategy::GlobalOptimal => {
                Box::new(StaticController::new(global_optimal(machine, bench), "global-optimal"))
            }
            Strategy::PhaseOptimal => Box::new(OracleController::for_benchmark(machine, bench)),
            Strategy::Prediction => Box::new(DecisionTableController::new(
                eval.phases
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (PhaseId::new(i as u32), p.decision.clone())),
            )),
        }
    }
}

/// The metrics plotted in Figure 8.
///
/// Marked `#[non_exhaustive]`: further efficiency metrics may be added;
/// match with a wildcard arm downstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Metric {
    /// Execution time.
    Time,
    /// Average power.
    Power,
    /// Energy.
    Energy,
    /// Energy-delay-squared.
    Ed2,
}

impl Metric {
    /// All metrics in the figure's order.
    pub const ALL: [Metric; 4] = [Metric::Time, Metric::Power, Metric::Energy, Metric::Ed2];

    /// Label used in figure captions.
    pub fn label(&self) -> &'static str {
        match self {
            Metric::Time => "Execution Time",
            Metric::Power => "Power Consumption",
            Metric::Energy => "Energy Consumption",
            Metric::Ed2 => "Energy Delay Squared",
        }
    }
}

/// The absolute outcome of running one benchmark under one strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyOutcome {
    /// Which strategy.
    pub strategy: Strategy,
    /// Total execution time (s).
    pub time_s: f64,
    /// Total energy (J).
    pub energy_j: f64,
    /// Average power (W).
    pub power_w: f64,
    /// Energy-delay-squared (J·s²).
    pub ed2: f64,
}

impl StrategyOutcome {
    fn from_aggregate(strategy: Strategy, agg: &AggregateExecution) -> Self {
        Self {
            strategy,
            time_s: agg.time_s,
            energy_j: agg.energy_j,
            power_w: agg.avg_power_w(),
            ed2: agg.ed2(),
        }
    }

    /// The value of one metric.
    pub fn metric(&self, metric: Metric) -> f64 {
        match metric {
            Metric::Time => self.time_s,
            Metric::Power => self.power_w,
            Metric::Energy => self.energy_j,
            Metric::Ed2 => self.ed2,
        }
    }
}

/// Figure-8 results for one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkAdaptation {
    /// The benchmark.
    pub id: BenchmarkId,
    /// Outcome per strategy.
    pub outcomes: Vec<StrategyOutcome>,
    /// ACTOR's per-phase decisions (phase name → chosen configuration).
    pub decisions: Vec<(String, Configuration)>,
    /// The DVFS step chosen per phase, aligned with `decisions` (`0` =
    /// nominal everywhere unless the adaptive controller was offered the
    /// frequency ladder).
    pub freq_steps: Vec<u8>,
    /// Fraction of the run spent sampling.
    pub sampling_fraction: f64,
}

impl BenchmarkAdaptation {
    /// The outcome of one strategy.
    pub fn outcome(&self, strategy: Strategy) -> &StrategyOutcome {
        self.outcomes.iter().find(|o| o.strategy == strategy).expect("all strategies are evaluated")
    }

    /// One metric of one strategy, normalised to the four-core baseline.
    pub fn normalised(&self, strategy: Strategy, metric: Metric) -> f64 {
        let baseline = self.outcome(Strategy::FourCores).metric(metric);
        if baseline <= 0.0 {
            return 1.0;
        }
        self.outcome(strategy).metric(metric) / baseline
    }
}

/// The whole Figure-8 study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptationStudy {
    /// Per-benchmark results.
    pub benchmarks: Vec<BenchmarkAdaptation>,
}

impl AdaptationStudy {
    /// Arithmetic mean of the normalised metric over all benchmarks (the
    /// "AVG" bar of Figure 8).
    pub fn average_normalised(&self, strategy: Strategy, metric: Metric) -> f64 {
        if self.benchmarks.is_empty() {
            return 1.0;
        }
        self.benchmarks.iter().map(|b| b.normalised(strategy, metric)).sum::<f64>()
            / self.benchmarks.len() as f64
    }

    /// Geometric mean of the normalised metric over all benchmarks.
    pub fn geomean_normalised(&self, strategy: Strategy, metric: Metric) -> f64 {
        if self.benchmarks.is_empty() {
            return 1.0;
        }
        let log_sum: f64 =
            self.benchmarks.iter().map(|b| b.normalised(strategy, metric).max(1e-12).ln()).sum();
        (log_sum / self.benchmarks.len() as f64).exp()
    }

    /// Results for one benchmark.
    pub fn benchmark(&self, id: BenchmarkId) -> Option<&BenchmarkAdaptation> {
        self.benchmarks.iter().find(|b| b.id == id)
    }
}

/// Simulates a benchmark where the first `sample_timesteps` timesteps run at
/// maximal concurrency (the sampling window) and the rest follow the
/// per-phase joint (configuration, frequency) decisions, charging the
/// re-binding power penalty to throttled phases.
fn simulate_prediction_strategy(
    machine: &Machine,
    bench: &BenchmarkProfile,
    decisions: &[(Configuration, FreqStep)],
    sample_timesteps: usize,
    rebinding_power_w: f64,
) -> AggregateExecution {
    let mut agg = AggregateExecution::new(format!("{} (prediction)", bench.id));
    let sampling_execs = bench.simulate_phases(machine, Configuration::Four);
    let adapted_execs: Vec<_> = bench
        .phases
        .iter()
        .zip(decisions)
        .map(|(p, &(c, step))| {
            machine
                .simulate_config_at(p, c, step.index() as usize)
                .expect("decide_phases validates steps against the machine ladder")
        })
        .collect();

    let sample_timesteps = sample_timesteps.min(bench.timesteps);
    for _ in 0..sample_timesteps {
        for exec in &sampling_execs {
            agg.add(exec);
        }
    }
    for _ in sample_timesteps..bench.timesteps {
        for (exec, &(chosen, _)) in adapted_execs.iter().zip(decisions) {
            agg.add(exec);
            if chosen != Configuration::Four {
                // Cache-warmth loss from re-binding: extra bus/memory power.
                agg.energy_j += rebinding_power_w * exec.time_s;
            }
        }
    }
    agg
}

/// Walks a controller through one benchmark — observe the phase's sampling
/// window, then decide — and returns the chosen (configuration, frequency
/// step) per phase. The cycle itself (context assembly, observe-once
/// bookkeeping, loud validation) is the shared
/// [`ControlPlane`]; this function only supplies the
/// machine-model samples and candidate powers.
///
/// Phase `i` is keyed by `PhaseId::new(i)`. When `power_cap_w` is set, each
/// phase's per-configuration average power (from the machine model) is
/// offered through the decision context so cap-aware controllers can
/// re-rank. When `dvfs` is set, the machine's frequency ladder is offered
/// too, widening the decision space to (threads × frequency); every joint
/// cell then carries its own converged stall fraction (the
/// per-configuration stall model behind
/// [`crate::controller::best_joint_by_throughput`]).
///
/// Decisions are validated loudly: a binding that is not one of the paper's
/// five configurations is an error, as is a frequency step outside the
/// machine's ladder — or any non-nominal step when the ladder was *not*
/// offered (the conformance harness catches such controllers earlier, but
/// custom controllers may reach here unvetted).
pub fn decide_phases(
    controller: &mut dyn PowerPerfController,
    machine: &Machine,
    bench: &BenchmarkProfile,
    eval: &BenchmarkEvaluation,
    power_cap_w: Option<f64>,
    dvfs: bool,
) -> Result<Vec<(Configuration, FreqStep)>, ActorError> {
    let ladder = machine.freq_ladder();
    let mut plane = ControlPlane::new(controller, shape_of(machine));
    bench
        .phases
        .iter()
        .zip(&eval.phases)
        .enumerate()
        .map(|(i, (phase, pe))| {
            let pid = PhaseId::new(i as u32);
            let sampling_exec = machine.simulate_config(phase, Configuration::SAMPLE);
            plane.observe(
                pid,
                &PhaseSample::sampling(
                    pe.features.clone(),
                    pe.decision.sampled_ipc,
                    sampling_exec.time_s,
                )
                .with_stall_fraction(sampling_exec.stall_fraction()),
            );
            // Per-configuration executions are needed for powers (under a
            // cap) and for each configuration's own converged stall split
            // (with the frequency axis on). One ladder-wide simulation per
            // configuration covers both the nominal candidates and every
            // joint cell — a single contention solve per configuration,
            // however deep the ladder is.
            let ladder_execs: Option<Vec<Vec<xeon_sim::PhaseExecution>>> =
                (power_cap_w.is_some() || dvfs).then(|| {
                    Configuration::ALL
                        .iter()
                        .map(|&config| {
                            if dvfs {
                                machine.simulate_config_ladder(phase, config)
                            } else {
                                vec![machine.simulate_config(phase, config)]
                            }
                        })
                        .collect()
                });
            let power_of = |config_idx: usize, step_idx: usize| -> Option<f64> {
                power_cap_w?;
                ladder_execs.as_ref().map(|execs| execs[config_idx][step_idx].avg_power_w)
            };
            let candidates: Vec<CandidatePerf> = Configuration::ALL
                .iter()
                .enumerate()
                .map(|(ci, &config)| CandidatePerf { config, avg_power_w: power_of(ci, 0) })
                .collect();
            let joint: Vec<JointPerf> = if dvfs {
                Configuration::ALL
                    .iter()
                    .enumerate()
                    .flat_map(|(ci, &config)| {
                        (0..ladder.len()).map(move |step_idx| (ci, config, step_idx))
                    })
                    .map(|(ci, config, step_idx)| JointPerf {
                        config,
                        step: FreqStep::new(step_idx as u8),
                        avg_power_w: power_of(ci, step_idx),
                        stall_fraction: ladder_execs
                            .as_ref()
                            .map(|execs| execs[ci][step_idx].stall_fraction()),
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let dvfs_space = dvfs.then_some(DvfsSpace { ladder, joint: &joint });
            let pd = plane.decide(pid, &candidates, dvfs_space, power_cap_w).map_err(|v| {
                ActorError::InvalidConfig {
                    reason: format!(
                        "controller {:?} deciding {} phase {:?}: {}",
                        v.controller, bench.id, pe.phase_name, v.violation,
                    ),
                }
            })?;
            Ok((pd.config, pd.step))
        })
        .collect()
}

/// Builds the Figure-8 study from leave-one-out evaluations with an
/// arbitrary controller in the adaptive slot.
///
/// The three reference bars (4 cores, global optimal, phase optimal) are
/// themselves produced by controllers — [`Strategy::controller`] — and the
/// fourth comes from `adaptive_for`, so any [`PowerPerfController`] is
/// drop-in comparable against the oracles. `power_cap_w` constrains the
/// adaptive controller only (the references are uncapped comparison points),
/// and `dvfs` offers the machine's frequency ladder to the adaptive
/// controller only — the references always run at nominal frequency.
pub fn adaptation_with_controller(
    machine: &Machine,
    config: &ActorConfig,
    benchmarks: &[BenchmarkProfile],
    evaluations: &[BenchmarkEvaluation],
    adaptive_for: &mut dyn FnMut(
        &Machine,
        &BenchmarkProfile,
        &BenchmarkEvaluation,
    ) -> Box<dyn PowerPerfController + Send>,
    power_cap_w: Option<f64>,
    dvfs: bool,
) -> Result<AdaptationStudy, ActorError> {
    let mut results = Vec::with_capacity(benchmarks.len());
    for bench in benchmarks {
        let eval = evaluations.iter().find(|e| e.id == bench.id).ok_or_else(|| {
            ActorError::InvalidConfig { reason: format!("no evaluation found for {}", bench.id) }
        })?;
        let configs_of = |choices: &[(Configuration, FreqStep)]| -> Vec<Configuration> {
            choices.iter().map(|&(c, _)| c).collect()
        };

        // Reference strategies, each realised by its controller.
        let mut four_ctl = Strategy::FourCores.controller(machine, bench, eval);
        let four_choices = decide_phases(four_ctl.as_mut(), machine, bench, eval, None, false)?;
        let four = bench.simulate_per_phase(machine, &configs_of(&four_choices));

        let mut global_ctl = Strategy::GlobalOptimal.controller(machine, bench, eval);
        let global_choices = decide_phases(global_ctl.as_mut(), machine, bench, eval, None, false)?;
        let global = bench.simulate_per_phase(machine, &configs_of(&global_choices));

        let mut oracle_ctl = Strategy::PhaseOptimal.controller(machine, bench, eval);
        let oracle_choices = decide_phases(oracle_ctl.as_mut(), machine, bench, eval, None, false)?;
        let phase_opt = bench.simulate_per_phase(machine, &configs_of(&oracle_choices));

        // The adaptive slot: sampling overhead and re-binding penalty apply.
        let mut adaptive = adaptive_for(machine, bench, eval);
        let decisions = decide_phases(adaptive.as_mut(), machine, bench, eval, power_cap_w, dvfs)?;
        let prediction = simulate_prediction_strategy(
            machine,
            bench,
            &decisions,
            eval.plan.sample_timesteps,
            config.rebinding_power_w,
        );

        results.push(BenchmarkAdaptation {
            id: bench.id,
            outcomes: vec![
                StrategyOutcome::from_aggregate(Strategy::FourCores, &four),
                StrategyOutcome::from_aggregate(Strategy::GlobalOptimal, &global),
                StrategyOutcome::from_aggregate(Strategy::PhaseOptimal, &phase_opt),
                StrategyOutcome::from_aggregate(Strategy::Prediction, &prediction),
            ],
            decisions: eval
                .phases
                .iter()
                .map(|p| p.phase_name.clone())
                .zip(decisions.iter().map(|&(c, _)| c))
                .collect(),
            freq_steps: decisions.iter().map(|&(_, step)| step.index()).collect(),
            sampling_fraction: eval.plan.sampling_fraction(),
        });
    }
    Ok(AdaptationStudy { benchmarks: results })
}

/// Builds the Figure-8 study from leave-one-out evaluations with the paper's
/// own ANN decisions in the adaptive slot.
pub fn adaptation_from_evaluations(
    machine: &Machine,
    config: &ActorConfig,
    benchmarks: &[BenchmarkProfile],
    evaluations: &[BenchmarkEvaluation],
) -> Result<AdaptationStudy, ActorError> {
    adaptation_with_controller(
        machine,
        config,
        benchmarks,
        evaluations,
        &mut |m, b, e| Strategy::Prediction.controller(m, b, e),
        None,
        false,
    )
}

/// Runs the full Figure-8 study over the NAS suite (leave-one-out training,
/// sampling, prediction, throttling, and the oracle comparisons).
pub fn run_adaptation_study<R: Rng + ?Sized>(
    machine: &Machine,
    config: &ActorConfig,
    rng: &mut R,
) -> Result<AdaptationStudy, ActorError> {
    let benchmarks = suite::nas_suite();
    let evaluations = evaluate_benchmarks(machine, config, &benchmarks, rng)?;
    adaptation_from_evaluations(machine, config, &benchmarks, &evaluations)
}

/// Runs the full Figure-8 study with the deterministic RNG derived from
/// `config.seed` — the reproducible entry point: two calls with the same
/// configuration produce identical studies.
pub fn run_adaptation_study_seeded(
    machine: &Machine,
    config: &ActorConfig,
) -> Result<AdaptationStudy, ActorError> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    run_adaptation_study(machine, config, &mut rng)
}

/// Runs the study over an explicit benchmark list (used by tests).
pub fn run_adaptation_study_on<R: Rng + ?Sized>(
    machine: &Machine,
    config: &ActorConfig,
    benchmarks: &[BenchmarkProfile],
    rng: &mut R,
) -> Result<AdaptationStudy, ActorError> {
    let evaluations = evaluate_benchmarks(machine, config, benchmarks, rng)?;
    adaptation_from_evaluations(machine, config, benchmarks, &evaluations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn study() -> AdaptationStudy {
        let machine = Machine::xeon_qx6600();
        let config = ActorConfig { corpus_replicas: 2, ..ActorConfig::fast() };
        let benchmarks = vec![
            suite::benchmark(BenchmarkId::Bt),
            suite::benchmark(BenchmarkId::Is),
            suite::benchmark(BenchmarkId::Mg),
            suite::benchmark(BenchmarkId::Cg),
        ];
        let mut rng = StdRng::seed_from_u64(31);
        run_adaptation_study_on(&machine, &config, &benchmarks, &mut rng).unwrap()
    }

    #[test]
    fn all_strategies_evaluated_for_all_benchmarks() {
        let s = study();
        assert_eq!(s.benchmarks.len(), 4);
        for b in &s.benchmarks {
            assert_eq!(b.outcomes.len(), 4);
            assert!(b.sampling_fraction > 0.0 && b.sampling_fraction <= 0.2 + 1e-9);
            assert!(!b.decisions.is_empty());
            for o in &b.outcomes {
                assert!(o.time_s > 0.0 && o.energy_j > 0.0 && o.power_w > 50.0);
                assert!(o.ed2 > 0.0);
            }
            // The baseline normalises to exactly 1.
            for m in Metric::ALL {
                assert!((b.normalised(Strategy::FourCores, m) - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn oracles_never_lose_to_the_four_core_baseline_on_time() {
        let s = study();
        for b in &s.benchmarks {
            assert!(
                b.normalised(Strategy::GlobalOptimal, Metric::Time) <= 1.0 + 1e-9,
                "{}: global optimal slower than 4 cores",
                b.id
            );
            assert!(
                b.normalised(Strategy::PhaseOptimal, Metric::Time)
                    <= b.normalised(Strategy::GlobalOptimal, Metric::Time) + 1e-9,
                "{}: phase optimal slower than global optimal",
                b.id
            );
        }
    }

    #[test]
    fn prediction_improves_poorly_scaling_benchmarks() {
        // IS and MG are the paper's showcase: throttling is imperative for
        // them (IS: 71.6% ED2 improvement). Prediction must beat the 4-core
        // baseline on ED2 for both.
        let s = study();
        for id in [BenchmarkId::Is, BenchmarkId::Mg] {
            let b = s.benchmark(id).unwrap();
            let ed2 = b.normalised(Strategy::Prediction, Metric::Ed2);
            assert!(
                ed2 < 0.9,
                "{id}: prediction should cut ED2 well below the 4-core baseline, got {ed2:.2}"
            );
            let time = b.normalised(Strategy::Prediction, Metric::Time);
            assert!(
                time < 1.0,
                "{id}: prediction should also reduce execution time, got {time:.2}"
            );
        }
    }

    #[test]
    fn prediction_does_not_wreck_scalable_benchmarks() {
        // BT scales well; ACTOR may keep all four cores or throttle slightly,
        // but it must stay close to the baseline.
        let s = study();
        let bt = s.benchmark(BenchmarkId::Bt).unwrap();
        let time = bt.normalised(Strategy::Prediction, Metric::Time);
        assert!(time < 1.15, "BT: prediction-based adaptation cost too much time ({time:.2})");
    }

    #[test]
    fn averages_are_consistent_and_prediction_helps_overall() {
        let s = study();
        let avg_time = s.average_normalised(Strategy::Prediction, Metric::Time);
        let avg_ed2 = s.average_normalised(Strategy::Prediction, Metric::Ed2);
        let geo_ed2 = s.geomean_normalised(Strategy::Prediction, Metric::Ed2);
        assert!(avg_time < 1.05, "average normalised time {avg_time:.2}");
        assert!(avg_ed2 < 1.0, "average normalised ED2 {avg_ed2:.2}");
        assert!(geo_ed2 <= avg_ed2 + 1e-9, "geometric mean cannot exceed arithmetic mean");
        // Phase optimal bounds prediction from below (it is an oracle).
        assert!(s.average_normalised(Strategy::PhaseOptimal, Metric::Time) <= avg_time + 1e-9);
    }

    #[test]
    fn seeded_study_is_reproducible_run_to_run() {
        let machine = Machine::xeon_qx6600();
        let config = ActorConfig { corpus_replicas: 2, ..ActorConfig::fast() };
        let benchmarks = vec![
            suite::benchmark(BenchmarkId::Bt),
            suite::benchmark(BenchmarkId::Is),
            suite::benchmark(BenchmarkId::Mg),
            suite::benchmark(BenchmarkId::Cg),
        ];
        let run = || {
            let mut rng = StdRng::seed_from_u64(config.seed);
            run_adaptation_study_on(&machine, &config, &benchmarks, &mut rng).unwrap()
        };
        assert_eq!(run(), run(), "one seed must give bit-identical Figure 8 numbers");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Strategy::Prediction.label(), "Prediction");
        assert_eq!(Metric::Ed2.label(), "Energy Delay Squared");
        assert_eq!(Strategy::ALL.len(), 4);
        assert_eq!(Metric::ALL.len(), 4);
    }
}
