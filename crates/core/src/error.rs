//! Error type for the ACTOR runtime.

use std::fmt;

use annlib::AnnError;
use xeon_sim::SimError;

/// Errors raised by ACTOR's training, prediction and adaptation paths.
#[derive(Debug, Clone, PartialEq)]
pub enum ActorError {
    /// The offline model training failed.
    Training(AnnError),
    /// The machine model rejected an input.
    Simulation(SimError),
    /// A feature vector did not match the predictor's expectations.
    FeatureMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Provided dimensionality.
        actual: usize,
    },
    /// The training corpus was empty or degenerate.
    EmptyCorpus {
        /// Explanation of what was missing.
        reason: String,
    },
    /// A configuration value was invalid.
    InvalidConfig {
        /// Explanation.
        reason: String,
    },
    /// Model (de)serialisation failed.
    Serialisation {
        /// Underlying error text.
        reason: String,
    },
}

impl fmt::Display for ActorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActorError::Training(e) => write!(f, "model training failed: {e}"),
            ActorError::Simulation(e) => write!(f, "machine model error: {e}"),
            ActorError::FeatureMismatch { expected, actual } => {
                write!(f, "feature vector has {actual} entries, predictor expects {expected}")
            }
            ActorError::EmptyCorpus { reason } => write!(f, "empty training corpus: {reason}"),
            ActorError::InvalidConfig { reason } => {
                write!(f, "invalid ACTOR configuration: {reason}")
            }
            ActorError::Serialisation { reason } => write!(f, "serialisation error: {reason}"),
        }
    }
}

impl std::error::Error for ActorError {}

impl From<AnnError> for ActorError {
    fn from(e: AnnError) -> Self {
        ActorError::Training(e)
    }
}

impl From<SimError> for ActorError {
    fn from(e: SimError) -> Self {
        ActorError::Simulation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: ActorError = AnnError::NumericalInstability.into();
        assert!(matches!(e, ActorError::Training(_)));
        assert!(e.to_string().contains("training"));

        let e: ActorError = SimError::EmptyPlacement.into();
        assert!(matches!(e, ActorError::Simulation(_)));
        assert!(e.to_string().contains("machine model"));

        let e = ActorError::FeatureMismatch { expected: 13, actual: 7 };
        assert!(e.to_string().contains("13"));
        assert!(ActorError::EmptyCorpus { reason: "no phases".into() }
            .to_string()
            .contains("no phases"));
        assert!(ActorError::InvalidConfig { reason: "bad".into() }.to_string().contains("bad"));
        assert!(ActorError::Serialisation { reason: "io".into() }.to_string().contains("io"));
    }
}
