//! The throttling decision.
//!
//! "We sort predictions and select the configuration with the highest
//! predicted IPC for the corresponding program phase. ... Once a
//! configuration is selected, our runtime library ensures all subsequent
//! executions of the phase use the chosen concurrency and thread placement"
//! (Section IV-B). The sampling configuration itself competes with its
//! *observed* IPC.

use serde::{Deserialize, Serialize};

use xeon_sim::Configuration;

/// The outcome of a throttling decision for one phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThrottleDecision {
    /// The configuration that will be enforced for the phase.
    pub chosen: Configuration,
    /// IPC observed on the sampling configuration.
    pub sampled_ipc: f64,
    /// Predicted IPC per target configuration, sorted best-first.
    pub ranked_predictions: Vec<(Configuration, f64)>,
}

impl ThrottleDecision {
    /// Whether the decision throttles concurrency below the sampling
    /// configuration (i.e. leaves cores idle).
    pub fn throttles(&self) -> bool {
        self.chosen != Configuration::SAMPLE
    }

    /// The predicted (or observed, for the sampling configuration) IPC of the
    /// chosen configuration.
    pub fn chosen_ipc(&self) -> f64 {
        self.predicted_ipc(self.chosen)
    }

    /// The predicted IPC this decision assigns to any configuration: the
    /// observed IPC for the sampling configuration, the ranked prediction for
    /// the alternatives (falling back to the observed IPC for a configuration
    /// the predictor did not rank).
    pub fn predicted_ipc(&self, config: Configuration) -> f64 {
        if config == Configuration::SAMPLE {
            return self.sampled_ipc;
        }
        self.ranked_predictions
            .iter()
            .find(|(c, _)| *c == config)
            .map(|(_, ipc)| *ipc)
            .unwrap_or(self.sampled_ipc)
    }
}

/// Selects the configuration with the highest (predicted or observed) IPC.
///
/// `sampled_ipc` is the IPC observed on the maximal-concurrency sampling
/// configuration; `predictions` are the ANN outputs for the alternative
/// configurations. Ties favour fewer threads (cheaper in power for equal
/// performance).
pub fn select_configuration(
    sampled_ipc: f64,
    predictions: &[(Configuration, f64)],
) -> ThrottleDecision {
    let mut ranked: Vec<(Configuration, f64)> = predictions.to_vec();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("IPC predictions must be finite")
            .then_with(|| a.0.num_threads().cmp(&b.0.num_threads()))
    });

    let mut chosen = Configuration::SAMPLE;
    let mut best_ipc = sampled_ipc;
    for (config, ipc) in &ranked {
        let better =
            *ipc > best_ipc || (*ipc == best_ipc && config.num_threads() < chosen.num_threads());
        if better {
            chosen = *config;
            best_ipc = *ipc;
        }
    }

    ThrottleDecision { chosen, sampled_ipc, ranked_predictions: ranked }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_the_highest_predicted_ipc() {
        let decision = select_configuration(
            2.0,
            &[
                (Configuration::One, 0.8),
                (Configuration::TwoTight, 1.5),
                (Configuration::TwoLoose, 2.6),
                (Configuration::Three, 2.2),
            ],
        );
        assert_eq!(decision.chosen, Configuration::TwoLoose);
        assert!(decision.throttles());
        assert!((decision.chosen_ipc() - 2.6).abs() < 1e-12);
        // Ranked predictions are sorted best-first.
        assert_eq!(decision.ranked_predictions[0].0, Configuration::TwoLoose);
        assert_eq!(decision.ranked_predictions.last().unwrap().0, Configuration::One);
    }

    #[test]
    fn keeps_maximal_concurrency_when_it_wins() {
        let decision = select_configuration(
            3.5,
            &[
                (Configuration::One, 0.9),
                (Configuration::TwoTight, 1.6),
                (Configuration::TwoLoose, 1.8),
                (Configuration::Three, 2.5),
            ],
        );
        assert_eq!(decision.chosen, Configuration::Four);
        assert!(!decision.throttles());
        assert!((decision.chosen_ipc() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn ties_prefer_fewer_threads() {
        let decision = select_configuration(
            2.0,
            &[
                (Configuration::Three, 2.0),
                (Configuration::TwoLoose, 2.0),
                (Configuration::One, 2.0),
            ],
        );
        assert_eq!(decision.chosen, Configuration::One, "equal IPC should favour fewer threads");
    }

    #[test]
    fn empty_predictions_keep_the_sample_configuration() {
        let decision = select_configuration(1.2, &[]);
        assert_eq!(decision.chosen, Configuration::Four);
        assert_eq!(decision.chosen_ipc(), 1.2);
        assert!(decision.ranked_predictions.is_empty());
    }
}
