//! Daemon + worker integration over in-memory duplexes: completion parity
//! with `run_sweep`, reassignment on worker death and stall, terminal
//! simulation failures, and the no-worker timeout.
//!
//! Every duplex worker gets the one prebuilt model via `run_worker_with` —
//! the process-level path (which re-trains per worker) is covered by the
//! bench crate's tests, where the worker binary exists.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use actor_core::config::ActorConfig;
use actor_core::telemetry::{MemorySink, MetricsRegistry, SharedSink, SpanSink};
use cluster_daemon::{run_worker_with, serve, DaemonConfig, DaemonError};
use cluster_rpc::{
    client_handshake, duplex, request_metrics, CellOutcome, Connection, Message, SweepContext, Wire,
};
use cluster_sched::{quad_test_workload, run_sweep, FleetModel, SweepSpec, WorkloadModel};
use crossbeam::channel::{unbounded, Sender};
use npb_workloads::BenchmarkId;
use xeon_sim::Machine;

const IDS: [BenchmarkId; 4] = [BenchmarkId::Cg, BenchmarkId::Is, BenchmarkId::Mg, BenchmarkId::Bt];

fn model() -> Arc<WorkloadModel> {
    static MODEL: OnceLock<Arc<WorkloadModel>> = OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| {
        let config = ActorConfig { corpus_replicas: 2, ..ActorConfig::fast() };
        Arc::new(WorkloadModel::build(&Machine::xeon_qx6600(), &config, &IDS).unwrap())
    }))
}

fn fleet() -> Arc<FleetModel> {
    static FLEET: OnceLock<Arc<FleetModel>> = OnceLock::new();
    Arc::clone(FLEET.get_or_init(|| Arc::new(FleetModel::single(WorkloadModel::clone(&model())))))
}

fn context() -> SweepContext {
    SweepContext {
        config: ActorConfig { corpus_replicas: 2, ..ActorConfig::fast() },
        benchmarks: IDS.to_vec(),
        workload: "quad-test".into(),
        machines: vec!["uniform".into()],
        max_node_w: 160.0,
        heartbeat_ms: 25,
        run_id: 4242,
    }
}

fn spec() -> SweepSpec {
    SweepSpec {
        nodes: vec![2],
        budgets: vec![("tight".into(), 0.45)],
        policies: vec!["fcfs".into(), "power-aware".into()],
        seeds: vec![1, 2],
        max_node_w: 160.0,
        workload: quad_test_workload,
        ..SweepSpec::default()
    }
}

/// Connects a well-behaved worker over a duplex, returning its thread.
fn spawn_worker(
    conns: &Sender<Box<dyn Wire>>,
    name: &'static str,
) -> std::thread::JoinHandle<Result<(), cluster_daemon::WorkerError>> {
    let (daemon_side, worker_side) = duplex();
    conns.send(Box::new(daemon_side)).map_err(|_| "conns channel closed").unwrap();
    std::thread::spawn(move || run_worker_with(Box::new(worker_side), name, |_| Ok(fleet())))
}

#[test]
fn duplex_workers_complete_the_grid_identically_to_run_sweep() {
    let spec = spec();
    let serial = run_sweep(&spec, &model(), 1, |_, _, _| {}).unwrap();

    let (conn_tx, conn_rx) = unbounded();
    let w1 = spawn_worker(&conn_tx, "dup-1");
    let w2 = spawn_worker(&conn_tx, "dup-2");
    drop(conn_tx);

    let mut streamed = 0usize;
    let dist = serve(&spec, &DaemonConfig::new(context()), conn_rx, None, |_, done, total| {
        streamed += 1;
        assert!(done <= total);
    })
    .unwrap();

    assert_eq!(streamed, spec.len());
    assert_eq!(dist.workers_seen, 2);
    assert_eq!(dist.reassignments, 0);
    assert_eq!(dist.run.jobs, 2);
    // The distributed outcomes are the serial outcomes, index for index.
    assert_eq!(dist.run.outcomes, serial.outcomes);

    w1.join().unwrap().unwrap();
    w2.join().unwrap().unwrap();
}

#[test]
fn a_worker_dying_mid_cell_gets_its_cell_reassigned() {
    let spec = spec();
    let serial = run_sweep(&spec, &model(), 1, |_, _, _| {}).unwrap();

    let (conn_tx, conn_rx) = unbounded();
    let (got_cell_tx, got_cell_rx) = unbounded();

    // A rigged worker: handshakes, accepts one cell, then drops the
    // connection without answering — a crash from the daemon's viewpoint.
    let (daemon_side, worker_side) = duplex();
    conn_tx
        .send(Box::new(daemon_side) as Box<dyn Wire>)
        .map_err(|_| "conns channel closed")
        .unwrap();
    let crasher = std::thread::spawn(move || {
        let conn = Connection::new(Box::new(worker_side)).unwrap();
        client_handshake(&conn, "crasher").unwrap();
        loop {
            match conn.recv() {
                Ok(Message::AssignCell(_)) => {
                    got_cell_tx.send(()).unwrap();
                    conn.shutdown();
                    return;
                }
                Ok(_) => {}
                Err(_) => return,
            }
        }
    });

    // The survivor joins only once the crasher holds a cell, so the
    // reassignment path is exercised deterministically.
    let survivor = std::thread::spawn(move || {
        got_cell_rx.recv().unwrap();
        let worker = spawn_worker(&conn_tx, "survivor");
        drop(conn_tx);
        worker.join().unwrap()
    });

    let dist = serve(&spec, &DaemonConfig::new(context()), conn_rx, None, |_, _, _| {}).unwrap();
    assert!(dist.reassignments >= 1, "the crashed worker's cell must be requeued");
    assert_eq!(dist.run.outcomes, serial.outcomes);

    crasher.join().unwrap();
    survivor.join().unwrap().unwrap();
}

#[test]
fn a_stalled_worker_is_declared_dead_by_the_heartbeat_scan() {
    let spec = spec();
    let serial = run_sweep(&spec, &model(), 1, |_, _, _| {}).unwrap();

    let (conn_tx, conn_rx) = unbounded();
    let (got_cell_tx, got_cell_rx) = unbounded();

    // A rigged worker that handshakes, takes a cell, then goes silent: no
    // heartbeats, no result. SIGKILL on a remote host looks exactly like
    // this until the kernel tears the socket down.
    let (daemon_side, worker_side) = duplex();
    conn_tx
        .send(Box::new(daemon_side) as Box<dyn Wire>)
        .map_err(|_| "conns channel closed")
        .unwrap();
    let staller = std::thread::spawn(move || {
        let conn = Connection::new(Box::new(worker_side)).unwrap();
        client_handshake(&conn, "staller").unwrap();
        loop {
            match conn.recv() {
                Ok(Message::AssignCell(_)) => {
                    got_cell_tx.send(()).unwrap();
                    // Outlive the liveness grace (10 × 25 ms) in silence.
                    std::thread::sleep(Duration::from_millis(600));
                }
                _ => return, // shut down once the daemon declares us dead
            }
        }
    });

    let survivor = std::thread::spawn(move || {
        got_cell_rx.recv().unwrap();
        let worker = spawn_worker(&conn_tx, "survivor");
        drop(conn_tx);
        worker.join().unwrap()
    });

    let dist = serve(&spec, &DaemonConfig::new(context()), conn_rx, None, |_, _, _| {}).unwrap();
    assert!(dist.reassignments >= 1, "the stalled worker's cell must be requeued");
    assert_eq!(dist.run.outcomes, serial.outcomes);

    staller.join().unwrap();
    survivor.join().unwrap().unwrap();
}

#[test]
fn simulation_failures_are_terminal_and_report_the_lowest_index() {
    let spec = spec();
    let (conn_tx, conn_rx) = unbounded();

    // A worker that answers every assignment with a deterministic failure.
    let (daemon_side, worker_side) = duplex();
    conn_tx
        .send(Box::new(daemon_side) as Box<dyn Wire>)
        .map_err(|_| "conns channel closed")
        .unwrap();
    let failer = std::thread::spawn(move || {
        let conn = Connection::new(Box::new(worker_side)).unwrap();
        client_handshake(&conn, "failer").unwrap();
        loop {
            match conn.recv() {
                Ok(Message::AssignCell(cell)) => {
                    conn.send(&Message::CellResult {
                        index: cell.index,
                        outcome: CellOutcome::Failed {
                            reason: format!("rigged failure {}", cell.index),
                            panicked: false,
                        },
                    })
                    .unwrap();
                }
                _ => return,
            }
        }
    });
    drop(conn_tx);

    let err = serve(&spec, &DaemonConfig::new(context()), conn_rx, None, |_, _, _| {}).unwrap_err();
    match err {
        DaemonError::Cell { cell, reason, attempts } => {
            assert_eq!(cell.index, 0, "lowest-index failure wins, as in run_sweep");
            assert!(reason.contains("rigged failure 0"), "{reason}");
            assert_eq!(attempts, 1, "simulation failures are never retried");
        }
        other => panic!("expected DaemonError::Cell, got {other}"),
    }
    failer.join().unwrap();
}

#[test]
fn repeated_worker_deaths_exhaust_the_attempt_cap() {
    // One cell, three crashers: the cell dies with each in turn, and the
    // third death exhausts the default 3-attempt cap.
    let spec = SweepSpec { policies: vec!["fcfs".into()], seeds: vec![1], ..spec() };
    let (conn_tx, conn_rx) = unbounded();
    let mut crashers = Vec::new();
    for _ in 0..3 {
        let (daemon_side, worker_side) = duplex();
        conn_tx
            .send(Box::new(daemon_side) as Box<dyn Wire>)
            .map_err(|_| "conns channel closed")
            .unwrap();
        crashers.push(std::thread::spawn(move || {
            let conn = Connection::new(Box::new(worker_side)).unwrap();
            client_handshake(&conn, "crasher").unwrap();
            loop {
                match conn.recv() {
                    Ok(Message::AssignCell(_)) => {
                        conn.shutdown();
                        return;
                    }
                    Ok(_) => {}
                    Err(_) => return,
                }
            }
        }));
    }
    drop(conn_tx);

    // A guard against hangs: a correct daemon resolves the cell (as a
    // failure) long before this expires.
    let mut config = DaemonConfig::new(context());
    config.no_worker_timeout = Some(Duration::from_secs(10));
    let err = serve(&spec, &config, conn_rx, None, |_, _, _| {}).unwrap_err();
    match err {
        DaemonError::Cell { cell, attempts, reason } => {
            assert_eq!(cell.index, 0);
            assert_eq!(attempts, 3, "the cap is 3 attempts");
            assert!(reason.contains("died") || reason.contains("stalled"), "{reason}");
        }
        other => panic!("expected DaemonError::Cell, got {other}"),
    }
    for c in crashers {
        c.join().unwrap();
    }
}

#[test]
fn lifecycle_events_and_worker_spans_survive_a_death_and_merge_causally() {
    let spec = spec();

    let (conn_tx, conn_rx) = unbounded();
    let (got_cell_tx, got_cell_rx) = unbounded();

    // A crasher that dies holding a cell, exactly as in the reassignment
    // test above — but this run watches the telemetry.
    let (daemon_side, worker_side) = duplex();
    conn_tx
        .send(Box::new(daemon_side) as Box<dyn Wire>)
        .map_err(|_| "conns channel closed")
        .unwrap();
    let crasher = std::thread::spawn(move || {
        let conn = Connection::new(Box::new(worker_side)).unwrap();
        client_handshake(&conn, "crasher").unwrap();
        loop {
            match conn.recv() {
                Ok(Message::AssignCell(_)) => {
                    got_cell_tx.send(()).unwrap();
                    conn.shutdown();
                    return;
                }
                Ok(_) => {}
                Err(_) => return,
            }
        }
    });
    let survivor = std::thread::spawn(move || {
        got_cell_rx.recv().unwrap();
        let worker = spawn_worker(&conn_tx, "survivor");
        drop(conn_tx);
        worker.join().unwrap()
    });

    // The daemon's own pipeline: a SpanSink stamping source "daemon" in
    // front of a MemorySink. Worker frames arrive pre-stamped and must
    // pass through untouched.
    let memory = Arc::new(MemorySink::new());
    let span: SharedSink =
        Arc::new(SpanSink::new(Arc::clone(&memory) as SharedSink, 4242, "daemon"));
    let dist =
        serve(&spec, &DaemonConfig::new(context()), conn_rx, Some(span), |_, _, _| {}).unwrap();
    assert!(dist.reassignments >= 1);
    crasher.join().unwrap();
    survivor.join().unwrap().unwrap();

    let events = memory.spanned_events();
    let kinds: Vec<&'static str> = events.iter().map(|e| e.event.kind()).collect();
    assert!(kinds.iter().filter(|k| **k == "worker_connected").count() >= 2, "{kinds:?}");
    assert!(kinds.contains(&"worker_dead"), "{kinds:?}");
    assert!(kinds.contains(&"cell_reassigned"), "{kinds:?}");
    assert_eq!(kinds.iter().filter(|k| **k == "sweep_cell").count(), spec.len());

    // Every event is stamped (the daemon stamps its own, workers stamp
    // theirs), all under the handshake's run_id, and per-source sequences
    // are dense from 0 — the invariant trace_tool's gap check relies on.
    let mut by_source: std::collections::BTreeMap<&str, Vec<u64>> = Default::default();
    for e in &events {
        let s = e.span.as_ref().expect("all events stamped");
        assert_eq!(s.run_id, 4242);
        by_source.entry(s.source.as_str()).or_default().push(s.seq);
    }
    assert!(by_source.contains_key("daemon"), "{by_source:?}");
    assert!(by_source.contains_key("survivor"), "worker spans must survive the wire");
    for (source, mut seqs) in by_source {
        seqs.sort_unstable();
        for (i, seq) in seqs.iter().enumerate() {
            assert_eq!(*seq, i as u64, "gap in {source} sequence: {seqs:?}");
        }
    }

    // Worker events carry the cell they executed under.
    assert!(
        events.iter().any(|e| {
            e.span.as_ref().is_some_and(|s| s.source == "survivor" && s.cell.is_some())
        }),
        "survivor's in-cell events must be stamped with their cell index"
    );
}

#[test]
fn a_live_daemon_answers_metrics_requests_and_keeps_counters_current() {
    let spec = spec();
    let registry = Arc::new(MetricsRegistry::new());
    registry.incr("preseeded");

    let (conn_tx, conn_rx) = unbounded();
    let w1 = spawn_worker(&conn_tx, "dup-1");

    // A metrics client is just another accepted connection whose first
    // frame is MetricsRequest: served a snapshot by the handler thread,
    // never reaching the control loop.
    let (daemon_side, client_side) = duplex();
    conn_tx
        .send(Box::new(daemon_side) as Box<dyn Wire>)
        .map_err(|_| "conns channel closed")
        .unwrap();
    let client = std::thread::spawn(move || {
        let conn = Connection::new(Box::new(client_side)).unwrap();
        request_metrics(&conn).unwrap()
    });
    drop(conn_tx);

    let mut config = DaemonConfig::new(context());
    config.metrics = Some(Arc::clone(&registry));
    let dist = serve(&spec, &config, conn_rx, None, |_, _, _| {}).unwrap();
    w1.join().unwrap().unwrap();

    let text = client.join().unwrap();
    assert!(text.contains("preseeded 1"), "snapshot must render the registry:\n{text}");

    assert_eq!(registry.counter("workers_connected"), 1);
    assert_eq!(registry.counter("cells_completed"), spec.len() as u64);
    assert_eq!(registry.counter("workers_dead"), 0);
    assert!(registry.counter("trace_events_ingested") > 0, "worker telemetry must be counted");
    assert_eq!(dist.run.outcomes.len(), spec.len());
}

#[test]
fn a_workerless_daemon_gives_up_after_the_configured_wait() {
    // Accept source open but silent: the no-worker timeout fires.
    let (conn_tx, conn_rx) = unbounded::<Box<dyn Wire>>();
    let mut config = DaemonConfig::new(context());
    config.no_worker_timeout = Some(Duration::from_millis(50));
    let err = serve(&spec(), &config, conn_rx, None, |_, _, _| {}).unwrap_err();
    match err {
        DaemonError::NoWorkers { waited_s } => assert!(waited_s >= 0.05),
        other => panic!("expected DaemonError::NoWorkers, got {other}"),
    }
    drop(conn_tx);

    // Accept source gone with no workers: nothing can ever arrive, which
    // is a disconnection, not a timeout.
    let (conn_tx, conn_rx) = unbounded::<Box<dyn Wire>>();
    drop(conn_tx);
    let err =
        serve(&spec(), &DaemonConfig::new(context()), conn_rx, None, |_, _, _| {}).unwrap_err();
    match err {
        DaemonError::Disconnected { resolved, total } => {
            assert_eq!((resolved, total), (0, 4));
        }
        other => panic!("expected DaemonError::Disconnected, got {other}"),
    }
}
