//! The distributed cluster service: a sweep-dispatching daemon and the
//! worker runtime it drives.
//!
//! The in-process sweep engine (`cluster_sched::sweep`) fans cells out to
//! threads; this crate fans them out to *processes* — following the
//! daemon-owns-core-state / workers-connect-over-a-message-bus shape of
//! clustered deployments, with `cluster_rpc` as the bus. Three layers:
//!
//! * [`serve`] — the daemon control loop. It owns the expanded grid,
//!   accepts workers from any [`cluster_rpc::Wire`] source (Unix sockets in
//!   production, in-memory duplexes in tests), dispatches one cell per idle
//!   worker, tracks liveness by heartbeat, **reassigns** cells from dead or
//!   stalled workers (bounded by a per-cell attempt cap), ingests batched
//!   worker telemetry, and returns a [`DistRun`] whose outcomes are sorted
//!   by cell index — so everything rendered from it is byte-identical to
//!   `run_sweep` at any worker count or death schedule.
//! * [`run_worker`] — the worker runtime. It handshakes, starts
//!   heartbeating *before* model training (training takes seconds and must
//!   not read as death), rebuilds the daemon's exact
//!   [`cluster_sched::WorkloadModel`] from the wire-carried
//!   [`cluster_rpc::SweepContext`] (the model is deterministic in config +
//!   benchmark list), then executes assigned cells through
//!   [`cluster_sched::execute_cell`] — the *same* code path as in-process
//!   sweeps — forwarding telemetry as batched `TraceBatch` frames.
//! * [`run_distributed`] — the local process seam: binds a temporary Unix
//!   socket, spawns N `cluster_worker` processes (CPU-pinned via `taskset`
//!   when available, SIMPLEBENCH-style), serves the sweep, and reaps the
//!   children.
//!
//! Failure semantics mirror `run_sweep`: a cell whose *simulation* fails is
//! a deterministic error — it is never retried, the sweep keeps running,
//! and the lowest-index failure surfaces at the end as
//! [`DaemonError::Cell`]. A cell whose *worker* dies is indeterminate — it
//! is requeued (at the front, so retries happen promptly) until the attempt
//! cap, after which it too becomes [`DaemonError::Cell`].

pub mod daemon;
pub mod error;
pub mod spawn;
pub mod worker;

pub use daemon::{serve, DaemonConfig, DistRun};
pub use error::{DaemonError, WorkerError};
pub use spawn::{accept_unix, run_distributed, ProcessSweepOptions};
pub use worker::{run_worker, run_worker_full, run_worker_traced, run_worker_with};
