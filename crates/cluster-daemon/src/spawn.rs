//! The local process seam: bind a socket, spawn N pinned worker
//! processes, serve the sweep, reap the children.
//!
//! This is what `--processes N` on the sweep bins resolves to: the same
//! [`serve`] loop as a long-lived `--serve` daemon, but with the worker
//! fleet's lifetime owned by the caller. Workers are CPU-pinned via
//! `taskset` when it is available — the SIMPLEBENCH discipline of one
//! worker per core — and fall back to unpinned spawns otherwise.

use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use actor_core::telemetry::SharedSink;
use cluster_rpc::{SweepContext, Wire};
use cluster_sched::{SweepCellOutcome, SweepSpec};
use crossbeam::channel::Sender;

use crate::daemon::{serve, DaemonConfig, DistRun};
use crate::error::DaemonError;

/// How to stand up a local daemon-plus-workers sweep.
#[derive(Debug, Clone)]
pub struct ProcessSweepOptions {
    /// Worker processes to spawn (min 1).
    pub processes: usize,
    /// The `cluster_worker` binary to exec.
    pub worker_bin: PathBuf,
    /// Pin worker `i` to core `i % cores` via `taskset` when available.
    pub pin: bool,
    /// The sweep context shipped to every worker at handshake.
    pub context: SweepContext,
    /// Per-cell attempt cap (see [`DaemonConfig::max_attempts`]).
    pub max_attempts: usize,
    /// Abort with [`DaemonError::NoWorkers`] if no worker is live for this
    /// long — covers both startup failures and a fully-died fleet.
    pub startup_timeout: Duration,
    /// When set, each spawned worker writes its own span-stamped JSONL
    /// trace to `<dir>/worker-local-<i>.jsonl` (the `--trace` flag of
    /// `cluster_worker`) — the files `trace_tool merge` combines with the
    /// daemon's trace into one causal timeline.
    pub worker_trace_dir: Option<PathBuf>,
}

impl ProcessSweepOptions {
    /// Pinned workers, 3 attempts per cell, and a 120 s no-worker window
    /// (model training happens before the handshake completes on slow
    /// machines — the heartbeat only starts once a worker connects).
    pub fn new(processes: usize, worker_bin: PathBuf, context: SweepContext) -> Self {
        Self {
            processes,
            worker_bin,
            pin: true,
            context,
            max_attempts: 3,
            startup_timeout: Duration::from_secs(120),
            worker_trace_dir: None,
        }
    }
}

/// One socket path per (process, call): collisions would cross-wire
/// concurrent sweeps in the same test binary.
fn socket_path() -> PathBuf {
    static SOCKET_SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SOCKET_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("cluster-daemon-{}-{seq}.sock", std::process::id()))
}

/// Feeds accepted Unix-socket connections into a [`serve`] channel until
/// `stop` is raised or the channel closes. The listener must already be
/// nonblocking (that is how `stop` gets observed between connections).
pub fn accept_unix(
    listener: UnixListener,
    stop: Arc<AtomicBool>,
    conns: Sender<Box<dyn Wire>>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // The daemon's frame reads are blocking; only the accept
                // loop polls.
                let _ = stream.set_nonblocking(false);
                if conns.send(Box::new(stream) as Box<dyn Wire>).is_err() {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    })
}

fn worker_command(
    opts: &ProcessSweepOptions,
    socket: &Path,
    index: usize,
    cores: usize,
) -> Command {
    let taskset = Path::new("/usr/bin/taskset");
    let mut cmd = if opts.pin && taskset.exists() {
        let mut c = Command::new(taskset);
        c.arg("-c").arg((index % cores.max(1)).to_string()).arg(&opts.worker_bin);
        c
    } else {
        Command::new(&opts.worker_bin)
    };
    cmd.arg("--connect").arg(socket).arg("--name").arg(format!("local-{index}"));
    if let Some(dir) = &opts.worker_trace_dir {
        cmd.arg("--trace").arg(dir.join(format!("worker-local-{index}.jsonl")));
    }
    cmd
}

/// Waits briefly for a child that was told to shut down; kills it if it
/// lingers.
fn reap(child: &mut Child) {
    for _ in 0..500 {
        match child.try_wait() {
            Ok(Some(_)) => return,
            Ok(None) => std::thread::sleep(Duration::from_millis(10)),
            Err(_) => break,
        }
    }
    let _ = child.kill();
    let _ = child.wait();
}

/// Runs `spec` on a private local cluster: a fresh Unix socket, `serve` as
/// the daemon, and [`ProcessSweepOptions::processes`] spawned
/// `cluster_worker` children.
///
/// The callback and returned [`DistRun`] behave exactly as in [`serve`];
/// children and the socket file are always cleaned up, on error paths by
/// `kill`.
pub fn run_distributed(
    spec: &SweepSpec,
    opts: &ProcessSweepOptions,
    telemetry: Option<SharedSink>,
    on_cell: impl FnMut(&SweepCellOutcome, usize, usize),
) -> Result<DistRun, DaemonError> {
    let path = socket_path();
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path).map_err(DaemonError::Io)?;
    listener.set_nonblocking(true).map_err(DaemonError::Io)?;
    let stop = Arc::new(AtomicBool::new(false));
    let (conn_tx, conn_rx) = crossbeam::channel::unbounded();
    let acceptor = accept_unix(listener, Arc::clone(&stop), conn_tx);

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut children: Vec<Child> = Vec::with_capacity(opts.processes.max(1));
    for i in 0..opts.processes.max(1) {
        let mut cmd = worker_command(opts, &path, i, cores);
        match cmd.spawn() {
            Ok(child) => children.push(child),
            Err(source) => {
                stop.store(true, Ordering::Relaxed);
                for mut c in children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                let _ = acceptor.join();
                let _ = std::fs::remove_file(&path);
                return Err(DaemonError::Spawn { command: format!("{cmd:?}"), source });
            }
        }
    }

    let mut config = DaemonConfig::new(opts.context.clone());
    config.max_attempts = opts.max_attempts;
    config.no_worker_timeout = Some(opts.startup_timeout);
    let result = serve(spec, &config, conn_rx, telemetry, on_cell);

    stop.store(true, Ordering::Relaxed);
    let _ = acceptor.join();
    for mut child in children {
        if result.is_ok() {
            // serve already sent Shutdown; give the worker its clean exit.
            reap(&mut child);
        } else {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
    let _ = std::fs::remove_file(&path);
    result
}
