//! Typed failures of the daemon and worker runtimes.

use std::fmt;

use cluster_rpc::RpcError;
use cluster_sched::{SweepCell, SweepError};

/// Every way a daemon-served sweep can fail.
#[derive(Debug)]
#[non_exhaustive]
pub enum DaemonError {
    /// The sweep grid itself is invalid (pre-dispatch validation).
    Sweep(SweepError),
    /// A cell could not be completed: its simulation failed
    /// deterministically, or every allowed attempt died with its worker.
    /// The lowest-index failure is reported, mirroring
    /// [`SweepError::Cell`].
    Cell {
        /// The failing cell.
        cell: Box<SweepCell>,
        /// The simulation error, panic message, or death description.
        reason: String,
        /// Attempts consumed (1 for a deterministic simulation failure).
        attempts: usize,
    },
    /// No worker connected (or all died) and the configured wait expired
    /// with cells still unresolved.
    NoWorkers {
        /// How long the daemon waited for a worker (s).
        waited_s: f64,
    },
    /// Every event source disconnected with cells still unresolved.
    Disconnected {
        /// Cells resolved before the channel died.
        resolved: usize,
        /// Cells in the grid.
        total: usize,
    },
    /// A transport-layer failure while standing up the service (socket
    /// bind, accept loop).
    Io(std::io::Error),
    /// A worker process could not be spawned.
    Spawn {
        /// The command that failed.
        command: String,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl fmt::Display for DaemonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaemonError::Sweep(e) => write!(f, "{e}"),
            DaemonError::Cell { cell, reason, attempts } => write!(
                f,
                "sweep cell {} ({} nodes, {} budget, {}, seed {}) failed after {} attempt(s): \
                 {reason}",
                cell.index,
                cell.point.nodes,
                cell.point.budget_label,
                cell.point.policy,
                cell.point.seed,
                attempts,
            ),
            DaemonError::NoWorkers { waited_s } => {
                write!(f, "no live workers after {waited_s:.1} s with cells still unresolved")
            }
            DaemonError::Disconnected { resolved, total } => {
                write!(f, "all connections lost with {resolved}/{total} cells resolved")
            }
            DaemonError::Io(e) => write!(f, "daemon transport failure: {e}"),
            DaemonError::Spawn { command, source } => {
                write!(f, "failed to spawn worker `{command}`: {source}")
            }
        }
    }
}

impl std::error::Error for DaemonError {}

impl From<SweepError> for DaemonError {
    fn from(e: SweepError) -> Self {
        DaemonError::Sweep(e)
    }
}

/// Every way the worker runtime can fail.
#[derive(Debug)]
#[non_exhaustive]
pub enum WorkerError {
    /// A protocol or transport failure.
    Rpc(RpcError),
    /// The daemon named a workload shape this worker does not know.
    UnknownShape {
        /// The unresolvable shape name.
        name: String,
    },
    /// The worker could not rebuild the model from the sweep context.
    Model {
        /// The model-construction error display.
        reason: String,
    },
}

impl fmt::Display for WorkerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerError::Rpc(e) => write!(f, "{e}"),
            WorkerError::UnknownShape { name } => {
                write!(f, "unknown workload shape {name:?} in the sweep context")
            }
            WorkerError::Model { reason } => write!(f, "model construction failed: {reason}"),
        }
    }
}

impl std::error::Error for WorkerError {}

impl From<RpcError> for WorkerError {
    fn from(e: RpcError) -> Self {
        WorkerError::Rpc(e)
    }
}
