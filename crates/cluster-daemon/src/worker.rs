//! The worker runtime: handshake, heartbeat, model rebuild, cell loop.
//!
//! A worker is a thin shell around [`cluster_sched::execute_cell`] — the
//! same function every in-process sweep thread runs — so a cell computes
//! the identical [`cluster_sched::ClusterReport`] no matter which side of
//! the socket it runs on. The only worker-specific machinery is the
//! heartbeat thread (started *before* model training, which takes seconds
//! and must not read as death) and the telemetry forwarder that batches
//! trace events into `TraceBatch` frames.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use actor_core::telemetry::{BufferedSink, SharedSink, TelemetrySink, TraceEvent};
use cluster_rpc::{
    client_handshake, CellOutcome, Connection, Message, RpcError, SweepContext, Wire,
};
use cluster_sched::{execute_cell, workload_shape_by_name, WorkloadModel, WorkloadSpec};
use xeon_sim::Machine;

use crate::error::WorkerError;

/// Ships trace events to the daemon as `TraceBatch` frames. Sits behind a
/// [`BufferedSink`] so hot-path events amortise to one frame per batch;
/// send failures are swallowed — a dying connection surfaces in the cell
/// loop, not in telemetry.
struct TraceForwardSink {
    conn: Arc<Connection>,
}

impl TelemetrySink for TraceForwardSink {
    fn record(&self, event: &TraceEvent) {
        let _ = self.conn.send(&Message::TraceBatch(vec![event.clone()]));
    }

    fn record_batch(&self, events: &[TraceEvent]) {
        if !events.is_empty() {
            let _ = self.conn.send(&Message::TraceBatch(events.to_vec()));
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Executes one assigned cell, containing panics: the daemon gets a typed
/// [`CellOutcome`] either way, never a dead worker from a bad cell.
fn run_one_cell(
    model: &WorkloadModel,
    workload: fn(usize) -> WorkloadSpec,
    max_node_w: f64,
    cell: &cluster_sched::SweepCell,
    telemetry: &SharedSink,
) -> CellOutcome {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute_cell(model, workload, max_node_w, cell, Some(telemetry))
    }));
    match result {
        Ok(Ok(report)) => CellOutcome::Completed(report),
        Ok(Err(e)) => CellOutcome::Failed { reason: e.to_string(), panicked: false },
        Err(payload) => {
            CellOutcome::Failed { reason: panic_message(payload.as_ref()), panicked: true }
        }
    }
}

/// Runs the worker protocol over `wire` until the daemon says
/// [`Message::Shutdown`] (clean exit) or the connection fails.
///
/// The model is rebuilt from the handshake's [`SweepContext`]:
/// [`WorkloadModel::build`] is deterministic in `(config, benchmarks)`, so
/// every worker trains the exact tables the daemon's in-process peer would
/// use.
pub fn run_worker(wire: Box<dyn Wire>, name: &str) -> Result<(), WorkerError> {
    run_worker_with(wire, name, |ctx| {
        WorkloadModel::build(&Machine::xeon_qx6600(), &ctx.config, &ctx.benchmarks)
            .map(Arc::new)
            .map_err(|e| e.to_string())
    })
}

/// [`run_worker`] with an injectable model source — tests hand every
/// duplex worker one prebuilt `Arc` instead of re-training per worker.
pub fn run_worker_with(
    wire: Box<dyn Wire>,
    name: &str,
    model_builder: impl FnOnce(&SweepContext) -> Result<Arc<WorkloadModel>, String>,
) -> Result<(), WorkerError> {
    let conn = Arc::new(Connection::new(wire).map_err(RpcError::from)?);
    let ctx = client_handshake(&conn, name)?;

    // Heartbeats start before the (seconds-long) model build so training
    // never reads as death at the daemon's liveness scan.
    let stop = Arc::new(AtomicBool::new(false));
    let heartbeat = {
        let conn = Arc::clone(&conn);
        let stop = Arc::clone(&stop);
        let period = Duration::from_millis(ctx.heartbeat_ms.max(1));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if conn.send(&Message::Heartbeat).is_err() {
                    break;
                }
                std::thread::sleep(period);
            }
        })
    };

    let result = worker_loop(&conn, &ctx, model_builder);

    stop.store(true, Ordering::Relaxed);
    conn.shutdown();
    let _ = heartbeat.join();
    result
}

fn worker_loop(
    conn: &Arc<Connection>,
    ctx: &SweepContext,
    model_builder: impl FnOnce(&SweepContext) -> Result<Arc<WorkloadModel>, String>,
) -> Result<(), WorkerError> {
    let workload = workload_shape_by_name(&ctx.workload)
        .ok_or_else(|| WorkerError::UnknownShape { name: ctx.workload.clone() })?;
    let model = model_builder(ctx).map_err(|reason| WorkerError::Model { reason })?;
    let forward: SharedSink =
        Arc::new(BufferedSink::new(Arc::new(TraceForwardSink { conn: Arc::clone(conn) })));
    loop {
        match conn.recv()? {
            Message::AssignCell(cell) => {
                let outcome = run_one_cell(&model, workload, ctx.max_node_w, &cell, &forward);
                // Trace frames precede the result: once the daemon sees
                // the CellResult, the cell's telemetry is fully delivered.
                forward.flush();
                conn.send(&Message::CellResult { index: cell.index, outcome })?;
            }
            Message::Shutdown => return Ok(()),
            Message::Heartbeat => {}
            Message::Error(e) => return Err(WorkerError::Rpc(e)),
            other => {
                return Err(WorkerError::Rpc(RpcError::Protocol {
                    reason: format!("unexpected {} frame for a worker", other.kind()),
                }))
            }
        }
    }
}
