//! The worker runtime: handshake, heartbeat, model rebuild, cell loop.
//!
//! A worker is a thin shell around [`cluster_sched::execute_cell`] — the
//! same function every in-process sweep thread runs — so a cell computes
//! the identical [`cluster_sched::ClusterReport`] no matter which side of
//! the socket it runs on. The only worker-specific machinery is the
//! heartbeat thread (started *before* model training, which takes seconds
//! and must not read as death) and the telemetry pipeline: a
//! [`SpanSink`] stamps every event with the wire-carried run id, the
//! worker's name, a dense sequence, and the cell being executed, then a
//! rebatching forward sink ships them to the daemon as `TraceBatch`
//! frames (one frame per batch — never one frame per event).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use actor_core::telemetry::{
    FanoutSink, SharedSink, SpanSink, SpannedEvent, TelemetrySink, TraceEvent,
};
use cluster_rpc::{
    client_handshake, CellOutcome, Connection, Message, RpcError, SweepContext, Wire,
};
use cluster_sched::{
    execute_cell, mix_by_name, workload_shape_by_name, FleetModel, WorkloadSpec, MACHINE_MIX_NAMES,
};
use parking_lot::Mutex;

use crate::error::WorkerError;

/// Ships trace events to the daemon as `TraceBatch` frames, rebatching
/// internally: *every* entry path (`record`, `record_batch`,
/// `record_spanned`) accumulates into one buffer that is sent as a single
/// frame when `capacity` events gather or on flush — so no caller can
/// regress to one frame per event. Send failures are swallowed: a dying
/// connection surfaces in the cell loop, not in telemetry.
struct TraceForwardSink {
    conn: Arc<Connection>,
    capacity: usize,
    buf: Mutex<Vec<SpannedEvent>>,
}

impl TraceForwardSink {
    /// Batch size for trace frames: a few KiB per frame, same order as the
    /// old `BufferedSink` wrapper this sink replaces.
    const DEFAULT_CAPACITY: usize = 256;

    fn new(conn: Arc<Connection>) -> Self {
        Self { conn, capacity: Self::DEFAULT_CAPACITY, buf: Mutex::new(Vec::new()) }
    }

    #[cfg(test)]
    fn with_capacity(conn: Arc<Connection>, capacity: usize) -> Self {
        Self { conn, capacity: capacity.max(1), buf: Mutex::new(Vec::new()) }
    }

    fn push(&self, events: &[SpannedEvent]) {
        let mut buf = self.buf.lock();
        buf.extend_from_slice(events);
        if buf.len() >= self.capacity {
            let batch = std::mem::take(&mut *buf);
            // Send while holding the lock so concurrent recorders cannot
            // interleave a later event ahead of this frame.
            let _ = self.conn.send(&Message::TraceBatch(batch));
        }
    }
}

impl TelemetrySink for TraceForwardSink {
    fn record(&self, event: &TraceEvent) {
        self.push(std::slice::from_ref(&SpannedEvent::unspanned(event.clone())));
    }

    fn record_batch(&self, events: &[TraceEvent]) {
        let spanned: Vec<SpannedEvent> =
            events.iter().cloned().map(SpannedEvent::unspanned).collect();
        self.push(&spanned);
    }

    fn record_spanned(&self, events: &[SpannedEvent]) {
        self.push(events);
    }

    fn flush(&self) {
        let mut buf = self.buf.lock();
        if !buf.is_empty() {
            let batch = std::mem::take(&mut *buf);
            let _ = self.conn.send(&Message::TraceBatch(batch));
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Executes one assigned cell, containing panics: the daemon gets a typed
/// [`CellOutcome`] either way, never a dead worker from a bad cell.
fn run_one_cell(
    fleet: &FleetModel,
    workload: fn(usize) -> WorkloadSpec,
    max_node_w: f64,
    cell: &cluster_sched::SweepCell,
    telemetry: &SharedSink,
) -> CellOutcome {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute_cell(fleet, workload, max_node_w, cell, Some(telemetry))
    }));
    match result {
        Ok(Ok(report)) => CellOutcome::Completed(report),
        Ok(Err(e)) => CellOutcome::Failed { reason: e.to_string(), panicked: false },
        Err(payload) => {
            CellOutcome::Failed { reason: panic_message(payload.as_ref()), panicked: true }
        }
    }
}

/// Rebuilds the sweep's fleet from the wire-carried mix names —
/// [`FleetModel::build`] is deterministic in `(config, benchmarks, mixes)`,
/// so every worker trains the exact per-generation tables the daemon's
/// in-process peer would use. An unknown mix name on the wire is a loud
/// model error, never a silent fallback to the reference machine.
fn fleet_from_context(ctx: &SweepContext) -> Result<Arc<FleetModel>, String> {
    let mixes = ctx
        .machines
        .iter()
        .map(|name| {
            mix_by_name(name).ok_or_else(|| {
                format!(
                    "unknown machine mix {name:?} in sweep context; valid mixes are: {}",
                    MACHINE_MIX_NAMES.join(", ")
                )
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    FleetModel::build(&ctx.config, &ctx.benchmarks, &mixes).map(Arc::new).map_err(|e| e.to_string())
}

/// Runs the worker protocol over `wire` until the daemon says
/// [`Message::Shutdown`] (clean exit) or the connection fails.
///
/// The fleet is rebuilt from the handshake's [`SweepContext`] machine-mix
/// names, so every worker trains the exact tables the daemon's in-process
/// peer would use.
pub fn run_worker(wire: Box<dyn Wire>, name: &str) -> Result<(), WorkerError> {
    run_worker_traced(wire, name, None)
}

/// [`run_worker`] with an optional local sink (e.g. a worker-side
/// `--trace` JSONL file) that receives the same span-stamped events the
/// daemon does.
pub fn run_worker_traced(
    wire: Box<dyn Wire>,
    name: &str,
    local: Option<SharedSink>,
) -> Result<(), WorkerError> {
    run_worker_full(wire, name, local, fleet_from_context)
}

/// [`run_worker`] with an injectable fleet source — tests hand every
/// duplex worker one prebuilt `Arc` instead of re-training per worker.
pub fn run_worker_with(
    wire: Box<dyn Wire>,
    name: &str,
    fleet_builder: impl FnOnce(&SweepContext) -> Result<Arc<FleetModel>, String>,
) -> Result<(), WorkerError> {
    run_worker_full(wire, name, None, fleet_builder)
}

/// The fully-general worker entry point: injectable fleet source *and*
/// optional local telemetry sink beside the daemon forwarder.
pub fn run_worker_full(
    wire: Box<dyn Wire>,
    name: &str,
    local: Option<SharedSink>,
    fleet_builder: impl FnOnce(&SweepContext) -> Result<Arc<FleetModel>, String>,
) -> Result<(), WorkerError> {
    let conn = Arc::new(Connection::new(wire).map_err(RpcError::from)?);
    let ctx = client_handshake(&conn, name)?;

    // Heartbeats start before the (seconds-long) model build so training
    // never reads as death at the daemon's liveness scan.
    let stop = Arc::new(AtomicBool::new(false));
    let heartbeat = {
        let conn = Arc::clone(&conn);
        let stop = Arc::clone(&stop);
        let period = Duration::from_millis(ctx.heartbeat_ms.max(1));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if conn.send(&Message::Heartbeat).is_err() {
                    break;
                }
                std::thread::sleep(period);
            }
        })
    };

    let result = worker_loop(&conn, name, local, &ctx, fleet_builder);

    stop.store(true, Ordering::Relaxed);
    conn.shutdown();
    let _ = heartbeat.join();
    result
}

fn worker_loop(
    conn: &Arc<Connection>,
    name: &str,
    local: Option<SharedSink>,
    ctx: &SweepContext,
    fleet_builder: impl FnOnce(&SweepContext) -> Result<Arc<FleetModel>, String>,
) -> Result<(), WorkerError> {
    let workload = workload_shape_by_name(&ctx.workload)
        .ok_or_else(|| WorkerError::UnknownShape { name: ctx.workload.clone() })?;
    let fleet = fleet_builder(ctx).map_err(|reason| WorkerError::Model { reason })?;
    // Pipeline: SpanSink (stamps run_id/worker/seq/cell) → forwarder to
    // the daemon, plus the optional local sink, both receiving the same
    // stamped events.
    let forward: SharedSink = Arc::new(TraceForwardSink::new(Arc::clone(conn)));
    let downstream: SharedSink = match local {
        Some(local_sink) => Arc::new(FanoutSink::new(vec![forward, local_sink])),
        None => forward,
    };
    let span = Arc::new(SpanSink::new(downstream, ctx.run_id, name));
    let telemetry: SharedSink = Arc::clone(&span) as SharedSink;
    loop {
        match conn.recv()? {
            Message::AssignCell(cell) => {
                span.set_cell(Some(cell.index as u64));
                let outcome = run_one_cell(&fleet, workload, ctx.max_node_w, &cell, &telemetry);
                span.set_cell(None);
                // Trace frames precede the result: once the daemon sees
                // the CellResult, the cell's telemetry is fully delivered.
                telemetry.flush();
                conn.send(&Message::CellResult { index: cell.index, outcome })?;
            }
            Message::Shutdown => return Ok(()),
            Message::Heartbeat => {}
            Message::Error(e) => return Err(WorkerError::Rpc(e)),
            other => {
                return Err(WorkerError::Rpc(RpcError::Protocol {
                    reason: format!("unexpected {} frame for a worker", other.kind()),
                }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_rpc::duplex;

    fn progress(done: usize) -> TraceEvent {
        TraceEvent::Progress { name: "t".into(), done, expected: 100 }
    }

    /// Regression for the one-frame-per-event bug: every entry path of the
    /// forwarder rebatches, so 10 single-event records at capacity 4 make
    /// 3 frames, not 10.
    #[test]
    fn forward_sink_rebatches_single_event_records_into_frames() {
        let (ours, theirs) = duplex();
        let conn = Arc::new(Connection::new(Box::new(ours)).unwrap());
        let peer = Connection::new(Box::new(theirs)).unwrap();
        let sink = TraceForwardSink::with_capacity(conn, 4);

        for i in 0..10 {
            sink.record(&progress(i));
        }
        sink.flush();

        let mut frames = 0;
        let mut events = 0;
        while events < 10 {
            match peer.recv().unwrap() {
                Message::TraceBatch(batch) => {
                    frames += 1;
                    events += batch.len();
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert_eq!(events, 10, "every event arrives");
        assert_eq!(frames, 3, "4 + 4 + 2, never one frame per event");
    }

    /// Span stamps survive the forwarder: what the daemon receives is what
    /// the SpanSink stamped.
    #[test]
    fn forward_sink_preserves_span_stamps() {
        let (ours, theirs) = duplex();
        let conn = Arc::new(Connection::new(Box::new(ours)).unwrap());
        let peer = Connection::new(Box::new(theirs)).unwrap();
        let forward: SharedSink = Arc::new(TraceForwardSink::with_capacity(conn, 64));
        let span = SpanSink::new(forward.clone(), 99, "w-test");
        span.set_cell(Some(5));
        span.record(&progress(0));
        span.record(&progress(1));
        span.flush();

        match peer.recv().unwrap() {
            Message::TraceBatch(batch) => {
                assert_eq!(batch.len(), 2);
                for (i, e) in batch.iter().enumerate() {
                    let s = e.span.as_ref().expect("stamped");
                    assert_eq!(s.run_id, 99);
                    assert_eq!(s.source, "w-test");
                    assert_eq!(s.seq, i as u64);
                    assert_eq!(s.cell, Some(5));
                }
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
}
