//! The daemon control loop: grid ownership, dispatch, heartbeat liveness,
//! and reassignment of cells from dead or stalled workers.
//!
//! [`serve`] is transport-agnostic: it consumes connected [`Wire`]s from a
//! channel, so the same loop runs over Unix-socket accepts in production
//! and in-memory duplexes in tests. Each connection gets a handler thread
//! that handshakes and forwards frames into one event channel; the control
//! loop itself is single-threaded, which keeps the bookkeeping (pending
//! queue, attempt counts, completion set) free of locks.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use actor_core::telemetry::{MetricsRegistry, SharedSink, TraceEvent};
use cluster_rpc::{server_accept, Accepted, CellOutcome, Connection, Message, SweepContext, Wire};
use cluster_sched::{SweepCell, SweepCellOutcome, SweepRun, SweepSpec};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use crate::error::DaemonError;

/// How the daemon treats its workers.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// The context every worker receives at handshake (model config,
    /// benchmark list, workload shape name, heartbeat period).
    pub context: SweepContext,
    /// Silence longer than this declares a worker dead and requeues its
    /// cell.
    pub liveness_grace: Duration,
    /// Assignments a cell may consume before its worker deaths become a
    /// terminal [`DaemonError::Cell`].
    pub max_attempts: usize,
    /// Give up with [`DaemonError::NoWorkers`] after this long with zero
    /// live workers and cells still unresolved. `None` waits forever.
    pub no_worker_timeout: Option<Duration>,
    /// Live-queryable metrics: when set, the control loop keeps worker and
    /// cell counters current in it, and any connection whose first frame is
    /// [`Message::MetricsRequest`] is served a
    /// [`MetricsRegistry::render_text`] snapshot instead of a handshake.
    pub metrics: Option<Arc<MetricsRegistry>>,
}

impl DaemonConfig {
    /// Defaults derived from the context: a liveness grace of 10 heartbeat
    /// periods (min 100 ms), 3 attempts per cell, wait forever for
    /// workers.
    pub fn new(context: SweepContext) -> Self {
        let grace = Duration::from_millis(context.heartbeat_ms.saturating_mul(10).max(100));
        Self {
            context,
            liveness_grace: grace,
            max_attempts: 3,
            no_worker_timeout: None,
            metrics: None,
        }
    }
}

/// A completed distributed sweep: the `run_sweep`-shaped result plus
/// distribution bookkeeping.
#[derive(Debug, Clone)]
pub struct DistRun {
    /// Outcomes sorted by cell index — renders byte-identical to
    /// [`cluster_sched::run_sweep`] on the same grid. `run.jobs` is the
    /// number of distinct workers that ever joined.
    pub run: SweepRun,
    /// Distinct workers that completed the handshake.
    pub workers_seen: usize,
    /// Cells requeued because their worker died or stalled.
    pub reassignments: usize,
}

/// What the per-connection handler threads feed the control loop.
enum Event {
    Joined { id: u64, name: String, conn: Arc<Connection> },
    Frame { id: u64, msg: Box<Message> },
    Left { id: u64, reason: String },
}

struct WorkerState {
    name: String,
    conn: Arc<Connection>,
    busy: Option<SweepCell>,
    last_seen: Instant,
}

/// The mirror of `cluster_sched`'s private per-cell trace record — kept
/// field-identical so daemon-mode JSONL traces match in-process ones.
fn sweep_cell_event(outcome: &SweepCellOutcome) -> TraceEvent {
    let point = &outcome.cell.point;
    TraceEvent::SweepCell {
        index: outcome.cell.index,
        nodes: point.nodes,
        budget: point.budget_label.clone(),
        policy: point.policy.clone(),
        seed: point.seed,
        makespan_s: outcome.report.makespan_s,
        total_energy_j: outcome.report.total_energy_j,
    }
}

/// Turns raw wires into handshaked connections feeding `events`: one
/// handler thread per connection, exiting when its connection closes.
/// Connections opening with [`Message::MetricsRequest`] are served a
/// snapshot from `metrics` and closed without ever reaching the control
/// loop.
fn spawn_acceptor(
    conns: Receiver<Box<dyn Wire>>,
    context: SweepContext,
    events: Sender<Event>,
    metrics: Option<Arc<MetricsRegistry>>,
) {
    std::thread::spawn(move || {
        let mut next_id = 0u64;
        while let Ok(wire) = conns.recv() {
            let id = next_id;
            next_id += 1;
            let events = events.clone();
            let context = context.clone();
            let metrics = metrics.clone();
            std::thread::spawn(move || {
                let conn = match Connection::new(wire) {
                    Ok(c) => Arc::new(c),
                    Err(_) => return,
                };
                let render;
                let render_ref: Option<&dyn Fn() -> String> = match metrics {
                    Some(reg) => {
                        render = move || reg.render_text();
                        Some(&render)
                    }
                    None => None,
                };
                let name = match server_accept(&conn, &context, render_ref) {
                    Ok(Accepted::Worker(name)) => name,
                    Ok(Accepted::MetricsServed) | Err(_) => {
                        conn.shutdown();
                        return;
                    }
                };
                if events.send(Event::Joined { id, name, conn: Arc::clone(&conn) }).is_err() {
                    conn.shutdown();
                    return;
                }
                loop {
                    match conn.recv() {
                        Ok(msg) => {
                            if events.send(Event::Frame { id, msg: Box::new(msg) }).is_err() {
                                break;
                            }
                        }
                        Err(e) => {
                            let _ = events.send(Event::Left { id, reason: e.to_string() });
                            break;
                        }
                    }
                }
            });
        }
    });
}

/// Requeues a died-with-its-worker cell at the *front* (retries happen
/// promptly, keeping completion order close to expansion order), unless
/// its attempts are exhausted — then it becomes a terminal failure.
fn requeue_or_fail(
    cell: SweepCell,
    reason: String,
    attempts: &BTreeMap<usize, usize>,
    max_attempts: usize,
    pending: &mut VecDeque<SweepCell>,
    failures: &mut Vec<(SweepCell, String, usize)>,
) {
    let tried = attempts.get(&cell.index).copied().unwrap_or(0);
    if tried >= max_attempts {
        failures.push((cell, reason, tried));
    } else {
        pending.push_front(cell);
    }
}

/// The one exit path for a worker leaving the pool for any reason (error
/// frame, protocol violation, closed connection, heartbeat stall): closes
/// the transport, traces [`TraceEvent::WorkerDead`] and — when a cell dies
/// with it — [`TraceEvent::CellReassigned`], keeps the registry counters
/// current, and requeues the orphaned cell. Returns 1 when a cell was
/// orphaned (the caller's reassignment count), 0 otherwise.
#[allow(clippy::too_many_arguments)]
fn drop_worker(
    worker: WorkerState,
    reason: String,
    attempts: &BTreeMap<usize, usize>,
    max_attempts: usize,
    pending: &mut VecDeque<SweepCell>,
    failures: &mut Vec<(SweepCell, String, usize)>,
    telemetry: Option<&SharedSink>,
    metrics: Option<&MetricsRegistry>,
) -> usize {
    worker.conn.shutdown();
    if let Some(sink) = telemetry {
        sink.record(&TraceEvent::WorkerDead {
            worker: worker.name.clone(),
            reason: reason.clone(),
        });
    }
    if let Some(reg) = metrics {
        reg.incr("workers_dead");
    }
    let Some(cell) = worker.busy else { return 0 };
    let attempt = attempts.get(&cell.index).copied().unwrap_or(0);
    if let Some(sink) = telemetry {
        sink.record(&TraceEvent::CellReassigned {
            index: cell.index,
            worker: worker.name.clone(),
            attempt,
        });
    }
    if let Some(reg) = metrics {
        reg.incr("cells_reassigned");
    }
    requeue_or_fail(cell, reason, attempts, max_attempts, pending, failures);
    1
}

/// Serves one sweep to however many workers connect, returning when every
/// cell is resolved.
///
/// Workers arrive as connected [`Wire`]s on `conns` (a Unix-socket accept
/// loop in production, [`cluster_rpc::duplex`] halves in tests) and may
/// join at any point mid-sweep. Results stream through `on_cell` in
/// completion order exactly like [`cluster_sched::run_sweep`]'s callback,
/// and the returned outcomes are index-sorted, so artefacts rendered from
/// either are byte-identical.
///
/// Failure semantics mirror `run_sweep`: a cell whose simulation fails
/// (worker reported [`CellOutcome::Failed`]) is deterministic — never
/// retried, sweep keeps running, lowest-index failure reported at the end.
/// A worker death or stall is indeterminate — the cell is requeued until
/// [`DaemonConfig::max_attempts`].
pub fn serve(
    spec: &SweepSpec,
    config: &DaemonConfig,
    conns: Receiver<Box<dyn Wire>>,
    telemetry: Option<SharedSink>,
    mut on_cell: impl FnMut(&SweepCellOutcome, usize, usize),
) -> Result<DistRun, DaemonError> {
    spec.validate()?;
    let all_cells = spec.expand();
    let total = all_cells.len();
    let started = Instant::now();

    let (event_tx, event_rx) = crossbeam::channel::unbounded();
    spawn_acceptor(conns, config.context.clone(), event_tx, config.metrics.clone());
    let metrics = config.metrics.as_deref();
    if let Some(reg) = metrics {
        reg.set_gauge("cells_total", total as f64);
    }

    let tick = (config.liveness_grace / 4).max(Duration::from_millis(5));
    let mut pending: VecDeque<SweepCell> = all_cells.iter().cloned().collect();
    let mut attempts: BTreeMap<usize, usize> = BTreeMap::new();
    let mut workers: BTreeMap<u64, WorkerState> = BTreeMap::new();
    let mut completed: BTreeSet<usize> = BTreeSet::new();
    let mut outcomes: Vec<SweepCellOutcome> = Vec::with_capacity(total);
    let mut failures: Vec<(SweepCell, String, usize)> = Vec::new();
    let mut workers_seen = 0usize;
    let mut reassignments = 0usize;
    let mut workers_empty_since = started;

    let result = loop {
        // Dispatch pending cells to idle workers. A failed send means the
        // worker is already gone: undo the attempt (the assignment never
        // arrived) and drop the worker.
        let mut dead: Vec<u64> = Vec::new();
        for (&id, worker) in workers.iter_mut() {
            if worker.busy.is_some() {
                continue;
            }
            let Some(cell) = pending.pop_front() else { break };
            *attempts.entry(cell.index).or_insert(0) += 1;
            match worker.conn.send(&Message::AssignCell(cell.clone())) {
                Ok(()) => {
                    if let Some(reg) = metrics {
                        reg.incr("cells_dispatched");
                    }
                    worker.busy = Some(cell);
                }
                Err(_) => {
                    *attempts.get_mut(&cell.index).expect("attempt just counted") -= 1;
                    pending.push_front(cell);
                    dead.push(id);
                }
            }
        }
        for id in dead {
            if let Some(worker) = workers.remove(&id) {
                // The cell never left the queue (send failed), so this is
                // a death without a reassignment.
                drop_worker(
                    worker,
                    "assignment send failed".into(),
                    &attempts,
                    config.max_attempts,
                    &mut pending,
                    &mut failures,
                    telemetry.as_ref(),
                    metrics,
                );
                if let Some(reg) = metrics {
                    reg.set_gauge("workers_live", workers.len() as f64);
                }
            }
        }

        if outcomes.len() + failures.len() == total {
            break Ok(());
        }

        match event_rx.recv_timeout(tick) {
            Ok(Event::Joined { id, name, conn }) => {
                workers_seen += 1;
                if let Some(sink) = &telemetry {
                    sink.record(&TraceEvent::WorkerConnected { worker: name.clone() });
                }
                if let Some(reg) = metrics {
                    reg.incr("workers_connected");
                }
                workers
                    .insert(id, WorkerState { name, conn, busy: None, last_seen: Instant::now() });
                if let Some(reg) = metrics {
                    reg.set_gauge("workers_live", workers.len() as f64);
                }
            }
            Ok(Event::Frame { id, msg }) => {
                // Frames from workers already declared dead are ignored:
                // their cell was requeued, and the completion set below
                // guards against double-counting anyway.
                let Some(worker) = workers.get_mut(&id) else { continue };
                worker.last_seen = Instant::now();
                match *msg {
                    Message::Heartbeat => {}
                    Message::TraceBatch(events) => {
                        // Worker frames arrive already span-stamped;
                        // record_spanned preserves those stamps (the
                        // daemon's own SpanSink only stamps span-less
                        // events).
                        if let Some(sink) = &telemetry {
                            sink.record_spanned(&events);
                        }
                        if let Some(reg) = metrics {
                            reg.add("trace_events_ingested", events.len() as u64);
                        }
                    }
                    Message::CellResult { index, outcome } => {
                        if worker.busy.as_ref().map(|c| c.index) == Some(index) {
                            worker.busy = None;
                        }
                        if index >= total || completed.contains(&index) {
                            continue;
                        }
                        match outcome {
                            CellOutcome::Completed(report) => {
                                completed.insert(index);
                                if let Some(reg) = metrics {
                                    reg.incr("cells_completed");
                                }
                                let outcome =
                                    SweepCellOutcome { cell: all_cells[index].clone(), report };
                                if let Some(sink) = &telemetry {
                                    sink.record(&sweep_cell_event(&outcome));
                                }
                                on_cell(&outcome, outcomes.len() + failures.len() + 1, total);
                                outcomes.push(outcome);
                            }
                            CellOutcome::Failed { reason, panicked } => {
                                // A simulation failure is deterministic:
                                // retrying on another worker would fail
                                // identically, so it is terminal — exactly
                                // run_sweep's semantics.
                                if failures.iter().any(|(c, ..)| c.index == index) {
                                    continue;
                                }
                                let tried = attempts.get(&index).copied().unwrap_or(1);
                                let reason = if panicked {
                                    format!("cell panicked: {reason}")
                                } else {
                                    reason
                                };
                                if let Some(reg) = metrics {
                                    reg.incr("cells_failed");
                                }
                                failures.push((all_cells[index].clone(), reason, tried));
                            }
                        }
                    }
                    Message::Error(e) => {
                        if let Some(worker) = workers.remove(&id) {
                            let reason = format!("worker {} failed: {e}", worker.name);
                            reassignments += drop_worker(
                                worker,
                                reason,
                                &attempts,
                                config.max_attempts,
                                &mut pending,
                                &mut failures,
                                telemetry.as_ref(),
                                metrics,
                            );
                            if let Some(reg) = metrics {
                                reg.set_gauge("workers_live", workers.len() as f64);
                            }
                        }
                    }
                    other => {
                        // Hello/HelloAck/AssignCell/Shutdown from a worker
                        // are protocol violations; drop the worker.
                        if let Some(worker) = workers.remove(&id) {
                            let reason = format!(
                                "worker {} sent an unexpected {} frame",
                                worker.name,
                                other.kind()
                            );
                            reassignments += drop_worker(
                                worker,
                                reason,
                                &attempts,
                                config.max_attempts,
                                &mut pending,
                                &mut failures,
                                telemetry.as_ref(),
                                metrics,
                            );
                            if let Some(reg) = metrics {
                                reg.set_gauge("workers_live", workers.len() as f64);
                            }
                        }
                    }
                }
            }
            Ok(Event::Left { id, reason }) => {
                if let Some(worker) = workers.remove(&id) {
                    let reason = format!("worker {} died: {reason}", worker.name);
                    reassignments += drop_worker(
                        worker,
                        reason,
                        &attempts,
                        config.max_attempts,
                        &mut pending,
                        &mut failures,
                        telemetry.as_ref(),
                        metrics,
                    );
                    if let Some(reg) = metrics {
                        reg.set_gauge("workers_live", workers.len() as f64);
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                break Err(DaemonError::Disconnected {
                    resolved: outcomes.len() + failures.len(),
                    total,
                });
            }
        }

        // Liveness: a worker silent past the grace is dead — its
        // connection may still look open (SIGKILL leaves the socket up
        // until the kernel notices), so the heartbeat is authoritative.
        let now = Instant::now();
        let stalled: Vec<u64> = workers
            .iter()
            .filter(|(_, w)| now.duration_since(w.last_seen) > config.liveness_grace)
            .map(|(&id, _)| id)
            .collect();
        for id in stalled {
            if let Some(worker) = workers.remove(&id) {
                let reason = format!(
                    "worker {} stalled (silent past {:.1} s)",
                    worker.name,
                    config.liveness_grace.as_secs_f64()
                );
                reassignments += drop_worker(
                    worker,
                    reason,
                    &attempts,
                    config.max_attempts,
                    &mut pending,
                    &mut failures,
                    telemetry.as_ref(),
                    metrics,
                );
                if let Some(reg) = metrics {
                    reg.set_gauge("workers_live", workers.len() as f64);
                }
            }
        }

        if workers.is_empty() {
            if let Some(timeout) = config.no_worker_timeout {
                if workers_empty_since.elapsed() > timeout {
                    break Err(DaemonError::NoWorkers {
                        waited_s: workers_empty_since.elapsed().as_secs_f64(),
                    });
                }
            }
        } else {
            workers_empty_since = now;
        }
    };

    // Wind down: tell every surviving worker to exit cleanly, then close
    // the transports so handler threads unblock. Connections whose Joined
    // event is still queued get the same treatment.
    for worker in workers.values() {
        let _ = worker.conn.send(&Message::Shutdown);
        worker.conn.shutdown();
    }
    while let Ok(event) = event_rx.try_recv() {
        if let Event::Joined { conn, .. } = event {
            let _ = conn.send(&Message::Shutdown);
            conn.shutdown();
        }
    }

    result?;

    if let Some((cell, reason, tried)) = failures.into_iter().min_by_key(|(c, ..)| c.index) {
        return Err(DaemonError::Cell { cell: Box::new(cell), reason, attempts: tried.max(1) });
    }
    outcomes.sort_by_key(|o| o.cell.index);
    Ok(DistRun {
        run: SweepRun {
            outcomes,
            jobs: workers_seen.max(1),
            wall_clock_s: started.elapsed().as_secs_f64(),
        },
        workers_seen,
        reassignments,
    })
}
