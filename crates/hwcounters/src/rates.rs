//! Predictor feature vectors.
//!
//! Equation (2) of the paper defines the prediction function per target
//! configuration `T` as
//! `IPC_T = F_T(IPC_S, e(1,S), …, e(n,S))`:
//! the inputs are the IPC observed on the sampling configuration `S` plus the
//! rate (events per cycle) of each monitored event observed on `S`. An
//! [`EventRates`] value is exactly that ordered feature vector.

use serde::{Deserialize, Serialize};

use xeon_sim::{CounterVector, HwEvent};

use crate::event_set::EventSet;

/// The ordered feature vector consumed by the ACTOR predictor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRates {
    ipc: f64,
    rates: Vec<(HwEvent, f64)>,
}

impl EventRates {
    /// Builds the feature vector from raw counter totals and the monitored
    /// event set. Returns `None` when no cycles were recorded (nothing was
    /// sampled).
    pub fn from_counters(counters: &CounterVector, events: &EventSet) -> Option<Self> {
        let cycles = counters.get(HwEvent::Cycles);
        if cycles <= 0.0 {
            return None;
        }
        let ipc = counters.get(HwEvent::Instructions) / cycles;
        let rates = events.events().iter().map(|&e| (e, counters.get(e) / cycles)).collect();
        Some(Self { ipc, rates })
    }

    /// IPC observed on the sampling configuration.
    pub fn ipc(&self) -> f64 {
        self.ipc
    }

    /// Rate of one monitored event, if it is part of the feature vector.
    pub fn rate(&self, event: HwEvent) -> Option<f64> {
        self.rates.iter().find(|(e, _)| *e == event).map(|(_, r)| *r)
    }

    /// Number of features (`1 + number of monitored events`).
    pub fn dim(&self) -> usize {
        1 + self.rates.len()
    }

    /// The flat feature vector `[IPC, rate_1, …, rate_n]` in the event set's
    /// order — the exact input handed to the ANN ensemble.
    pub fn features(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.dim());
        out.push(self.ipc);
        out.extend(self.rates.iter().map(|(_, r)| *r));
        out
    }

    /// Human-readable names matching [`EventRates::features`], for reports
    /// and model inspection.
    pub fn feature_names(events: &EventSet) -> Vec<String> {
        let mut names = Vec::with_capacity(events.len() + 1);
        names.push("IPC_sample".to_string());
        names.extend(events.events().iter().map(|e| format!("{}_per_cycle", e.mnemonic())));
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters() -> CounterVector {
        let mut cv = CounterVector::zero();
        cv.set(HwEvent::Cycles, 2000.0);
        cv.set(HwEvent::Instructions, 3000.0);
        cv.set(HwEvent::L2Misses, 40.0);
        cv.set(HwEvent::Branches, 200.0);
        cv
    }

    #[test]
    fn features_follow_equation_2_ordering() {
        let set = EventSet::full();
        let rates = EventRates::from_counters(&counters(), &set).unwrap();
        assert!((rates.ipc() - 1.5).abs() < 1e-12);
        assert_eq!(rates.dim(), 13);
        let f = rates.features();
        assert_eq!(f.len(), 13);
        assert!((f[0] - 1.5).abs() < 1e-12, "first feature is the sampled IPC");
        // The L2 miss rate appears at its event-set position (offset by the IPC slot).
        let pos = set.events().iter().position(|e| *e == HwEvent::L2Misses).unwrap();
        assert!((f[pos + 1] - 0.02).abs() < 1e-12);
        assert_eq!(rates.rate(HwEvent::L2Misses), Some(0.02));
    }

    #[test]
    fn reduced_sets_shrink_the_vector() {
        let set = EventSet::reduced();
        let rates = EventRates::from_counters(&counters(), &set).unwrap();
        assert_eq!(rates.dim(), set.len() + 1);
        // Branches are not in the reduced set.
        assert_eq!(rates.rate(HwEvent::Branches), None);
    }

    #[test]
    fn no_cycles_means_no_features() {
        let set = EventSet::full();
        assert!(EventRates::from_counters(&CounterVector::zero(), &set).is_none());
    }

    #[test]
    fn feature_names_align_with_features() {
        let set = EventSet::full();
        let names = EventRates::feature_names(&set);
        let rates = EventRates::from_counters(&counters(), &set).unwrap();
        assert_eq!(names.len(), rates.dim());
        assert_eq!(names[0], "IPC_sample");
        assert!(names[1..].iter().all(|n| n.ends_with("_per_cycle")));
    }
}
