//! # hwcounters — performance-counter sampling with register multiplexing
//!
//! ACTOR's inputs are hardware performance-counter *event rates* observed
//! during a short sampling window at maximal concurrency. The paper's
//! platform (PAPI 3.5 on a Core-2-era Xeon) "only allows the simultaneous
//! recording of two events. As a result, we employ collection across multiple
//! timesteps to record all necessary events" (Section V-A).
//!
//! This crate reproduces that measurement substrate:
//!
//! * [`event_set`] — the set of events to monitor: the full twelve-event set
//!   or the reduced set used for applications with few iterations (FT, IS,
//!   MG in the paper);
//! * [`multiplex`] — a rotation schedule packing monitored events into the
//!   two programmable registers, and a sampler that accumulates per-timestep
//!   observations and reconstructs full event rates from the partial views;
//! * [`rates`] — the feature vector handed to the predictor:
//!   `IPC_S, e(1,S), …, e(n,S)` per Equation (2) of the paper;
//! * [`backend`] — sources of counter samples: the machine model
//!   ([`backend::SimBackend`]) and an instrumented-software backend for live
//!   kernels ([`backend::SoftwareCounters`]).

pub mod backend;
pub mod event_set;
pub mod multiplex;
pub mod rates;

pub use backend::{CounterBackend, SimBackend, SoftwareCounters};
pub use event_set::EventSet;
pub use multiplex::{MultiplexSchedule, MultiplexedSampler};
pub use rates::EventRates;
