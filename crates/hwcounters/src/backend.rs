//! Sources of counter samples.
//!
//! ACTOR consumes [`xeon_sim::CounterVector`]s without caring where they came
//! from. Two backends are provided:
//!
//! * [`SimBackend`] — a "virtual PMU" fed by the machine model: each
//!   timestep's counter totals come straight from a simulated
//!   [`xeon_sim::PhaseExecution`]. This is the backend used to regenerate the
//!   paper's figures.
//! * [`SoftwareCounters`] — instrumentation-based counting for live kernels
//!   running on [`phase-rt`](../phase_rt/index.html): kernels report their
//!   own operation counts (instructions, memory traffic estimates), and
//!   elapsed cycles are derived from wall-clock time at a nominal frequency.
//!   This stands in for PAPI on machines where hardware counters are not
//!   accessible (containers, CI).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use xeon_sim::{CounterVector, HwEvent};

/// A source of per-timestep counter totals.
pub trait CounterBackend {
    /// Reads the counter totals accumulated since the last call to `read`
    /// (or since construction), and resets the accumulation window.
    fn read(&mut self) -> CounterVector;
}

/// Virtual PMU backed by the machine model.
#[derive(Debug, Clone, Default)]
pub struct SimBackend {
    pending: Vec<CounterVector>,
}

impl SimBackend {
    /// New empty backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues the counter totals of one simulated timestep.
    pub fn push_timestep(&mut self, counters: CounterVector) {
        self.pending.push(counters);
    }

    /// Number of queued, unread timesteps.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }
}

impl CounterBackend for SimBackend {
    fn read(&mut self) -> CounterVector {
        let mut total = CounterVector::zero();
        for cv in self.pending.drain(..) {
            total.accumulate(&cv);
        }
        total
    }
}

/// Instrumentation-based software counters for live kernels.
///
/// Kernels call the `add_*` methods as they execute; `read` converts the
/// accumulated operation counts plus the elapsed wall-clock time into a
/// [`CounterVector`] (cycles = elapsed seconds × nominal clock).
#[derive(Debug)]
pub struct SoftwareCounters {
    clock_ghz: f64,
    instructions: AtomicU64,
    l1_accesses: AtomicU64,
    l1_misses: AtomicU64,
    l2_misses: AtomicU64,
    branches: AtomicU64,
    stores: AtomicU64,
    window_start: Instant,
}

impl SoftwareCounters {
    /// Creates software counters assuming the given nominal clock frequency.
    pub fn new(clock_ghz: f64) -> Self {
        Self {
            clock_ghz: clock_ghz.max(0.1),
            instructions: AtomicU64::new(0),
            l1_accesses: AtomicU64::new(0),
            l1_misses: AtomicU64::new(0),
            l2_misses: AtomicU64::new(0),
            branches: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            window_start: Instant::now(),
        }
    }

    /// Records retired "instructions" (work units) — callable from any thread.
    pub fn add_instructions(&self, n: u64) {
        self.instructions.fetch_add(n, Ordering::Relaxed);
    }

    /// Records L1 data accesses.
    pub fn add_l1_accesses(&self, n: u64) {
        self.l1_accesses.fetch_add(n, Ordering::Relaxed);
    }

    /// Records L1 misses (L2 accesses).
    pub fn add_l1_misses(&self, n: u64) {
        self.l1_misses.fetch_add(n, Ordering::Relaxed);
    }

    /// Records L2 misses (bus transactions).
    pub fn add_l2_misses(&self, n: u64) {
        self.l2_misses.fetch_add(n, Ordering::Relaxed);
    }

    /// Records retired branches.
    pub fn add_branches(&self, n: u64) {
        self.branches.fetch_add(n, Ordering::Relaxed);
    }

    /// Records retired stores.
    pub fn add_stores(&self, n: u64) {
        self.stores.fetch_add(n, Ordering::Relaxed);
    }
}

impl CounterBackend for SoftwareCounters {
    fn read(&mut self) -> CounterVector {
        let elapsed = self.window_start.elapsed().as_secs_f64();
        self.window_start = Instant::now();
        let cycles = elapsed * self.clock_ghz * 1e9;

        let mut cv = CounterVector::zero();
        cv.set(HwEvent::Cycles, cycles.max(1.0));
        cv.set(HwEvent::Instructions, self.instructions.swap(0, Ordering::Relaxed) as f64);
        let l1a = self.l1_accesses.swap(0, Ordering::Relaxed) as f64;
        let l1m = self.l1_misses.swap(0, Ordering::Relaxed) as f64;
        let l2m = self.l2_misses.swap(0, Ordering::Relaxed) as f64;
        cv.set(HwEvent::L1DAccesses, l1a);
        cv.set(HwEvent::L1DMisses, l1m);
        cv.set(HwEvent::L2Accesses, l1m);
        cv.set(HwEvent::L2Misses, l2m);
        cv.set(HwEvent::BusTransactions, l2m);
        cv.set(HwEvent::Branches, self.branches.swap(0, Ordering::Relaxed) as f64);
        cv.set(HwEvent::Stores, self.stores.swap(0, Ordering::Relaxed) as f64);
        cv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_backend_accumulates_and_drains() {
        let mut backend = SimBackend::new();
        assert_eq!(backend.pending(), 0);
        let mut a = CounterVector::zero();
        a.set(HwEvent::Instructions, 100.0);
        a.set(HwEvent::Cycles, 50.0);
        let mut b = CounterVector::zero();
        b.set(HwEvent::Instructions, 200.0);
        b.set(HwEvent::Cycles, 150.0);
        backend.push_timestep(a);
        backend.push_timestep(b);
        assert_eq!(backend.pending(), 2);
        let total = backend.read();
        assert_eq!(total.get(HwEvent::Instructions), 300.0);
        assert_eq!(total.get(HwEvent::Cycles), 200.0);
        assert_eq!(backend.pending(), 0);
        // Second read is empty.
        let empty = backend.read();
        assert_eq!(empty.get(HwEvent::Instructions), 0.0);
    }

    #[test]
    fn software_counters_accumulate_and_reset_per_window() {
        let mut sw = SoftwareCounters::new(2.4);
        sw.add_instructions(1_000);
        sw.add_l1_accesses(400);
        sw.add_l1_misses(40);
        sw.add_l2_misses(4);
        sw.add_branches(100);
        sw.add_stores(120);
        let cv = sw.read();
        assert_eq!(cv.get(HwEvent::Instructions), 1000.0);
        assert_eq!(cv.get(HwEvent::L1DMisses), 40.0);
        assert_eq!(cv.get(HwEvent::L2Misses), 4.0);
        assert_eq!(cv.get(HwEvent::Stores), 120.0);
        assert!(cv.get(HwEvent::Cycles) >= 1.0);
        // window reset: counts are gone
        let cv2 = sw.read();
        assert_eq!(cv2.get(HwEvent::Instructions), 0.0);
    }

    #[test]
    fn software_counters_are_thread_safe() {
        let mut sw = SoftwareCounters::new(1.0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let sw = &sw;
                s.spawn(move || {
                    for _ in 0..1000 {
                        sw.add_instructions(1);
                    }
                });
            }
        });
        let cv = sw.read();
        assert_eq!(cv.get(HwEvent::Instructions), 4000.0);
    }

    #[test]
    fn degenerate_clock_is_clamped() {
        let sw = SoftwareCounters::new(0.0);
        assert!(sw.clock_ghz >= 0.1);
    }
}
