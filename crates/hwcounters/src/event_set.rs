//! Selections of hardware events to monitor.

use serde::{Deserialize, Serialize};

use xeon_sim::{HwEvent, MONITORED_EVENTS};

/// A set of monitored events (instructions and cycles are always collected
/// through the fixed counters and are therefore not part of the set).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventSet {
    events: Vec<HwEvent>,
}

impl EventSet {
    /// The full twelve-event set used for most benchmarks.
    pub fn full() -> Self {
        Self { events: MONITORED_EVENTS.to_vec() }
    }

    /// The reduced set used for applications with very few iterations, where
    /// a full rotation would consume too much of the execution (the paper
    /// reduces the event count for FT, IS and MG). The six retained events
    /// cover the L2 and bus behaviour that dominates the prediction.
    pub fn reduced() -> Self {
        Self {
            events: vec![
                HwEvent::L1DMisses,
                HwEvent::L2Accesses,
                HwEvent::L2Misses,
                HwEvent::BusTransactions,
                HwEvent::MemStallCycles,
                HwEvent::Stores,
            ],
        }
    }

    /// A custom selection. Duplicates are removed while preserving order;
    /// `Instructions`/`Cycles` are dropped because they are always collected.
    pub fn custom(events: impl IntoIterator<Item = HwEvent>) -> Self {
        let mut out = Vec::new();
        for e in events {
            if e == HwEvent::Instructions || e == HwEvent::Cycles {
                continue;
            }
            if !out.contains(&e) {
                out.push(e);
            }
        }
        Self { events: out }
    }

    /// Events in the set, in monitoring order.
    pub fn events(&self) -> &[HwEvent] {
        &self.events
    }

    /// Number of monitored events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether the set contains an event.
    pub fn contains(&self, event: HwEvent) -> bool {
        self.events.contains(&event)
    }
}

impl Default for EventSet {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_set_has_twelve_events() {
        let s = EventSet::full();
        assert_eq!(s.len(), 12);
        assert!(!s.is_empty());
        assert!(!s.contains(HwEvent::Instructions));
        assert!(!s.contains(HwEvent::Cycles));
        assert!(s.contains(HwEvent::L2Misses));
    }

    #[test]
    fn reduced_set_is_smaller_and_subset_of_full() {
        let full = EventSet::full();
        let reduced = EventSet::reduced();
        assert!(reduced.len() < full.len());
        for e in reduced.events() {
            assert!(full.contains(*e));
        }
        // The reduced set keeps the cache/bus events that drive prediction.
        assert!(reduced.contains(HwEvent::L2Misses));
        assert!(reduced.contains(HwEvent::BusTransactions));
    }

    #[test]
    fn custom_set_dedups_and_drops_fixed_counters() {
        let s = EventSet::custom([
            HwEvent::Branches,
            HwEvent::Branches,
            HwEvent::Instructions,
            HwEvent::Cycles,
            HwEvent::L2Misses,
        ]);
        assert_eq!(s.events(), &[HwEvent::Branches, HwEvent::L2Misses]);
        let empty = EventSet::custom([]);
        assert!(empty.is_empty());
    }

    #[test]
    fn default_is_full() {
        assert_eq!(EventSet::default(), EventSet::full());
    }
}
