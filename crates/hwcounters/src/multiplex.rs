//! Counter-register multiplexing.
//!
//! The paper's PMU exposes only **two** programmable counter registers, so the
//! twelve monitored events are split into rotation groups of two, and one
//! group is measured per application timestep. After a full rotation, each
//! event's rate is estimated from the timesteps during which it was armed —
//! exactly what PAPI multiplexing does. Instructions and cycles come from the
//! fixed counters and are measured in every timestep.

use serde::{Deserialize, Serialize};

use xeon_sim::{CounterVector, HwEvent};

use crate::event_set::EventSet;

/// A rotation schedule assigning monitored events to counter registers over
/// successive timesteps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiplexSchedule {
    groups: Vec<Vec<HwEvent>>,
    registers: usize,
}

impl MultiplexSchedule {
    /// Builds a schedule for the given event set and number of programmable
    /// registers (2 on the paper's platform). A zero register count is
    /// clamped to one.
    pub fn new(events: &EventSet, registers: usize) -> Self {
        let registers = registers.max(1);
        let groups = events.events().chunks(registers).map(|chunk| chunk.to_vec()).collect();
        Self { groups, registers }
    }

    /// The paper's configuration: two programmable registers.
    pub fn paper_platform(events: &EventSet) -> Self {
        Self::new(events, 2)
    }

    /// Number of rotation groups (= timesteps needed for one full rotation).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Number of programmable registers assumed.
    pub fn registers(&self) -> usize {
        self.registers
    }

    /// The events armed during rotation step `step` (wraps around).
    pub fn group(&self, step: usize) -> &[HwEvent] {
        if self.groups.is_empty() {
            &[]
        } else {
            &self.groups[step % self.groups.len()]
        }
    }

    /// All groups.
    pub fn groups(&self) -> &[Vec<HwEvent>] {
        &self.groups
    }
}

/// Accumulates partial (multiplexed) counter observations over timesteps and
/// reconstructs full event rates.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MultiplexedSampler {
    /// Per-event accumulated counts, only over timesteps where the event was
    /// armed.
    counts: Vec<(HwEvent, f64)>,
    /// Per-event accumulated cycles over the same timesteps.
    cycles_per_event: Vec<(HwEvent, f64)>,
    /// Total instructions and cycles over all sampled timesteps (fixed
    /// counters, always armed).
    total_instructions: f64,
    total_cycles: f64,
    timesteps: usize,
}

impl MultiplexedSampler {
    /// New empty sampler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of timesteps observed so far.
    pub fn timesteps(&self) -> usize {
        self.timesteps
    }

    /// Records one timestep: `full` is the complete counter vector produced
    /// by the underlying machine (or live measurement) for this timestep, but
    /// only the events armed in `armed` are retained — everything else is
    /// discarded, emulating the limited PMU.
    pub fn record_timestep(&mut self, full: &CounterVector, armed: &[HwEvent]) {
        let cycles = full.get(HwEvent::Cycles);
        self.total_instructions += full.get(HwEvent::Instructions);
        self.total_cycles += cycles;
        self.timesteps += 1;
        for &event in armed {
            if event == HwEvent::Instructions || event == HwEvent::Cycles {
                continue;
            }
            match self.counts.iter_mut().find(|(e, _)| *e == event) {
                Some((_, c)) => *c += full.get(event),
                None => self.counts.push((event, full.get(event))),
            }
            match self.cycles_per_event.iter_mut().find(|(e, _)| *e == event) {
                Some((_, c)) => *c += cycles,
                None => self.cycles_per_event.push((event, cycles)),
            }
        }
    }

    /// Convenience: runs a full rotation of `schedule` over a sequence of
    /// per-timestep counter vectors (one per timestep, in order).
    pub fn record_rotation(&mut self, schedule: &MultiplexSchedule, timesteps: &[CounterVector]) {
        for (i, cv) in timesteps.iter().enumerate() {
            self.record_timestep(cv, schedule.group(i));
        }
    }

    /// Estimated rate (events per cycle) of `event`, or `None` if it was
    /// never armed.
    pub fn rate(&self, event: HwEvent) -> Option<f64> {
        let count = self.counts.iter().find(|(e, _)| *e == event)?.1;
        let cycles = self.cycles_per_event.iter().find(|(e, _)| *e == event)?.1;
        if cycles <= 0.0 {
            return None;
        }
        Some(count / cycles)
    }

    /// IPC observed over all sampled timesteps (fixed counters).
    pub fn ipc(&self) -> Option<f64> {
        if self.total_cycles <= 0.0 {
            None
        } else {
            Some(self.total_instructions / self.total_cycles)
        }
    }

    /// Reconstructs a full counter vector extrapolated to the total sampled
    /// cycles: counts are scaled from each event's armed window to the whole
    /// sampling period. Events never armed stay at zero.
    pub fn reconstruct(&self) -> CounterVector {
        let mut cv = CounterVector::zero();
        cv.set(HwEvent::Instructions, self.total_instructions);
        cv.set(HwEvent::Cycles, self.total_cycles);
        for (event, _) in &self.counts {
            if let Some(rate) = self.rate(*event) {
                cv.set(*event, rate * self.total_cycles);
            }
        }
        cv
    }

    /// Clears the sampler.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xeon_sim::MONITORED_EVENTS;

    fn timestep_vector(scale: f64) -> CounterVector {
        // A synthetic timestep: rates are constant, counts scale with `scale`.
        let mut cv = CounterVector::zero();
        cv.set(HwEvent::Cycles, 1000.0 * scale);
        cv.set(HwEvent::Instructions, 1500.0 * scale);
        for (i, e) in MONITORED_EVENTS.iter().enumerate() {
            cv.set(*e, (10.0 + i as f64) * scale);
        }
        cv
    }

    #[test]
    fn schedule_groups_cover_all_events_in_pairs() {
        let s = MultiplexSchedule::paper_platform(&EventSet::full());
        assert_eq!(s.registers(), 2);
        assert_eq!(s.num_groups(), 6, "12 events / 2 registers = 6 rotation groups");
        let mut all: Vec<HwEvent> = s.groups().iter().flatten().copied().collect();
        all.sort();
        let mut expected = MONITORED_EVENTS.to_vec();
        expected.sort();
        assert_eq!(all, expected);
        for g in s.groups() {
            assert!(g.len() <= 2);
        }
        // wrap-around
        assert_eq!(s.group(0), s.group(6));
    }

    #[test]
    fn schedule_with_more_registers_needs_fewer_groups() {
        let s4 = MultiplexSchedule::new(&EventSet::full(), 4);
        assert_eq!(s4.num_groups(), 3);
        let s0 = MultiplexSchedule::new(&EventSet::full(), 0);
        assert_eq!(s0.registers(), 1);
        assert_eq!(s0.num_groups(), 12);
        let empty = MultiplexSchedule::new(&EventSet::custom([]), 2);
        assert_eq!(empty.num_groups(), 0);
        assert!(empty.group(3).is_empty());
    }

    #[test]
    fn sampler_reconstructs_constant_rates_exactly() {
        let schedule = MultiplexSchedule::paper_platform(&EventSet::full());
        let mut sampler = MultiplexedSampler::new();
        // 6 identical timesteps -> one full rotation.
        let steps: Vec<CounterVector> = (0..6).map(|_| timestep_vector(1.0)).collect();
        sampler.record_rotation(&schedule, &steps);
        assert_eq!(sampler.timesteps(), 6);
        assert!((sampler.ipc().unwrap() - 1.5).abs() < 1e-12);
        // Every monitored event has a rate estimate equal to its true rate.
        for (i, e) in MONITORED_EVENTS.iter().enumerate() {
            let expected = (10.0 + i as f64) / 1000.0;
            let got = sampler.rate(*e).unwrap();
            assert!((got - expected).abs() < 1e-12, "{e}: got {got}, expected {expected}");
        }
        // Reconstructed vector preserves rates when normalised.
        let rec = sampler.reconstruct();
        assert!((rec.ipc().unwrap() - 1.5).abs() < 1e-12);
        let rates = rec.rates_per_cycle().unwrap();
        let l2 = rates.iter().find(|(e, _)| *e == HwEvent::L2Misses).unwrap().1;
        let idx = MONITORED_EVENTS.iter().position(|e| *e == HwEvent::L2Misses).unwrap();
        assert!((l2 - (10.0 + idx as f64) / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn sampler_handles_varying_timestep_lengths() {
        let schedule = MultiplexSchedule::paper_platform(&EventSet::full());
        let mut sampler = MultiplexedSampler::new();
        // Timesteps of different sizes but identical *rates*: reconstruction
        // must still recover the common rates.
        let steps: Vec<CounterVector> =
            [1.0, 2.0, 0.5, 3.0, 1.5, 1.0].iter().map(|&s| timestep_vector(s)).collect();
        sampler.record_rotation(&schedule, &steps);
        for e in MONITORED_EVENTS {
            let r = sampler.rate(e).unwrap();
            assert!(r > 0.0);
        }
        assert!((sampler.ipc().unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn unarmed_events_have_no_rate() {
        let mut sampler = MultiplexedSampler::new();
        sampler.record_timestep(&timestep_vector(1.0), &[HwEvent::L2Misses]);
        assert!(sampler.rate(HwEvent::L2Misses).is_some());
        assert!(sampler.rate(HwEvent::Branches).is_none());
        let rec = sampler.reconstruct();
        assert_eq!(rec.get(HwEvent::Branches), 0.0);
        assert!(rec.get(HwEvent::L2Misses) > 0.0);
    }

    #[test]
    fn fixed_counters_never_go_through_programmable_registers() {
        let mut sampler = MultiplexedSampler::new();
        sampler.record_timestep(&timestep_vector(1.0), &[HwEvent::Instructions, HwEvent::Cycles]);
        // They are accumulated as totals, not as armed events.
        assert!(sampler.rate(HwEvent::Instructions).is_none());
        assert!(sampler.ipc().is_some());
    }

    #[test]
    fn reset_clears_state() {
        let mut sampler = MultiplexedSampler::new();
        sampler.record_timestep(&timestep_vector(1.0), &[HwEvent::L2Misses]);
        sampler.reset();
        assert_eq!(sampler.timesteps(), 0);
        assert!(sampler.ipc().is_none());
        assert!(sampler.rate(HwEvent::L2Misses).is_none());
    }
}
