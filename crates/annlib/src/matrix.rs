//! Minimal dense row-major matrix used by the MLP implementation.

use serde::{Deserialize, Serialize};

use crate::error::AnnError;

/// A dense `rows × cols` matrix of `f64` stored row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds a matrix from row-major data; the data length must equal
    /// `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, AnnError> {
        if data.len() != rows * cols {
            return Err(AnnError::LengthMismatch {
                what: "matrix data",
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Sets an element.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        *self.get_mut(r, c) = v;
    }

    /// A view of one row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix-vector product `self * x`.
    #[allow(clippy::needless_range_loop)] // indexing several buffers by one row index
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, AnnError> {
        if x.len() != self.cols {
            return Err(AnnError::DimensionMismatch { expected: self.cols, actual: x.len() });
        }
        let mut out = vec![0.0; self.rows];
        for r in 0..self.rows {
            let row = self.row(r);
            let mut acc = 0.0;
            for (w, xi) in row.iter().zip(x) {
                acc += w * xi;
            }
            out[r] = acc;
        }
        Ok(out)
    }

    /// Matrix-vector product `self * x` written into a caller-supplied
    /// buffer — the allocation-free core of [`Matrix::matvec`], with
    /// bit-identical accumulation order (the batched forward pass relies on
    /// that identity).
    #[inline]
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) -> Result<(), AnnError> {
        if x.len() != self.cols {
            return Err(AnnError::DimensionMismatch { expected: self.cols, actual: x.len() });
        }
        if out.len() != self.rows {
            return Err(AnnError::DimensionMismatch { expected: self.rows, actual: out.len() });
        }
        for (o, row) in out.iter_mut().zip(self.data.chunks_exact(self.cols)) {
            let mut acc = 0.0;
            for (w, xi) in row.iter().zip(x) {
                acc += w * xi;
            }
            *o = acc;
        }
        Ok(())
    }

    /// Row-batched product: treats `inputs` as a row-major `n × cols` block
    /// and writes `self * inputs[i]` into the `i`-th row of `out`
    /// (`n × rows`, row-major). One GEMM-shaped loop, no per-sample
    /// allocation; each output row is bit-identical to [`Matrix::matvec`] on
    /// the matching input row.
    pub fn matvec_rows_into(
        &self,
        inputs: &[f64],
        n: usize,
        out: &mut [f64],
    ) -> Result<(), AnnError> {
        if inputs.len() != n * self.cols {
            return Err(AnnError::LengthMismatch {
                what: "batched matvec inputs",
                expected: n * self.cols,
                actual: inputs.len(),
            });
        }
        if out.len() != n * self.rows {
            return Err(AnnError::LengthMismatch {
                what: "batched matvec outputs",
                expected: n * self.rows,
                actual: out.len(),
            });
        }
        for (x, o) in inputs.chunks_exact(self.cols).zip(out.chunks_exact_mut(self.rows)) {
            self.matvec_into(x, o)?;
        }
        Ok(())
    }

    /// Transposed matrix-vector product `selfᵀ * x` (used to backpropagate
    /// deltas without materialising the transpose).
    #[allow(clippy::needless_range_loop)] // indexing several buffers by one row index
    pub fn matvec_transposed(&self, x: &[f64]) -> Result<Vec<f64>, AnnError> {
        if x.len() != self.rows {
            return Err(AnnError::DimensionMismatch { expected: self.rows, actual: x.len() });
        }
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let row = self.row(r);
            let xr = x[r];
            for (o, w) in out.iter_mut().zip(row) {
                *o += w * xr;
            }
        }
        Ok(out)
    }

    /// In-place `self += alpha * other`, requiring identical shapes.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) -> Result<(), AnnError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(AnnError::LengthMismatch {
                what: "matrix shapes in axpy",
                expected: self.rows * self.cols,
                actual: other.rows * other.cols,
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// In-place scaling by a constant.
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Rank-1 update: `self += alpha * col ⊗ row` where `col` has `rows`
    /// entries and `row` has `cols` entries. This is the outer-product form
    /// of the backpropagation weight gradient.
    #[allow(clippy::needless_range_loop)] // indexing several buffers by one row index
    pub fn rank1_update(&mut self, alpha: f64, col: &[f64], row: &[f64]) -> Result<(), AnnError> {
        if col.len() != self.rows {
            return Err(AnnError::DimensionMismatch { expected: self.rows, actual: col.len() });
        }
        if row.len() != self.cols {
            return Err(AnnError::DimensionMismatch { expected: self.cols, actual: row.len() });
        }
        for r in 0..self.rows {
            let a = alpha * col[r];
            let dst = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (d, x) in dst.iter_mut().zip(row) {
                *d += a * x;
            }
        }
        Ok(())
    }

    /// True when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// Reusable ping/pong activation buffers for batched forward passes.
///
/// A batched pass through an L-layer network needs two row-major blocks that
/// alternate as layer input and output; keeping them in a caller-owned
/// scratch lets repeated batch predictions run without touching the
/// allocator once the high-water mark is reached.
#[derive(Debug, Default, Clone)]
pub struct BatchScratch {
    ping: Vec<f64>,
    pong: Vec<f64>,
}

impl BatchScratch {
    /// An empty scratch; buffers grow on first use and are retained.
    pub fn new() -> Self {
        Self::default()
    }

    /// Both buffers, each resized to at least `len` elements (contents
    /// unspecified). Split out so callers can ping/pong between them.
    pub fn buffers(&mut self, len: usize) -> (&mut Vec<f64>, &mut Vec<f64>) {
        if self.ping.len() < len {
            self.ping.resize(len, 0.0);
        }
        if self.pong.len() < len {
            self.pong.resize(len, 0.0);
        }
        (&mut self.ping, &mut self.pong)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);

        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert!(Matrix::from_vec(2, 2, vec![1.0]).is_err());

        let f = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f64);
        assert_eq!(f.get(1, 1), 11.0);
    }

    #[test]
    fn matvec_products() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let y = m.matvec(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![6.0, 15.0]);
        assert!(m.matvec(&[1.0]).is_err());

        let yt = m.matvec_transposed(&[1.0, 1.0]).unwrap();
        assert_eq!(yt, vec![5.0, 7.0, 9.0]);
        assert!(m.matvec_transposed(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn axpy_scale_rank1() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        a.axpy(2.0, &b).unwrap();
        assert_eq!(a.get(1, 1), 8.0);
        a.scale(0.5);
        assert_eq!(a.get(1, 1), 4.0);
        assert!(a.axpy(1.0, &Matrix::zeros(3, 3)).is_err());

        let mut m = Matrix::zeros(2, 3);
        m.rank1_update(1.0, &[1.0, 2.0], &[1.0, 0.0, -1.0]).unwrap();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 2), -2.0);
        assert!(m.rank1_update(1.0, &[1.0], &[1.0, 0.0, -1.0]).is_err());
        assert!(m.rank1_update(1.0, &[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn finiteness_and_norm() {
        let mut m = Matrix::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        assert!(m.is_finite());
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        m.set(0, 0, f64::NAN);
        assert!(!m.is_finite());
    }

    proptest! {
        #[test]
        fn matvec_is_linear(
            rows in 1usize..6,
            cols in 1usize..6,
            seed in 0u64..1000,
            alpha in -3.0f64..3.0,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let m = Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0));
            let x: Vec<f64> = (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let y: Vec<f64> = (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
            // m(alpha*x + y) == alpha*m(x) + m(y)
            let lhs_input: Vec<f64> = x.iter().zip(&y).map(|(a, b)| alpha * a + b).collect();
            let lhs = m.matvec(&lhs_input).unwrap();
            let mx = m.matvec(&x).unwrap();
            let my = m.matvec(&y).unwrap();
            for i in 0..rows {
                prop_assert!((lhs[i] - (alpha * mx[i] + my[i])).abs() < 1e-9);
            }
        }

        #[test]
        fn transpose_product_consistent_with_explicit_transpose(
            rows in 1usize..5,
            cols in 1usize..5,
            seed in 0u64..1000,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let m = Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0));
            let x: Vec<f64> = (0..rows).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let yt = m.matvec_transposed(&x).unwrap();
            // explicit transpose
            let t = Matrix::from_fn(cols, rows, |r, c| m.get(c, r));
            let expected = t.matvec(&x).unwrap();
            for i in 0..cols {
                prop_assert!((yt[i] - expected[i]).abs() < 1e-9);
            }
        }
    }
}
