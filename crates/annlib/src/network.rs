//! Multilayer perceptron (fully connected feed-forward network).
//!
//! Mirrors the network sketched in the paper's Figure 4: an input layer, one
//! or more hidden layers of sigmoid units, and an output layer. Every unit of
//! a layer is connected to every unit of the next layer by weighted edges;
//! each unit applies its activation to the weighted sum of its inputs plus a
//! bias (the `x0 = 1` input of Figure 5).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::error::AnnError;
use crate::matrix::{BatchScratch, Matrix};

/// One fully connected layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Weight matrix, `outputs × inputs`.
    pub weights: Matrix,
    /// Bias per output unit.
    pub biases: Vec<f64>,
    /// Activation applied to each output unit.
    pub activation: Activation,
}

impl Layer {
    fn new<R: Rng + ?Sized>(
        inputs: usize,
        outputs: usize,
        activation: Activation,
        init_scale: f64,
        rng: &mut R,
    ) -> Self {
        // "The weights are initialized near zero" (Section IV-A): small
        // symmetric uniform initialisation.
        let weights =
            Matrix::from_fn(outputs, inputs, |_, _| rng.gen_range(-init_scale..init_scale));
        let biases = (0..outputs).map(|_| rng.gen_range(-init_scale..init_scale)).collect();
        Self { weights, biases, activation }
    }

    /// Number of input units.
    pub fn inputs(&self) -> usize {
        self.weights.cols()
    }

    /// Number of output units.
    pub fn outputs(&self) -> usize {
        self.weights.rows()
    }

    /// Applies the layer to an input vector, returning the activated output.
    pub fn forward(&self, input: &[f64]) -> Result<Vec<f64>, AnnError> {
        let mut out = self.weights.matvec(input)?;
        for (o, b) in out.iter_mut().zip(&self.biases) {
            *o += b;
            *o = self.activation.apply(*o);
        }
        Ok(out)
    }

    /// [`Layer::forward`] into a caller-supplied buffer (no allocation,
    /// bit-identical arithmetic).
    pub fn forward_into(&self, input: &[f64], out: &mut [f64]) -> Result<(), AnnError> {
        self.weights.matvec_into(input, out)?;
        for (o, b) in out.iter_mut().zip(&self.biases) {
            *o += b;
            *o = self.activation.apply(*o);
        }
        Ok(())
    }

    /// Applies the layer to a row-major `n × inputs` block, writing the
    /// activated `n × outputs` block — one GEMM-shaped loop instead of `n`
    /// separate calls, with each output row bit-identical to
    /// [`Layer::forward`] on the matching input row.
    pub fn forward_rows_into(
        &self,
        inputs: &[f64],
        n: usize,
        out: &mut [f64],
    ) -> Result<(), AnnError> {
        self.weights.matvec_rows_into(inputs, n, out)?;
        for row in out.chunks_exact_mut(self.outputs()) {
            for (o, b) in row.iter_mut().zip(&self.biases) {
                *o += b;
                *o = self.activation.apply(*o);
            }
        }
        Ok(())
    }
}

/// Intermediate activations of one forward pass, consumed by backpropagation.
#[derive(Debug, Clone)]
pub struct ForwardTrace {
    /// `activations[0]` is the input; `activations[i+1]` is the output of
    /// layer `i`.
    pub activations: Vec<Vec<f64>>,
}

impl ForwardTrace {
    /// The network output of this pass.
    pub fn output(&self) -> &[f64] {
        self.activations.last().expect("trace always has at least the input")
    }
}

/// A multilayer perceptron.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Layer>,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes, e.g. `[13, 16, 1]` for 13
    /// inputs, one hidden layer of 16 units and a single output. Hidden
    /// layers use `hidden_activation`; the final layer uses
    /// `output_activation`.
    pub fn new<R: Rng + ?Sized>(
        layer_sizes: &[usize],
        hidden_activation: Activation,
        output_activation: Activation,
        rng: &mut R,
    ) -> Result<Self, AnnError> {
        if layer_sizes.len() < 2 {
            return Err(AnnError::InvalidConfig {
                reason: "an MLP needs at least an input and an output layer".into(),
            });
        }
        if layer_sizes.contains(&0) {
            return Err(AnnError::InvalidConfig { reason: "layer sizes must be non-zero".into() });
        }
        let mut layers = Vec::with_capacity(layer_sizes.len() - 1);
        for w in layer_sizes.windows(2) {
            let is_output = layers.len() == layer_sizes.len() - 2;
            let act = if is_output { output_activation } else { hidden_activation };
            layers.push(Layer::new(w[0], w[1], act, 0.1, rng));
        }
        Ok(Self { layers })
    }

    /// The paper's configuration: sigmoid hidden units, linear output (the
    /// target, IPC, is a standardised real value).
    pub fn sigmoid_regressor<R: Rng + ?Sized>(
        inputs: usize,
        hidden: &[usize],
        outputs: usize,
        rng: &mut R,
    ) -> Result<Self, AnnError> {
        let mut sizes = Vec::with_capacity(hidden.len() + 2);
        sizes.push(inputs);
        sizes.extend_from_slice(hidden);
        sizes.push(outputs);
        Self::new(&sizes, Activation::Sigmoid, Activation::Linear, rng)
    }

    /// The layers of the network.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layers (used by the trainer).
    pub(crate) fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers[0].inputs()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("validated non-empty").outputs()
    }

    /// Number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.layers.iter().map(|l| l.weights.rows() * l.weights.cols() + l.biases.len()).sum()
    }

    /// Runs a forward pass and returns only the output.
    pub fn predict(&self, input: &[f64]) -> Result<Vec<f64>, AnnError> {
        let mut trace = self.forward_trace(input)?;
        Ok(trace.activations.pop().expect("forward trace always contains the output"))
    }

    /// Runs a forward pass keeping every intermediate activation.
    pub fn forward_trace(&self, input: &[f64]) -> Result<ForwardTrace, AnnError> {
        if input.len() != self.input_dim() {
            return Err(AnnError::DimensionMismatch {
                expected: self.input_dim(),
                actual: input.len(),
            });
        }
        let mut activations = Vec::with_capacity(self.layers.len() + 1);
        activations.push(input.to_vec());
        for layer in &self.layers {
            let next = layer.forward(activations.last().expect("non-empty"))?;
            activations.push(next);
        }
        Ok(ForwardTrace { activations })
    }

    /// Widest activation block any layer of a batched pass needs, per sample.
    fn max_layer_width(&self) -> usize {
        self.layers.iter().map(|l| l.outputs()).max().unwrap_or(0).max(self.input_dim())
    }

    /// Batched forward pass over `n` row-major samples (`inputs` is
    /// `n × input_dim`), writing the row-major `n × output_dim` outputs into
    /// `out` — one GEMM-shaped loop per layer through the ping/pong
    /// [`BatchScratch`] instead of per-sample `Vec` allocations. Every
    /// output row is bit-identical to [`Mlp::predict`] on the matching input
    /// row (pinned by a proptest).
    pub fn forward_batch_into(
        &self,
        inputs: &[f64],
        n: usize,
        scratch: &mut BatchScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), AnnError> {
        let in_dim = self.input_dim();
        if inputs.len() != n * in_dim {
            return Err(AnnError::LengthMismatch {
                what: "batched forward inputs",
                expected: n * in_dim,
                actual: inputs.len(),
            });
        }
        let (ping, pong) = scratch.buffers(n * self.max_layer_width());
        ping[..inputs.len()].copy_from_slice(inputs);
        let (mut src, mut dst) = (ping, pong);
        let mut width = in_dim;
        for layer in &self.layers {
            layer.forward_rows_into(&src[..n * width], n, &mut dst[..n * layer.outputs()])?;
            width = layer.outputs();
            std::mem::swap(&mut src, &mut dst);
        }
        out.clear();
        out.extend_from_slice(&src[..n * width]);
        Ok(())
    }

    /// Convenience wrapper over [`Mlp::forward_batch_into`]: predicts every
    /// row of `rows` in one batched pass.
    pub fn forward_batch(&self, rows: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, AnnError> {
        let in_dim = self.input_dim();
        let mut flat = Vec::with_capacity(rows.len() * in_dim);
        for row in rows {
            if row.len() != in_dim {
                return Err(AnnError::DimensionMismatch { expected: in_dim, actual: row.len() });
            }
            flat.extend_from_slice(row);
        }
        let mut scratch = BatchScratch::new();
        let mut out = Vec::new();
        self.forward_batch_into(&flat, rows.len(), &mut scratch, &mut out)?;
        Ok(out.chunks_exact(self.output_dim()).map(<[f64]>::to_vec).collect())
    }

    /// True when all weights and biases are finite.
    pub fn is_finite(&self) -> bool {
        self.layers.iter().all(|l| l.weights.is_finite() && l.biases.iter().all(|b| b.is_finite()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn construction_validation() {
        let mut r = rng();
        assert!(Mlp::new(&[3], Activation::Sigmoid, Activation::Linear, &mut r).is_err());
        assert!(Mlp::new(&[3, 0, 1], Activation::Sigmoid, Activation::Linear, &mut r).is_err());
        let net = Mlp::sigmoid_regressor(13, &[16], 1, &mut r).unwrap();
        assert_eq!(net.input_dim(), 13);
        assert_eq!(net.output_dim(), 1);
        assert_eq!(net.layers().len(), 2);
        assert_eq!(net.num_parameters(), 13 * 16 + 16 + 16 + 1);
        assert!(net.is_finite());
    }

    #[test]
    fn weights_initialised_near_zero() {
        let mut r = rng();
        let net = Mlp::sigmoid_regressor(4, &[8], 1, &mut r).unwrap();
        for layer in net.layers() {
            assert!(layer.weights.frobenius_norm() < 2.0);
            for b in &layer.biases {
                assert!(b.abs() <= 0.1);
            }
        }
    }

    #[test]
    fn forward_pass_dimensions_and_errors() {
        let mut r = rng();
        let net = Mlp::sigmoid_regressor(3, &[5, 4], 2, &mut r).unwrap();
        let out = net.predict(&[0.1, 0.2, 0.3]).unwrap();
        assert_eq!(out.len(), 2);
        assert!(net.predict(&[0.1]).is_err());
        let trace = net.forward_trace(&[0.1, 0.2, 0.3]).unwrap();
        assert_eq!(trace.activations.len(), 4); // input + 3 layers
        assert_eq!(trace.output().len(), 2);
    }

    #[test]
    fn hidden_activations_bounded_by_sigmoid() {
        let mut r = rng();
        let net = Mlp::sigmoid_regressor(2, &[6], 1, &mut r).unwrap();
        let trace = net.forward_trace(&[100.0, -100.0]).unwrap();
        for &h in &trace.activations[1] {
            assert!((0.0..=1.0).contains(&h));
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let a = Mlp::sigmoid_regressor(4, &[7], 1, &mut r1).unwrap();
        let b = Mlp::sigmoid_regressor(4, &[7], 1, &mut r2).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            a.predict(&[0.1, 0.2, 0.3, 0.4]).unwrap(),
            b.predict(&[0.1, 0.2, 0.3, 0.4]).unwrap()
        );
    }

    #[test]
    fn forward_batch_matches_predict_exactly() {
        let mut r = rng();
        let net = Mlp::sigmoid_regressor(4, &[6, 3], 2, &mut r).unwrap();
        let rows: Vec<Vec<f64>> =
            (0..7).map(|i| (0..4).map(|j| (i * 4 + j) as f64 * 0.17 - 1.3).collect()).collect();
        let batched = net.forward_batch(&rows).unwrap();
        for (row, out) in rows.iter().zip(&batched) {
            assert_eq!(out, &net.predict(row).unwrap());
        }
        // Dimension errors surface, scratch reuse across differing batch
        // sizes stays exact.
        assert!(net.forward_batch(&[vec![1.0]]).is_err());
        let mut scratch = BatchScratch::new();
        let mut out = Vec::new();
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        net.forward_batch_into(&flat, rows.len(), &mut scratch, &mut out).unwrap();
        net.forward_batch_into(&flat[..4], 1, &mut scratch, &mut out).unwrap();
        assert_eq!(out, net.predict(&rows[0]).unwrap());
        assert!(net.forward_batch_into(&flat[..3], 1, &mut scratch, &mut out).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let mut r = rng();
        let net = Mlp::sigmoid_regressor(3, &[4], 1, &mut r).unwrap();
        let json = serde_json::to_string(&net).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        // JSON prints f64 with enough digits for near-exact round trips; the
        // behavioural check is that predictions agree to float precision.
        assert_eq!(back.layers().len(), net.layers().len());
        let x = [0.1, -0.7, 0.4];
        let a = net.predict(&x).unwrap()[0];
        let b = back.predict(&x).unwrap()[0];
        assert!((a - b).abs() < 1e-12, "round-tripped prediction drifted: {a} vs {b}");
    }

    mod batch_equivalence {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // The batched pass must be *bit-for-bit* the per-sample pass on
            // random networks and inputs — the byte-identity contract of
            // every artefact downstream of the predictor rests on it.
            #[test]
            fn forward_batch_is_bitwise_forward(
                seed in 0u64..500,
                inputs in 1usize..5,
                hidden in 1usize..8,
                outputs in 1usize..4,
                n in 1usize..9,
            ) {
                let mut r = StdRng::seed_from_u64(seed);
                let net = Mlp::sigmoid_regressor(inputs, &[hidden], outputs, &mut r).unwrap();
                let rows: Vec<Vec<f64>> = (0..n)
                    .map(|_| (0..inputs).map(|_| r.gen_range(-3.0..3.0)).collect())
                    .collect();
                let batched = net.forward_batch(&rows).unwrap();
                for (row, out) in rows.iter().zip(&batched) {
                    let single = net.predict(row).unwrap();
                    for (a, b) in out.iter().zip(&single) {
                        prop_assert_eq!(a.to_bits(), b.to_bits());
                    }
                }
            }
        }
    }
}
