//! Feature/target scalers.
//!
//! Hardware-event rates span several orders of magnitude (branch rates near
//! 0.1/cycle, TLB miss rates near 1e-5/cycle), so inputs are standardised
//! before they reach the sigmoid units; targets (IPC) are standardised too so
//! the output layer trains in a well-conditioned range.

use serde::{Deserialize, Serialize};

use crate::error::AnnError;

/// Z-score standardisation: `x' = (x - mean) / std`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits a scaler on a set of rows (all rows must share the width of the
    /// first). Columns with zero variance get a standard deviation of 1 so
    /// that transforming them is a no-op shift.
    pub fn fit(rows: &[Vec<f64>]) -> Result<Self, AnnError> {
        if rows.is_empty() {
            return Err(AnnError::InsufficientData {
                requirement: "scaler needs at least one row".into(),
            });
        }
        let dim = rows[0].len();
        for r in rows {
            if r.len() != dim {
                return Err(AnnError::LengthMismatch {
                    what: "scaler row width",
                    expected: dim,
                    actual: r.len(),
                });
            }
        }
        let n = rows.len() as f64;
        let mut means = vec![0.0; dim];
        for r in rows {
            for (m, v) in means.iter_mut().zip(r) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; dim];
        for r in rows {
            for ((var, v), m) in vars.iter_mut().zip(r).zip(&means) {
                let d = v - m;
                *var += d * d;
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Ok(Self { means, stds })
    }

    /// Dimensionality the scaler was fitted on.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Transforms one row.
    pub fn transform(&self, row: &[f64]) -> Result<Vec<f64>, AnnError> {
        if row.len() != self.dim() {
            return Err(AnnError::DimensionMismatch { expected: self.dim(), actual: row.len() });
        }
        Ok(row
            .iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| (v - m) / s)
            .collect())
    }

    /// Inverse transform of one row.
    pub fn inverse(&self, row: &[f64]) -> Result<Vec<f64>, AnnError> {
        if row.len() != self.dim() {
            return Err(AnnError::DimensionMismatch { expected: self.dim(), actual: row.len() });
        }
        Ok(row.iter().zip(self.means.iter().zip(&self.stds)).map(|(v, (m, s))| v * s + m).collect())
    }

    /// [`StandardScaler::transform`] into a caller-supplied buffer
    /// (allocation-free, bit-identical arithmetic).
    pub fn transform_into(&self, row: &[f64], out: &mut [f64]) -> Result<(), AnnError> {
        if row.len() != self.dim() {
            return Err(AnnError::DimensionMismatch { expected: self.dim(), actual: row.len() });
        }
        if out.len() != self.dim() {
            return Err(AnnError::DimensionMismatch { expected: self.dim(), actual: out.len() });
        }
        for (o, (v, (m, s))) in
            out.iter_mut().zip(row.iter().zip(self.means.iter().zip(&self.stds)))
        {
            *o = (v - m) / s;
        }
        Ok(())
    }

    /// [`StandardScaler::inverse`] into a caller-supplied buffer
    /// (allocation-free, bit-identical arithmetic).
    pub fn inverse_into(&self, row: &[f64], out: &mut [f64]) -> Result<(), AnnError> {
        if row.len() != self.dim() {
            return Err(AnnError::DimensionMismatch { expected: self.dim(), actual: row.len() });
        }
        if out.len() != self.dim() {
            return Err(AnnError::DimensionMismatch { expected: self.dim(), actual: out.len() });
        }
        for (o, (v, (m, s))) in
            out.iter_mut().zip(row.iter().zip(self.means.iter().zip(&self.stds)))
        {
            *o = v * s + m;
        }
        Ok(())
    }

    /// Transforms a batch of rows.
    pub fn transform_all(&self, rows: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, AnnError> {
        rows.iter().map(|r| self.transform(r)).collect()
    }
}

/// Min-max scaling into `[lo, hi]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    maxs: Vec<f64>,
    lo: f64,
    hi: f64,
}

impl MinMaxScaler {
    /// Fits a scaler mapping each column's observed range onto `[lo, hi]`.
    pub fn fit(rows: &[Vec<f64>], lo: f64, hi: f64) -> Result<Self, AnnError> {
        if rows.is_empty() {
            return Err(AnnError::InsufficientData {
                requirement: "scaler needs at least one row".into(),
            });
        }
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(AnnError::InvalidConfig {
                reason: format!("min-max range must satisfy lo < hi, got [{lo}, {hi}]"),
            });
        }
        let dim = rows[0].len();
        let mut mins = vec![f64::INFINITY; dim];
        let mut maxs = vec![f64::NEG_INFINITY; dim];
        for r in rows {
            if r.len() != dim {
                return Err(AnnError::LengthMismatch {
                    what: "scaler row width",
                    expected: dim,
                    actual: r.len(),
                });
            }
            for i in 0..dim {
                mins[i] = mins[i].min(r[i]);
                maxs[i] = maxs[i].max(r[i]);
            }
        }
        Ok(Self { mins, maxs, lo, hi })
    }

    /// Dimensionality the scaler was fitted on.
    pub fn dim(&self) -> usize {
        self.mins.len()
    }

    /// Transforms one row (constant columns map to the middle of the range).
    pub fn transform(&self, row: &[f64]) -> Result<Vec<f64>, AnnError> {
        if row.len() != self.dim() {
            return Err(AnnError::DimensionMismatch { expected: self.dim(), actual: row.len() });
        }
        Ok(row
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let span = self.maxs[i] - self.mins[i];
                if span <= 1e-12 {
                    (self.lo + self.hi) / 2.0
                } else {
                    self.lo + (v - self.mins[i]) / span * (self.hi - self.lo)
                }
            })
            .collect())
    }

    /// Inverse transform of one row (constant columns return their fitted
    /// minimum).
    pub fn inverse(&self, row: &[f64]) -> Result<Vec<f64>, AnnError> {
        if row.len() != self.dim() {
            return Err(AnnError::DimensionMismatch { expected: self.dim(), actual: row.len() });
        }
        Ok(row
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let span = self.maxs[i] - self.mins[i];
                if span <= 1e-12 {
                    self.mins[i]
                } else {
                    self.mins[i] + (v - self.lo) / (self.hi - self.lo) * span
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn standard_scaler_round_trip() {
        let rows = vec![vec![1.0, 100.0], vec![3.0, 300.0], vec![5.0, 500.0]];
        let s = StandardScaler::fit(&rows).unwrap();
        assert_eq!(s.dim(), 2);
        let t = s.transform(&rows[0]).unwrap();
        let back = s.inverse(&t).unwrap();
        assert!((back[0] - 1.0).abs() < 1e-9);
        assert!((back[1] - 100.0).abs() < 1e-9);
        // transformed data has ~zero mean
        let all = s.transform_all(&rows).unwrap();
        let mean0: f64 = all.iter().map(|r| r[0]).sum::<f64>() / 3.0;
        assert!(mean0.abs() < 1e-9);
    }

    #[test]
    fn standard_scaler_handles_constant_columns() {
        let rows = vec![vec![2.0], vec![2.0], vec![2.0]];
        let s = StandardScaler::fit(&rows).unwrap();
        let t = s.transform(&[2.0]).unwrap();
        assert!(t[0].abs() < 1e-12);
        let t = s.transform(&[3.0]).unwrap();
        assert!(t[0].is_finite());
    }

    #[test]
    fn standard_scaler_errors() {
        assert!(StandardScaler::fit(&[]).is_err());
        assert!(StandardScaler::fit(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        let s = StandardScaler::fit(&[vec![1.0, 2.0]]).unwrap();
        assert!(s.transform(&[1.0]).is_err());
        assert!(s.inverse(&[1.0]).is_err());
    }

    #[test]
    fn minmax_scaler_maps_range() {
        let rows = vec![vec![0.0], vec![10.0]];
        let s = MinMaxScaler::fit(&rows, 0.1, 0.9).unwrap();
        assert_eq!(s.dim(), 1);
        assert!((s.transform(&[0.0]).unwrap()[0] - 0.1).abs() < 1e-12);
        assert!((s.transform(&[10.0]).unwrap()[0] - 0.9).abs() < 1e-12);
        assert!((s.transform(&[5.0]).unwrap()[0] - 0.5).abs() < 1e-12);
        let back = s.inverse(&[0.5]).unwrap();
        assert!((back[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn minmax_scaler_errors_and_constants() {
        assert!(MinMaxScaler::fit(&[], 0.0, 1.0).is_err());
        assert!(MinMaxScaler::fit(&[vec![1.0]], 1.0, 0.0).is_err());
        assert!(MinMaxScaler::fit(&[vec![1.0], vec![1.0, 2.0]], 0.0, 1.0).is_err());
        let s = MinMaxScaler::fit(&[vec![4.0], vec![4.0]], 0.0, 1.0).unwrap();
        assert!((s.transform(&[4.0]).unwrap()[0] - 0.5).abs() < 1e-12);
        assert!((s.inverse(&[0.5]).unwrap()[0] - 4.0).abs() < 1e-12);
        assert!(s.transform(&[1.0, 2.0]).is_err());
        assert!(s.inverse(&[1.0, 2.0]).is_err());
    }

    proptest! {
        #[test]
        fn standard_scaler_inverse_is_identity(
            vals in proptest::collection::vec(-1e3f64..1e3, 4..20),
            probe in -1e3f64..1e3,
        ) {
            let rows: Vec<Vec<f64>> = vals.iter().map(|&v| vec![v]).collect();
            let s = StandardScaler::fit(&rows).unwrap();
            let round = s.inverse(&s.transform(&[probe]).unwrap()).unwrap()[0];
            prop_assert!((round - probe).abs() < 1e-6);
        }

        #[test]
        fn minmax_output_within_range(
            vals in proptest::collection::vec(-1e3f64..1e3, 4..20),
            idx in 0usize..4,
        ) {
            let rows: Vec<Vec<f64>> = vals.iter().map(|&v| vec![v]).collect();
            let s = MinMaxScaler::fit(&rows, 0.1, 0.9).unwrap();
            let probe = vals[idx.min(vals.len() - 1)];
            let t = s.transform(&[probe]).unwrap()[0];
            prop_assert!((0.1 - 1e-9..=0.9 + 1e-9).contains(&t));
        }
    }
}
